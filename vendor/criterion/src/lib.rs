//! Offline stand-in for `criterion` (0.5 API subset).
//!
//! The build container has no network and no crates.io cache, so the
//! workspace vendors a minimal benchmark runner with the surface its
//! benches use: [`criterion_group!`], [`criterion_main!`], [`Criterion`],
//! benchmark groups with `sample_size`/`measurement_time`,
//! `bench_function`/`bench_with_input`, and [`BenchmarkId`].
//!
//! Timing model: each closure is warmed once, then run `sample_size` times
//! (default 10); the mean and minimum wall-clock time per iteration are
//! printed. No statistical analysis, HTML reports, or comparison against
//! saved baselines — the numbers are honest but unsmoothed.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark's display identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// The per-closure timing driver handed to bench closures.
pub struct Bencher {
    samples: u32,
    results: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`: one warm-up call, then `samples` timed calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.results.push(start.elapsed());
        }
    }
}

/// The top-level benchmark context.
pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _private: () }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _parent: self,
        }
    }
}

/// A named group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u32,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u32;
        self
    }

    /// Accepted for API compatibility; the stub runs a fixed sample count
    /// rather than a time budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn run(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            samples: self.sample_size,
            results: Vec::new(),
        };
        f(&mut b);
        let total: Duration = b.results.iter().sum();
        let mean = total / b.results.len().max(1) as u32;
        let min = b.results.iter().min().copied().unwrap_or_default();
        println!(
            "bench {}/{id}: mean {mean:?}, min {min:?} over {} samples",
            self.name,
            b.results.len()
        );
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function(&mut self, id: impl fmt::Display, f: impl FnOnce(&mut Bencher)) {
        self.run(id.to_string(), f);
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) {
        self.run(id.to_string(), |b| f(b, input));
    }

    /// Ends the group (printing already happened per benchmark).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3).measurement_time(Duration::from_secs(1));
        let mut calls = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        // one warm-up + three samples
        assert_eq!(calls, 4);
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
    }
}
