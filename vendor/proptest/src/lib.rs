//! Offline stand-in for `proptest` (1.x API subset).
//!
//! The build container has no network and no crates.io cache, so the
//! workspace vendors a minimal randomized property-testing harness with the
//! exact surface its test suites use:
//!
//! * the [`proptest!`] macro (with or without `#![proptest_config(..)]`),
//! * [`Strategy`] implemented for integer/float ranges and tuples,
//! * [`any`], [`collection::vec`], [`sample::select`], `prop_flat_map`,
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`].
//!
//! Differences from real proptest: cases are sampled from a fixed
//! per-test seed (derived from the test's module path and name, so runs
//! are reproducible), and failing cases are **not shrunk** — the failing
//! input values are printed as-is.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Test-case control flow: rejection (via `prop_assume!`) or failure.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case did not meet a `prop_assume!` precondition; resample.
    Reject,
    /// A `prop_assert!`-family macro failed.
    Fail(String),
}

/// Harness configuration. Only `cases` is modeled.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The harness RNG: splitmix64, seeded per test from its full path.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A deterministic RNG for the named test.
    pub fn for_test(test_path: &str) -> Self {
        let mut h = DefaultHasher::new();
        test_path.hash(&mut h);
        TestRng { state: h.finish() }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

/// A value generator. Unlike real proptest there is no shrinking, so a
/// strategy is just a sampling function.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy that feeds this strategy's output into `f` and samples
    /// the strategy `f` returns.
    fn prop_flat_map<F, S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> S,
        S: Strategy,
    {
        FlatMap { inner: self, f }
    }

    /// A strategy mapping this strategy's output through `f`.
    fn prop_map<F, T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> S2,
    S2: Strategy,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                (self.start as u128 + (rng.next_u64() as u128) % span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                (lo as u128 + (rng.next_u64() as u128) % span) as $t
            }
        }
    )*};
}

int_range_strategies!(usize, u8, u16, u32, u64);

macro_rules! signed_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
    )*};
}

signed_range_strategies!(i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (S0 0, S1 1)
    (S0 0, S1 1, S2 2)
    (S0 0, S1 1, S2 2, S3 3)
    (S0 0, S1 1, S2 2, S3 3, S4 4)
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Samples an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_uints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-balanced, wide dynamic range.
        let mag = rng.next_f64() * 1e12;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

/// The `any::<T>()` strategy.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// An unconstrained value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// An inclusive length range for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// A `Vec` strategy: length sampled from `size`, elements from
    /// `element`.
    pub fn vec<E: Strategy>(element: E, size: impl Into<SizeRange>) -> VecStrategy<E> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<E> {
        element: E,
        size: SizeRange,
    }

    impl<E: Strategy> Strategy for VecStrategy<E> {
        type Value = Vec<E::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.lo + rng.below(self.size.hi - self.size.lo + 1);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Sampling from explicit value sets.
pub mod sample {
    use super::{Strategy, TestRng};

    /// A strategy drawing uniformly from `values` (must be nonempty).
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select over an empty set");
        Select { values }
    }

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        values: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.values[rng.below(self.values.len())].clone()
        }
    }
}

/// Everything a `proptest!` test needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Arbitrary,
        Just, ProptestConfig, Strategy, TestCaseError,
    };
    /// Re-export so `proptest::collection::...` also resolves via prelude
    /// glob users.
    pub use crate::collection;
    pub use crate::sample;
}

/// Defines randomized property tests. See the crate docs for the supported
/// grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng =
                $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(20).max(100);
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "{}: too many rejected cases ({} accepted of {} wanted)",
                    stringify!($name), accepted, config.cases
                );
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                #[allow(unused_mut)]
                let mut case_report = ::std::string::String::new();
                $(case_report.push_str(&format!(
                    "\n    {} = {:?}", stringify!($arg), &$arg
                ));)*
                let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match result {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("property failed: {msg}\n  case inputs:{case_report}");
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Like `assert!` but aborts only the current case with a report.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Like `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: {} == {}",
            stringify!($lhs),
            stringify!($rhs)
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs == rhs, $($fmt)*);
    }};
}

/// Like `assert_ne!` for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs != rhs,
            "assertion failed: {} != {}",
            stringify!($lhs),
            stringify!($rhs)
        );
    }};
}

/// Rejects the current case unless `cond` holds; the harness resamples.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(n in 4usize..48, w in 0u32..=64, f in -1e6f64..1e6) {
            prop_assert!((4..48).contains(&n));
            prop_assert!(w <= 64);
            prop_assert!((-1e6..1e6).contains(&f));
        }

        #[test]
        fn vec_and_tuple_strategies(
            v in collection::vec((any::<u32>(), any::<u32>()), 0..20),
            pick in sample::select(vec![1u8, 2, 3]),
        ) {
            prop_assert!(v.len() < 20);
            prop_assert!((1..=3).contains(&pick));
        }

        #[test]
        fn assume_rejects(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(seed in any::<u64>()) {
            let chained = (any::<u64>()).prop_flat_map(|hi| (0u64..hi.max(1)));
            let mut rng = TestRng::for_test("inner");
            let v = Strategy::sample(&chained, &mut rng);
            let _ = (seed, v);
            prop_assert!(true);
        }
    }

    proptest! {
        #[test]
        #[should_panic(expected = "property failed")]
        fn failures_panic_with_inputs(x in 0usize..4) {
            prop_assert!(x > 100, "x was {}", x);
        }
    }
}
