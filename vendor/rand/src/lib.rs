//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build container has no network and no crates.io cache, so the
//! workspace vendors the small slice of `rand` it actually uses:
//!
//! * [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`] — every seeded RNG
//!   in the repo,
//! * [`Rng::gen_range`] / [`Rng::gen_bool`] — scheduler picks, random
//!   graphs, fault draws,
//! * [`seq::SliceRandom::shuffle`] / [`choose`](seq::SliceRandom::choose)
//!   — port shuffles and random edge orders.
//!
//! The generator is splitmix64 (Steele, Lea, Flood 2014): 64-bit state,
//! full-period, statistically solid for simulation seeding. Determinism is
//! what the repo's tests actually rely on (same seed ⇒ same trace); no
//! cryptographic claims are made, exactly as with the real `StdRng`.

/// A seedable RNG. Only the `u64` convenience seeding is used here.
pub trait SeedableRng: Sized {
    /// Creates the RNG from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniform sampling from a range — the `gen_range` argument trait.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                (self.start as u128 + (rng.next_u64() as u128) % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u128) - (lo as u128) + 1;
                (lo as u128 + (rng.next_u64() as u128) % span) as $t
            }
        }
    )*};
}

int_ranges!(usize, u8, u16, u32, u64);

macro_rules! signed_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
    )*};
}

signed_ranges!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// The user-facing RNG trait: the `rand 0.8` methods this workspace calls.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` (53 random mantissa bits).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Named RNG implementations, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic 64-bit splitmix64 generator standing in for `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Shuffling and random choice on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniform Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u32 = rng.gen_range(0u32..=64);
            assert!(y <= 64);
            let f: f64 = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, (0..50).collect::<Vec<u32>>());
    }
}
