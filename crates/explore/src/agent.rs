//! The mobile-agent walker model and runner.

use oraclesize_bits::BitString;
use oraclesize_graph::{NodeId, Port, PortGraph};

/// What an agent perceives at its current node.
#[derive(Debug)]
pub struct SiteView<'a> {
    /// The node's advice string (empty without an oracle).
    pub advice: &'a BitString,
    /// The node's degree.
    pub degree: usize,
    /// The node's label.
    pub label: u64,
    /// Port through which the agent arrived; `None` at the start node
    /// before any move.
    pub arrival_port: Option<Port>,
    /// How many times the agent has been at this node (including now).
    pub visits: usize,
}

/// An agent's decision at a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Leave through this port.
    Move(Port),
    /// Stop walking.
    Halt,
}

/// An exploration strategy: the agent's program. The agent has unbounded
/// private memory (the `&mut self` state) but perceives only the
/// [`SiteView`] — it cannot see the graph.
pub trait Explorer {
    /// Decides the next action at the current node.
    fn step(&mut self, view: &SiteView<'_>) -> Action;

    /// Short name used in experiment tables.
    fn name(&self) -> &'static str {
        "unnamed"
    }
}

/// Runner limits.
#[derive(Debug, Clone, Copy)]
pub struct WalkConfig {
    /// Abort after this many moves (guards non-halting strategies).
    pub max_moves: u64,
}

impl Default for WalkConfig {
    fn default() -> Self {
        WalkConfig {
            max_moves: 1_000_000,
        }
    }
}

/// The outcome of a walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalkResult {
    /// Total edge traversals performed.
    pub moves: u64,
    /// Move count at which the last unvisited node was first reached;
    /// `None` if coverage was never achieved.
    pub cover_moves: Option<u64>,
    /// `true` if every node was visited.
    pub covered_all: bool,
    /// `true` if the strategy halted (as opposed to hitting
    /// [`WalkConfig::max_moves`]).
    pub halted: bool,
    /// Node where the walk ended.
    pub final_node: NodeId,
    /// Number of distinct nodes visited.
    pub visited_count: usize,
}

/// Walks `explorer` on `g` from `start` with per-node advice.
///
/// # Panics
///
/// Panics if `advice.len() != g.num_nodes()`, if `start` is out of range,
/// or if the strategy returns an out-of-range port (a buggy strategy, not
/// a valid outcome).
pub fn walk(
    g: &PortGraph,
    start: NodeId,
    advice: &[BitString],
    explorer: &mut dyn Explorer,
    config: &WalkConfig,
) -> WalkResult {
    assert_eq!(advice.len(), g.num_nodes(), "one advice string per node");
    assert!(start < g.num_nodes(), "start out of range");
    let n = g.num_nodes();
    let mut visited = vec![false; n];
    let mut visit_counts = vec![0usize; n];
    let mut visited_count = 0usize;
    let mut current = start;
    let mut arrival: Option<Port> = None;
    let mut moves = 0u64;
    let mut cover_moves = None;
    let mut halted = false;

    loop {
        if !visited[current] {
            visited[current] = true;
            visited_count += 1;
            if visited_count == n {
                cover_moves = Some(moves);
            }
        }
        visit_counts[current] += 1;
        if moves >= config.max_moves {
            break;
        }
        let view = SiteView {
            advice: &advice[current],
            degree: g.degree(current),
            label: g.label(current),
            arrival_port: arrival,
            visits: visit_counts[current],
        };
        match explorer.step(&view) {
            Action::Halt => {
                halted = true;
                break;
            }
            Action::Move(p) => {
                assert!(
                    p < g.degree(current),
                    "strategy used port {p} at node {current} of degree {}",
                    g.degree(current)
                );
                let (next, q) = g.neighbor_via(current, p);
                current = next;
                arrival = Some(q);
                moves += 1;
            }
        }
    }

    WalkResult {
        moves,
        cover_moves,
        covered_all: visited_count == n,
        halted,
        final_node: current,
        visited_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oraclesize_graph::families;

    /// Walks around a cycle forever (until the cap).
    struct Clockwise;
    impl Explorer for Clockwise {
        fn step(&mut self, view: &SiteView<'_>) -> Action {
            // On a cycle built by `families::cycle`, port layout varies;
            // always leaving through a port different from the arrival
            // keeps moving in one direction.
            match view.arrival_port {
                None => Action::Move(0),
                Some(p) => Action::Move(if p == 0 { 1 } else { 0 }),
            }
        }
    }

    #[test]
    fn clockwise_covers_cycle_in_n_minus_1_moves() {
        let g = families::cycle(10);
        let advice = vec![BitString::new(); 10];
        let result = walk(&g, 0, &advice, &mut Clockwise, &WalkConfig { max_moves: 9 });
        assert!(result.covered_all);
        assert_eq!(result.cover_moves, Some(9));
        assert!(!result.halted, "hit the cap, never halts");
    }

    struct HaltImmediately;
    impl Explorer for HaltImmediately {
        fn step(&mut self, _view: &SiteView<'_>) -> Action {
            Action::Halt
        }
    }

    #[test]
    fn immediate_halt_visits_one_node() {
        let g = families::path(5);
        let advice = vec![BitString::new(); 5];
        let result = walk(&g, 2, &advice, &mut HaltImmediately, &WalkConfig::default());
        assert_eq!(result.moves, 0);
        assert_eq!(result.visited_count, 1);
        assert!(result.halted);
        assert!(!result.covered_all);
        assert_eq!(result.final_node, 2);
    }

    #[test]
    fn single_node_graph_is_covered_at_zero_moves() {
        let g = oraclesize_graph::PortGraph::from_adjacency(vec![vec![]]).unwrap();
        let advice = vec![BitString::new()];
        let result = walk(&g, 0, &advice, &mut HaltImmediately, &WalkConfig::default());
        assert!(result.covered_all);
        assert_eq!(result.cover_moves, Some(0));
    }

    #[test]
    #[should_panic(expected = "port")]
    fn out_of_range_port_panics() {
        struct Wild;
        impl Explorer for Wild {
            fn step(&mut self, _view: &SiteView<'_>) -> Action {
                Action::Move(99)
            }
        }
        let g = families::path(3);
        let advice = vec![BitString::new(); 3];
        walk(&g, 0, &advice, &mut Wild, &WalkConfig::default());
    }
}
