//! Exploration strategies: advice-guided, advice-free, and random.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use oraclesize_graph::Port;

use crate::agent::{Action, Explorer, SiteView};
use crate::oracle::decode_departures;

/// Follows the tour oracle: at the `k`-th visit to a node, leave through
/// the `k`-th advice port; halt when the sequence is exhausted.
///
/// With [`tour_advice`](crate::oracle::tour_advice) this walks the Euler
/// tour of the DFS spanning tree: exactly `2(n − 1)` moves, ending back at
/// the start. The agent itself is *memoryless across nodes* — it never
/// needs node identities, only the visit count the runner exposes.
#[derive(Debug, Default)]
pub struct GuidedTour;

impl GuidedTour {
    /// A fresh guided-tour agent.
    pub fn new() -> Self {
        GuidedTour
    }
}

impl Explorer for GuidedTour {
    fn step(&mut self, view: &SiteView<'_>) -> Action {
        let Some(seq) = decode_departures(view.advice) else {
            return Action::Halt; // malformed advice: stop safely
        };
        match seq.get(view.visits - 1) {
            Some(&p) if p < view.degree => Action::Move(p),
            _ => Action::Halt,
        }
    }

    fn name(&self) -> &'static str {
        "guided-tour"
    }
}

/// Advice-free depth-first search with backtracking, using node labels as
/// memory keys.
///
/// The agent remembers, for every node it has seen: the DFS parent port,
/// its scan position, and *dead* ports (edges already explored from the
/// other side). A probe into an already-visited node bounces straight
/// back, marking the entry port dead, so every edge is traversed exactly
/// twice — `≤ 2m` moves, the classic bound the tour oracle undercuts to
/// `2(n − 1)`.
#[derive(Debug, Default)]
pub struct DfsBacktrack {
    /// Per-node: next port index to try.
    next_port: HashMap<u64, Port>,
    /// Per-node: port toward the DFS parent (`None` at the start node).
    parent_port: HashMap<u64, Option<Port>>,
    /// Per-node: ports whose edges were already explored from the far end.
    dead: HashMap<u64, std::collections::HashSet<Port>>,
    /// `true` when the previous move was a probe along an unexplored edge,
    /// so arriving at a visited node means "bounce back".
    expect_new: bool,
}

impl DfsBacktrack {
    /// A fresh DFS agent.
    pub fn new() -> Self {
        DfsBacktrack::default()
    }

    /// Declares the node labeled `label` as the DFS root (no parent): the
    /// agent will halt there once its scan is exhausted. Used by hybrid
    /// strategies that switch to DFS mid-walk.
    pub fn mark_root(&mut self, label: u64) {
        self.parent_port.insert(label, None);
        self.next_port.entry(label).or_insert(0);
    }
}

impl Explorer for DfsBacktrack {
    fn step(&mut self, view: &SiteView<'_>) -> Action {
        if self.expect_new && self.parent_port.contains_key(&view.label) {
            // Probe landed on known territory: mark the edge dead here and
            // bounce back the way we came.
            self.expect_new = false;
            let back = view.arrival_port.expect("probes arrive via a port");
            self.dead.entry(view.label).or_default().insert(back);
            return Action::Move(back);
        }
        if let std::collections::hash_map::Entry::Vacant(e) = self.parent_port.entry(view.label) {
            // First arrival: this edge becomes a tree edge.
            e.insert(view.arrival_port);
            self.next_port.insert(view.label, 0);
        }
        self.expect_new = false;
        // Continue this node's port scan, skipping the parent edge and
        // dead ports.
        loop {
            let next = self.next_port.get_mut(&view.label).expect("initialized");
            let p = *next;
            if p >= view.degree {
                // Subtree done: backtrack to the parent, or halt at the root.
                return match self.parent_port[&view.label] {
                    Some(parent) => Action::Move(parent),
                    None => Action::Halt,
                };
            }
            *next += 1;
            if Some(p) == self.parent_port[&view.label] {
                continue;
            }
            if self.dead.get(&view.label).is_some_and(|d| d.contains(&p)) {
                continue;
            }
            self.expect_new = true;
            return Action::Move(p);
        }
    }

    fn name(&self) -> &'static str {
        "dfs-backtrack"
    }
}

/// Uniform random walk (seeded) — the zero-knowledge, zero-cleverness
/// baseline; expected cover time `O(n·m)`.
#[derive(Debug)]
pub struct RandomWalk {
    rng: StdRng,
}

impl RandomWalk {
    /// A seeded random walker.
    pub fn new(seed: u64) -> Self {
        RandomWalk {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Explorer for RandomWalk {
    fn step(&mut self, view: &SiteView<'_>) -> Action {
        if view.degree == 0 {
            return Action::Halt;
        }
        Action::Move(self.rng.gen_range(0..view.degree))
    }

    fn name(&self) -> &'static str {
        "random-walk"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{walk, WalkConfig};
    use crate::oracle::tour_advice;
    use oraclesize_bits::BitString;
    use oraclesize_graph::families::{self, Family};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn empty_advice(n: usize) -> Vec<BitString> {
        vec![BitString::new(); n]
    }

    #[test]
    fn guided_tour_is_exact_on_all_families() {
        let mut rng = StdRng::seed_from_u64(71);
        for fam in Family::ALL {
            for n in [8usize, 30, 64] {
                let g = fam.build(n, &mut rng);
                let nodes = g.num_nodes();
                let advice = tour_advice(&g, 0);
                let result = walk(
                    &g,
                    0,
                    &advice,
                    &mut GuidedTour::new(),
                    &WalkConfig::default(),
                );
                assert!(result.covered_all, "{} n={nodes}", fam.name());
                assert!(result.halted);
                assert_eq!(
                    result.moves,
                    2 * (nodes as u64 - 1),
                    "{} n={nodes}",
                    fam.name()
                );
                assert_eq!(result.final_node, 0, "tour must end at the start");
            }
        }
    }

    #[test]
    fn dfs_backtrack_covers_within_2m_moves() {
        let mut rng = StdRng::seed_from_u64(72);
        for fam in Family::ALL {
            let g = fam.build(24, &mut rng);
            let result = walk(
                &g,
                0,
                &empty_advice(g.num_nodes()),
                &mut DfsBacktrack::new(),
                &WalkConfig::default(),
            );
            assert!(result.covered_all, "{}", fam.name());
            assert!(result.halted, "{}", fam.name());
            assert!(
                result.moves <= 2 * g.num_edges() as u64,
                "{}: {} moves > 2m = {}",
                fam.name(),
                result.moves,
                2 * g.num_edges()
            );
        }
    }

    #[test]
    fn dfs_halts_at_start_node() {
        let mut rng = StdRng::seed_from_u64(73);
        let g = families::random_connected(20, 0.3, &mut rng);
        let result = walk(
            &g,
            5,
            &empty_advice(20),
            &mut DfsBacktrack::new(),
            &WalkConfig::default(),
        );
        assert!(result.halted);
        assert_eq!(result.final_node, 5);
    }

    #[test]
    fn random_walk_eventually_covers_small_graphs() {
        let g = families::cycle(8);
        let result = walk(
            &g,
            0,
            &empty_advice(8),
            &mut RandomWalk::new(99),
            &WalkConfig { max_moves: 10_000 },
        );
        assert!(result.covered_all);
        assert!(!result.halted);
        assert!(
            result.cover_moves.unwrap() > 7,
            "cover time beats diameter?"
        );
    }

    #[test]
    fn guided_tour_beats_dfs_on_dense_graphs() {
        let g = families::complete_rotational(40);
        let tour = walk(
            &g,
            0,
            &tour_advice(&g, 0),
            &mut GuidedTour::new(),
            &WalkConfig::default(),
        );
        let dfs = walk(
            &g,
            0,
            &empty_advice(40),
            &mut DfsBacktrack::new(),
            &WalkConfig::default(),
        );
        assert!(tour.covered_all && dfs.covered_all);
        assert!(
            dfs.moves > 5 * tour.moves,
            "dfs {} vs tour {}",
            dfs.moves,
            tour.moves
        );
    }

    #[test]
    fn guided_tour_halts_safely_on_garbage_advice() {
        let g = families::path(4);
        let advice = vec![BitString::parse("1").unwrap(); 4];
        let result = walk(
            &g,
            0,
            &advice,
            &mut GuidedTour::new(),
            &WalkConfig::default(),
        );
        assert!(result.halted);
        assert!(!result.covered_all);
    }
}
