//! The exploration advice-budget trade-off — the moves-side mirror of the
//! message-side experiment T6.
//!
//! [`budgeted_tour_advice`] keeps whole tour-advice strings, in tour
//! order, within a bit budget, replacing the rest with the undecodable 2-bit
//! sentinel `01`. [`HybridExplorer`] follows the tour while advice is
//! present and, on first hitting a withheld node, switches permanently to
//! depth-first backtracking rooted there. Coverage is always achieved; the
//! move count interpolates between the tour's `2(n−1)` and DFS-like `O(m)`
//! as the budget shrinks.

use oraclesize_bits::BitString;
use oraclesize_graph::{NodeId, PortGraph};

use crate::agent::{walk, Action, Explorer, SiteView, WalkConfig, WalkResult};
use crate::oracle::{decode_departures, tour_advice};
use crate::strategies::DfsBacktrack;

/// The 2-bit "advice withheld" sentinel: `01` cannot be a prefix of any
/// γ-coded departure list, so [`decode_departures`] rejects it.
fn withheld_sentinel() -> BitString {
    BitString::parse("01").expect("valid bit literal")
}

/// Tour advice cut to a global bit budget, whole strings kept in **tour
/// order** (DFS preorder from `start`): the agent tours as far as the
/// budget reaches, then falls back to DFS. Prefix-keeping matters — the
/// tour is a chain, so a gap early in it wastes everything after; keeping
/// a preorder prefix makes the budget buy a proportional stretch of cheap
/// moves.
pub fn budgeted_tour_advice(g: &PortGraph, start: NodeId, budget_bits: u64) -> Vec<BitString> {
    let full = tour_advice(g, start);
    // DFS preorder of the same tree the advice traces.
    let tree = oraclesize_graph::spanning::dfs_tree(g, start);
    let mut order = Vec::with_capacity(g.num_nodes());
    let mut stack = vec![start];
    while let Some(v) = stack.pop() {
        order.push(v);
        for &(child, _) in tree.children(v).iter().rev() {
            stack.push(child);
        }
    }
    let mut remaining = budget_bits;
    let mut keep = vec![false; full.len()];
    for v in order {
        if (full[v].len() as u64) <= remaining {
            remaining -= full[v].len() as u64;
            keep[v] = true;
        } else {
            break; // prefix semantics: stop at the first node that misses
        }
    }
    full.into_iter()
        .zip(keep)
        .map(|(s, kept)| if kept { s } else { withheld_sentinel() })
        .collect()
}

/// Tour-following until the first withheld node, then DFS to the end.
#[derive(Debug, Default)]
pub struct HybridExplorer {
    dfs: DfsBacktrack,
    switched: bool,
    /// Visit counts during the guided phase only (tour advice indexes by
    /// guided visits, not total visits).
    guided_visits: std::collections::HashMap<u64, usize>,
}

impl HybridExplorer {
    /// A fresh hybrid agent.
    pub fn new() -> Self {
        HybridExplorer::default()
    }
}

impl Explorer for HybridExplorer {
    fn step(&mut self, view: &SiteView<'_>) -> Action {
        if !self.switched {
            match decode_departures(view.advice) {
                Some(seq) => {
                    let count = self.guided_visits.entry(view.label).or_insert(0);
                    *count += 1;
                    return match seq.get(*count - 1) {
                        Some(&p) if p < view.degree => Action::Move(p),
                        _ => Action::Halt, // tour complete
                    };
                }
                None => {
                    // Withheld advice: become a DFS rooted here.
                    self.switched = true;
                    self.dfs.mark_root(view.label);
                }
            }
        }
        self.dfs.step(view)
    }

    fn name(&self) -> &'static str {
        "hybrid-tour-dfs"
    }
}

/// One point on the exploration trade-off curve.
#[derive(Debug, Clone)]
pub struct ExplorationPoint {
    /// Requested budget in bits.
    pub budget_bits: u64,
    /// Advice actually delivered (kept strings + 2-bit sentinels).
    pub advice_bits: u64,
    /// The walk outcome (always covers the graph).
    pub result: WalkResult,
}

/// Runs the budgeted-exploration experiment for each budget.
///
/// # Panics
///
/// Panics if a walk fails to cover the graph (the hybrid strategy
/// guarantees coverage on connected graphs, so this indicates a bug).
pub fn exploration_tradeoff(
    g: &PortGraph,
    start: NodeId,
    budgets: &[u64],
) -> Vec<ExplorationPoint> {
    budgets
        .iter()
        .map(|&budget_bits| {
            let advice = budgeted_tour_advice(g, start, budget_bits);
            let advice_bits = advice.iter().map(|s| s.len() as u64).sum();
            let result = walk(
                g,
                start,
                &advice,
                &mut HybridExplorer::new(),
                &WalkConfig::default(),
            );
            assert!(result.covered_all, "hybrid exploration must cover");
            ExplorationPoint {
                budget_bits,
                advice_bits,
                result,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use oraclesize_graph::families::{self, Family};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sentinel_is_undecodable() {
        assert!(decode_departures(&withheld_sentinel()).is_none());
    }

    #[test]
    fn full_budget_is_the_exact_tour() {
        let g = families::complete_rotational(32);
        let points = exploration_tradeoff(&g, 0, &[u64::MAX]);
        assert_eq!(points[0].result.moves, 2 * 31);
        assert!(points[0].result.halted);
    }

    #[test]
    fn zero_budget_degenerates_to_dfs_cost() {
        let g = families::complete_rotational(24);
        let points = exploration_tradeoff(&g, 0, &[0]);
        // Start node itself is withheld → pure DFS from the start.
        assert!(points[0].result.moves > 2 * 23);
        assert!(points[0].result.moves <= 2 * g.num_edges() as u64);
    }

    #[test]
    fn curve_interpolates_and_always_covers() {
        let g = families::complete_rotational(40);
        let full: u64 = tour_advice(&g, 0).iter().map(|s| s.len() as u64).sum();
        let budgets: Vec<u64> = (0..=4).map(|i| full * i / 4).collect();
        let points = exploration_tradeoff(&g, 0, &budgets);
        for p in &points {
            assert!(p.result.covered_all);
        }
        assert!(points[0].result.moves > points[4].result.moves);
        assert_eq!(points[4].result.moves, 2 * 39);
    }

    #[test]
    fn hybrid_covers_on_every_family_and_budget() {
        let mut rng = StdRng::seed_from_u64(121);
        for fam in Family::ALL {
            let g = fam.build(24, &mut rng);
            let full: u64 = tour_advice(&g, 0).iter().map(|s| s.len() as u64).sum();
            for budget in [0, full / 3, full] {
                let points = exploration_tradeoff(&g, 0, &[budget]);
                assert!(
                    points[0].result.covered_all,
                    "{} budget={budget}",
                    fam.name()
                );
                assert!(points[0].result.halted, "{} budget={budget}", fam.name());
            }
        }
    }
}
