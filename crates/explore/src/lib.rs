//! Graph exploration by a mobile agent with oracle advice.
//!
//! The paper's conclusion conjectures that oracle size "can be also used to
//! assess difficulty of a broader range of distributed network problems …
//! e.g., spanner construction or exploration by mobile agents." This crate
//! carries that program out for exploration:
//!
//! * [`agent`] — the walker model: an agent moves along ports, sees only
//!   the current node's advice string, degree, label and its own memory,
//!   and must visit every node,
//! * [`strategies`] — explorers: depth-first search with backtracking
//!   (no advice, ≤ 2m moves), the advice-guided Euler tour (exactly
//!   `2(n−1)` moves from an `O(n log Δ)`-bit oracle), and the random walk
//!   baseline,
//! * [`oracle`] — the tour oracle: per-node departure-port sequences
//!   tracing an Euler tour of a spanning tree.
//!
//! The headline mirror of the paper's theme: *knowledge buys moves* — the
//! oracle removes the `Θ(m)` backtracking cost exactly as the broadcast
//! oracle removes flooding's `Θ(m)` message cost.
//!
//! # Examples
//!
//! ```
//! use oraclesize_explore::agent::{walk, WalkConfig};
//! use oraclesize_explore::oracle::tour_advice;
//! use oraclesize_explore::strategies::GuidedTour;
//! use oraclesize_graph::families;
//!
//! let g = families::hypercube(4);
//! let advice = tour_advice(&g, 0);
//! let result = walk(&g, 0, &advice, &mut GuidedTour::new(), &WalkConfig::default());
//! assert!(result.covered_all);
//! assert_eq!(result.moves, 2 * (16 - 1)); // Euler tour of a spanning tree
//! ```

#![warn(missing_docs)]

pub mod agent;
pub mod budget;
pub mod oracle;
pub mod strategies;

pub use agent::{walk, Action, Explorer, SiteView, WalkConfig, WalkResult};
