//! The tour oracle: departure-port sequences tracing an Euler tour of a
//! spanning tree.
//!
//! For a DFS spanning tree rooted at the start node, the oracle gives each
//! node the sequence of ports it should leave through on its 1st, 2nd, …
//! visits: all child ports in order, then (at non-root nodes) the parent
//! port; the root's sequence simply ends, telling the agent to halt. The
//! resulting walk is the Euler tour of the tree — exactly `2(n − 1)` moves
//! — and the advice totals `O(n log Δ)` bits (each tree edge contributes
//! two γ-coded port numbers).

use oraclesize_bits::codec::{Codec, EliasGamma};
use oraclesize_bits::BitString;
use oraclesize_graph::spanning::dfs_tree;
use oraclesize_graph::{NodeId, Port, PortGraph};

/// Encodes a departure sequence as consecutive γ-coded ports (count
/// implicit: read to end).
pub fn encode_departures(ports: &[Port]) -> BitString {
    let mut out = BitString::new();
    for &p in ports {
        EliasGamma.encode(p as u64, &mut out);
    }
    out
}

/// Decodes a departure sequence. Returns `None` on malformed input.
pub fn decode_departures(s: &BitString) -> Option<Vec<Port>> {
    let mut r = s.reader();
    let mut ports = Vec::new();
    while !r.is_empty() {
        ports.push(EliasGamma.decode(&mut r)? as Port);
    }
    Some(ports)
}

/// Builds the per-node tour advice for an Euler tour of the DFS spanning
/// tree rooted at `start`.
pub fn tour_advice(g: &PortGraph, start: NodeId) -> Vec<BitString> {
    let tree = dfs_tree(g, start);
    (0..g.num_nodes())
        .map(|v| {
            let mut seq: Vec<Port> = tree.children(v).iter().map(|&(_, p)| p).collect();
            if let Some((_, _, port_at_child)) = tree.parent(v) {
                seq.push(port_at_child);
            }
            encode_departures(&seq)
        })
        .collect()
}

/// Total advice size in bits of [`tour_advice`] — the exploration
/// analogue of the paper's oracle-size measure.
pub fn tour_advice_bits(g: &PortGraph, start: NodeId) -> u64 {
    tour_advice(g, start).iter().map(|s| s.len() as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use oraclesize_graph::families;

    #[test]
    fn departures_roundtrip() {
        for seq in [vec![], vec![0], vec![3, 0, 7, 1]] {
            let enc = encode_departures(&seq);
            assert_eq!(decode_departures(&enc), Some(seq));
        }
    }

    #[test]
    fn tour_advice_sequences_have_tree_shape() {
        let g = families::hypercube(3);
        let advice = tour_advice(&g, 0);
        // Total departures = 2(n−1): each tree edge appears once as a
        // child departure and once as a parent departure.
        let total: usize = advice
            .iter()
            .map(|a| decode_departures(a).unwrap().len())
            .sum();
        assert_eq!(total, 2 * 7);
        // The start node has no parent entry: its sequence equals its
        // child count; every other node has ≥ 1 entry.
        for (v, a) in advice.iter().enumerate() {
            let seq = decode_departures(a).unwrap();
            if v != 0 {
                assert!(!seq.is_empty(), "non-root {v} lacks a parent departure");
            }
        }
    }

    #[test]
    fn advice_bits_scale_with_n_log_delta() {
        // On bounded-degree families the advice is O(n).
        let g = families::grid(16, 16);
        let bits = tour_advice_bits(&g, 0);
        assert!(bits <= 16 * 256, "{bits} bits on a 256-node grid");
    }
}
