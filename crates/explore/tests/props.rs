//! Property-based tests for the exploration subsystem.

use oraclesize_bits::BitString;
use oraclesize_explore::agent::{walk, WalkConfig};
use oraclesize_explore::oracle::{decode_departures, encode_departures, tour_advice};
use oraclesize_explore::strategies::{DfsBacktrack, GuidedTour, RandomWalk};
use oraclesize_graph::families::{self, Family};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_family() -> impl Strategy<Value = Family> {
    proptest::sample::select(Family::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn departures_roundtrip(seq in proptest::collection::vec(0usize..512, 0..64)) {
        let enc = encode_departures(&seq);
        prop_assert_eq!(decode_departures(&enc), Some(seq));
    }

    #[test]
    fn guided_tour_exact_on_random_instances(
        fam in arb_family(),
        n in 4usize..64,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = fam.build(n, &mut rng);
        let nodes = g.num_nodes();
        let start = seed as usize % nodes;
        let advice = tour_advice(&g, start);
        let result = walk(&g, start, &advice, &mut GuidedTour::new(), &WalkConfig::default());
        prop_assert!(result.covered_all);
        prop_assert!(result.halted);
        prop_assert_eq!(result.moves, 2 * (nodes as u64 - 1));
        prop_assert_eq!(result.final_node, start);
    }

    #[test]
    fn dfs_covers_within_2m_on_random_instances(
        fam in arb_family(),
        n in 4usize..48,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = fam.build(n, &mut rng);
        let start = seed as usize % g.num_nodes();
        let empty = vec![BitString::new(); g.num_nodes()];
        let result = walk(&g, start, &empty, &mut DfsBacktrack::new(), &WalkConfig::default());
        prop_assert!(result.covered_all, "{}", fam.name());
        prop_assert!(result.halted);
        prop_assert_eq!(result.final_node, start);
        prop_assert!(
            result.moves <= 2 * g.num_edges() as u64,
            "{}: {} > 2m = {}", fam.name(), result.moves, 2 * g.num_edges()
        );
    }

    #[test]
    fn random_walk_never_halts_before_cap(n in 4usize..24, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = families::random_connected(n, 0.5, &mut rng);
        let empty = vec![BitString::new(); n];
        let result = walk(
            &g, 0, &empty,
            &mut RandomWalk::new(seed),
            &WalkConfig { max_moves: 200 },
        );
        prop_assert!(!result.halted);
        prop_assert_eq!(result.moves, 200);
    }

    #[test]
    fn garbage_advice_never_panics_guided_tour(
        n in 2usize..24,
        seed in any::<u64>(),
        bits in proptest::collection::vec(any::<bool>(), 0..64),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = families::random_connected(n, 0.4, &mut rng);
        let advice = vec![BitString::from_bits(bits.iter().copied()); n];
        let result = walk(&g, 0, &advice, &mut GuidedTour::new(), &WalkConfig { max_moves: 10_000 });
        // Either halts safely or hits the cap; never panics or exceeds it.
        prop_assert!(result.moves <= 10_000);
    }
}
