//! Property-based tests for the encoding substrate.

use oraclesize_bits::codec::{
    decode_doubled_header, encode_doubled_header, AnyCodec, Codec, ContinuationPairs, EliasDelta,
    EliasGamma,
};
use oraclesize_bits::lists::{
    decode_port_list, decode_weight_list, encode_port_list, encode_weight_list, port_list_len,
    weight_list_len,
};
use oraclesize_bits::{bits_to_represent, BitString};
use proptest::prelude::*;

proptest! {
    #[test]
    fn bitstring_roundtrip_bools(bits in proptest::collection::vec(any::<bool>(), 0..512)) {
        let s = BitString::from_bits(bits.iter().copied());
        prop_assert_eq!(s.len(), bits.len());
        let back: Vec<bool> = s.iter().collect();
        prop_assert_eq!(back, bits);
    }

    #[test]
    fn bitstring_push_uint_get(v in any::<u64>(), w in 0u32..=64) {
        let v = if w == 64 { v } else { v & ((1u64 << w) - 1) };
        let mut s = BitString::new();
        s.push_uint(v, w);
        prop_assert_eq!(s.reader().read_uint(w), Some(v));
    }

    #[test]
    fn gamma_roundtrip(v in 0u64..u64::MAX) {
        let mut s = BitString::new();
        EliasGamma.encode(v, &mut s);
        prop_assert_eq!(s.len(), EliasGamma.encoded_len(v));
        prop_assert_eq!(EliasGamma.decode(&mut s.reader()), Some(v));
    }

    #[test]
    fn delta_roundtrip(v in 0u64..u64::MAX) {
        let mut s = BitString::new();
        EliasDelta.encode(v, &mut s);
        prop_assert_eq!(s.len(), EliasDelta.encoded_len(v));
        prop_assert_eq!(EliasDelta.decode(&mut s.reader()), Some(v));
    }

    #[test]
    fn continuation_pairs_roundtrip_and_len(v in any::<u64>()) {
        let mut s = BitString::new();
        ContinuationPairs.encode(v, &mut s);
        prop_assert_eq!(s.len(), 2 * bits_to_represent(v) as usize);
        prop_assert_eq!(ContinuationPairs.decode(&mut s.reader()), Some(v));
    }

    #[test]
    fn doubled_header_roundtrip(v in any::<u64>()) {
        let mut s = BitString::new();
        encode_doubled_header(v, &mut s);
        prop_assert_eq!(decode_doubled_header(&mut s.reader()), Some(v));
    }

    #[test]
    fn codec_streams_concatenate(values in proptest::collection::vec(0u64..1_000_000, 0..50)) {
        for codec in AnyCodec::ALL {
            if codec == AnyCodec::Unary && values.iter().any(|&v| v > 10_000) {
                continue;
            }
            let mut s = BitString::new();
            for &v in &values {
                codec.encode(v, &mut s);
            }
            let mut r = s.reader();
            for &v in &values {
                prop_assert_eq!(codec.decode(&mut r), Some(v), "codec {}", codec.name());
            }
            prop_assert!(r.is_empty());
        }
    }

    #[test]
    fn port_list_roundtrip(n in 2u64..5000, raw in proptest::collection::vec(any::<u64>(), 0..64)) {
        let ports: Vec<u64> = raw.iter().map(|&p| p % n).collect();
        let enc = encode_port_list(&ports, n);
        prop_assert_eq!(enc.len(), port_list_len(ports.len(), n));
        prop_assert_eq!(decode_port_list(&enc), Some(ports));
    }

    #[test]
    fn weight_list_roundtrip(weights in proptest::collection::vec(any::<u64>(), 0..64)) {
        let enc = encode_weight_list(&weights);
        prop_assert_eq!(enc.len(), weight_list_len(&weights));
        prop_assert_eq!(decode_weight_list(&enc), Some(weights));
    }

    #[test]
    fn random_bits_never_panic_decoders(bits in proptest::collection::vec(any::<bool>(), 0..256)) {
        // Fuzz: arbitrary bit strings must decode to Some or None, never panic.
        let s = BitString::from_bits(bits);
        let _ = decode_port_list(&s);
        let _ = decode_weight_list(&s);
        let _ = decode_doubled_header(&mut s.reader());
        for codec in AnyCodec::ALL {
            let _ = codec.decode(&mut s.reader());
        }
    }
}
