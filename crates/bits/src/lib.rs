//! Bit-level advice encoding for the `oraclesize` project.
//!
//! The oracles of Fraigniaud, Ilcinkas and Pelc (PODC 2006) assign to every
//! node of a network a *binary string*, and the size of an oracle is the sum
//! of the lengths of these strings, **in bits**. This crate provides the
//! bit-exact substrate for those strings:
//!
//! * [`BitString`] — a growable, packed sequence of bits with bit-exact
//!   length accounting,
//! * [`BitReader`] — a cursor for decoding,
//! * [`codec`] — self-delimiting integer codes, including the two codes used
//!   by the paper: the *doubled-header* port-list code of Theorem 2.1 and the
//!   *continuation-pair* weight code of Theorem 3.1 (which spends exactly
//!   `2·#2(w)` bits per weight),
//! * [`lists`] — the full per-node advice payloads built from those codes.
//!
//! # Examples
//!
//! ```
//! use oraclesize_bits::{BitString, codec::{Codec, EliasGamma}};
//!
//! let mut s = BitString::new();
//! EliasGamma.encode(17, &mut s);
//! let mut r = s.reader();
//! assert_eq!(EliasGamma.decode(&mut r), Some(17));
//! assert!(r.is_empty());
//! ```

#![warn(missing_docs)]

pub mod arena;
pub mod bitset;
pub mod bitstring;
pub mod codec;
pub mod lists;
pub mod numeric;
pub mod reader;

pub use arena::BitArena;
pub use bitset::BitSet;
pub use bitstring::BitString;
pub use numeric::{bits_to_represent, ceil_log2};
pub use reader::BitReader;
