//! Self-delimiting integer codes.
//!
//! Two of these come straight out of the paper:
//!
//! * [`ContinuationPairs`] spends exactly `2·#2(w)` bits on a weight `w` —
//!   the code implicitly used in Theorem 3.1 ("they can be encoded by one
//!   binary string of length `2·Σ #2(w(e_i))`").
//! * The *doubled-header* construction of Theorem 2.1 is a list code and
//!   lives in [`crate::lists`]; its header (`b1b1 b2b2 … br br 10`) is
//!   exposed here as [`encode_doubled_header`] / [`decode_doubled_header`].
//!
//! [`EliasGamma`] and [`EliasDelta`] are included as classical comparison
//! points for experiment T11, and [`FixedWidth`] / [`Unary`] as degenerate
//! baselines.

use crate::bitstring::BitString;
use crate::numeric::bits_to_represent;
use crate::reader::BitReader;

/// A self-delimiting code for unsigned integers.
///
/// Implementations must be prefix-free on their declared
/// [domain](Codec::max_value): decoding consumes exactly the bits that
/// encoding produced, so advice payloads can be concatenated.
pub trait Codec {
    /// Appends the encoding of `value` to `out`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is outside the codec's domain.
    fn encode(&self, value: u64, out: &mut BitString);

    /// Decodes one value, consuming exactly its encoding.
    ///
    /// Returns `None` on truncated or malformed input; the cursor position is
    /// then unspecified.
    fn decode(&self, reader: &mut BitReader<'_>) -> Option<u64>;

    /// Number of bits [`encode`](Codec::encode) will emit for `value`.
    fn encoded_len(&self, value: u64) -> usize {
        let mut s = BitString::new();
        self.encode(value, &mut s);
        s.len()
    }

    /// Largest encodable value (inclusive). `u64::MAX` when unbounded.
    fn max_value(&self) -> u64 {
        u64::MAX
    }
}

/// Unary code: `value` ones followed by a zero. `O(value)` bits; useful only
/// as a worst-case baseline in T11.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Unary;

impl Codec for Unary {
    fn encode(&self, value: u64, out: &mut BitString) {
        for _ in 0..value {
            out.push(true);
        }
        out.push(false);
    }

    fn decode(&self, reader: &mut BitReader<'_>) -> Option<u64> {
        let mut v = 0u64;
        loop {
            match reader.read_bit()? {
                true => v += 1,
                false => return Some(v),
            }
        }
    }

    fn encoded_len(&self, value: u64) -> usize {
        value as usize + 1
    }
}

/// Fixed-width binary code. Not self-delimiting across different widths —
/// both sides must agree on the width, as in the body of the Theorem 2.1
/// port list (width `⌈log n⌉`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedWidth {
    width: u32,
}

impl FixedWidth {
    /// A code writing exactly `width` bits per value.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64`.
    pub fn new(width: u32) -> Self {
        assert!(width <= 64, "width {width} exceeds u64");
        FixedWidth { width }
    }

    /// The configured width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }
}

impl Codec for FixedWidth {
    fn encode(&self, value: u64, out: &mut BitString) {
        out.push_uint(value, self.width);
    }

    fn decode(&self, reader: &mut BitReader<'_>) -> Option<u64> {
        reader.read_uint(self.width)
    }

    fn encoded_len(&self, _value: u64) -> usize {
        self.width as usize
    }

    fn max_value(&self) -> u64 {
        if self.width == 64 {
            u64::MAX
        } else if self.width == 0 {
            0
        } else {
            (1u64 << self.width) - 1
        }
    }
}

/// Elias gamma code for values `≥ 0` (we encode `value + 1` internally, so 0
/// is representable). `2⌊log2(v+1)⌋ + 1` bits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EliasGamma;

impl Codec for EliasGamma {
    fn encode(&self, value: u64, out: &mut BitString) {
        assert!(value < u64::MAX, "EliasGamma encodes value+1 internally");
        let v = value + 1;
        let n = 63 - v.leading_zeros(); // ⌊log2 v⌋
        for _ in 0..n {
            out.push(false);
        }
        // v has n+1 significant bits; emit them MSB-first so the leading 1
        // terminates the zero run.
        for i in (0..=n).rev() {
            out.push((v >> i) & 1 == 1);
        }
    }

    fn decode(&self, reader: &mut BitReader<'_>) -> Option<u64> {
        let mut n = 0u32;
        while !reader.read_bit()? {
            n += 1;
            if n > 63 {
                return None;
            }
        }
        let mut v = 1u64;
        for _ in 0..n {
            v = (v << 1) | reader.read_bit()? as u64;
        }
        Some(v - 1)
    }

    fn encoded_len(&self, value: u64) -> usize {
        let v = value + 1;
        let n = (63 - v.leading_zeros()) as usize;
        2 * n + 1
    }

    fn max_value(&self) -> u64 {
        u64::MAX - 1
    }
}

/// Elias delta code (gamma-coded length header then the mantissa);
/// asymptotically `log v + 2 log log v` bits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EliasDelta;

impl Codec for EliasDelta {
    fn encode(&self, value: u64, out: &mut BitString) {
        assert!(value < u64::MAX, "EliasDelta encodes value+1 internally");
        let v = value + 1;
        let n = 63 - v.leading_zeros(); // ⌊log2 v⌋
        EliasGamma.encode(n as u64, out);
        for i in (0..n).rev() {
            out.push((v >> i) & 1 == 1);
        }
    }

    fn decode(&self, reader: &mut BitReader<'_>) -> Option<u64> {
        let n = EliasGamma.decode(reader)?;
        if n > 63 {
            return None;
        }
        let mut v = 1u64;
        for _ in 0..n {
            v = (v << 1) | reader.read_bit()? as u64;
        }
        Some(v - 1)
    }

    fn encoded_len(&self, value: u64) -> usize {
        let v = value + 1;
        let n = (63 - v.leading_zeros()) as u64;
        EliasGamma.encoded_len(n) + n as usize
    }

    fn max_value(&self) -> u64 {
        u64::MAX - 1
    }
}

/// The Theorem 3.1 weight code: each bit `b_i` of the binary representation
/// of `w` is emitted as the pair `(more, b_i)` where `more = 1` for every bit
/// except the last. Exactly `2·#2(w)` bits.
///
/// ```
/// use oraclesize_bits::{BitString, bits_to_represent};
/// use oraclesize_bits::codec::{Codec, ContinuationPairs};
///
/// for w in [0u64, 1, 2, 5, 100, 12345] {
///     assert_eq!(
///         ContinuationPairs.encoded_len(w),
///         2 * bits_to_represent(w) as usize,
///     );
/// }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ContinuationPairs;

impl Codec for ContinuationPairs {
    fn encode(&self, value: u64, out: &mut BitString) {
        let n = bits_to_represent(value);
        // MSB-first so leading bit conventions match the paper's "standard
        // binary representation".
        for i in (0..n).rev() {
            out.push(i != 0); // continuation flag
            out.push((value >> i) & 1 == 1);
        }
    }

    fn decode(&self, reader: &mut BitReader<'_>) -> Option<u64> {
        let mut v = 0u64;
        let mut read = 0u32;
        loop {
            let more = reader.read_bit()?;
            let bit = reader.read_bit()?;
            read += 1;
            if read > 64 {
                return None;
            }
            v = (v << 1) | bit as u64;
            if !more {
                return Some(v);
            }
        }
    }

    fn encoded_len(&self, value: u64) -> usize {
        2 * bits_to_represent(value) as usize
    }
}

/// Encodes the Theorem 2.1 header: for `value` with binary representation
/// `b1 … br` (MSB first), emits `b1 b1 b2 b2 … br br 1 0`.
///
/// The doubled bits can never produce the pattern `10` at a pair boundary,
/// so the terminator is unambiguous. Length `2·#2(value) + 2`.
pub fn encode_doubled_header(value: u64, out: &mut BitString) {
    let n = bits_to_represent(value);
    for i in (0..n).rev() {
        let b = (value >> i) & 1 == 1;
        out.push(b);
        out.push(b);
    }
    out.push(true);
    out.push(false);
}

/// Decodes a header produced by [`encode_doubled_header`].
///
/// Returns `None` on truncation or if a pair is neither doubled nor the
/// `10` terminator.
pub fn decode_doubled_header(reader: &mut BitReader<'_>) -> Option<u64> {
    let mut v = 0u64;
    let mut pairs = 0u32;
    loop {
        let a = reader.read_bit()?;
        let b = reader.read_bit()?;
        match (a, b) {
            (true, false) => return Some(v),
            (x, y) if x == y => {
                pairs += 1;
                if pairs > 64 {
                    return None;
                }
                v = (v << 1) | x as u64;
            }
            _ => return None, // "01" is malformed
        }
    }
}

/// Bit length of [`encode_doubled_header`] for `value`.
pub fn doubled_header_len(value: u64) -> usize {
    2 * bits_to_represent(value) as usize + 2
}

/// The codecs compared by experiment T11, with display names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnyCodec {
    /// [`ContinuationPairs`] — the paper's Theorem 3.1 code.
    ContinuationPairs,
    /// [`EliasGamma`].
    EliasGamma,
    /// [`EliasDelta`].
    EliasDelta,
    /// [`Unary`].
    Unary,
}

impl AnyCodec {
    /// All variants, for sweeps.
    pub const ALL: [AnyCodec; 4] = [
        AnyCodec::ContinuationPairs,
        AnyCodec::EliasGamma,
        AnyCodec::EliasDelta,
        AnyCodec::Unary,
    ];

    /// Human-readable name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            AnyCodec::ContinuationPairs => "continuation-pairs",
            AnyCodec::EliasGamma => "elias-gamma",
            AnyCodec::EliasDelta => "elias-delta",
            AnyCodec::Unary => "unary",
        }
    }
}

impl Codec for AnyCodec {
    fn encode(&self, value: u64, out: &mut BitString) {
        match self {
            AnyCodec::ContinuationPairs => ContinuationPairs.encode(value, out),
            AnyCodec::EliasGamma => EliasGamma.encode(value, out),
            AnyCodec::EliasDelta => EliasDelta.encode(value, out),
            AnyCodec::Unary => Unary.encode(value, out),
        }
    }

    fn decode(&self, reader: &mut BitReader<'_>) -> Option<u64> {
        match self {
            AnyCodec::ContinuationPairs => ContinuationPairs.decode(reader),
            AnyCodec::EliasGamma => EliasGamma.decode(reader),
            AnyCodec::EliasDelta => EliasDelta.decode(reader),
            AnyCodec::Unary => Unary.decode(reader),
        }
    }

    fn encoded_len(&self, value: u64) -> usize {
        match self {
            AnyCodec::ContinuationPairs => ContinuationPairs.encoded_len(value),
            AnyCodec::EliasGamma => EliasGamma.encoded_len(value),
            AnyCodec::EliasDelta => EliasDelta.encoded_len(value),
            AnyCodec::Unary => Unary.encoded_len(value),
        }
    }

    fn max_value(&self) -> u64 {
        match self {
            AnyCodec::ContinuationPairs => u64::MAX,
            AnyCodec::EliasGamma | AnyCodec::EliasDelta => u64::MAX - 1,
            AnyCodec::Unary => u64::MAX,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<C: Codec>(codec: &C, values: &[u64]) {
        let mut s = BitString::new();
        for &v in values {
            codec.encode(v, &mut s);
        }
        let mut r = s.reader();
        for &v in values {
            assert_eq!(codec.decode(&mut r), Some(v), "value {v}");
        }
        assert!(r.is_empty(), "leftover bits");
    }

    const SAMPLES: &[u64] = &[
        0,
        1,
        2,
        3,
        4,
        7,
        8,
        15,
        16,
        100,
        255,
        256,
        1000,
        65535,
        1 << 40,
    ];

    #[test]
    fn unary_roundtrip() {
        roundtrip(&Unary, &[0, 1, 2, 3, 10, 50]);
    }

    #[test]
    fn unary_len() {
        assert_eq!(Unary.encoded_len(0), 1);
        assert_eq!(Unary.encoded_len(7), 8);
    }

    #[test]
    fn fixed_width_roundtrip() {
        roundtrip(&FixedWidth::new(17), &[0, 1, 2, (1 << 17) - 1]);
    }

    #[test]
    fn fixed_width_max_value() {
        assert_eq!(FixedWidth::new(0).max_value(), 0);
        assert_eq!(FixedWidth::new(8).max_value(), 255);
        assert_eq!(FixedWidth::new(64).max_value(), u64::MAX);
    }

    #[test]
    fn gamma_roundtrip() {
        roundtrip(&EliasGamma, SAMPLES);
    }

    #[test]
    fn gamma_len_formula() {
        for &v in SAMPLES {
            let n = 63 - (v + 1).leading_zeros() as usize;
            assert_eq!(EliasGamma.encoded_len(v), 2 * n + 1, "v={v}");
            let mut s = BitString::new();
            EliasGamma.encode(v, &mut s);
            assert_eq!(s.len(), EliasGamma.encoded_len(v), "v={v}");
        }
    }

    #[test]
    fn delta_roundtrip() {
        roundtrip(&EliasDelta, SAMPLES);
    }

    #[test]
    fn delta_shorter_than_gamma_for_large_values() {
        assert!(EliasDelta.encoded_len(1 << 40) < EliasGamma.encoded_len(1 << 40));
    }

    #[test]
    fn continuation_pairs_roundtrip() {
        roundtrip(&ContinuationPairs, SAMPLES);
    }

    #[test]
    fn continuation_pairs_exact_len() {
        for &v in SAMPLES {
            let mut s = BitString::new();
            ContinuationPairs.encode(v, &mut s);
            assert_eq!(s.len(), 2 * bits_to_represent(v) as usize, "v={v}");
        }
    }

    #[test]
    fn doubled_header_roundtrip() {
        let mut s = BitString::new();
        for &v in SAMPLES {
            encode_doubled_header(v, &mut s);
        }
        let mut r = s.reader();
        for &v in SAMPLES {
            assert_eq!(decode_doubled_header(&mut r), Some(v), "v={v}");
        }
        assert!(r.is_empty());
    }

    #[test]
    fn doubled_header_len_matches() {
        for &v in SAMPLES {
            let mut s = BitString::new();
            encode_doubled_header(v, &mut s);
            assert_eq!(s.len(), doubled_header_len(v), "v={v}");
        }
    }

    #[test]
    fn doubled_header_rejects_malformed() {
        // "01" at a pair boundary is illegal.
        let s = BitString::parse("01").unwrap();
        assert_eq!(decode_doubled_header(&mut s.reader()), None);
        // Truncated mid-pair.
        let s = BitString::parse("1").unwrap();
        assert_eq!(decode_doubled_header(&mut s.reader()), None);
        // Doubled bits but no terminator.
        let s = BitString::parse("1100").unwrap();
        assert_eq!(decode_doubled_header(&mut s.reader()), None);
    }

    #[test]
    fn decoders_reject_truncation() {
        for &v in SAMPLES {
            for codec in AnyCodec::ALL {
                if v > codec.max_value() || (codec == AnyCodec::Unary && v > 1000) {
                    continue;
                }
                let mut s = BitString::new();
                codec.encode(v, &mut s);
                // Drop the last bit and re-decode: must not succeed with v.
                let truncated: BitString = s.iter().take(s.len() - 1).collect();
                let decoded = codec.decode(&mut truncated.reader());
                assert_ne!(decoded, Some(v), "codec {} value {v}", codec.name());
            }
        }
    }

    #[test]
    fn any_codec_dispatch_matches_direct() {
        for &v in &[0u64, 5, 1000] {
            assert_eq!(
                AnyCodec::EliasGamma.encoded_len(v),
                EliasGamma.encoded_len(v)
            );
            assert_eq!(
                AnyCodec::ContinuationPairs.encoded_len(v),
                ContinuationPairs.encoded_len(v)
            );
        }
    }

    #[test]
    fn prefix_freedom_pairwise_small_domain() {
        // For each codec, no encoding is a prefix of another encoding within
        // a small domain — a direct check of self-delimitation.
        for codec in [
            AnyCodec::ContinuationPairs,
            AnyCodec::EliasGamma,
            AnyCodec::EliasDelta,
            AnyCodec::Unary,
        ] {
            let encs: Vec<BitString> = (0..64u64)
                .map(|v| {
                    let mut s = BitString::new();
                    codec.encode(v, &mut s);
                    s
                })
                .collect();
            for (i, a) in encs.iter().enumerate() {
                for (j, b) in encs.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    let is_prefix =
                        a.len() <= b.len() && a.iter().zip(b.iter()).all(|(x, y)| x == y);
                    assert!(
                        !is_prefix,
                        "{}: enc({i}) is a prefix of enc({j})",
                        codec.name()
                    );
                }
            }
        }
    }
}
