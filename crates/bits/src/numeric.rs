//! Small numeric helpers shared by the codecs and the counting arguments.

/// The paper's `#2(w)`: the number of bits of the standard binary
/// representation of `w`, with `#2(w) = 1` for `w ∈ {0, 1}`.
///
/// This is the quantity the *contribution* of an edge is measured in
/// (Theorem 3.1): `contribution(e) = #2(w(e))`.
///
/// ```
/// use oraclesize_bits::bits_to_represent;
/// assert_eq!(bits_to_represent(0), 1);
/// assert_eq!(bits_to_represent(1), 1);
/// assert_eq!(bits_to_represent(2), 2);
/// assert_eq!(bits_to_represent(255), 8);
/// assert_eq!(bits_to_represent(256), 9);
/// ```
pub fn bits_to_represent(w: u64) -> u32 {
    if w <= 1 {
        1
    } else {
        64 - w.leading_zeros()
    }
}

/// `⌈log2(n)⌉` for `n ≥ 1`; the fixed width used by the Theorem 2.1 port
/// encoding ("using exactly `⌈log n⌉` bits for each of them").
///
/// # Panics
///
/// Panics if `n == 0` (the logarithm is undefined).
///
/// ```
/// use oraclesize_bits::ceil_log2;
/// assert_eq!(ceil_log2(1), 0);
/// assert_eq!(ceil_log2(2), 1);
/// assert_eq!(ceil_log2(3), 2);
/// assert_eq!(ceil_log2(1024), 10);
/// assert_eq!(ceil_log2(1025), 11);
/// ```
pub fn ceil_log2(n: u64) -> u32 {
    assert!(n > 0, "ceil_log2 undefined for 0");
    64 - (n - 1).leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_to_represent_matches_definition() {
        for w in 0..2000u64 {
            let expected = if w <= 1 {
                1
            } else {
                (w as f64).log2().floor() as u32 + 1
            };
            assert_eq!(bits_to_represent(w), expected, "w={w}");
        }
    }

    #[test]
    fn bits_to_represent_extremes() {
        assert_eq!(bits_to_represent(u64::MAX), 64);
        assert_eq!(bits_to_represent(1 << 63), 64);
        assert_eq!(bits_to_represent((1 << 63) - 1), 63);
    }

    #[test]
    fn ceil_log2_powers_and_neighbors() {
        for k in 0..63u32 {
            let p = 1u64 << k;
            assert_eq!(ceil_log2(p), k);
            if p > 2 {
                assert_eq!(ceil_log2(p - 1), k);
                assert_eq!(ceil_log2(p + 1), k + 1);
            }
        }
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn ceil_log2_zero_panics() {
        ceil_log2(0);
    }
}
