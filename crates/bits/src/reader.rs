//! Decoding cursor over a [`BitString`].

use crate::bitstring::BitString;

/// A forward-only cursor used to decode advice strings and message payloads.
///
/// All `read_*` methods return `None` when the string is exhausted (or does
/// not hold enough bits), leaving the cursor at the end of the available
/// prefix; decoders treat that as "malformed advice".
///
/// # Examples
///
/// ```
/// use oraclesize_bits::BitString;
///
/// let mut s = BitString::new();
/// s.push_uint(13, 4);
/// let mut r = s.reader();
/// assert_eq!(r.read_uint(4), Some(13));
/// assert!(r.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    s: &'a BitString,
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader positioned at the first bit of `s`.
    pub fn new(s: &'a BitString) -> Self {
        BitReader { s, pos: 0 }
    }

    /// Number of bits not yet consumed.
    pub fn remaining(&self) -> usize {
        self.s.len() - self.pos
    }

    /// Returns `true` if every bit has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Current cursor position (bits consumed so far).
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Reads one bit.
    pub fn read_bit(&mut self) -> Option<bool> {
        let b = self.s.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    /// Reads `width` bits as an unsigned integer, least significant bit
    /// first (the inverse of [`BitString::push_uint`]).
    ///
    /// Returns `None` without consuming anything if fewer than `width` bits
    /// remain.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64`.
    pub fn read_uint(&mut self, width: u32) -> Option<u64> {
        assert!(width <= 64, "width {width} exceeds u64");
        if self.remaining() < width as usize {
            return None;
        }
        let mut v = 0u64;
        for i in 0..width {
            if self.s.get(self.pos + i as usize).expect("length checked") {
                v |= 1 << i;
            }
        }
        self.pos += width as usize;
        Some(v)
    }

    /// Peeks at the next bit without consuming it.
    pub fn peek_bit(&self) -> Option<bool> {
        self.s.get(self.pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_bits_in_order() {
        let s = BitString::parse("101").unwrap();
        let mut r = s.reader();
        assert_eq!(r.read_bit(), Some(true));
        assert_eq!(r.read_bit(), Some(false));
        assert_eq!(r.read_bit(), Some(true));
        assert_eq!(r.read_bit(), None);
    }

    #[test]
    fn read_uint_roundtrips_push_uint() {
        let mut s = BitString::new();
        s.push_uint(0xdead_beef, 32);
        s.push_uint(5, 3);
        let mut r = s.reader();
        assert_eq!(r.read_uint(32), Some(0xdead_beef));
        assert_eq!(r.read_uint(3), Some(5));
        assert!(r.is_empty());
    }

    #[test]
    fn read_uint_insufficient_bits_consumes_nothing() {
        let s = BitString::parse("10").unwrap();
        let mut r = s.reader();
        assert_eq!(r.read_uint(3), None);
        assert_eq!(r.remaining(), 2);
        assert_eq!(r.read_uint(2), Some(0b01));
    }

    #[test]
    fn peek_does_not_advance() {
        let s = BitString::parse("01").unwrap();
        let mut r = s.reader();
        assert_eq!(r.peek_bit(), Some(false));
        assert_eq!(r.position(), 0);
        assert_eq!(r.read_bit(), Some(false));
        assert_eq!(r.peek_bit(), Some(true));
    }

    #[test]
    fn zero_width_read_succeeds_on_empty() {
        let s = BitString::new();
        let mut r = s.reader();
        assert_eq!(r.read_uint(0), Some(0));
        assert!(r.is_empty());
    }
}
