//! Contiguous storage for collections of bit strings.

use crate::bitstring::BitString;

/// Many bit strings packed into one byte buffer with per-entry ranges.
///
/// A million-node oracle assigns a million advice strings; held as
/// `Vec<BitString>` that is a million separate heap allocations. `BitArena`
/// concatenates the packed bytes of every string into one contiguous buffer
/// (entries byte-aligned so extraction is a `memcpy`, not a bit shift) and
/// remembers each entry's `(offset, bit length)` span. The engine stores
/// per-node advice this way (DESIGN.md §11).
///
/// # Examples
///
/// ```
/// use oraclesize_bits::{BitArena, BitString};
///
/// let advice = [
///     BitString::parse("1011").unwrap(),
///     BitString::new(),
///     BitString::parse("000111").unwrap(),
/// ];
/// let arena = BitArena::from_strings(&advice);
/// assert_eq!(arena.len(), 3);
/// assert_eq!(arena.get(0), advice[0]);
/// assert_eq!(arena.bit_len(1), 0);
/// assert_eq!(arena.total_bits(), 10);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitArena {
    bytes: Vec<u8>,
    /// `(byte offset, bit length)` per entry; entries are byte-aligned.
    spans: Vec<(usize, usize)>,
}

impl BitArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty arena pre-sized for `entries` strings totalling `bits` bits.
    pub fn with_capacity(entries: usize, bits: usize) -> Self {
        BitArena {
            bytes: Vec::with_capacity(bits.div_ceil(8) + entries),
            spans: Vec::with_capacity(entries),
        }
    }

    /// Packs a slice of strings, preserving order.
    pub fn from_strings(items: &[BitString]) -> Self {
        let total: usize = items.iter().map(|s| s.len()).sum();
        let mut arena = Self::with_capacity(items.len(), total);
        for s in items {
            arena.push(s);
        }
        arena
    }

    /// Appends one string's bits, returning its index.
    pub fn push(&mut self, s: &BitString) -> usize {
        let idx = self.spans.len();
        // lint:allow(A001): arena append is construction-time bulk growth; the
        // delivery path only reaches here via conservative name-matching on `push`
        self.spans.push((self.bytes.len(), s.len()));
        self.bytes.extend_from_slice(s.as_packed_bytes());
        idx
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Returns `true` if the arena holds no entries.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Bit length of entry `i` — reading a length never touches the byte
    /// buffer.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bit_len(&self, i: usize) -> usize {
        self.spans[i].1
    }

    /// Sum of all entry bit lengths — the paper's oracle-size measure over
    /// the stored collection.
    pub fn total_bits(&self) -> usize {
        self.spans.iter().map(|&(_, bits)| bits).sum()
    }

    /// Materializes entry `i` as an owned [`BitString`] (one `memcpy` from
    /// the contiguous buffer).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn get(&self, i: usize) -> BitString {
        let (start, bits) = self.spans[i];
        let end = start + bits.div_ceil(8);
        // lint:allow(A001): decoding copies out of the arena by design; delivery
        // never calls this — reachability is conservative name-matching on `get`
        BitString::from_packed(self.bytes[start..end].to_vec(), bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> Vec<BitString> {
        vec![
            BitString::parse("10110010").unwrap(),
            BitString::new(),
            BitString::parse("0101").unwrap(),
            BitString::parse("111000111000101").unwrap(),
        ]
    }

    #[test]
    fn round_trips_every_entry() {
        let items = fixture();
        let arena = BitArena::from_strings(&items);
        assert_eq!(arena.len(), items.len());
        for (i, s) in items.iter().enumerate() {
            assert_eq!(&arena.get(i), s, "entry {i}");
            assert_eq!(arena.bit_len(i), s.len());
        }
    }

    #[test]
    fn total_bits_is_oracle_size() {
        let items = fixture();
        let arena = BitArena::from_strings(&items);
        let expect: usize = items.iter().map(|s| s.len()).sum();
        assert_eq!(arena.total_bits(), expect);
    }

    #[test]
    fn empty_arena() {
        let arena = BitArena::new();
        assert!(arena.is_empty());
        assert_eq!(arena.total_bits(), 0);
    }

    #[test]
    fn push_returns_sequential_indices() {
        let mut arena = BitArena::new();
        assert_eq!(arena.push(&BitString::parse("1").unwrap()), 0);
        assert_eq!(arena.push(&BitString::new()), 1);
        assert_eq!(arena.push(&BitString::parse("01").unwrap()), 2);
        assert_eq!(arena.get(2), BitString::parse("01").unwrap());
    }

    #[test]
    #[should_panic]
    fn get_out_of_range_panics() {
        BitArena::new().get(0);
    }
}
