//! Packed, growable bit sequences with bit-exact length accounting.

use std::fmt;

use crate::reader::BitReader;

/// A growable sequence of bits, packed into bytes.
///
/// `BitString` is the concrete representation of the advice strings
/// `f(v) ∈ {0,1}*` assigned by an oracle, and of message payloads. Its
/// [`len`](BitString::len) is the exact bit count that enters the oracle-size
/// accounting of the paper.
///
/// Bits are indexed from 0; within the packed representation, bit `i` lives
/// in byte `i / 8` at position `i % 8` (LSB-first). The packing is an
/// implementation detail — all observable behaviour is defined in terms of
/// the logical bit sequence.
///
/// # Examples
///
/// ```
/// use oraclesize_bits::BitString;
///
/// let mut s = BitString::new();
/// s.push(true);
/// s.push_uint(0b101, 3);
/// assert_eq!(s.len(), 4);
/// assert_eq!(s.get(0), Some(true));
/// assert_eq!(s.to_string(), "1101"); // LSB of 0b101 first
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct BitString {
    bytes: Vec<u8>,
    len: usize,
}

impl BitString {
    /// Creates an empty bit string.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty bit string with capacity for at least `bits` bits.
    pub fn with_capacity(bits: usize) -> Self {
        BitString {
            bytes: Vec::with_capacity(bits.div_ceil(8)),
            len: 0,
        }
    }

    /// Builds a bit string from booleans, first element first.
    ///
    /// ```
    /// use oraclesize_bits::BitString;
    /// let s = BitString::from_bits([true, false, true]);
    /// assert_eq!(s.to_string(), "101");
    /// ```
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let mut s = BitString::new();
        for b in bits {
            // lint:allow(A001): delivery reaches this only to rebuild a payload a
            // bit-flip fault corrupted — a per-fault cost counted in payload_flips
            s.push(b);
        }
        s
    }

    /// Parses a string of `'0'` and `'1'` characters.
    ///
    /// Returns `None` if any other character is present.
    ///
    /// ```
    /// use oraclesize_bits::BitString;
    /// let s = BitString::parse("0110").unwrap();
    /// assert_eq!(s.len(), 4);
    /// assert!(BitString::parse("01x0").is_none());
    /// ```
    pub fn parse(text: &str) -> Option<Self> {
        let mut s = BitString::with_capacity(text.len());
        for c in text.chars() {
            match c {
                '0' => s.push(false),
                '1' => s.push(true),
                _ => return None,
            }
        }
        Some(s)
    }

    /// Number of bits in the string. This is the quantity summed by the
    /// oracle-size measure.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the string contains no bits.
    ///
    /// The empty advice string is meaningful in the paper (leaves of the
    /// wakeup spanning tree receive it), so emptiness is a first-class query.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a single bit.
    pub fn push(&mut self, bit: bool) {
        let byte = self.len / 8;
        if byte == self.bytes.len() {
            // lint:allow(A001): amortised byte growth while *staging* a payload;
            // on the delivery path only faulted-copy rebuilds come through here
            self.bytes.push(0);
        }
        if bit {
            self.bytes[byte] |= 1 << (self.len % 8);
        }
        self.len += 1;
    }

    /// Appends the `width` low-order bits of `value`, least significant
    /// first.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64`, or if `value` does not fit in `width` bits
    /// (that would silently drop information from an advice string).
    pub fn push_uint(&mut self, value: u64, width: u32) {
        assert!(width <= 64, "width {width} exceeds u64");
        if width < 64 {
            assert!(
                value < (1u64 << width),
                "value {value} does not fit in {width} bits"
            );
        }
        for i in 0..width {
            self.push((value >> i) & 1 == 1);
        }
    }

    /// Returns bit `index`, or `None` past the end.
    pub fn get(&self, index: usize) -> Option<bool> {
        if index >= self.len {
            return None;
        }
        Some((self.bytes[index / 8] >> (index % 8)) & 1 == 1)
    }

    /// Appends all bits of `other`.
    ///
    /// ```
    /// use oraclesize_bits::BitString;
    /// let mut a = BitString::parse("10").unwrap();
    /// a.extend_from(&BitString::parse("011").unwrap());
    /// assert_eq!(a.to_string(), "10011");
    /// ```
    pub fn extend_from(&mut self, other: &BitString) {
        for b in other.iter() {
            self.push(b);
        }
    }

    /// Iterates over the bits, first bit first.
    pub fn iter(&self) -> Iter<'_> {
        Iter { s: self, pos: 0 }
    }

    /// Creates a decoding cursor positioned at the first bit.
    pub fn reader(&self) -> BitReader<'_> {
        BitReader::new(self)
    }

    /// Total heap bytes used by the packed representation (diagnostics only;
    /// not the oracle-size measure).
    pub fn packed_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// The packed LSB-first byte buffer: bit `i` lives in byte `i / 8` at
    /// position `i % 8`. Bits at positions `≥ len` are zero.
    pub fn as_packed_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Builds a bit string from a packed LSB-first byte buffer and an exact
    /// bit count — the inverse of [`as_packed_bytes`](Self::as_packed_bytes)
    /// plus [`len`](Self::len). Surplus trailing bytes and bits beyond `len`
    /// are discarded, preserving the invariant that unused tail bits are
    /// zero (equality and hashing depend on it).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` holds fewer than `len` bits.
    pub fn from_packed(mut bytes: Vec<u8>, len: usize) -> Self {
        assert!(
            len <= bytes.len() * 8,
            "{len} bits do not fit in {} bytes",
            bytes.len()
        );
        bytes.truncate(len.div_ceil(8));
        if !len.is_multiple_of(8) {
            if let Some(last) = bytes.last_mut() {
                *last &= (1u8 << (len % 8)) - 1;
            }
        }
        BitString { bytes, len }
    }
}

impl fmt::Debug for BitString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitString(\"{self}\")")
    }
}

impl fmt::Display for BitString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.iter() {
            f.write_str(if b { "1" } else { "0" })?;
        }
        Ok(())
    }
}

impl FromIterator<bool> for BitString {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        BitString::from_bits(iter)
    }
}

impl Extend<bool> for BitString {
    fn extend<I: IntoIterator<Item = bool>>(&mut self, iter: I) {
        for b in iter {
            self.push(b);
        }
    }
}

/// Iterator over the bits of a [`BitString`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    s: &'a BitString,
    pos: usize,
}

impl Iterator for Iter<'_> {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        let b = self.s.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.s.len() - self.pos;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Iter<'_> {}

impl<'a> IntoIterator for &'a BitString {
    type Item = bool;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_empty() {
        let s = BitString::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.get(0), None);
        assert_eq!(s.to_string(), "");
    }

    #[test]
    fn push_and_get_across_byte_boundary() {
        let mut s = BitString::new();
        for i in 0..20 {
            s.push(i % 3 == 0);
        }
        assert_eq!(s.len(), 20);
        for i in 0..20 {
            assert_eq!(s.get(i), Some(i % 3 == 0), "bit {i}");
        }
        assert_eq!(s.get(20), None);
    }

    #[test]
    fn push_uint_lsb_first() {
        let mut s = BitString::new();
        s.push_uint(0b0110, 4);
        assert_eq!(s.to_string(), "0110".chars().rev().collect::<String>());
    }

    #[test]
    fn push_uint_zero_width_is_noop() {
        let mut s = BitString::new();
        s.push_uint(0, 0);
        assert!(s.is_empty());
    }

    #[test]
    fn push_uint_full_width() {
        let mut s = BitString::new();
        s.push_uint(u64::MAX, 64);
        assert_eq!(s.len(), 64);
        assert!(s.iter().all(|b| b));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn push_uint_rejects_overflow() {
        let mut s = BitString::new();
        s.push_uint(4, 2);
    }

    #[test]
    fn parse_roundtrip() {
        let text = "0011010111000101";
        let s = BitString::parse(text).unwrap();
        assert_eq!(s.to_string(), text);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(BitString::parse("012").is_none());
    }

    #[test]
    fn extend_from_concatenates() {
        let mut a = BitString::parse("101").unwrap();
        let b = BitString::parse("0011").unwrap();
        a.extend_from(&b);
        assert_eq!(a.to_string(), "1010011");
        assert_eq!(a.len(), 7);
    }

    #[test]
    fn equality_ignores_capacity() {
        let mut a = BitString::with_capacity(1000);
        a.push(true);
        let b = BitString::from_bits([true]);
        assert_eq!(a, b);
    }

    #[test]
    fn from_iterator_and_extend_trait() {
        let s: BitString = [true, false].into_iter().collect();
        assert_eq!(s.to_string(), "10");
        let mut s2 = s.clone();
        s2.extend([true]);
        assert_eq!(s2.to_string(), "101");
    }

    #[test]
    fn iter_exact_size() {
        let s = BitString::parse("10101").unwrap();
        let it = s.iter();
        assert_eq!(it.len(), 5);
        assert_eq!(s.iter().count(), 5);
    }

    #[test]
    fn debug_is_nonempty_for_empty_string() {
        assert_eq!(format!("{:?}", BitString::new()), "BitString(\"\")");
    }
}
