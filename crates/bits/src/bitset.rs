//! Fixed-size packed boolean arrays for struct-of-arrays engine state.

/// A fixed-length array of booleans packed 64 to a block.
///
/// Where [`BitString`](crate::BitString) is a *growable sequence* whose
/// length enters the oracle-size accounting, `BitSet` is flat per-node
/// *state*: the engine's informed/crashed flags for a million nodes fit in
/// two cache-friendly block arrays instead of two `Vec<bool>`s, and
/// population counts ([`count_ones`](BitSet::count_ones)) are one `popcnt`
/// per block rather than a byte-wise scan.
///
/// # Examples
///
/// ```
/// use oraclesize_bits::BitSet;
///
/// let mut s = BitSet::new(100);
/// s.set(3, true);
/// s.set(99, true);
/// assert!(s.get(3));
/// assert!(!s.get(4));
/// assert_eq!(s.count_ones(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    blocks: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// A set of `len` bits, all `false`.
    pub fn new(len: usize) -> Self {
        BitSet {
            blocks: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of bits (fixed at construction).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the set holds no bits at all.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ len`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range (len {})", self.len);
        (self.blocks[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ len`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit {i} out of range (len {})", self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.blocks[i / 64] |= mask;
        } else {
            self.blocks[i / 64] &= !mask;
        }
    }

    /// Number of `true` bits.
    pub fn count_ones(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Unpacks into one `bool` per bit — the boundary representation for
    /// APIs that predate the packed layout.
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.get(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_all_false() {
        let s = BitSet::new(130);
        assert_eq!(s.len(), 130);
        assert!(!s.is_empty());
        assert_eq!(s.count_ones(), 0);
        assert!((0..130).all(|i| !s.get(i)));
    }

    #[test]
    fn set_and_clear_across_blocks() {
        let mut s = BitSet::new(130);
        for i in [0, 63, 64, 65, 129] {
            s.set(i, true);
            assert!(s.get(i), "bit {i}");
        }
        assert_eq!(s.count_ones(), 5);
        s.set(64, false);
        assert!(!s.get(64));
        assert_eq!(s.count_ones(), 4);
    }

    #[test]
    fn to_bools_round_trip() {
        let mut s = BitSet::new(9);
        s.set(1, true);
        s.set(8, true);
        assert_eq!(
            s.to_bools(),
            vec![false, true, false, false, false, false, false, false, true]
        );
    }

    #[test]
    fn zero_length_set() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.count_ones(), 0);
        assert_eq!(s.to_bools(), Vec::<bool>::new());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_past_end_panics() {
        BitSet::new(10).get(10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_past_end_panics() {
        BitSet::new(10).set(10, true);
    }
}
