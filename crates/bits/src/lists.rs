//! The two per-node advice payload formats used by the paper's oracles.
//!
//! * [`encode_port_list`] / [`decode_port_list`] — Theorem 2.1. A node that
//!   is not a leaf of the wakeup spanning tree receives the port numbers of
//!   the edges toward its children, each written with exactly `⌈log n⌉`
//!   bits, prefixed by the self-delimiting *doubled header* carrying
//!   `⌈log n⌉` itself. Total: `c·⌈log n⌉ + O(log log n)` bits for `c`
//!   children; a leaf receives the **empty** string.
//! * [`encode_weight_list`] / [`decode_weight_list`] — Theorem 3.1. A node
//!   receives the multiset of tree-edge weights it is responsible for, each
//!   in the continuation-pair code: exactly `2·Σ #2(w_i)` bits.

use crate::bitstring::BitString;
use crate::codec::{
    decode_doubled_header, doubled_header_len, encode_doubled_header, Codec, ContinuationPairs,
    FixedWidth,
};
use crate::numeric::{bits_to_represent, ceil_log2};

/// Encodes the Theorem 2.1 advice for a node with children reached through
/// `ports`, in a network with at most `n` nodes.
///
/// The empty list encodes to the empty string (a leaf's advice), matching
/// the paper's size accounting exactly.
///
/// # Panics
///
/// Panics if `n == 0`, or if some port is `≥ n` (ports are `< n` in any
/// `n`-node network, so larger values indicate a bug in the caller).
///
/// # Examples
///
/// ```
/// use oraclesize_bits::lists::{encode_port_list, decode_port_list};
///
/// let advice = encode_port_list(&[3, 0, 7], 16);
/// assert_eq!(decode_port_list(&advice), Some(vec![3, 0, 7]));
/// assert!(encode_port_list(&[], 16).is_empty());
/// ```
pub fn encode_port_list(ports: &[u64], n: u64) -> BitString {
    assert!(n > 0, "network must have at least one node");
    let mut out = BitString::new();
    if ports.is_empty() {
        return out;
    }
    let width = ceil_log2(n).max(1);
    encode_doubled_header(width as u64, &mut out);
    let fixed = FixedWidth::new(width);
    for &p in ports {
        assert!(p < n, "port {p} out of range for n={n}");
        fixed.encode(p, &mut out);
    }
    out
}

/// Decodes advice produced by [`encode_port_list`].
///
/// The whole string is consumed; `None` is returned if the header is
/// malformed or the body length is not a multiple of the declared width.
pub fn decode_port_list(advice: &BitString) -> Option<Vec<u64>> {
    if advice.is_empty() {
        return Some(Vec::new());
    }
    let mut r = advice.reader();
    let width = decode_doubled_header(&mut r)?;
    if width == 0 || width > 64 {
        return None;
    }
    let width = width as u32;
    if !r.remaining().is_multiple_of(width as usize) || r.remaining() == 0 {
        return None;
    }
    let count = r.remaining() / width as usize;
    let fixed = FixedWidth::new(width);
    let mut ports = Vec::with_capacity(count);
    for _ in 0..count {
        ports.push(fixed.decode(&mut r)?);
    }
    Some(ports)
}

/// Bit length of [`encode_port_list`] without materializing it:
/// `0` for no children, else `c·⌈log n⌉ + 2·#2(⌈log n⌉) + 2`.
pub fn port_list_len(num_ports: usize, n: u64) -> usize {
    if num_ports == 0 {
        return 0;
    }
    let width = ceil_log2(n).max(1);
    num_ports * width as usize + doubled_header_len(width as u64)
}

/// Encodes the Theorem 3.1 advice: a list of edge weights, each
/// self-delimited in exactly `2·#2(w)` bits.
///
/// The empty list encodes to the empty string.
///
/// # Examples
///
/// ```
/// use oraclesize_bits::lists::{encode_weight_list, decode_weight_list};
///
/// let advice = encode_weight_list(&[0, 5, 1, 300]);
/// assert_eq!(decode_weight_list(&advice), Some(vec![0, 5, 1, 300]));
/// ```
pub fn encode_weight_list(weights: &[u64]) -> BitString {
    let mut out = BitString::new();
    for &w in weights {
        ContinuationPairs.encode(w, &mut out);
    }
    out
}

/// Decodes advice produced by [`encode_weight_list`], consuming the whole
/// string. Returns `None` on malformed input.
pub fn decode_weight_list(advice: &BitString) -> Option<Vec<u64>> {
    let mut r = advice.reader();
    let mut weights = Vec::new();
    while !r.is_empty() {
        weights.push(ContinuationPairs.decode(&mut r)?);
    }
    Some(weights)
}

/// Bit length of [`encode_weight_list`]: `2·Σ #2(w_i)` — the paper's exact
/// accounting in the proof of Theorem 3.1.
pub fn weight_list_len(weights: &[u64]) -> usize {
    weights
        .iter()
        .map(|&w| 2 * bits_to_represent(w) as usize)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_list_roundtrip_various() {
        let cases: &[(&[u64], u64)] = &[
            (&[], 10),
            (&[0], 2),
            (&[1], 2),
            (&[0, 1, 2, 3], 5),
            (&[9, 9, 9], 10),
            (&[1023], 1024),
            (&[0, 500, 999], 1000),
        ];
        for (ports, n) in cases {
            let enc = encode_port_list(ports, *n);
            assert_eq!(
                decode_port_list(&enc).as_deref(),
                Some(*ports),
                "ports {ports:?} n={n}"
            );
            assert_eq!(enc.len(), port_list_len(ports.len(), *n));
        }
    }

    #[test]
    fn port_list_empty_is_empty_string() {
        assert!(encode_port_list(&[], 1000).is_empty());
        assert_eq!(port_list_len(0, 1000), 0);
    }

    #[test]
    fn port_list_len_is_paper_bound() {
        // c·⌈log n⌉ + O(log log n): check the exact constant form.
        for n in [2u64, 3, 16, 17, 1000, 4096] {
            for c in [1usize, 2, 5, 40] {
                let width = ceil_log2(n).max(1) as usize;
                let header = 2 * bits_to_represent(width as u64) as usize + 2;
                assert_eq!(port_list_len(c, n), c * width + header);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn port_list_rejects_out_of_range_port() {
        encode_port_list(&[5], 5);
    }

    #[test]
    fn decode_port_list_rejects_bad_body_length() {
        // Build header for width 4 then append 6 bits (not a multiple of 4).
        let mut s = BitString::new();
        encode_doubled_header(4, &mut s);
        s.push_uint(0b101010, 6);
        assert_eq!(decode_port_list(&s), None);
    }

    #[test]
    fn decode_port_list_rejects_header_only() {
        let mut s = BitString::new();
        encode_doubled_header(4, &mut s);
        assert_eq!(decode_port_list(&s), None);
    }

    #[test]
    fn weight_list_roundtrip() {
        let cases: &[&[u64]] = &[&[], &[0], &[1], &[0, 0, 0], &[5, 1000, 2, 0], &[u64::MAX]];
        for weights in cases {
            let enc = encode_weight_list(weights);
            assert_eq!(decode_weight_list(&enc).as_deref(), Some(*weights));
            assert_eq!(enc.len(), weight_list_len(weights));
        }
    }

    #[test]
    fn weight_list_len_is_two_sigma_sharp2() {
        let ws = [0u64, 1, 2, 3, 7, 8, 255, 256];
        let expected: usize = ws.iter().map(|&w| 2 * bits_to_represent(w) as usize).sum();
        assert_eq!(weight_list_len(&ws), expected);
        assert_eq!(encode_weight_list(&ws).len(), expected);
    }

    #[test]
    fn weight_list_decode_rejects_truncation() {
        let enc = encode_weight_list(&[5, 9]);
        let truncated: BitString = enc.iter().take(enc.len() - 1).collect();
        assert_eq!(decode_weight_list(&truncated), None);
    }
}
