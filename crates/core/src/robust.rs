//! Self-healing variants of the paper's schemes: graceful degradation
//! under advice corruption and message loss.
//!
//! The upper-bound schemes are brittle by design — [`TreeWakeup`] trusts
//! its advice blindly, so a single corrupted string strands the whole
//! subtree behind it, and no scheme re-sends a lost message. This module
//! adds the two robust counterparts the robustness experiments measure:
//!
//! * [`RobustWakeupOracle`] + [`RobustTreeWakeup`] — the Theorem 2.1
//!   advice extended with a per-node checksum. A node whose advice fails
//!   validation (bad checksum, undecodable port list, port `≥ deg(v)`, or
//!   a duplicate port) falls back to *neighbor flooding*: on wakeup it
//!   sends to every port except the one that woke it. Flooding is a
//!   superset of the node's true child ports, so every spanning-tree edge
//!   is still traversed — on a connected graph the wakeup completes at
//!   **any** advice-corruption rate (unless a corrupted string collides
//!   with its own checksum, probability `2^-12` per node). The price is
//!   messages: `n − 1` with clean advice, degrading toward flooding cost
//!   as corruption grows. Advice that validates but encodes *wrong* ports
//!   (e.g. two nodes' strings swapped) is indistinguishable from correct
//!   advice locally; that failure mode remains, and the experiments
//!   exhibit it.
//! * [`RetryBroadcast`] — the tree scheme made loss-tolerant: every wakeup
//!   message is acknowledged with a 1-bit reply, and at quiescence a node
//!   re-sends to children that never acknowledged, up to
//!   [`retries`](RetryBroadcast::retries) times (bounded by the engine's
//!   [`max_quiescence_polls`](oraclesize_sim::SimConfig::max_quiescence_polls)).
//!   Fault-free cost is exactly `2(n − 1)` messages; under message-drop
//!   probability `p` each tree edge fails only if all `retries + 1`
//!   attempts are lost.

use std::collections::BTreeSet;

use oraclesize_bits::lists::decode_port_list;
use oraclesize_bits::BitString;
use oraclesize_graph::{NodeId, Port, PortGraph};
use oraclesize_sim::protocol::{Message, NodeBehavior, NodeView, Outgoing, Protocol};

use crate::oracle::Oracle;
use crate::wakeup::SpanningTreeOracle;

/// Checksum width appended to each advice string by [`RobustWakeupOracle`].
pub const CHECKSUM_BITS: usize = 12;

/// Checksum of an advice payload: the bits are folded into a 64-bit word,
/// mixed (splitmix64 finalizer), and truncated to [`CHECKSUM_BITS`] bits.
pub fn advice_checksum(payload: &BitString) -> u64 {
    let mut acc: u64 = 0x9E37_79B9_7F4A_7C15 ^ payload.len() as u64;
    for bit in payload.iter() {
        acc = acc
            .rotate_left(1)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9)
            .wrapping_add(bit as u64 + 1);
    }
    let mut z = acc;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) & ((1 << CHECKSUM_BITS) - 1)
}

/// [`SpanningTreeOracle`] advice with a [`CHECKSUM_BITS`]-bit checksum
/// appended to every node's string, so [`RobustTreeWakeup`] can detect
/// corruption locally. Size overhead: exactly `CHECKSUM_BITS · n` bits —
/// still `O(n log n)` in total.
#[derive(Debug, Clone, Copy, Default)]
pub struct RobustWakeupOracle {
    /// The underlying Theorem 2.1 oracle.
    pub inner: SpanningTreeOracle,
}

impl Oracle for RobustWakeupOracle {
    fn advise(&self, g: &PortGraph, source: NodeId) -> Vec<BitString> {
        self.inner
            .advise(g, source)
            .into_iter()
            .map(|payload| {
                let check = advice_checksum(&payload);
                let mut out = payload;
                out.push_uint(check, CHECKSUM_BITS as u32);
                out
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "robust-spanning-tree"
    }
}

/// Splits checksummed advice and validates it; `None` means "treat this
/// advice as corrupted and fall back to flooding".
fn validate_advice(advice: &BitString, degree: usize) -> Option<Vec<Port>> {
    if advice.len() < CHECKSUM_BITS {
        return None;
    }
    let body_len = advice.len() - CHECKSUM_BITS;
    let payload = BitString::from_bits(advice.iter().take(body_len));
    // Checksum bits were written with `push_uint`: least significant first.
    let mut declared: u64 = 0;
    for (i, bit) in advice.iter().skip(body_len).enumerate() {
        declared |= (bit as u64) << i;
    }
    if advice_checksum(&payload) != declared {
        return None;
    }
    let ports = decode_port_list(&payload)?;
    let mut seen = BTreeSet::new();
    let mut out = Vec::with_capacity(ports.len());
    for p in ports {
        if p as usize >= degree || !seen.insert(p) {
            return None;
        }
        out.push(p as usize);
    }
    Some(out)
}

/// The self-healing Theorem 2.1 wakeup scheme; pair it with
/// [`RobustWakeupOracle`].
///
/// With validated advice it behaves exactly like [`TreeWakeup`] (one
/// message per child port, `n − 1` in total). On validation failure the
/// node floods to every port except the one that woke it — see the module
/// docs for why this keeps the wakeup complete on connected graphs.
///
/// [`TreeWakeup`]: crate::wakeup::TreeWakeup
#[derive(Debug, Clone, Copy, Default)]
pub struct RobustTreeWakeup;

struct RobustWakeupState {
    /// `Some(child ports)` when the advice validated, `None` to flood.
    plan: Option<Vec<Port>>,
    degree: usize,
    is_source: bool,
    fired: bool,
}

impl RobustWakeupState {
    fn fire(&mut self, arrival: Option<Port>) -> Vec<Outgoing> {
        if self.fired {
            return Vec::new();
        }
        self.fired = true;
        match &self.plan {
            Some(children) => children
                .iter()
                .map(|&p| Outgoing::new(p, Message::empty()))
                .collect(),
            None => (0..self.degree)
                .filter(|&p| Some(p) != arrival)
                .map(|p| Outgoing::new(p, Message::empty()))
                .collect(),
        }
    }
}

impl NodeBehavior for RobustWakeupState {
    fn on_start(&mut self) -> Vec<Outgoing> {
        if self.is_source {
            self.fire(None)
        } else {
            Vec::new()
        }
    }

    fn on_receive(&mut self, port: Port, message: Message) -> Vec<Outgoing> {
        if message.carries_source {
            self.fire(Some(port))
        } else {
            Vec::new()
        }
    }
}

impl Protocol for RobustTreeWakeup {
    fn create(&self, view: NodeView) -> Box<dyn NodeBehavior> {
        Box::new(RobustWakeupState {
            plan: validate_advice(&view.advice, view.degree),
            degree: view.degree,
            is_source: view.is_source,
            fired: false,
        })
    }

    fn name(&self) -> &'static str {
        "robust-tree-wakeup"
    }
}

/// The tree broadcast made loss-tolerant with 1-bit acknowledgements and
/// bounded re-sends; pair it with [`SpanningTreeOracle`].
///
/// Framing: a wakeup message has an empty payload; an acknowledgement is
/// the 1-bit payload `1`. A node acknowledges *every* wakeup it receives
/// (duplicates included — its earlier ack may have been the lost message)
/// but forwards to its children only once. At quiescence, a node re-sends
/// the wakeup to every child port that has not acknowledged, up to
/// `retries` times.
#[derive(Debug, Clone, Copy)]
pub struct RetryBroadcast {
    /// Re-sends allowed per node. Effective only when the engine's
    /// [`max_quiescence_polls`](oraclesize_sim::SimConfig::max_quiescence_polls)
    /// is at least as large.
    pub retries: u32,
}

impl Default for RetryBroadcast {
    fn default() -> Self {
        RetryBroadcast { retries: 3 }
    }
}

fn ack_message() -> Message {
    let mut payload = BitString::new();
    payload.push(true);
    Message::new(payload)
}

struct RetryState {
    child_ports: Vec<Port>,
    acked: BTreeSet<Port>,
    is_source: bool,
    woken: bool,
    retries_left: u32,
}

impl RetryState {
    fn wake_children(&self) -> Vec<Outgoing> {
        self.child_ports
            .iter()
            .filter(|p| !self.acked.contains(p))
            .map(|&p| Outgoing::new(p, Message::empty()))
            .collect()
    }
}

impl NodeBehavior for RetryState {
    fn on_start(&mut self) -> Vec<Outgoing> {
        if self.is_source {
            self.woken = true;
            self.wake_children()
        } else {
            Vec::new()
        }
    }

    fn on_receive(&mut self, port: Port, message: Message) -> Vec<Outgoing> {
        if !message.carries_source {
            return Vec::new();
        }
        if message.payload.is_empty() {
            // A wakeup (possibly a retry — our ack may have been lost).
            let mut sends = vec![Outgoing::new(port, ack_message())];
            if !self.woken {
                self.woken = true;
                sends.extend(self.wake_children());
            }
            sends
        } else {
            // An acknowledgement from the child behind `port`.
            self.acked.insert(port);
            Vec::new()
        }
    }

    fn on_quiescence(&mut self) -> Vec<Outgoing> {
        if !self.woken || self.retries_left == 0 {
            return Vec::new();
        }
        let unacked = self.wake_children();
        if unacked.is_empty() {
            return Vec::new();
        }
        self.retries_left -= 1;
        unacked
    }
}

impl Protocol for RetryBroadcast {
    fn create(&self, view: NodeView) -> Box<dyn NodeBehavior> {
        let child_ports: Vec<Port> = decode_port_list(&view.advice)
            .unwrap_or_default()
            .into_iter()
            .filter(|&p| (p as usize) < view.degree)
            .map(|p| p as usize)
            .collect();
        Box::new(RetryState {
            child_ports,
            acked: BTreeSet::new(),
            is_source: view.is_source,
            woken: false,
            retries_left: self.retries,
        })
    }

    fn name(&self) -> &'static str {
        "retry-broadcast"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::execute;
    use crate::wakeup::TreeWakeup;
    use oraclesize_graph::families::{self, Family};
    use oraclesize_sim::{AdviceAdversary, Completion, FaultPlan, SchedulerKind, SimConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn wakeup_with_faults(plan: FaultPlan) -> SimConfig {
        SimConfig::wakeup().with_faults(plan)
    }

    #[test]
    fn checksum_is_stable_and_sensitive() {
        let a = BitString::parse("1011001").unwrap();
        assert_eq!(advice_checksum(&a), advice_checksum(&a));
        assert!(advice_checksum(&a) < (1 << CHECKSUM_BITS));
        let b = BitString::parse("1011000").unwrap();
        assert_ne!(advice_checksum(&a), advice_checksum(&b));
        let c = BitString::parse("10110010").unwrap();
        assert_ne!(advice_checksum(&a), advice_checksum(&c));
    }

    #[test]
    fn validation_rejects_each_failure_mode() {
        // Too short for a checksum.
        assert!(validate_advice(&BitString::parse("101").unwrap(), 4).is_none());
        // Valid encoding of ports [0, 2] for a degree-4 node.
        let payload = oraclesize_bits::lists::encode_port_list(&[0, 2], 4);
        let mut good = payload.clone();
        good.push_uint(advice_checksum(&payload), CHECKSUM_BITS as u32);
        assert_eq!(validate_advice(&good, 4), Some(vec![0, 2]));
        // Same string, one payload bit flipped: checksum catches it.
        let flipped =
            BitString::from_bits(
                good.iter()
                    .enumerate()
                    .map(|(i, b)| if i == 1 { !b } else { b }),
            );
        assert!(validate_advice(&flipped, 4).is_none());
        // Port out of range for the node's actual degree.
        assert!(validate_advice(&good, 2).is_none());
        // Duplicate ports.
        let dup_payload = oraclesize_bits::lists::encode_port_list(&[1, 1], 4);
        let mut dup = dup_payload.clone();
        dup.push_uint(advice_checksum(&dup_payload), CHECKSUM_BITS as u32);
        assert!(validate_advice(&dup, 4).is_none());
    }

    #[test]
    fn clean_advice_costs_exactly_n_minus_1() {
        let mut rng = StdRng::seed_from_u64(8);
        for fam in Family::ALL {
            let g = fam.build(36, &mut rng);
            let n = g.num_nodes();
            let run = execute(
                &g,
                0,
                &RobustWakeupOracle::default(),
                &RobustTreeWakeup,
                &SimConfig::wakeup(),
            )
            .unwrap();
            assert!(run.outcome.all_informed(), "{}", fam.name());
            assert_eq!(
                run.outcome.metrics.messages,
                (n - 1) as u64,
                "{}",
                fam.name()
            );
            assert_eq!(run.outcome.classify(), Completion::Completed);
        }
    }

    #[test]
    fn total_garbage_still_wakes_everyone() {
        // 100% advice corruption: every node's advice is replaced with
        // random bits, every node floods, and the wakeup still completes.
        let mut rng = StdRng::seed_from_u64(15);
        for (i, fam) in Family::ALL.iter().enumerate() {
            let g = fam.build(30, &mut rng);
            let plan = FaultPlan::advice_only(
                100 + i as u64,
                AdviceAdversary::Garbage {
                    prob: 1.0,
                    bits: 40,
                },
            );
            let run = execute(
                &g,
                0,
                &RobustWakeupOracle::default(),
                &RobustTreeWakeup,
                &wakeup_with_faults(plan),
            )
            .unwrap();
            assert!(run.outcome.all_informed(), "{}", fam.name());
            assert_eq!(run.outcome.classify(), Completion::Completed);
            assert!(
                run.outcome.metrics.messages >= (g.num_nodes() - 1) as u64,
                "{}",
                fam.name()
            );
        }
    }

    #[test]
    fn plain_tree_wakeup_degrades_under_the_same_garbage() {
        // The contrast that motivates the robust scheme: on a path, where
        // every internal node is an articulation point, TreeWakeup with
        // fully garbaged advice strands nodes, RobustTreeWakeup does not.
        let g = families::path(12);
        let garbage = |seed| {
            FaultPlan::advice_only(
                seed,
                AdviceAdversary::Garbage {
                    prob: 1.0,
                    bits: 40,
                },
            )
        };
        let brittle = execute(
            &g,
            0,
            &SpanningTreeOracle::default(),
            &TreeWakeup,
            &wakeup_with_faults(garbage(5)),
        )
        .unwrap();
        assert!(matches!(
            brittle.outcome.classify(),
            Completion::Degraded { .. }
        ));
        let robust = execute(
            &g,
            0,
            &RobustWakeupOracle::default(),
            &RobustTreeWakeup,
            &wakeup_with_faults(garbage(5)),
        )
        .unwrap();
        assert_eq!(robust.outcome.classify(), Completion::Completed);
    }

    #[test]
    fn bit_flip_corruption_is_detected_and_healed() {
        let mut rng = StdRng::seed_from_u64(31);
        let g = families::random_connected(25, 0.25, &mut rng);
        for seed in 0..5 {
            let plan = FaultPlan::advice_only(seed, AdviceAdversary::FlipBits { prob: 0.3 });
            let run = execute(
                &g,
                0,
                &RobustWakeupOracle::default(),
                &RobustTreeWakeup,
                &wakeup_with_faults(plan),
            )
            .unwrap();
            assert!(run.outcome.all_informed(), "seed {seed}");
        }
    }

    #[test]
    fn robust_wakeup_works_under_every_scheduler() {
        let g = families::complete_rotational(20);
        let plan = FaultPlan::advice_only(
            2,
            AdviceAdversary::Garbage {
                prob: 0.5,
                bits: 30,
            },
        );
        for kind in SchedulerKind::sweep(41) {
            let cfg = SimConfig::wakeup()
                .with_scheduler(kind)
                .with_faults(plan.clone());
            let run = execute(
                &g,
                3,
                &RobustWakeupOracle::default(),
                &RobustTreeWakeup,
                &cfg,
            )
            .unwrap();
            assert!(run.outcome.all_informed(), "{}", kind.name());
        }
    }

    #[test]
    fn oracle_overhead_is_exactly_checksum_bits_per_node() {
        let g = families::binary_tree(31);
        let plain = crate::oracle::advice_size(&SpanningTreeOracle::default().advise(&g, 0));
        let robust = crate::oracle::advice_size(&RobustWakeupOracle::default().advise(&g, 0));
        assert_eq!(robust, plain + (CHECKSUM_BITS * g.num_nodes()) as u64);
    }

    #[test]
    fn retry_broadcast_clean_costs_two_per_edge() {
        let mut rng = StdRng::seed_from_u64(12);
        for fam in Family::ALL {
            let g = fam.build(24, &mut rng);
            let n = g.num_nodes() as u64;
            let run = execute(
                &g,
                0,
                &SpanningTreeOracle::default(),
                &RetryBroadcast::default(),
                &SimConfig::default(),
            )
            .unwrap();
            assert!(run.outcome.all_informed(), "{}", fam.name());
            assert_eq!(run.outcome.metrics.messages, 2 * (n - 1), "{}", fam.name());
            assert_eq!(run.outcome.metrics.max_message_bits, 1);
        }
    }

    #[test]
    fn retry_broadcast_recovers_lost_messages() {
        // 25% drop rate: plain TreeWakeup (no retries) strands nodes on
        // most seeds; RetryBroadcast completes on all of them.
        let g = families::binary_tree(31);
        let mut brittle_failures = 0;
        for seed in 0..8 {
            let plan = FaultPlan::message_faults(seed, 0.25, 0.0, 0.0);
            let brittle = execute(
                &g,
                0,
                &SpanningTreeOracle::default(),
                &TreeWakeup,
                &SimConfig::broadcast().with_faults(plan.clone()),
            )
            .unwrap();
            if brittle.outcome.classify() != Completion::Completed {
                brittle_failures += 1;
            }
            let healed = execute(
                &g,
                0,
                &SpanningTreeOracle::default(),
                &RetryBroadcast { retries: 8 },
                &SimConfig::broadcast()
                    .with_faults(plan)
                    .with_quiescence_polls(16),
            )
            .unwrap();
            assert_eq!(
                healed.outcome.classify(),
                Completion::Completed,
                "seed {seed}"
            );
        }
        assert!(brittle_failures > 0, "drop rate too low to matter");
    }

    #[test]
    fn retry_broadcast_terminates_under_total_loss() {
        // Every message dropped: nothing can complete, but the retry
        // budget must bound the run and the outcome must be degraded.
        let g = families::path(6);
        let run = execute(
            &g,
            0,
            &SpanningTreeOracle::default(),
            &RetryBroadcast { retries: 4 },
            &SimConfig::broadcast().with_faults(FaultPlan::message_faults(1, 1.0, 0.0, 0.0)),
        )
        .unwrap();
        assert_eq!(
            run.outcome.classify(),
            Completion::Degraded { uninformed: 5 }
        );
        // Source keeps re-sending to its single child: 1 initial + 4
        // retries, every one dropped.
        assert_eq!(run.outcome.metrics.messages, 5);
        assert_eq!(run.outcome.metrics.faults.dropped, 5);
    }

    #[test]
    fn retry_broadcast_survives_duplicates_and_crashes() {
        // Duplication must not double-fire subtrees, and a crashed leaf is
        // excused by classification while the rest completes.
        let g = families::binary_tree(15);
        let plan = FaultPlan {
            seed: 6,
            duplicate_prob: 0.5,
            crashes: [(14, 0)].into(),
            ..Default::default()
        };
        let run = execute(
            &g,
            0,
            &SpanningTreeOracle::default(),
            &RetryBroadcast { retries: 4 },
            &SimConfig::broadcast()
                .with_faults(plan)
                .with_quiescence_polls(8),
        )
        .unwrap();
        assert_eq!(run.outcome.classify(), Completion::Completed);
        assert!(run.outcome.crashed[14]);
        assert!(!run.outcome.informed[14]);
    }
}
