//! Leader election with an oracle — the first task the paper's
//! introduction names ("for many network problems (such as leader
//! election, …) the quality of the algorithmic solutions often depends on
//! the amount of knowledge given to nodes").
//!
//! Task: every node must output the label of one common node — the leader.
//!
//! * [`ElectionOracle`] + [`AnnouncedLeader`]: the oracle marks the leader
//!   with a 1-bit flag and equips a spanning tree of announcement ports
//!   (`O(n log n)` bits total); the leader's label then reaches everyone
//!   with exactly `n − 1` messages.
//! * [`FloodMax`]: the classic zero-advice comparator — every node floods
//!   the largest label it has seen; quiesces with the true maximum
//!   everywhere at `O(n·m)` messages.
//!
//! Both protocols emit the elected label via the engine's output channel;
//! [`verify_election`] checks agreement and validity.

use oraclesize_bits::codec::{Codec, EliasGamma};
use oraclesize_bits::BitString;
use oraclesize_graph::spanning::bfs_tree;
use oraclesize_graph::{NodeId, Port, PortGraph};
use oraclesize_sim::protocol::{Message, NodeBehavior, NodeView, Outgoing, Protocol};

use crate::oracle::Oracle;

/// Decodes an election output (the elected label).
pub fn decode_elected(s: &BitString) -> Option<u64> {
    let mut r = s.reader();
    let v = EliasGamma.decode(&mut r)?;
    if r.is_empty() {
        Some(v)
    } else {
        None
    }
}

fn encode_elected(label: u64) -> BitString {
    let mut out = BitString::new();
    EliasGamma.encode(label, &mut out);
    out
}

/// Checks that every node elected the same, existing node; when
/// `expect_max` is set, additionally that it is the maximum label (the
/// FloodMax contract).
///
/// # Errors
///
/// A human-readable description of the first defect.
pub fn verify_election(
    g: &PortGraph,
    outputs: &[Option<BitString>],
    expect_max: bool,
) -> Result<u64, String> {
    if outputs.len() != g.num_nodes() {
        return Err(format!(
            "{} outputs for {} nodes",
            outputs.len(),
            g.num_nodes()
        ));
    }
    let mut elected = None;
    for (v, out) in outputs.iter().enumerate() {
        let label = out
            .as_ref()
            .and_then(decode_elected)
            .ok_or_else(|| format!("node {v} produced no valid output"))?;
        match elected {
            None => elected = Some(label),
            Some(l) if l != label => {
                return Err(format!("node {v} elected {label}, others elected {l}"))
            }
            _ => {}
        }
    }
    let leader = elected.ok_or("empty graph")?;
    if g.node_by_label(leader).is_none() {
        return Err(format!("elected label {leader} does not exist"));
    }
    if expect_max {
        let max = (0..g.num_nodes())
            .map(|v| g.label(v))
            .max()
            .expect("nonempty");
        if leader != max {
            return Err(format!("elected {leader}, maximum label is {max}"));
        }
    }
    Ok(leader)
}

/// The election oracle: a 1-bit "you are the leader" flag plus the child
/// ports of a BFS announcement tree rooted at the leader. The leader is
/// chosen as the source node (any distinguished choice works — that
/// flexibility is exactly what the advice buys).
#[derive(Debug, Clone, Copy, Default)]
pub struct ElectionOracle;

impl Oracle for ElectionOracle {
    fn advise(&self, g: &PortGraph, source: NodeId) -> Vec<BitString> {
        let tree = bfs_tree(g, source);
        (0..g.num_nodes())
            .map(|v| {
                let mut out = BitString::new();
                out.push(v == source);
                for &(_, p) in tree.children(v) {
                    EliasGamma.encode(p as u64, &mut out);
                }
                out
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "election-tree"
    }
}

/// Announcement protocol: the flagged leader sends its label down the
/// advice tree; everyone adopts the label they receive. Exactly `n − 1`
/// messages.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnnouncedLeader;

struct AnnouncedState {
    child_ports: Vec<Port>,
    elected: Option<u64>,
    is_leader: bool,
    own: u64,
    fired: bool,
}

impl AnnouncedState {
    fn announce(&mut self, label: u64) -> Vec<Outgoing> {
        if self.fired {
            return Vec::new();
        }
        self.fired = true;
        self.elected = Some(label);
        self.child_ports
            .iter()
            .map(|&p| Outgoing::new(p, Message::new(encode_elected(label))))
            .collect()
    }
}

impl NodeBehavior for AnnouncedState {
    fn on_start(&mut self) -> Vec<Outgoing> {
        if self.is_leader {
            let own = self.own;
            self.announce(own)
        } else {
            Vec::new()
        }
    }

    fn on_receive(&mut self, _port: Port, message: Message) -> Vec<Outgoing> {
        match decode_elected(&message.payload) {
            Some(label) => self.announce(label),
            None => Vec::new(),
        }
    }

    fn output(&self) -> Option<BitString> {
        self.elected.map(encode_elected)
    }
}

impl Protocol for AnnouncedLeader {
    fn create(&self, view: NodeView) -> Box<dyn NodeBehavior> {
        let mut r = view.advice.reader();
        let is_leader = r.read_bit().unwrap_or(false);
        let mut child_ports = Vec::new();
        while !r.is_empty() {
            match EliasGamma.decode(&mut r) {
                Some(p) if (p as usize) < view.degree => child_ports.push(p as usize),
                _ => break,
            }
        }
        Box::new(AnnouncedState {
            child_ports,
            elected: None,
            is_leader,
            own: view.id.expect("election requires the labeled model"),
            fired: false,
        })
    }

    fn name(&self) -> &'static str {
        "announced-leader"
    }
}

/// The classic advice-free extrema-finding: every node starts by shouting
/// its own label; whenever a node learns a larger label it re-floods it.
/// Quiesces with the maximum everywhere at `O(n·m)` messages — the cost
/// the 1-bit-plus-tree oracle removes.
#[derive(Debug, Clone, Copy, Default)]
pub struct FloodMax;

struct FloodMaxState {
    degree: usize,
    best: u64,
}

impl FloodMaxState {
    fn shout(&self, except: Option<Port>) -> Vec<Outgoing> {
        (0..self.degree)
            .filter(|&p| Some(p) != except)
            .map(|p| Outgoing::new(p, Message::new(encode_elected(self.best))))
            .collect()
    }
}

impl NodeBehavior for FloodMaxState {
    fn on_start(&mut self) -> Vec<Outgoing> {
        self.shout(None)
    }

    fn on_receive(&mut self, port: Port, message: Message) -> Vec<Outgoing> {
        match decode_elected(&message.payload) {
            Some(label) if label > self.best => {
                self.best = label;
                self.shout(Some(port))
            }
            _ => Vec::new(),
        }
    }

    fn output(&self) -> Option<BitString> {
        Some(encode_elected(self.best))
    }
}

impl Protocol for FloodMax {
    fn create(&self, view: NodeView) -> Box<dyn NodeBehavior> {
        Box::new(FloodMaxState {
            degree: view.degree,
            best: view.id.expect("election requires the labeled model"),
        })
    }

    fn name(&self) -> &'static str {
        "flood-max"
    }
}

/// Hirschberg–Sinclair election on bidirectional **rings**: zero advice,
/// `O(n log n)` messages — the classic midpoint between FloodMax's
/// `O(n·m)` and the oracle's `n − 1`.
///
/// Phases `k = 0, 1, …`: every still-candidate node probes `2^k` hops in
/// both directions; probes die at nodes with larger labels, otherwise turn
/// around at the hop limit as replies; a candidate receiving both replies
/// enters the next phase; a probe that returns to its originator makes it
/// the leader, which then circulates an announcement.
///
/// Requires every node to have degree exactly 2 (the scheme is
/// ring-specific, as in the literature).
#[derive(Debug, Clone, Copy, Default)]
pub struct HirschbergSinclair;

/// Message kinds on the ring.
const KIND_PROBE: u64 = 0;
const KIND_REPLY: u64 = 1;
const KIND_LEADER: u64 = 2;

fn encode_ring(kind: u64, id: u64, hops: u64) -> BitString {
    let mut out = BitString::new();
    EliasGamma.encode(kind, &mut out);
    EliasGamma.encode(id, &mut out);
    EliasGamma.encode(hops, &mut out);
    out
}

fn decode_ring(s: &BitString) -> Option<(u64, u64, u64)> {
    let mut r = s.reader();
    let kind = EliasGamma.decode(&mut r)?;
    let id = EliasGamma.decode(&mut r)?;
    let hops = EliasGamma.decode(&mut r)?;
    if r.is_empty() && kind <= KIND_LEADER {
        Some((kind, id, hops))
    } else {
        None
    }
}

struct HsState {
    own: u64,
    /// Replies still awaited this phase (candidate only).
    pending_replies: u8,
    phase: u32,
    candidate: bool,
    elected: Option<u64>,
    announced: bool,
}

impl HsState {
    fn start_phase(&mut self) -> Vec<Outgoing> {
        self.pending_replies = 2;
        let hops = 1u64 << self.phase;
        vec![
            Outgoing::new(0, Message::new(encode_ring(KIND_PROBE, self.own, hops))),
            Outgoing::new(1, Message::new(encode_ring(KIND_PROBE, self.own, hops))),
        ]
    }

    fn become_leader(&mut self) -> Vec<Outgoing> {
        self.elected = Some(self.own);
        if self.announced {
            return Vec::new();
        }
        self.announced = true;
        vec![Outgoing::new(
            0,
            Message::new(encode_ring(KIND_LEADER, self.own, 0)),
        )]
    }
}

impl NodeBehavior for HsState {
    fn on_start(&mut self) -> Vec<Outgoing> {
        self.start_phase()
    }

    fn on_receive(&mut self, port: Port, message: Message) -> Vec<Outgoing> {
        let Some((kind, id, hops)) = decode_ring(&message.payload) else {
            return Vec::new();
        };
        let other = 1 - port; // rings: degree exactly 2
        match kind {
            KIND_PROBE => {
                if id == self.own {
                    // Our probe circumnavigated: we win.
                    self.become_leader()
                } else if id < self.own {
                    Vec::new() // kill the probe
                } else {
                    self.candidate = false;
                    if hops > 1 {
                        vec![Outgoing::new(
                            other,
                            Message::new(encode_ring(KIND_PROBE, id, hops - 1)),
                        )]
                    } else {
                        // Turn around.
                        vec![Outgoing::new(
                            port,
                            Message::new(encode_ring(KIND_REPLY, id, 0)),
                        )]
                    }
                }
            }
            KIND_REPLY => {
                if id != self.own {
                    vec![Outgoing::new(
                        other,
                        Message::new(encode_ring(KIND_REPLY, id, 0)),
                    )]
                } else if self.candidate {
                    self.pending_replies = self.pending_replies.saturating_sub(1);
                    if self.pending_replies == 0 {
                        self.phase += 1;
                        self.start_phase()
                    } else {
                        Vec::new()
                    }
                } else {
                    Vec::new() // stale reply to a defeated candidate
                }
            }
            KIND_LEADER => {
                if id == self.own {
                    Vec::new() // announcement completed the circle
                } else {
                    self.elected = Some(id);
                    vec![Outgoing::new(
                        other,
                        Message::new(encode_ring(KIND_LEADER, id, 0)),
                    )]
                }
            }
            _ => Vec::new(),
        }
    }

    fn output(&self) -> Option<BitString> {
        self.elected.map(encode_elected)
    }
}

impl Protocol for HirschbergSinclair {
    fn create(&self, view: NodeView) -> Box<dyn NodeBehavior> {
        assert_eq!(
            view.degree, 2,
            "Hirschberg–Sinclair runs on rings (degree 2)"
        );
        Box::new(HsState {
            own: view.id.expect("election requires the labeled model"),
            pending_replies: 0,
            phase: 0,
            candidate: true,
            elected: None,
            announced: false,
        })
    }

    fn name(&self) -> &'static str {
        "hirschberg-sinclair"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::EmptyOracle;
    use crate::runner::execute;
    use oraclesize_graph::families::{self, Family};
    use oraclesize_sim::{SchedulerKind, SimConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn announced_leader_elects_source_with_n_minus_1_messages() {
        let mut rng = StdRng::seed_from_u64(91);
        for fam in Family::ALL {
            let g = fam.build(28, &mut rng);
            let nodes = g.num_nodes();
            let run = execute(
                &g,
                3,
                &ElectionOracle,
                &AnnouncedLeader,
                &SimConfig::default(),
            )
            .unwrap();
            assert_eq!(run.outcome.metrics.messages, (nodes - 1) as u64);
            let leader = verify_election(&g, &run.outcome.outputs, false)
                .unwrap_or_else(|e| panic!("{}: {e}", fam.name()));
            assert_eq!(leader, g.label(3));
        }
    }

    #[test]
    fn floodmax_elects_the_maximum_everywhere() {
        let mut rng = StdRng::seed_from_u64(92);
        for fam in [Family::Cycle, Family::Grid, Family::RandomSparse] {
            let g = fam.build(20, &mut rng);
            let run = execute(&g, 0, &EmptyOracle, &FloodMax, &SimConfig::default()).unwrap();
            verify_election(&g, &run.outcome.outputs, true)
                .unwrap_or_else(|e| panic!("{}: {e}", fam.name()));
        }
    }

    #[test]
    fn floodmax_works_with_shuffled_labels() {
        // The maximum should win regardless of where it sits.
        let mut rng = StdRng::seed_from_u64(93);
        let mut g = families::random_connected(16, 0.25, &mut rng);
        let labels: Vec<u64> = (0..16).map(|v| (v as u64 * 7919 + 13) % 1000).collect();
        g.set_labels(labels.clone()).unwrap();
        let run = execute(&g, 0, &EmptyOracle, &FloodMax, &SimConfig::default()).unwrap();
        let leader = verify_election(&g, &run.outcome.outputs, true).unwrap();
        assert_eq!(leader, *labels.iter().max().unwrap());
    }

    #[test]
    fn floodmax_costs_far_more_than_announced_leader() {
        let g = families::complete_rotational(24);
        let flood = execute(&g, 0, &EmptyOracle, &FloodMax, &SimConfig::default()).unwrap();
        let announced = execute(
            &g,
            0,
            &ElectionOracle,
            &AnnouncedLeader,
            &SimConfig::default(),
        )
        .unwrap();
        assert!(
            flood.outcome.metrics.messages > 5 * announced.outcome.metrics.messages,
            "floodmax {} vs announced {}",
            flood.outcome.metrics.messages,
            announced.outcome.metrics.messages
        );
        assert!(announced.oracle_bits > 0 && flood.oracle_bits == 0);
    }

    #[test]
    fn announced_leader_robust_async() {
        let g = families::lollipop(30);
        for kind in SchedulerKind::sweep(17) {
            let run = execute(
                &g,
                7,
                &ElectionOracle,
                &AnnouncedLeader,
                &SimConfig::broadcast().with_scheduler(kind),
            )
            .unwrap();
            let leader = verify_election(&g, &run.outcome.outputs, false).unwrap();
            assert_eq!(leader, g.label(7), "{}", kind.name());
        }
    }

    #[test]
    fn floodmax_async_still_agrees_on_max() {
        let g = families::cycle(12);
        for kind in SchedulerKind::sweep(19) {
            let run = execute(
                &g,
                0,
                &EmptyOracle,
                &FloodMax,
                &SimConfig::broadcast().with_scheduler(kind),
            )
            .unwrap();
            verify_election(&g, &run.outcome.outputs, true)
                .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        }
    }

    #[test]
    fn hirschberg_sinclair_elects_max_on_rings() {
        for n in [3usize, 8, 16, 33, 64] {
            let g = families::cycle(n);
            let run = execute(
                &g,
                0,
                &EmptyOracle,
                &HirschbergSinclair,
                &SimConfig::default(),
            )
            .unwrap();
            let leader = verify_election(&g, &run.outcome.outputs, true)
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
            assert_eq!(leader, (n - 1) as u64);
        }
    }

    #[test]
    fn hirschberg_sinclair_message_complexity_is_n_log_n() {
        // Between linear and quadratic; the classic bound is ≤ 8n(⌈log n⌉+1)
        // plus the n announcement messages.
        for n in [16usize, 64, 256] {
            let g = families::cycle(n);
            let run = execute(
                &g,
                0,
                &EmptyOracle,
                &HirschbergSinclair,
                &SimConfig::default(),
            )
            .unwrap();
            let msgs = run.outcome.metrics.messages;
            let log = (n as f64).log2().ceil() as u64 + 1;
            assert!(msgs > n as u64, "n={n}: {msgs} suspiciously low");
            assert!(
                msgs <= 8 * n as u64 * log + n as u64,
                "n={n}: {msgs} exceeds the HS bound"
            );
        }
        // And it beats FloodMax on the same ring.
        let g = families::cycle(128);
        let hs = execute(
            &g,
            0,
            &EmptyOracle,
            &HirschbergSinclair,
            &SimConfig::default(),
        )
        .unwrap()
        .outcome
        .metrics
        .messages;
        let fm = execute(&g, 0, &EmptyOracle, &FloodMax, &SimConfig::default())
            .unwrap()
            .outcome
            .metrics
            .messages;
        assert!(hs < fm, "HS {hs} not below FloodMax {fm}");
    }

    #[test]
    fn hirschberg_sinclair_with_shuffled_labels() {
        let mut g = families::cycle(20);
        let labels: Vec<u64> = (0..20).map(|v| (v as u64 * 6367 + 5) % 10_000).collect();
        g.set_labels(labels.clone()).unwrap();
        let run = execute(
            &g,
            0,
            &EmptyOracle,
            &HirschbergSinclair,
            &SimConfig::default(),
        )
        .unwrap();
        let leader = verify_election(&g, &run.outcome.outputs, true).unwrap();
        assert_eq!(leader, *labels.iter().max().unwrap());
    }

    #[test]
    fn hirschberg_sinclair_async_all_schedulers() {
        let g = families::cycle(24);
        for kind in SchedulerKind::sweep(23) {
            let run = execute(
                &g,
                0,
                &EmptyOracle,
                &HirschbergSinclair,
                &SimConfig::broadcast().with_scheduler(kind),
            )
            .unwrap();
            verify_election(&g, &run.outcome.outputs, true)
                .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        }
    }

    #[test]
    fn election_knowledge_spectrum_on_a_ring() {
        // 0 bits general (FloodMax): Θ(n²) on rings; 0 bits ring-specific
        // (HS): Θ(n log n); Θ(n log n) bits (oracle): n − 1.
        let g = families::cycle(96);
        let fm = execute(&g, 0, &EmptyOracle, &FloodMax, &SimConfig::default()).unwrap();
        let hs = execute(
            &g,
            0,
            &EmptyOracle,
            &HirschbergSinclair,
            &SimConfig::default(),
        )
        .unwrap();
        let oracle = execute(
            &g,
            0,
            &ElectionOracle,
            &AnnouncedLeader,
            &SimConfig::default(),
        )
        .unwrap();
        assert!(fm.outcome.metrics.messages > hs.outcome.metrics.messages);
        assert!(hs.outcome.metrics.messages > oracle.outcome.metrics.messages);
        assert_eq!(oracle.outcome.metrics.messages, 95);
    }

    #[test]
    fn verify_election_rejects_disagreement_and_ghosts() {
        let g = families::path(3);
        // Disagreement.
        let outs = vec![
            Some(encode_elected(0)),
            Some(encode_elected(1)),
            Some(encode_elected(0)),
        ];
        assert!(verify_election(&g, &outs, false).is_err());
        // Nonexistent label.
        let outs = vec![Some(encode_elected(99)); 3];
        assert!(verify_election(&g, &outs, false).is_err());
        // Missing output.
        let outs = vec![Some(encode_elected(0)), None, Some(encode_elected(0))];
        assert!(verify_election(&g, &outs, false).is_err());
        // Valid but not the max.
        let outs = vec![Some(encode_elected(0)); 3];
        assert!(verify_election(&g, &outs, false).is_ok());
        assert!(verify_election(&g, &outs, true).is_err());
    }
}
