//! Theorem 3.1: broadcast with a linear number of messages from an
//! `O(n)`-bit oracle (at most `8n` bits).
//!
//! The oracle builds the light spanning tree `T0` of Claim 3.1
//! (`Σ_{e∈T0} #2(w(e)) ≤ 4n` with `w(e) = min(port_u(e), port_v(e))`) and
//! hands the binary representation of each tree edge's weight to the
//! endpoint `x` whose port realizes it (`port_x(e) = w(e)`); with the
//! `2·#2(w)` continuation-pair code the total is at most `8n` bits.
//!
//! [`SchemeB`] is the broadcast scheme of Figure 1. A node `x` keeps:
//!
//! * `K_x` — incident tree-edge ports it knows of (advice + learned),
//! * `H_x` — advice ports on which a "hello" is still owed,
//! * `S_x` — ports through which the source message `M` has transited.
//!
//! Spontaneously, every node greets its advice ports with "hello" (so the
//! *other* endpoint of each tree edge learns it); once a node holds `M` it
//! forwards `M` on every known port `M` has not yet transited. The paper's
//! `repeat` loop is level-triggered on "x has M", so a port learned *after*
//! `M` arrived still gets `M` — that re-firing is what makes the induction
//! in Claim 3.2 go through, and is reproduced here by re-flushing state on
//! every event.

use std::collections::BTreeSet;

use oraclesize_bits::lists::{decode_weight_list, encode_weight_list};
use oraclesize_bits::BitString;
use oraclesize_graph::spanning::light_tree;
use oraclesize_graph::{NodeId, Port, PortGraph};
use oraclesize_sim::protocol::{Message, NodeBehavior, NodeView, Outgoing, Protocol};

use crate::oracle::Oracle;

/// The Theorem 3.1 oracle: light-tree edge weights, each assigned to the
/// endpoint whose port equals the weight.
#[derive(Debug, Clone, Copy, Default)]
pub struct LightTreeOracle;

impl Oracle for LightTreeOracle {
    fn advise(&self, g: &PortGraph, source: NodeId) -> Vec<BitString> {
        let tree = light_tree(g, source);
        let mut per_node: Vec<Vec<u64>> = vec![Vec::new(); g.num_nodes()];
        for e in tree.edges(g) {
            let w = e.weight();
            // Assign to the endpoint whose port number equals w; ties broken
            // toward the smaller node id (arbitrary per the paper).
            let x = if e.port_u as u64 == w { e.u } else { e.v };
            per_node[x].push(w);
        }
        per_node
            .into_iter()
            .map(|ws| encode_weight_list(&ws))
            .collect()
    }

    fn name(&self) -> &'static str {
        "light-tree"
    }
}

/// The broadcast scheme `B` of Figure 1.
///
/// Messages have empty payloads; "hello" and `M` are distinguished by the
/// transport-level informedness flag (the paper appends the source message
/// to any message sent by an informed node, so an informed node's hello
/// *is* an `M`-carrier — strictly better than the paper's accounting).
#[derive(Debug, Clone, Copy, Default)]
pub struct SchemeB;

struct SchemeBState {
    /// `K_x`: known incident tree-edge ports.
    known: BTreeSet<Port>,
    /// `H_x`: advice ports still owed a hello.
    hello_pending: BTreeSet<Port>,
    /// `S_x`: ports `M` has transited (either direction).
    sent: BTreeSet<Port>,
    /// Whether this node holds the source message.
    has_m: bool,
}

impl SchemeBState {
    /// One pass of the Figure 1 `repeat` body: flush `M` on `K_x \ S_x` if
    /// informed, then flush pending hellos.
    fn flush(&mut self) -> Vec<Outgoing> {
        let mut out = Vec::new();
        if self.has_m {
            let fresh: Vec<Port> = self.known.difference(&self.sent).copied().collect();
            for p in fresh {
                out.push(Outgoing::new(p, Message::empty()));
                self.sent.insert(p);
            }
            // Hx ← Hx \ Sx: no hello needed where M already transited.
            self.hello_pending = self.hello_pending.difference(&self.sent).copied().collect();
        }
        let hellos: Vec<Port> = std::mem::take(&mut self.hello_pending)
            .into_iter()
            .collect();
        for p in hellos {
            out.push(Outgoing::new(p, Message::empty()));
        }
        out
    }
}

impl NodeBehavior for SchemeBState {
    fn on_start(&mut self) -> Vec<Outgoing> {
        self.flush()
    }

    fn on_receive(&mut self, port: Port, message: Message) -> Vec<Outgoing> {
        if message.carries_source {
            // "x receives M via port p": K_x ∪= {p}, S_x ∪= {p}.
            self.known.insert(port);
            self.sent.insert(port);
            self.has_m = true;
        } else {
            // "x receives hello via p ∉ K_x": K_x ∪= {p}.
            self.known.insert(port);
        }
        self.flush()
    }
}

impl Protocol for SchemeB {
    fn create(&self, view: NodeView) -> Box<dyn NodeBehavior> {
        // Advice decodes to the list of this node's tree-edge ports.
        // Malformed advice degrades to an adviceless node: still a legal
        // broadcast scheme, possibly incomplete.
        let ports: BTreeSet<Port> = decode_weight_list(&view.advice)
            .unwrap_or_default()
            .into_iter()
            .filter(|&w| (w as usize) < view.degree)
            .map(|w| w as usize)
            .collect();
        Box::new(SchemeBState {
            known: ports.clone(),
            hello_pending: ports,
            sent: BTreeSet::new(),
            has_m: view.is_source,
        })
    }

    fn name(&self) -> &'static str {
        "scheme-b"
    }
}

/// **Ablation**: Scheme B with the level-triggered re-flush removed — a
/// node forwards `M` only in direct response to *receiving* `M`, never
/// when a later hello enlarges `K_x`.
///
/// This is the naive reading of Figure 1, and it is **wrong**: the paper's
/// `repeat` loop re-evaluates "x has M" on every event, which is what makes
/// the Claim 3.2 induction go through. Without it, an edge whose advice
/// lives at the *far* endpoint is never used when the hello arrives after
/// `M` did — broadcast stalls. The unit tests exhibit a deterministic
/// failure on a path (where the light tree assigns every edge weight to
/// the downstream endpoint) that the faithful [`SchemeB`] handles.
#[derive(Debug, Clone, Copy, Default)]
pub struct SchemeBNoReflush;

struct NoReflushState {
    inner: SchemeBState,
}

impl NodeBehavior for NoReflushState {
    fn on_start(&mut self) -> Vec<Outgoing> {
        self.inner.flush()
    }

    fn on_receive(&mut self, port: Port, message: Message) -> Vec<Outgoing> {
        if message.carries_source {
            self.inner.known.insert(port);
            self.inner.sent.insert(port);
            self.inner.has_m = true;
            self.inner.flush()
        } else {
            // The broken step: learn the port but do NOT re-flush M.
            self.inner.known.insert(port);
            Vec::new()
        }
    }
}

impl Protocol for SchemeBNoReflush {
    fn create(&self, view: NodeView) -> Box<dyn NodeBehavior> {
        let ports: BTreeSet<Port> = decode_weight_list(&view.advice)
            .unwrap_or_default()
            .into_iter()
            .filter(|&w| (w as usize) < view.degree)
            .map(|w| w as usize)
            .collect();
        Box::new(NoReflushState {
            inner: SchemeBState {
                known: ports.clone(),
                hello_pending: ports,
                sent: BTreeSet::new(),
                has_m: view.is_source,
            },
        })
    }

    fn name(&self) -> &'static str {
        "scheme-b-no-reflush"
    }
}

/// Upper bound on the number of messages Scheme B can produce on an
/// `n`-node network: `M` crosses each of the `n−1` tree edges at most once
/// per direction, hellos at most once per edge.
pub fn scheme_b_message_bound(n: usize) -> u64 {
    3 * (n.saturating_sub(1)) as u64
}

/// The Theorem 3.1 oracle-size bound: `8n` bits.
pub fn light_tree_oracle_bound(g: &PortGraph) -> u64 {
    8 * g.num_nodes() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::advice_size;
    use crate::runner::execute;
    use oraclesize_graph::families::{self, Family};
    use oraclesize_sim::{SchedulerKind, SimConfig, TraceSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn broadcast_completes_on_all_families() {
        let mut rng = StdRng::seed_from_u64(8);
        for fam in Family::ALL {
            for n in [8usize, 40] {
                let g = fam.build(n, &mut rng);
                let run =
                    execute(&g, 0, &LightTreeOracle, &SchemeB, &SimConfig::default()).unwrap();
                assert!(run.outcome.all_informed(), "{} n={n}", fam.name());
            }
        }
    }

    #[test]
    fn oracle_size_at_most_8n() {
        let mut rng = StdRng::seed_from_u64(9);
        for fam in Family::ALL {
            for n in [8usize, 60, 150] {
                let g = fam.build(n, &mut rng);
                let advice = LightTreeOracle.advise(&g, 0);
                let size = advice_size(&advice);
                assert!(
                    size <= light_tree_oracle_bound(&g),
                    "{} n={}: {size} > 8n",
                    fam.name(),
                    g.num_nodes()
                );
            }
        }
    }

    #[test]
    fn message_complexity_is_linear() {
        let mut rng = StdRng::seed_from_u64(10);
        for fam in Family::ALL {
            let g = fam.build(50, &mut rng);
            let run = execute(&g, 0, &LightTreeOracle, &SchemeB, &SimConfig::default()).unwrap();
            assert!(
                run.outcome.metrics.messages <= scheme_b_message_bound(g.num_nodes()),
                "{}: {} messages",
                fam.name(),
                run.outcome.metrics.messages
            );
        }
    }

    #[test]
    fn works_async_anonymous_zero_payload() {
        // The §1.3 robustness claims: async schedulers, no identities,
        // bounded (here: empty) messages.
        let g = families::complete_rotational(30);
        for kind in SchedulerKind::sweep(13) {
            let cfg = SimConfig::broadcast()
                .with_scheduler(kind)
                .with_anonymous(true)
                .with_max_message_bits(0);
            let run = execute(&g, 11, &LightTreeOracle, &SchemeB, &cfg).unwrap();
            assert!(run.outcome.all_informed(), "{}", kind.name());
            assert!(run.outcome.metrics.messages <= scheme_b_message_bound(30));
        }
    }

    #[test]
    fn every_tree_edge_weight_assigned_exactly_once() {
        let mut rng = StdRng::seed_from_u64(12);
        let g = families::random_connected(40, 0.2, &mut rng);
        let advice = LightTreeOracle.advise(&g, 0);
        let total_ports: usize = advice
            .iter()
            .map(|a| decode_weight_list(a).unwrap().len())
            .sum();
        assert_eq!(total_ports, 39, "one advice entry per tree edge");
    }

    #[test]
    fn assigned_port_is_real_port_of_that_node() {
        let mut rng = StdRng::seed_from_u64(14);
        let g = families::random_connected(25, 0.3, &mut rng);
        let advice = LightTreeOracle.advise(&g, 0);
        for (v, a) in advice.iter().enumerate() {
            for w in decode_weight_list(a).unwrap() {
                assert!((w as usize) < g.degree(v), "node {v} got foreign port {w}");
            }
        }
    }

    #[test]
    fn hello_counts_bounded_by_tree_edges() {
        let g = families::complete_rotational(20);
        let cfg = SimConfig::broadcast().capture_trace(TraceSpec::Full);
        let run = execute(&g, 0, &LightTreeOracle, &SchemeB, &cfg).unwrap();
        let hellos = run
            .outcome
            .deliveries()
            .filter(|d| !d.carries_source)
            .count();
        assert!(hellos <= 19, "{hellos} pure hellos > n-1");
    }

    #[test]
    fn late_port_discovery_still_delivers_m() {
        // A path where only the far endpoint holds the advice for its edge:
        // node 0 (source) may learn its port only via hello, then must
        // still forward M — the level-triggered re-flush.
        let g = families::path(2);
        // Edge {0,1}: ports 0 at both. Give the advice to node 1 only.
        let advice = vec![BitString::new(), encode_weight_list(&[0])];
        let out =
            oraclesize_sim::engine::run(&g, 0, &advice, &SchemeB, &SimConfig::default()).unwrap();
        assert!(out.all_informed());
    }

    #[test]
    fn empty_advice_everywhere_reaches_only_source_component() {
        let g = families::path(3);
        let advice = oraclesize_sim::testkit::no_advice(3);
        let out =
            oraclesize_sim::engine::run(&g, 0, &advice, &SchemeB, &SimConfig::default()).unwrap();
        assert_eq!(out.informed_count(), 1);
        assert_eq!(out.metrics.messages, 0);
    }

    #[test]
    fn reflush_ablation_naive_scheme_b_stalls() {
        // On a path, `w(e) = min(port_u, port_v) = 0`, realized at the
        // *downstream* endpoint for every edge — so the upstream node only
        // learns each edge via a hello, which (in synchronous execution)
        // arrives after M. The naive no-reflush variant therefore stalls
        // one hop from the source, while faithful Scheme B completes.
        let g = families::path(6);
        let naive = execute(
            &g,
            0,
            &LightTreeOracle,
            &SchemeBNoReflush,
            &SimConfig::default(),
        )
        .unwrap();
        assert!(
            !naive.outcome.all_informed(),
            "naive variant unexpectedly completed ({} informed)",
            naive.outcome.informed_count()
        );
        let faithful = execute(&g, 0, &LightTreeOracle, &SchemeB, &SimConfig::default()).unwrap();
        assert!(faithful.outcome.all_informed());
    }

    #[test]
    fn reflush_ablation_is_schedule_dependent() {
        let g = families::path(8);
        for kind in SchedulerKind::sweep(29) {
            let cfg = SimConfig::broadcast().with_scheduler(kind);
            let faithful = execute(&g, 0, &LightTreeOracle, &SchemeB, &cfg).unwrap();
            assert!(faithful.outcome.all_informed(), "{}", kind.name());
        }
        // FIFO delivers M before the hellos: the naive variant stalls.
        let cfg = SimConfig::broadcast().with_scheduler(SchedulerKind::Fifo);
        let naive = execute(&g, 0, &LightTreeOracle, &SchemeBNoReflush, &cfg).unwrap();
        assert!(!naive.outcome.all_informed());
        // LIFO happens to deliver every hello before M, rescuing the naive
        // variant on this instance — correctness that depends on the
        // adversary's mood is exactly what the paper's level-triggered
        // loop removes.
        let cfg = SimConfig::broadcast().with_scheduler(SchedulerKind::Lifo);
        let rescued = execute(&g, 0, &LightTreeOracle, &SchemeBNoReflush, &cfg).unwrap();
        assert!(rescued.outcome.all_informed());
    }

    #[test]
    fn m_never_crosses_an_edge_twice_in_same_direction() {
        let g = families::complete_rotational(16);
        let cfg = SimConfig::broadcast().capture_trace(TraceSpec::Full);
        let run = execute(&g, 0, &LightTreeOracle, &SchemeB, &cfg).unwrap();
        let mut seen = std::collections::HashSet::new();
        for d in run.outcome.deliveries().filter(|d| d.carries_source) {
            assert!(
                seen.insert((d.from, d.to)),
                "M crossed {}->{} twice",
                d.from,
                d.to
            );
        }
    }
}
