//! The paper's primary contribution: **advice oracles** and the
//! dissemination schemes they enable.
//!
//! An oracle (paper §1.2) is a function `O` that, given the whole labeled
//! network `G`, assigns a binary string to every node; its *size* on `G` is
//! the total number of assigned bits. The central results reproduced here:
//!
//! * [`wakeup::SpanningTreeOracle`] + [`wakeup::TreeWakeup`] — Theorem 2.1:
//!   `O(n log n)` total advice suffices to wake a network up with exactly
//!   `n − 1` messages.
//! * [`broadcast::LightTreeOracle`] + [`broadcast::SchemeB`] — Theorem 3.1:
//!   `O(n)` total advice (at most `8n` bits) suffices to broadcast with a
//!   linear number of messages, via the Claim 3.1 light spanning tree and
//!   the "hello"-message scheme of Figure 1.
//! * [`baselines`] — what the bounds are measured against: oracle-free
//!   flooding (`Θ(m)` messages) and the full-map oracle (`n − 1` messages
//!   from a `Θ(n·m·log n)`-bit oracle).
//!
//! # Examples
//!
//! ```
//! use oraclesize_core::execute;
//! use oraclesize_core::broadcast::{LightTreeOracle, SchemeB};
//! use oraclesize_graph::families;
//! use oraclesize_sim::SimConfig;
//!
//! let g = families::complete_rotational(32);
//! let run = execute(&g, 0, &LightTreeOracle::default(), &SchemeB,
//!                   &SimConfig::default()).unwrap();
//! assert!(run.outcome.all_informed());
//! assert!(run.oracle_bits <= 8 * 32);            // Theorem 3.1 size bound
//! assert!(run.outcome.metrics.messages <= 3 * 31); // linear messages
//! ```

#![warn(missing_docs)]

pub mod baselines;
pub mod broadcast;
pub mod construction;
pub mod election;
pub mod gossip;
pub mod neighborhood;
pub mod oracle;
pub mod robust;
pub mod runner;
pub mod spanner;
pub mod wakeup;

pub use runner::{execute, OracleRun};
