//! Structure-construction tasks — the paper's other §1.2 examples:
//! "as well as, e.g., the construction of a BFS tree or a minimum spanning
//! tree."
//!
//! Construction tasks expose the extreme point of the oracle measure: with
//! advice, a node can simply be *told* its parent port, so the tree is
//! built with **zero messages** from an `O(n log Δ)`-bit oracle
//! ([`BfsTreeOracle`] + [`ZeroMessageTree`]). Without advice, the natural
//! distributed BFS ([`DistributedBfs`]) floods: `Θ(m)` messages. (The
//! zero-advice MST comparator is GHS, `O(m + n log n)` messages — a
//! protocol whose faithful implementation is a project of its own and whose
//! *cost* is exactly what the oracle eliminates; we implement the oracle
//! side plus an independent verifier.)
//!
//! A node's output is `γ(parent_port + 1)` with `0` meaning "I am the
//! root"; [`verify_bfs_tree`] and [`verify_mst`] check the collected
//! outputs against the graph independently of how they were produced.

use oraclesize_bits::codec::{Codec, EliasGamma};
use oraclesize_bits::BitString;
use oraclesize_graph::spanning::{bfs_tree, min_weight_tree};
use oraclesize_graph::traverse::bfs_distances;
use oraclesize_graph::{NodeId, Port, PortGraph};
use oraclesize_sim::protocol::{Message, NodeBehavior, NodeView, Outgoing, Protocol};

use crate::oracle::Oracle;

/// Encodes a parent-port output: `γ(0)` at the root, else `γ(port + 1)`.
pub fn encode_parent_port(parent_port: Option<Port>) -> BitString {
    let mut out = BitString::new();
    EliasGamma.encode(parent_port.map_or(0, |p| p as u64 + 1), &mut out);
    out
}

/// Decodes a parent-port output. Returns `None` on malformed input.
pub fn decode_parent_port(s: &BitString) -> Option<Option<Port>> {
    let mut r = s.reader();
    let head = EliasGamma.decode(&mut r)?;
    if !r.is_empty() {
        return None;
    }
    Some(if head == 0 {
        None
    } else {
        Some((head - 1) as Port)
    })
}

/// Extracts all parent ports from a run's outputs.
///
/// Returns `None` if any node produced no or malformed output.
pub fn collect_parent_ports(outputs: &[Option<BitString>]) -> Option<Vec<Option<Port>>> {
    outputs
        .iter()
        .map(|o| decode_parent_port(o.as_ref()?))
        .collect()
}

/// Checks that `parent_ports` describes a spanning tree of `g` rooted at
/// `root` in which every node's depth equals its BFS distance — i.e. a
/// genuine BFS tree.
///
/// # Errors
///
/// A human-readable description of the first defect.
pub fn verify_bfs_tree(
    g: &PortGraph,
    root: NodeId,
    parent_ports: &[Option<Port>],
) -> Result<(), String> {
    verify_spanning(g, root, parent_ports)?;
    let dist = bfs_distances(g, root);
    for v in 0..g.num_nodes() {
        if let Some(p) = parent_ports[v] {
            let (parent, _) = g.neighbor_via(v, p);
            let (dv, dp) = (
                dist[v].expect("connected"),
                dist[parent].expect("connected"),
            );
            if dp + 1 != dv {
                return Err(format!(
                    "node {v} at distance {dv} has parent {parent} at distance {dp}"
                ));
            }
        }
    }
    Ok(())
}

/// Checks that `parent_ports` describes a *minimum-weight* spanning tree
/// of `g` under the paper's weights `w(e) = min(port_u, port_v)`, rooted at
/// `root`.
///
/// # Errors
///
/// A human-readable description of the first defect.
pub fn verify_mst(
    g: &PortGraph,
    root: NodeId,
    parent_ports: &[Option<Port>],
) -> Result<(), String> {
    verify_spanning(g, root, parent_ports)?;
    let mut total = 0u64;
    for (v, pp) in parent_ports.iter().enumerate() {
        if let Some(p) = *pp {
            let (_, q) = g.neighbor_via(v, p);
            total += (p.min(q)) as u64;
        }
    }
    let optimal: u64 = min_weight_tree(g, root).edges(g).map(|e| e.weight()).sum();
    if total != optimal {
        return Err(format!("claimed tree weight {total}, optimal {optimal}"));
    }
    Ok(())
}

/// Spanning-tree check (no BFS/MST condition): one root, every parent
/// edge exists with an in-range port, every node reaches the root.
///
/// # Errors
///
/// A human-readable description of the first defect.
pub fn verify_spanning(
    g: &PortGraph,
    root: NodeId,
    parent_ports: &[Option<Port>],
) -> Result<(), String> {
    let n = g.num_nodes();
    if parent_ports.len() != n {
        return Err(format!("{} outputs for {n} nodes", parent_ports.len()));
    }
    if parent_ports[root].is_some() {
        return Err("root claims a parent".into());
    }
    for (v, pp) in parent_ports.iter().enumerate() {
        if v != root && pp.is_none() {
            return Err(format!("non-root node {v} claims to be the root"));
        }
        if let Some(p) = pp {
            if *p >= g.degree(v) {
                return Err(format!("node {v} claims port {p} ≥ degree {}", g.degree(v)));
            }
        }
    }
    for v in 0..n {
        let mut cur = v;
        let mut steps = 0;
        while let Some(p) = parent_ports[cur] {
            cur = g.neighbor_via(cur, p).0;
            steps += 1;
            if steps > n {
                return Err(format!("cycle reached from node {v}"));
            }
        }
        if cur != root {
            return Err(format!("node {v} does not reach the root"));
        }
    }
    Ok(())
}

/// The oracle that tells each node its parent port in the BFS tree from
/// the source: `O(n log Δ)` bits, zero messages needed.
#[derive(Debug, Clone, Copy, Default)]
pub struct BfsTreeOracle;

impl Oracle for BfsTreeOracle {
    fn advise(&self, g: &PortGraph, source: NodeId) -> Vec<BitString> {
        let tree = bfs_tree(g, source);
        (0..g.num_nodes())
            .map(|v| encode_parent_port(tree.parent(v).map(|(_, _, pc)| pc)))
            .collect()
    }

    fn name(&self) -> &'static str {
        "bfs-parent"
    }
}

/// The MST analogue of [`BfsTreeOracle`] (Kruskal under the paper's port
/// weights).
#[derive(Debug, Clone, Copy, Default)]
pub struct MstOracle;

impl Oracle for MstOracle {
    fn advise(&self, g: &PortGraph, source: NodeId) -> Vec<BitString> {
        let tree = min_weight_tree(g, source);
        (0..g.num_nodes())
            .map(|v| encode_parent_port(tree.parent(v).map(|(_, _, pc)| pc)))
            .collect()
    }

    fn name(&self) -> &'static str {
        "mst-parent"
    }
}

/// The zero-message construction scheme: output the advice verbatim. Sends
/// nothing — the whole cost of the task has moved into the oracle.
#[derive(Debug, Clone, Copy, Default)]
pub struct ZeroMessageTree;

struct ZeroMessageState {
    advice: BitString,
}

impl NodeBehavior for ZeroMessageState {
    fn on_start(&mut self) -> Vec<Outgoing> {
        Vec::new()
    }

    fn on_receive(&mut self, _port: Port, _message: Message) -> Vec<Outgoing> {
        Vec::new()
    }

    fn output(&self) -> Option<BitString> {
        Some(self.advice.clone())
    }
}

impl Protocol for ZeroMessageTree {
    fn create(&self, view: NodeView) -> Box<dyn NodeBehavior> {
        Box::new(ZeroMessageState {
            advice: view.advice,
        })
    }

    fn name(&self) -> &'static str {
        "zero-message-tree"
    }
}

/// The advice-free comparator: synchronous flooding from the source; each
/// node adopts the port of its *first* delivery as its parent. In
/// synchronous execution deliveries arrive in distance order, so the
/// result is a genuine BFS tree, at `Θ(m)` messages.
///
/// (Under an asynchronous scheduler the output is still a spanning tree
/// rooted at the source, but depths need not equal BFS distances.)
#[derive(Debug, Clone, Copy, Default)]
pub struct DistributedBfs;

struct DistributedBfsState {
    degree: usize,
    is_source: bool,
    parent: Option<Port>,
    done: bool,
}

impl NodeBehavior for DistributedBfsState {
    fn on_start(&mut self) -> Vec<Outgoing> {
        if self.is_source && !self.done {
            self.done = true;
            (0..self.degree)
                .map(|p| Outgoing::new(p, Message::empty()))
                .collect()
        } else {
            Vec::new()
        }
    }

    fn on_receive(&mut self, port: Port, message: Message) -> Vec<Outgoing> {
        if !message.carries_source || self.done || self.is_source {
            return Vec::new();
        }
        self.done = true;
        self.parent = Some(port);
        (0..self.degree)
            .filter(|&p| p != port)
            .map(|p| Outgoing::new(p, Message::empty()))
            .collect()
    }

    fn output(&self) -> Option<BitString> {
        if self.is_source {
            Some(encode_parent_port(None))
        } else {
            self.parent.map(|p| encode_parent_port(Some(p)))
        }
    }
}

impl Protocol for DistributedBfs {
    fn create(&self, view: NodeView) -> Box<dyn NodeBehavior> {
        Box::new(DistributedBfsState {
            degree: view.degree,
            is_source: view.is_source,
            parent: None,
            done: false,
        })
    }

    fn name(&self) -> &'static str {
        "distributed-bfs"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::advice_size;
    use crate::runner::execute;
    use oraclesize_graph::families::{self, Family};
    use oraclesize_sim::{SchedulerKind, SimConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parent_port_roundtrip() {
        for pp in [None, Some(0), Some(7), Some(1000)] {
            assert_eq!(decode_parent_port(&encode_parent_port(pp)), Some(pp));
        }
        assert_eq!(decode_parent_port(&BitString::new()), None);
    }

    #[test]
    fn zero_message_bfs_construction_verifies() {
        let mut rng = StdRng::seed_from_u64(81);
        for fam in Family::ALL {
            let g = fam.build(30, &mut rng);
            let run = execute(
                &g,
                0,
                &BfsTreeOracle,
                &ZeroMessageTree,
                &SimConfig::default(),
            )
            .unwrap();
            assert_eq!(run.outcome.metrics.messages, 0, "{}", fam.name());
            let ports = collect_parent_ports(&run.outcome.outputs).unwrap();
            verify_bfs_tree(&g, 0, &ports).unwrap_or_else(|e| panic!("{}: {e}", fam.name()));
        }
    }

    #[test]
    fn zero_message_mst_construction_verifies() {
        let mut rng = StdRng::seed_from_u64(82);
        for fam in [Family::Complete, Family::RandomDense, Family::Grid] {
            let g = fam.build(24, &mut rng);
            let run = execute(&g, 0, &MstOracle, &ZeroMessageTree, &SimConfig::default()).unwrap();
            assert_eq!(run.outcome.metrics.messages, 0);
            let ports = collect_parent_ports(&run.outcome.outputs).unwrap();
            verify_mst(&g, 0, &ports).unwrap_or_else(|e| panic!("{}: {e}", fam.name()));
        }
    }

    #[test]
    fn distributed_bfs_builds_true_bfs_tree_synchronously() {
        let mut rng = StdRng::seed_from_u64(83);
        for fam in Family::ALL {
            let g = fam.build(30, &mut rng);
            let run = execute(
                &g,
                0,
                &crate::oracle::EmptyOracle,
                &DistributedBfs,
                &SimConfig::default(),
            )
            .unwrap();
            // Flooding cost: deg(src) + Σ_{v≠src}(deg − 1).
            assert!(run.outcome.metrics.messages as usize >= g.num_nodes() - 1);
            let ports = collect_parent_ports(&run.outcome.outputs).unwrap();
            verify_bfs_tree(&g, 0, &ports).unwrap_or_else(|e| panic!("{}: {e}", fam.name()));
        }
    }

    #[test]
    fn distributed_bfs_async_still_spans_but_may_not_be_bfs() {
        let g = families::complete_rotational(16);
        let cfg = SimConfig::broadcast().with_scheduler(SchedulerKind::Lifo);
        let run = execute(&g, 0, &crate::oracle::EmptyOracle, &DistributedBfs, &cfg).unwrap();
        let ports = collect_parent_ports(&run.outcome.outputs).unwrap();
        // Spanning always holds…
        verify_spanning(&g, 0, &ports).unwrap();
        // …and on the complete graph any spanning tree IS a BFS tree
        // (diameter 1), so use a graph with diameter > 1 for the negative
        // half:
        let g = families::cycle(12);
        let run = execute(&g, 0, &crate::oracle::EmptyOracle, &DistributedBfs, &cfg).unwrap();
        let ports = collect_parent_ports(&run.outcome.outputs).unwrap();
        verify_spanning(&g, 0, &ports).unwrap();
    }

    #[test]
    fn oracle_vs_protocol_cost_split() {
        // The central contrast: knowledge replaces communication entirely.
        let g = families::complete_rotational(48);
        let with_oracle = execute(
            &g,
            0,
            &BfsTreeOracle,
            &ZeroMessageTree,
            &SimConfig::default(),
        )
        .unwrap();
        let without = execute(
            &g,
            0,
            &crate::oracle::EmptyOracle,
            &DistributedBfs,
            &SimConfig::default(),
        )
        .unwrap();
        assert_eq!(with_oracle.outcome.metrics.messages, 0);
        assert!(with_oracle.oracle_bits > 0);
        assert_eq!(without.oracle_bits, 0);
        assert!(without.outcome.metrics.messages as usize > g.num_edges());
    }

    #[test]
    fn verifiers_reject_corrupted_outputs() {
        let g = families::path(5);
        let tree = bfs_tree(&g, 0);
        let mut ports: Vec<Option<Port>> = (0..5)
            .map(|v| tree.parent(v).map(|(_, _, pc)| pc))
            .collect();
        verify_bfs_tree(&g, 0, &ports).unwrap();
        // Two roots.
        ports[3] = None;
        assert!(verify_bfs_tree(&g, 0, &ports).is_err());
        // Out-of-range port.
        ports[3] = Some(9);
        assert!(verify_bfs_tree(&g, 0, &ports).is_err());
        // Cycle: 1 and 2 point at each other.
        let g2 = families::cycle(4);
        let bad = vec![
            None,
            Some(g2.port_toward(1, 2).unwrap()),
            Some(g2.port_toward(2, 1).unwrap()),
            Some(g2.port_toward(3, 0).unwrap()),
        ];
        assert!(verify_bfs_tree(&g2, 0, &bad).is_err());
    }

    #[test]
    fn verify_mst_rejects_heavier_tree() {
        // On the complete rotational graph the BFS star from 0 is heavier
        // than the MST for n large enough.
        let g = families::complete_rotational(32);
        let bfs = bfs_tree(&g, 0);
        let ports: Vec<Option<Port>> = (0..32)
            .map(|v| bfs.parent(v).map(|(_, _, pc)| pc))
            .collect();
        assert!(verify_mst(&g, 0, &ports).is_err());
    }

    #[test]
    fn construction_oracle_sizes_are_n_log_delta() {
        let g = families::complete_rotational(64);
        let bits = advice_size(&BfsTreeOracle.advise(&g, 0));
        // γ(port+1) ≤ 2⌊log₂(port+1)⌋+1 ≤ 2 log n per node.
        assert!(bits <= 64 * 2 * 12);
        assert!(bits >= 63); // at least one bit per non-root
    }
}
