//! Baselines the paper's bounds are measured against.
//!
//! * **No knowledge**: [`FloodOnce`](oraclesize_sim::protocol::FloodOnce)
//!   with the [`EmptyOracle`](crate::oracle::EmptyOracle) — broadcast in
//!   `Θ(m)` messages, the cost the `O(n)`-bit oracle removes.
//! * **Total knowledge**: [`FullMapOracle`] + [`MapWakeup`] — every node
//!   receives the entire port-labeled map (`Θ(n·m·log n)` bits in total)
//!   and recomputes the same BFS tree locally; wakeup then takes `n − 1`
//!   messages. This brackets Theorem 2.1 from the other side: the paper's
//!   point is that `Θ(n log n)` bits — exponentially less than the full
//!   map — already suffice.

use oraclesize_bits::codec::{Codec, EliasGamma, FixedWidth};
use oraclesize_bits::{ceil_log2, BitString};
use oraclesize_graph::{NodeId, Port, PortGraph};
use oraclesize_sim::protocol::{Message, NodeBehavior, NodeView, Outgoing, Protocol};

use crate::oracle::Oracle;

/// A decoded full map: `adj[v][p] = (neighbor, arrival_port)`, plus the
/// source and the receiving node's own index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FullMap {
    /// Index of the node holding this advice.
    pub own_index: usize,
    /// Index of the source node.
    pub source: usize,
    /// Port-labeled adjacency of the whole network.
    pub adj: Vec<Vec<(usize, usize)>>,
}

/// Encodes the whole network plus `own`/`source` indices.
pub fn encode_full_map(g: &PortGraph, source: NodeId, own: NodeId) -> BitString {
    let n = g.num_nodes() as u64;
    let max_deg = (0..g.num_nodes()).map(|v| g.degree(v)).max().unwrap_or(0) as u64;
    let node_w = ceil_log2(n.max(2)).max(1);
    let port_w = ceil_log2(max_deg.max(2)).max(1);
    let mut out = BitString::new();
    EliasGamma.encode(own as u64, &mut out);
    EliasGamma.encode(source as u64, &mut out);
    EliasGamma.encode(n, &mut out);
    EliasGamma.encode(max_deg, &mut out);
    let node_codec = FixedWidth::new(node_w);
    let port_codec = FixedWidth::new(port_w);
    for v in 0..g.num_nodes() {
        EliasGamma.encode(g.degree(v) as u64, &mut out);
        for p in 0..g.degree(v) {
            let (u, q) = g.neighbor_via(v, p);
            node_codec.encode(u as u64, &mut out);
            port_codec.encode(q as u64, &mut out);
        }
    }
    out
}

/// Decodes a map produced by [`encode_full_map`]. Returns `None` on
/// malformed input.
pub fn decode_full_map(advice: &BitString) -> Option<FullMap> {
    let mut r = advice.reader();
    let own = EliasGamma.decode(&mut r)? as usize;
    let source = EliasGamma.decode(&mut r)? as usize;
    let n = EliasGamma.decode(&mut r)?;
    let max_deg = EliasGamma.decode(&mut r)?;
    if n == 0 || n > 1_000_000 {
        return None;
    }
    let node_codec = FixedWidth::new(ceil_log2(n.max(2)).max(1));
    let port_codec = FixedWidth::new(ceil_log2(max_deg.max(2)).max(1));
    let mut adj = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let deg = EliasGamma.decode(&mut r)? as usize;
        if deg as u64 > max_deg {
            return None;
        }
        let mut ports = Vec::with_capacity(deg);
        for _ in 0..deg {
            let u = node_codec.decode(&mut r)? as usize;
            let q = port_codec.decode(&mut r)? as usize;
            if u >= n as usize {
                return None;
            }
            ports.push((u, q));
        }
        adj.push(ports);
    }
    if own >= n as usize || source >= n as usize || !r.is_empty() {
        return None;
    }
    Some(FullMap {
        own_index: own,
        source,
        adj,
    })
}

/// The total-knowledge oracle: every node receives the full port-labeled
/// map plus its own index and the source index.
#[derive(Debug, Clone, Copy, Default)]
pub struct FullMapOracle;

impl Oracle for FullMapOracle {
    fn advise(&self, g: &PortGraph, source: NodeId) -> Vec<BitString> {
        (0..g.num_nodes())
            .map(|v| encode_full_map(g, source, v))
            .collect()
    }

    fn name(&self) -> &'static str {
        "full-map"
    }
}

/// Deterministic BFS tree over a decoded map (port order), returning each
/// node's child ports. All nodes compute the same tree, so the wakeup
/// needs no coordination.
pub fn map_bfs_child_ports(map: &FullMap) -> Vec<Vec<Port>> {
    let n = map.adj.len();
    let mut parent = vec![usize::MAX; n];
    let mut visited = vec![false; n];
    visited[map.source] = true;
    let mut queue = std::collections::VecDeque::from([map.source]);
    let mut children: Vec<Vec<Port>> = vec![Vec::new(); n];
    while let Some(v) = queue.pop_front() {
        for (p, &(u, _)) in map.adj[v].iter().enumerate() {
            if !visited[u] {
                visited[u] = true;
                parent[u] = v;
                children[v].push(p);
                queue.push_back(u);
            }
        }
    }
    children
}

/// Wakeup from the full map: identical message pattern to
/// [`TreeWakeup`](crate::wakeup::TreeWakeup) (`n − 1` messages), paid for
/// with a far larger oracle.
#[derive(Debug, Clone, Copy, Default)]
pub struct MapWakeup;

struct MapWakeupState {
    child_ports: Vec<Port>,
    is_source: bool,
    fired: bool,
}

impl NodeBehavior for MapWakeupState {
    fn on_start(&mut self) -> Vec<Outgoing> {
        if self.is_source && !self.fired {
            self.fired = true;
            self.child_ports
                .iter()
                .map(|&p| Outgoing::new(p, Message::empty()))
                .collect()
        } else {
            Vec::new()
        }
    }

    fn on_receive(&mut self, _port: Port, message: Message) -> Vec<Outgoing> {
        if message.carries_source && !self.fired {
            self.fired = true;
            self.child_ports
                .iter()
                .map(|&p| Outgoing::new(p, Message::empty()))
                .collect()
        } else {
            Vec::new()
        }
    }
}

impl Protocol for MapWakeup {
    fn create(&self, view: NodeView) -> Box<dyn NodeBehavior> {
        let child_ports = decode_full_map(&view.advice)
            .map(|map| {
                let all = map_bfs_child_ports(&map);
                all[map.own_index].clone()
            })
            .unwrap_or_default();
        Box::new(MapWakeupState {
            child_ports,
            is_source: view.is_source,
            fired: false,
        })
    }

    fn name(&self) -> &'static str {
        "map-wakeup"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::advice_size;
    use crate::runner::execute;
    use oraclesize_graph::families::{self, Family};
    use oraclesize_sim::SimConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn map_roundtrip() {
        let mut rng = StdRng::seed_from_u64(31);
        let g = families::random_connected(12, 0.3, &mut rng);
        for v in 0..12 {
            let enc = encode_full_map(&g, 3, v);
            let map = decode_full_map(&enc).unwrap();
            assert_eq!(map.own_index, v);
            assert_eq!(map.source, 3);
            assert_eq!(map.adj.len(), 12);
            for u in 0..12 {
                assert_eq!(map.adj[u].len(), g.degree(u));
                for p in 0..g.degree(u) {
                    assert_eq!(map.adj[u][p], g.neighbor_via(u, p));
                }
            }
        }
    }

    #[test]
    fn map_decode_rejects_truncation() {
        let g = families::cycle(6);
        let enc = encode_full_map(&g, 0, 1);
        let cut: BitString = enc.iter().take(enc.len() - 3).collect();
        assert!(decode_full_map(&cut).is_none());
    }

    #[test]
    fn map_wakeup_uses_n_minus_1_messages() {
        let mut rng = StdRng::seed_from_u64(32);
        for fam in Family::ALL {
            let g = fam.build(20, &mut rng);
            let run = execute(&g, 0, &FullMapOracle, &MapWakeup, &SimConfig::wakeup()).unwrap();
            assert!(run.outcome.all_informed(), "{}", fam.name());
            assert_eq!(run.outcome.metrics.messages, g.num_nodes() as u64 - 1);
        }
    }

    #[test]
    fn full_map_is_vastly_larger_than_tree_oracle() {
        let g = families::complete_rotational(24);
        let full = advice_size(&FullMapOracle.advise(&g, 0));
        let tree = advice_size(&crate::wakeup::SpanningTreeOracle::default().advise(&g, 0));
        assert!(full > 20 * tree, "full map {full} not ≫ tree oracle {tree}");
    }

    #[test]
    fn bfs_child_ports_cover_every_non_source_once() {
        let mut rng = StdRng::seed_from_u64(33);
        let g = families::random_connected(15, 0.3, &mut rng);
        let map = decode_full_map(&encode_full_map(&g, 4, 0)).unwrap();
        let children = map_bfs_child_ports(&map);
        let mut covered = [false; 15];
        covered[4] = true;
        for (v, ports) in children.iter().enumerate() {
            for &p in ports {
                let (u, _) = g.neighbor_via(v, p);
                assert!(!covered[u], "node {u} covered twice");
                covered[u] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
    }
}
