//! Convenience glue: compute advice, run the scheme, return both costs.
//!
//! [`execute`] is a thin wrapper over the workspace's one run facade,
//! [`oraclesize_sim::run`]: it invokes the oracle first and reports the
//! advice size alongside the outcome. For frozen, reusable instances (a
//! sweep re-running the same advice under many seeds), build an
//! [`oraclesize_sim::Instance`] once and call the facade directly.

use oraclesize_graph::{NodeId, PortGraph};
use oraclesize_sim::engine::{run, RunOutcome, SimConfig, SimError};
use oraclesize_sim::protocol::Protocol;

use crate::oracle::{advice_size, Oracle};

/// The two-dimensional cost of an oracle-assisted run: advice bits
/// (knowledge) and the execution outcome (messages, rounds, coverage).
#[derive(Debug, Clone)]
pub struct OracleRun {
    /// Total advice size in bits — the paper's oracle size on this network.
    pub oracle_bits: u64,
    /// The execution result.
    pub outcome: RunOutcome,
}

/// Runs `protocol` on `g` with the advice computed by `oracle`.
///
/// # Errors
///
/// Propagates any [`SimError`] from the engine (wakeup violations, size
/// limits, non-quiescence, malformed sends).
///
/// # Examples
///
/// ```
/// use oraclesize_core::{execute, wakeup::{SpanningTreeOracle, TreeWakeup}};
/// use oraclesize_graph::families;
/// use oraclesize_sim::SimConfig;
///
/// let g = families::hypercube(4);
/// let run = execute(&g, 0, &SpanningTreeOracle::default(), &TreeWakeup,
///                   &SimConfig::wakeup()).unwrap();
/// assert!(run.outcome.all_informed());
/// assert_eq!(run.outcome.metrics.messages, 15); // n − 1
/// ```
pub fn execute(
    g: &PortGraph,
    source: NodeId,
    oracle: &dyn Oracle,
    protocol: &dyn Protocol,
    config: &SimConfig,
) -> Result<OracleRun, SimError> {
    let advice = oracle.advise(g, source);
    let oracle_bits = advice_size(&advice);
    let outcome = run(g, source, &advice, protocol, config)?;
    Ok(OracleRun {
        oracle_bits,
        outcome,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::EmptyOracle;
    use oraclesize_graph::families;
    use oraclesize_sim::protocol::FloodOnce;

    #[test]
    fn execute_reports_both_costs() {
        let g = families::cycle(8);
        let run = execute(&g, 0, &EmptyOracle, &FloodOnce, &SimConfig::default()).unwrap();
        assert_eq!(run.oracle_bits, 0);
        assert!(run.outcome.all_informed());
        assert_eq!(run.outcome.metrics.messages, 2 + 7);
    }
}
