//! Spanner construction with an oracle — the conclusion's other
//! conjectured application ("we conjecture that oracles can be also used
//! to assess difficulty of … spanner construction").
//!
//! A *t-spanner* of `G` is a spanning subgraph in which every pair of
//! nodes is at distance at most `t` times its distance in `G` (for
//! unweighted graphs it suffices that every edge of `G` has a spanner
//! detour of length ≤ `t`). The oracle angle: [`SpannerOracle`] computes a
//! greedy `t`-spanner centrally and hands each node its incident spanner
//! ports, so the structure is "constructed" with **zero messages**; the
//! knowledge cost is the advice size, which *decreases* as the allowed
//! stretch grows — a quantitative knowledge/quality trade-off in the
//! spirit the conclusion proposes (experiment T19).

use std::collections::VecDeque;

use oraclesize_bits::codec::{Codec, EliasGamma};
use oraclesize_bits::BitString;
use oraclesize_graph::{EdgeRef, NodeId, Port, PortGraph};

use crate::oracle::Oracle;

/// The classic greedy spanner: scan edges (in canonical order for
/// unweighted graphs) and keep an edge iff the current spanner does not
/// already connect its endpoints within `t` hops. The result is a
/// `t`-spanner; for `t = 2k−1` it has `O(n^{1+1/k})` edges.
///
/// # Panics
///
/// Panics if `t == 0`.
pub fn greedy_spanner(g: &PortGraph, t: usize) -> Vec<EdgeRef> {
    assert!(t >= 1, "stretch must be at least 1");
    let n = g.num_nodes();
    let mut spanner_adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let mut kept = Vec::new();
    for e in g.edges() {
        if bounded_distance(&spanner_adj, e.u, e.v, t).is_none() {
            spanner_adj[e.u].push(e.v);
            spanner_adj[e.v].push(e.u);
            kept.push(e);
        }
    }
    kept
}

/// BFS distance from `a` to `b` in `adj`, cut off beyond `limit`; `None`
/// if farther (or disconnected).
fn bounded_distance(adj: &[Vec<NodeId>], a: NodeId, b: NodeId, limit: usize) -> Option<usize> {
    if a == b {
        return Some(0);
    }
    let mut dist = vec![usize::MAX; adj.len()];
    dist[a] = 0;
    let mut queue = VecDeque::from([a]);
    while let Some(v) = queue.pop_front() {
        if dist[v] >= limit {
            continue;
        }
        for &u in &adj[v] {
            if dist[u] == usize::MAX {
                dist[u] = dist[v] + 1;
                if u == b {
                    return Some(dist[u]);
                }
                queue.push_back(u);
            }
        }
    }
    None
}

/// Encodes a node's spanner ports as consecutive `γ(port)` values.
pub fn encode_port_set(ports: &[Port]) -> BitString {
    let mut out = BitString::new();
    for &p in ports {
        EliasGamma.encode(p as u64, &mut out);
    }
    out
}

/// Decodes a port set produced by [`encode_port_set`].
pub fn decode_port_set(s: &BitString) -> Option<Vec<Port>> {
    let mut r = s.reader();
    let mut ports = Vec::new();
    while !r.is_empty() {
        ports.push(EliasGamma.decode(&mut r)? as Port);
    }
    Some(ports)
}

/// The spanner oracle: every node receives its incident greedy-`t`-spanner
/// ports.
#[derive(Debug, Clone, Copy)]
pub struct SpannerOracle {
    /// Allowed stretch `t ≥ 1`.
    pub stretch: usize,
}

impl SpannerOracle {
    /// An oracle for greedy `t`-spanners.
    ///
    /// # Panics
    ///
    /// Panics if `stretch == 0`.
    pub fn new(stretch: usize) -> Self {
        assert!(stretch >= 1, "stretch must be at least 1");
        SpannerOracle { stretch }
    }
}

impl Oracle for SpannerOracle {
    fn advise(&self, g: &PortGraph, _source: NodeId) -> Vec<BitString> {
        let mut per_node: Vec<Vec<Port>> = vec![Vec::new(); g.num_nodes()];
        for e in greedy_spanner(g, self.stretch) {
            per_node[e.u].push(e.port_u);
            per_node[e.v].push(e.port_v);
        }
        per_node.into_iter().map(|p| encode_port_set(&p)).collect()
    }

    fn name(&self) -> &'static str {
        "greedy-spanner"
    }
}

/// Checks that the per-node port sets describe a `t`-spanner of `g`:
/// consistent (both endpoints list each edge), and every edge of `g` has a
/// detour of length ≤ `t` inside the subgraph (which bounds the stretch of
/// all pairs by `t`).
///
/// # Errors
///
/// A human-readable description of the first defect, including the number
/// of spanner edges on success via `Ok(edge_count)`.
pub fn verify_spanner(g: &PortGraph, port_sets: &[Vec<Port>], t: usize) -> Result<usize, String> {
    let n = g.num_nodes();
    if port_sets.len() != n {
        return Err(format!("{} port sets for {n} nodes", port_sets.len()));
    }
    let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let mut edge_count = 0;
    for (v, ports) in port_sets.iter().enumerate() {
        for &p in ports {
            if p >= g.degree(v) {
                return Err(format!("node {v} lists port {p} ≥ degree {}", g.degree(v)));
            }
            let (u, q) = g.neighbor_via(v, p);
            // Symmetry: u must list q.
            if !port_sets[u].contains(&q) {
                return Err(format!("edge {v}:{p} not confirmed by {u}:{q}"));
            }
            if v < u {
                adj[v].push(u);
                adj[u].push(v);
                edge_count += 1;
            }
        }
    }
    for e in g.edges() {
        if bounded_distance(&adj, e.u, e.v, t).is_none() {
            return Err(format!(
                "edge {{{},{}}} has no detour of length ≤ {t}",
                e.u, e.v
            ));
        }
    }
    Ok(edge_count)
}

/// Decodes all outputs into port sets; `None` if any node's output is
/// missing or malformed.
pub fn collect_port_sets(outputs: &[Option<BitString>]) -> Option<Vec<Vec<Port>>> {
    outputs
        .iter()
        .map(|o| decode_port_set(o.as_ref()?))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construction::ZeroMessageTree;
    use crate::oracle::advice_size;
    use crate::runner::execute;
    use oraclesize_graph::families::{self, Family};
    use oraclesize_sim::SimConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stretch_one_spanner_is_the_whole_graph() {
        let g = families::complete_rotational(10);
        let spanner = greedy_spanner(&g, 1);
        assert_eq!(spanner.len(), g.num_edges());
    }

    #[test]
    fn spanner_of_a_tree_is_the_tree() {
        let g = families::binary_tree(15);
        for t in [1usize, 3, 7] {
            assert_eq!(greedy_spanner(&g, t).len(), 14, "t={t}");
        }
    }

    #[test]
    fn spanner_edges_decrease_with_stretch() {
        let g = families::complete_rotational(40);
        let e1 = greedy_spanner(&g, 1).len();
        let e3 = greedy_spanner(&g, 3).len();
        let e5 = greedy_spanner(&g, 5).len();
        assert!(e1 > e3, "{e1} vs {e3}");
        assert!(e3 >= e5, "{e3} vs {e5}");
        // 3-spanner of K_40 should be far sparser than the graph.
        assert!(e3 < e1 / 2);
    }

    #[test]
    fn greedy_spanner_verifies_on_all_families() {
        let mut rng = StdRng::seed_from_u64(111);
        for fam in Family::ALL {
            let g = fam.build(24, &mut rng);
            for t in [2usize, 3, 5] {
                let mut per_node: Vec<Vec<Port>> = vec![Vec::new(); g.num_nodes()];
                for e in greedy_spanner(&g, t) {
                    per_node[e.u].push(e.port_u);
                    per_node[e.v].push(e.port_v);
                }
                verify_spanner(&g, &per_node, t)
                    .unwrap_or_else(|e| panic!("{} t={t}: {e}", fam.name()));
            }
        }
    }

    #[test]
    fn zero_message_spanner_construction_end_to_end() {
        let mut rng = StdRng::seed_from_u64(112);
        let g = families::random_connected(32, 0.4, &mut rng);
        let run = execute(
            &g,
            0,
            &SpannerOracle::new(3),
            &ZeroMessageTree,
            &SimConfig::default(),
        )
        .unwrap();
        assert_eq!(run.outcome.metrics.messages, 0);
        let sets = collect_port_sets(&run.outcome.outputs).unwrap();
        let edges = verify_spanner(&g, &sets, 3).unwrap();
        assert!(edges < g.num_edges());
    }

    #[test]
    fn advice_size_decreases_with_stretch() {
        let g = families::complete_rotational(48);
        let s1 = advice_size(&SpannerOracle::new(1).advise(&g, 0));
        let s3 = advice_size(&SpannerOracle::new(3).advise(&g, 0));
        let s9 = advice_size(&SpannerOracle::new(9).advise(&g, 0));
        assert!(s1 > s3 && s3 >= s9, "{s1}, {s3}, {s9}");
    }

    #[test]
    fn verify_spanner_rejects_defects() {
        let g = families::cycle(6);
        // Asymmetric listing.
        let mut sets: Vec<Vec<Port>> = vec![Vec::new(); 6];
        sets[0].push(0);
        assert!(verify_spanner(&g, &sets, 3).is_err());
        // Out-of-range port.
        let sets = vec![vec![5], vec![], vec![], vec![], vec![], vec![]];
        assert!(verify_spanner(&g, &sets, 3).is_err());
        // Empty subgraph cannot 2-span a cycle.
        let sets: Vec<Vec<Port>> = vec![Vec::new(); 6];
        assert!(verify_spanner(&g, &sets, 2).is_err());
    }

    #[test]
    fn port_set_roundtrip() {
        for ports in [vec![], vec![0], vec![3, 1, 4, 1 + 10]] {
            let enc = encode_port_set(&ports);
            assert_eq!(decode_port_set(&enc), Some(ports));
        }
    }
}
