//! The *traditional* knowledge assumption, priced in bits.
//!
//! The paper's §1.1 motivation: earlier work assumes each node knows the
//! topology within some radius `ρ` (e.g. Awerbuch–Goldreich–Peleg–Vainish,
//! where radius-`ρ` knowledge buys wakeup in
//! `Θ(min{m, n^{1+Θ(1)/ρ}})` messages). The oracle framework makes such
//! assumptions *comparable*: [`NeighborhoodOracle`] encodes exactly the
//! radius-`ρ` ball around every node, so its size measures what that
//! assumption costs in bits — and experiment T13 compares it against the
//! task-specific oracles, which are exponentially cheaper.

use std::collections::HashMap;

use oraclesize_bits::codec::{Codec, EliasGamma};
use oraclesize_bits::BitString;
use oraclesize_graph::{NodeId, PortGraph};

use crate::oracle::Oracle;

/// The decoded radius-`ρ` view from a node: a local re-indexing of the
/// ball, with adjacency down to ports.
///
/// Local index 0 is the node itself; other indices follow BFS discovery
/// order. `adj[i][p]` is `Some((j, q))` when port `p` of local node `i`
/// leads to local node `j` (arriving at `q`), and `None` when that port
/// leaves the encoded ball.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalView {
    /// Per-ball-node adjacency in local indices.
    pub adj: Vec<Vec<Option<(usize, usize)>>>,
    /// The original labels of the ball nodes (local index order).
    pub labels: Vec<u64>,
}

impl LocalView {
    /// Number of nodes in the ball.
    pub fn ball_size(&self) -> usize {
        self.adj.len()
    }
}

/// Computes the BFS ball of radius `rho` around `center`, returning the
/// nodes in discovery order with their depths.
fn ball(g: &PortGraph, center: NodeId, rho: usize) -> Vec<NodeId> {
    let mut order = vec![center];
    let mut depth: HashMap<NodeId, usize> = HashMap::from([(center, 0)]);
    let mut head = 0;
    while head < order.len() {
        let v = order[head];
        head += 1;
        let d = depth[&v];
        if d == rho {
            continue;
        }
        for &u in g.neighbors(v) {
            if let std::collections::hash_map::Entry::Vacant(e) = depth.entry(u) {
                e.insert(d + 1);
                order.push(u);
            }
        }
    }
    order
}

/// Encodes the radius-`rho` ball around `center`.
pub fn encode_ball(g: &PortGraph, center: NodeId, rho: usize) -> BitString {
    let nodes = ball(g, center, rho);
    let local: HashMap<NodeId, usize> = nodes.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let mut out = BitString::new();
    EliasGamma.encode(nodes.len() as u64, &mut out);
    for &v in &nodes {
        EliasGamma.encode(g.label(v), &mut out);
        EliasGamma.encode(g.degree(v) as u64, &mut out);
        for p in 0..g.degree(v) {
            let (u, q) = g.neighbor_via(v, p);
            match local.get(&u) {
                // γ(local+1), γ(q): an in-ball edge.
                Some(&j) => {
                    EliasGamma.encode(j as u64 + 1, &mut out);
                    EliasGamma.encode(q as u64, &mut out);
                }
                // γ(0): the port leads outside the ball.
                None => EliasGamma.encode(0, &mut out),
            }
        }
    }
    out
}

/// Decodes advice produced by [`encode_ball`]. Returns `None` on malformed
/// input.
pub fn decode_ball(advice: &BitString) -> Option<LocalView> {
    let mut r = advice.reader();
    let count = EliasGamma.decode(&mut r)? as usize;
    if count == 0 || count > 10_000_000 {
        return None;
    }
    let mut adj = Vec::with_capacity(count);
    let mut labels = Vec::with_capacity(count);
    for _ in 0..count {
        labels.push(EliasGamma.decode(&mut r)?);
        let deg = EliasGamma.decode(&mut r)? as usize;
        let mut ports = Vec::with_capacity(deg);
        for _ in 0..deg {
            let head = EliasGamma.decode(&mut r)?;
            if head == 0 {
                ports.push(None);
            } else {
                let j = (head - 1) as usize;
                if j >= count {
                    return None;
                }
                let q = EliasGamma.decode(&mut r)? as usize;
                ports.push(Some((j, q)));
            }
        }
        adj.push(ports);
    }
    if !r.is_empty() {
        return None;
    }
    Some(LocalView { adj, labels })
}

/// The oracle that hands every node its radius-`rho` ball — the
/// traditional "knowledge of the neighborhood" assumption, priced in bits.
#[derive(Debug, Clone, Copy)]
pub struct NeighborhoodOracle {
    /// Ball radius `ρ ≥ 1`.
    pub radius: usize,
}

impl NeighborhoodOracle {
    /// An oracle of the given radius.
    ///
    /// # Panics
    ///
    /// Panics if `radius == 0` (a node already knows its own degree).
    pub fn new(radius: usize) -> Self {
        assert!(radius >= 1, "radius must be at least 1");
        NeighborhoodOracle { radius }
    }
}

impl Oracle for NeighborhoodOracle {
    fn advise(&self, g: &PortGraph, _source: NodeId) -> Vec<BitString> {
        (0..g.num_nodes())
            .map(|v| encode_ball(g, v, self.radius))
            .collect()
    }

    fn name(&self) -> &'static str {
        "neighborhood"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::advice_size;
    use oraclesize_graph::families;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ball_roundtrip_on_cycle() {
        let g = families::cycle(8);
        for rho in 1..=4 {
            let enc = encode_ball(&g, 0, rho);
            let view = decode_ball(&enc).unwrap();
            assert_eq!(view.ball_size(), (2 * rho + 1).min(8), "rho={rho}");
            assert_eq!(view.labels[0], 0);
        }
    }

    #[test]
    fn radius_one_ball_is_closed_neighborhood() {
        let mut rng = StdRng::seed_from_u64(61);
        let g = families::random_connected(20, 0.3, &mut rng);
        for v in 0..20 {
            let view = decode_ball(&encode_ball(&g, v, 1)).unwrap();
            assert_eq!(view.ball_size(), 1 + g.degree(v), "node {v}");
            // The center's ports all stay inside the ball.
            assert!(view.adj[0].iter().all(|p| p.is_some()));
        }
    }

    #[test]
    fn in_ball_edges_are_symmetric_in_local_indices() {
        let mut rng = StdRng::seed_from_u64(62);
        let g = families::random_connected(24, 0.25, &mut rng);
        let view = decode_ball(&encode_ball(&g, 3, 2)).unwrap();
        for (i, ports) in view.adj.iter().enumerate() {
            for (p, slot) in ports.iter().enumerate() {
                if let Some((j, q)) = *slot {
                    assert_eq!(view.adj[j][q], Some((i, p)), "local edge {i}:{p}");
                }
            }
        }
    }

    #[test]
    fn large_radius_covers_whole_graph() {
        let g = families::complete_rotational(12);
        let view = decode_ball(&encode_ball(&g, 5, 3)).unwrap();
        assert_eq!(view.ball_size(), 12);
        // Every port resolves in-ball: the view is the full map.
        for ports in &view.adj {
            assert!(ports.iter().all(|p| p.is_some()));
        }
    }

    #[test]
    fn oracle_size_grows_steeply_with_radius_on_dense_graphs() {
        let g = families::complete_rotational(48);
        let r1 = advice_size(&NeighborhoodOracle::new(1).advise(&g, 0));
        // Radius 1 on K_n is already the whole graph per node — Θ(n·m·γ).
        let tree = advice_size(&crate::wakeup::SpanningTreeOracle::default().advise(&g, 0));
        assert!(
            r1 > 20 * tree,
            "neighborhood {r1} not far above task oracle {tree}"
        );
    }

    #[test]
    fn oracle_size_monotone_in_radius_on_sparse_graphs() {
        let g = families::grid(8, 8);
        let sizes: Vec<u64> = (1..=4)
            .map(|rho| advice_size(&NeighborhoodOracle::new(rho).advise(&g, 0)))
            .collect();
        assert!(
            sizes.windows(2).all(|w| w[0] < w[1]),
            "not monotone: {sizes:?}"
        );
    }

    #[test]
    fn decode_rejects_truncation_and_garbage() {
        let g = families::cycle(6);
        let enc = encode_ball(&g, 0, 2);
        let cut: BitString = enc.iter().take(enc.len() - 2).collect();
        assert!(decode_ball(&cut).is_none());
        assert!(decode_ball(&BitString::parse("0").unwrap()).is_none());
    }

    #[test]
    #[should_panic(expected = "radius")]
    fn zero_radius_rejected() {
        NeighborhoodOracle::new(0);
    }
}
