//! Theorem 2.1: wakeup with `n − 1` messages from an `O(n log n)`-bit
//! oracle.
//!
//! The oracle fixes a spanning tree of the network rooted at the source and
//! gives every internal node the list of its child ports, encoded with the
//! paper's doubled-header code (`c(v)·⌈log n⌉ + O(log log n)` bits per node,
//! `n log n + o(n log n)` in total). The wakeup scheme simply forwards the
//! source message along the encoded ports: exactly `n − 1` messages, one
//! per tree edge.

use oraclesize_bits::lists::{decode_port_list, encode_port_list};
use oraclesize_bits::BitString;
use oraclesize_graph::spanning::TreeAlgorithm;
use oraclesize_graph::{NodeId, Port, PortGraph};
use oraclesize_sim::protocol::{Message, NodeBehavior, NodeView, Outgoing, Protocol};

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::oracle::Oracle;

/// The Theorem 2.1 oracle: encodes, for every node, the ports toward its
/// children in a spanning tree rooted at the source.
///
/// Any spanning tree works for the *message* bound; the choice only affects
/// constants in the *size* bound (all are `O(n log n)`). Experiments default
/// to BFS.
#[derive(Debug, Clone, Copy)]
pub struct SpanningTreeOracle {
    /// Which spanning tree to encode.
    pub algorithm: TreeAlgorithm,
    /// Seed for randomized tree algorithms.
    pub seed: u64,
}

impl Default for SpanningTreeOracle {
    fn default() -> Self {
        SpanningTreeOracle {
            algorithm: TreeAlgorithm::Bfs,
            seed: 0,
        }
    }
}

impl Oracle for SpanningTreeOracle {
    fn advise(&self, g: &PortGraph, source: NodeId) -> Vec<BitString> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let tree = self.algorithm.build(g, source, &mut rng);
        let n = g.num_nodes() as u64;
        (0..g.num_nodes())
            .map(|v| {
                let ports: Vec<u64> = tree.children(v).iter().map(|&(_, p)| p as u64).collect();
                encode_port_list(&ports, n.max(2))
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "spanning-tree"
    }
}

/// The Theorem 2.1 wakeup scheme: on becoming awake, send the (empty)
/// message on every advice-encoded child port. Exactly one message per
/// tree edge.
///
/// Legal under the wakeup rule: a non-source node transmits only in
/// response to the message that woke it. Works anonymously and with
/// zero-payload messages (paper §1.3).
#[derive(Debug, Clone, Copy, Default)]
pub struct TreeWakeup;

struct TreeWakeupState {
    child_ports: Vec<Port>,
    is_source: bool,
    fired: bool,
}

impl TreeWakeupState {
    fn fire(&mut self) -> Vec<Outgoing> {
        if self.fired {
            return Vec::new();
        }
        self.fired = true;
        self.child_ports
            .iter()
            .map(|&p| Outgoing::new(p, Message::empty()))
            .collect()
    }
}

impl NodeBehavior for TreeWakeupState {
    fn on_start(&mut self) -> Vec<Outgoing> {
        if self.is_source {
            self.fire()
        } else {
            Vec::new()
        }
    }

    fn on_receive(&mut self, _port: Port, message: Message) -> Vec<Outgoing> {
        if message.carries_source {
            self.fire()
        } else {
            Vec::new()
        }
    }
}

impl Protocol for TreeWakeup {
    fn create(&self, view: NodeView) -> Box<dyn NodeBehavior> {
        // Malformed advice degrades to leaf behavior: the scheme stays
        // legal (silent until woken) and simply fails to forward, which the
        // experiments detect as incomplete wakeup.
        let child_ports: Vec<Port> = decode_port_list(&view.advice)
            .unwrap_or_default()
            .into_iter()
            .filter(|&p| (p as usize) < view.degree)
            .map(|p| p as usize)
            .collect();
        Box::new(TreeWakeupState {
            child_ports,
            is_source: view.is_source,
            fired: false,
        })
    }

    fn name(&self) -> &'static str {
        "tree-wakeup"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::advice_size;
    use crate::runner::execute;
    use oraclesize_bits::ceil_log2;
    use oraclesize_graph::families::{self, Family};
    use oraclesize_sim::{SchedulerKind, SimConfig};

    #[test]
    fn wakeup_uses_exactly_n_minus_1_messages() {
        let mut rng = StdRng::seed_from_u64(3);
        for fam in Family::ALL {
            let g = fam.build(40, &mut rng);
            let n = g.num_nodes();
            let run = execute(
                &g,
                0,
                &SpanningTreeOracle::default(),
                &TreeWakeup,
                &SimConfig::wakeup(),
            )
            .unwrap();
            assert!(run.outcome.all_informed(), "{}", fam.name());
            assert_eq!(
                run.outcome.metrics.messages,
                (n - 1) as u64,
                "{}",
                fam.name()
            );
        }
    }

    #[test]
    fn oracle_size_is_n_log_n_plus_lower_order() {
        // Per node with c children: c·⌈log n⌉ + 2#2(⌈log n⌉) + 2 bits; the
        // tree has n−1 child slots in total, and at most n−1 internal
        // nodes, so the total is ≤ (n−1)⌈log n⌉ + (n−1)·O(log log n).
        let mut rng = StdRng::seed_from_u64(4);
        for fam in Family::ALL {
            let g = fam.build(60, &mut rng);
            let n = g.num_nodes() as u64;
            let advice = SpanningTreeOracle::default().advise(&g, 0);
            let size = advice_size(&advice);
            let log = ceil_log2(n) as u64;
            let header = 2 * oraclesize_bits::bits_to_represent(log) as u64 + 2;
            let bound = (n - 1) * log + (n - 1) * header;
            assert!(size <= bound, "{}: {size} > {bound}", fam.name());
        }
    }

    #[test]
    fn wakeup_works_asynchronously_and_anonymously() {
        let g = families::complete_rotational(25);
        for kind in SchedulerKind::sweep(11) {
            let cfg = SimConfig::wakeup()
                .with_scheduler(kind)
                .with_anonymous(true)
                .with_max_message_bits(0);
            let run = execute(&g, 7, &SpanningTreeOracle::default(), &TreeWakeup, &cfg).unwrap();
            assert!(run.outcome.all_informed(), "{}", kind.name());
            assert_eq!(run.outcome.metrics.messages, 24);
            assert_eq!(run.outcome.metrics.max_message_bits, 0);
        }
    }

    #[test]
    fn all_tree_algorithms_yield_correct_wakeup() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = families::random_connected(30, 0.2, &mut rng);
        for alg in TreeAlgorithm::ALL {
            let oracle = SpanningTreeOracle {
                algorithm: alg,
                seed: 9,
            };
            let run = execute(&g, 0, &oracle, &TreeWakeup, &SimConfig::wakeup()).unwrap();
            assert!(run.outcome.all_informed(), "{}", alg.name());
            assert_eq!(run.outcome.metrics.messages, 29);
        }
    }

    #[test]
    fn leaves_get_empty_advice() {
        let g = families::star(8);
        let advice = SpanningTreeOracle::default().advise(&g, 0);
        // Source is the hub; all other nodes are leaves.
        for (v, a) in advice.iter().enumerate().skip(1) {
            assert!(a.is_empty(), "leaf {v} got advice");
        }
        assert!(!advice[0].is_empty());
    }

    #[test]
    fn malformed_advice_degrades_to_leaf() {
        // Garbage advice: protocol must not panic, and wakeup stays legal
        // but incomplete — classified as degraded, not success. (The
        // self-healing counterpart lives in [`crate::robust`].)
        let g = families::path(4);
        let advice = vec![BitString::parse("0101101").unwrap(); 4];
        let out =
            oraclesize_sim::engine::run(&g, 0, &advice, &TreeWakeup, &SimConfig::wakeup()).unwrap();
        assert!(!out.all_informed());
        assert_eq!(
            out.classify(),
            oraclesize_sim::Completion::Degraded { uninformed: 3 }
        );
    }

    #[test]
    fn duplicate_wake_messages_do_not_refire() {
        // On a path rooted mid-way the source has two children; each child
        // chain fires once — total messages still n−1 even though the state
        // machine is re-entered on stray deliveries.
        let g = families::path(7);
        let run = execute(
            &g,
            3,
            &SpanningTreeOracle::default(),
            &TreeWakeup,
            &SimConfig::wakeup(),
        )
        .unwrap();
        assert!(run.outcome.all_informed());
        assert_eq!(run.outcome.metrics.messages, 6);
    }
}
