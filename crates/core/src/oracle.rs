//! Generic oracle building blocks: the empty baseline and budget
//! truncation.
//!
//! The [`Oracle`] trait itself (and the [`advice_size`] accounting) lives
//! in `oraclesize_sim::oracle`, next to the engine that consumes advice;
//! this module holds the scheme-independent implementations. The
//! re-import below is crate-internal so the workspace keeps exactly one
//! canonical public path for the trait.

// Crate-internal alias: every module here says `crate::oracle::Oracle`;
// the public path is `oraclesize_sim::Oracle`.
pub(crate) use oraclesize_sim::oracle::{advice_size, Oracle};

use oraclesize_bits::BitString;
use oraclesize_graph::{NodeId, PortGraph};

/// The empty oracle: every node receives the empty string (size 0). The
/// baseline against which *any* advice is compared.
#[derive(Debug, Clone, Copy, Default)]
pub struct EmptyOracle;

impl Oracle for EmptyOracle {
    fn advise(&self, g: &PortGraph, _source: NodeId) -> Vec<BitString> {
        vec![BitString::new(); g.num_nodes()]
    }

    fn name(&self) -> &'static str {
        "empty"
    }
}

/// An oracle that truncates another oracle's advice to a global bit budget,
/// dropping bits string-by-string from the last node backwards.
///
/// Used by experiment T6/F3 to measure how message complexity degrades as
/// the wakeup oracle is starved below `Θ(n log n)` bits. Truncation is the
/// natural "adversarial budget cut": the protocol must cope with advice
/// that decodes only partially.
#[derive(Debug, Clone)]
pub struct TruncatedOracle<O> {
    inner: O,
    budget_bits: u64,
}

impl<O: Oracle> TruncatedOracle<O> {
    /// Wraps `inner`, keeping at most `budget_bits` bits in total.
    pub fn new(inner: O, budget_bits: u64) -> Self {
        TruncatedOracle { inner, budget_bits }
    }
}

impl<O: Oracle> Oracle for TruncatedOracle<O> {
    fn advise(&self, g: &PortGraph, source: NodeId) -> Vec<BitString> {
        let full = self.inner.advise(g, source);
        let mut remaining = self.budget_bits;
        full.into_iter()
            .map(|s| {
                let keep = (s.len() as u64).min(remaining) as usize;
                remaining -= keep as u64;
                s.iter().take(keep).collect()
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "truncated"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oraclesize_graph::families;

    #[test]
    fn empty_oracle_has_size_zero() {
        let g = families::cycle(5);
        let advice = EmptyOracle.advise(&g, 0);
        assert_eq!(advice.len(), 5);
        assert_eq!(advice_size(&advice), 0);
    }

    struct ConstOracle(usize);
    impl Oracle for ConstOracle {
        fn advise(&self, g: &PortGraph, _s: NodeId) -> Vec<BitString> {
            (0..g.num_nodes())
                .map(|_| BitString::from_bits(std::iter::repeat_n(true, self.0)))
                .collect()
        }
    }

    #[test]
    fn truncation_respects_budget_exactly() {
        let g = families::cycle(4);
        for budget in [0u64, 1, 5, 11, 12, 100] {
            let o = TruncatedOracle::new(ConstOracle(3), budget);
            let advice = o.advise(&g, 0);
            assert_eq!(advice_size(&advice), budget.min(12), "budget {budget}");
        }
    }

    #[test]
    fn truncation_keeps_prefixes_front_loaded() {
        let g = families::cycle(4);
        let o = TruncatedOracle::new(ConstOracle(3), 7);
        let advice = o.advise(&g, 0);
        assert_eq!(advice[0].len(), 3);
        assert_eq!(advice[1].len(), 3);
        assert_eq!(advice[2].len(), 1);
        assert_eq!(advice[3].len(), 0);
    }
}
