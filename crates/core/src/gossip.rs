//! Gossip with an oracle — the third communication task the paper names
//! (§1.2: "various communication tasks, such as broadcast, wakeup or
//! gossip").
//!
//! Every node starts with one value (its label); at the end every node must
//! know *all* values. With tree advice (each node's parent port and child
//! ports in a source-rooted spanning tree) the classic convergecast +
//! downcast runs in exactly `2(n − 1)` messages: values flow up to the
//! root, the complete set flows back down. The oracle costs
//! `O(n log n)` bits — same order as the wakeup oracle, which matches the
//! intuition that gossip is at least as hard as wakeup (it subsumes it).

use std::collections::BTreeSet;

use oraclesize_bits::codec::{Codec, EliasGamma};
use oraclesize_bits::BitString;
use oraclesize_graph::spanning::TreeAlgorithm;
use oraclesize_graph::{NodeId, Port, PortGraph};
use oraclesize_sim::protocol::{Message, NodeBehavior, NodeView, Outgoing, Protocol};

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::oracle::Oracle;

/// Per-node tree advice: the parent port (absent at the root) and the
/// child ports.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TreeAdvice {
    /// Port toward the parent; `None` at the root.
    pub parent_port: Option<Port>,
    /// Ports toward the children.
    pub child_ports: Vec<Port>,
}

/// Encodes tree advice: `γ(parent_port + 1)` (0 = root) then γ-coded child
/// ports, each as `γ(port)`; the child count is implicit (read to end).
pub fn encode_tree_advice(advice: &TreeAdvice) -> BitString {
    let mut out = BitString::new();
    EliasGamma.encode(advice.parent_port.map_or(0, |p| p as u64 + 1), &mut out);
    for &p in &advice.child_ports {
        EliasGamma.encode(p as u64, &mut out);
    }
    out
}

/// Decodes advice produced by [`encode_tree_advice`], consuming the whole
/// string. Returns `None` on malformed input.
pub fn decode_tree_advice(s: &BitString) -> Option<TreeAdvice> {
    let mut r = s.reader();
    let head = EliasGamma.decode(&mut r)?;
    let parent_port = if head == 0 {
        None
    } else {
        Some((head - 1) as Port)
    };
    let mut child_ports = Vec::new();
    while !r.is_empty() {
        child_ports.push(EliasGamma.decode(&mut r)? as Port);
    }
    Some(TreeAdvice {
        parent_port,
        child_ports,
    })
}

/// The gossip oracle: a source-rooted spanning tree, each node receiving
/// its parent port and child ports. `O(n log n)` bits in total.
#[derive(Debug, Clone, Copy)]
pub struct GossipOracle {
    /// Which spanning tree to encode.
    pub algorithm: TreeAlgorithm,
    /// Seed for randomized tree algorithms.
    pub seed: u64,
}

impl Default for GossipOracle {
    fn default() -> Self {
        GossipOracle {
            algorithm: TreeAlgorithm::Bfs,
            seed: 0,
        }
    }
}

impl Oracle for GossipOracle {
    fn advise(&self, g: &PortGraph, source: NodeId) -> Vec<BitString> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let tree = self.algorithm.build(g, source, &mut rng);
        (0..g.num_nodes())
            .map(|v| {
                let advice = TreeAdvice {
                    parent_port: tree.parent(v).map(|(_, _, port_at_child)| port_at_child),
                    child_ports: tree.children(v).iter().map(|&(_, p)| p).collect(),
                };
                encode_tree_advice(&advice)
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "gossip-tree"
    }
}

/// Encodes a value set as γ-coded deltas of the sorted values (compact and
/// self-delimiting when prefixed with the γ-coded count).
fn encode_value_set(values: &BTreeSet<u64>) -> BitString {
    let mut out = BitString::new();
    EliasGamma.encode(values.len() as u64, &mut out);
    let mut prev = 0u64;
    for (i, &v) in values.iter().enumerate() {
        let delta = if i == 0 { v } else { v - prev - 1 };
        EliasGamma.encode(delta, &mut out);
        prev = v;
    }
    out
}

/// Decodes a set produced by [`encode_value_set`].
fn decode_value_set(r: &mut oraclesize_bits::BitReader<'_>) -> Option<BTreeSet<u64>> {
    let count = EliasGamma.decode(r)?;
    let mut values = BTreeSet::new();
    let mut prev = 0u64;
    for i in 0..count {
        let delta = EliasGamma.decode(r)?;
        let v = if i == 0 { delta } else { prev + 1 + delta };
        values.insert(v);
        prev = v;
    }
    Some(values)
}

/// Decodes a gossip node's final output (its learned value set).
pub fn decode_gossip_output(s: &BitString) -> Option<BTreeSet<u64>> {
    let mut r = s.reader();
    let set = decode_value_set(&mut r)?;
    if r.is_empty() {
        Some(set)
    } else {
        None
    }
}

/// Convergecast + downcast gossip over the advice tree: exactly `2(n − 1)`
/// messages.
///
/// Each node's initial value is its label, so the protocol requires the
/// labeled (non-anonymous) model — gossip is meaningless without
/// distinguishable inputs.
#[derive(Debug, Clone, Copy, Default)]
pub struct TreeGossip;

struct TreeGossipState {
    parent_port: Option<Port>,
    child_ports: Vec<Port>,
    pending_children: BTreeSet<Port>,
    learned: BTreeSet<u64>,
    up_sent: bool,
    down_done: bool,
}

impl TreeGossipState {
    /// Fires the upward message once all children reported; the root
    /// instead starts the downcast.
    fn maybe_advance(&mut self) -> Vec<Outgoing> {
        if !self.pending_children.is_empty() || self.up_sent {
            return Vec::new();
        }
        self.up_sent = true;
        match self.parent_port {
            Some(p) => vec![Outgoing::new(
                p,
                Message::new(encode_value_set(&self.learned)),
            )],
            None => self.downcast(), // root: subtree = everything
        }
    }

    fn downcast(&mut self) -> Vec<Outgoing> {
        if self.down_done {
            return Vec::new();
        }
        self.down_done = true;
        let payload = encode_value_set(&self.learned);
        self.child_ports
            .iter()
            .map(|&p| Outgoing::new(p, Message::new(payload.clone())))
            .collect()
    }
}

impl NodeBehavior for TreeGossipState {
    fn on_start(&mut self) -> Vec<Outgoing> {
        self.maybe_advance() // leaves fire immediately
    }

    fn on_receive(&mut self, port: Port, message: Message) -> Vec<Outgoing> {
        let Some(set) = decode_gossip_output(&message.payload) else {
            return Vec::new(); // malformed payload: ignore
        };
        self.learned.extend(set);
        if Some(port) == self.parent_port {
            // The complete set arrived from above; relay downward.
            self.downcast()
        } else {
            self.pending_children.remove(&port);
            self.maybe_advance()
        }
    }

    fn output(&self) -> Option<BitString> {
        Some(encode_value_set(&self.learned))
    }
}

impl Protocol for TreeGossip {
    fn create(&self, view: NodeView) -> Box<dyn NodeBehavior> {
        let advice = decode_tree_advice(&view.advice).unwrap_or_default();
        let own = view.id.expect("gossip requires the labeled model");
        Box::new(TreeGossipState {
            parent_port: advice.parent_port,
            child_ports: advice.child_ports.clone(),
            pending_children: advice.child_ports.iter().copied().collect(),
            learned: BTreeSet::from([own]),
            up_sent: false,
            down_done: false,
        })
    }

    fn name(&self) -> &'static str {
        "tree-gossip"
    }
}

/// The message bound of tree gossip: one up plus one down per tree edge.
pub fn gossip_message_bound(n: usize) -> u64 {
    2 * n.saturating_sub(1) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::execute;
    use oraclesize_graph::families::{self, Family};
    use oraclesize_sim::{SchedulerKind, SimConfig};

    fn all_labels(g: &PortGraph) -> BTreeSet<u64> {
        (0..g.num_nodes()).map(|v| g.label(v)).collect()
    }

    #[test]
    fn tree_advice_roundtrip() {
        let cases = [
            TreeAdvice {
                parent_port: None,
                child_ports: vec![],
            },
            TreeAdvice {
                parent_port: Some(0),
                child_ports: vec![1, 5, 2],
            },
            TreeAdvice {
                parent_port: Some(7),
                child_ports: vec![],
            },
        ];
        for advice in cases {
            let enc = encode_tree_advice(&advice);
            assert_eq!(decode_tree_advice(&enc), Some(advice));
        }
    }

    #[test]
    fn value_set_roundtrip() {
        for set in [
            BTreeSet::new(),
            BTreeSet::from([0]),
            BTreeSet::from([5, 9, 100, 1000]),
            (0..64u64).collect::<BTreeSet<_>>(),
        ] {
            let enc = encode_value_set(&set);
            assert_eq!(decode_gossip_output(&enc), Some(set));
        }
    }

    #[test]
    fn gossip_completes_with_2n_minus_2_messages() {
        let mut rng = StdRng::seed_from_u64(51);
        for fam in Family::ALL {
            let g = fam.build(24, &mut rng);
            let nodes = g.num_nodes();
            let run = execute(
                &g,
                0,
                &GossipOracle::default(),
                &TreeGossip,
                &SimConfig::default(),
            )
            .unwrap();
            assert_eq!(
                run.outcome.metrics.messages,
                gossip_message_bound(nodes),
                "{}",
                fam.name()
            );
            for (v, out) in run.outcome.outputs.iter().enumerate() {
                let learned =
                    decode_gossip_output(out.as_ref().expect("gossip emits output")).unwrap();
                assert_eq!(learned, all_labels(&g), "{} node {v}", fam.name());
            }
        }
    }

    #[test]
    fn gossip_works_async() {
        let g = families::complete_rotational(20);
        for kind in SchedulerKind::sweep(3) {
            let run = execute(
                &g,
                4,
                &GossipOracle::default(),
                &TreeGossip,
                &SimConfig::broadcast().with_scheduler(kind),
            )
            .unwrap();
            assert_eq!(run.outcome.metrics.messages, 38, "{}", kind.name());
            for out in &run.outcome.outputs {
                let learned = decode_gossip_output(out.as_ref().unwrap()).unwrap();
                assert_eq!(learned.len(), 20);
            }
        }
    }

    #[test]
    fn gossip_oracle_size_is_n_log_n_order() {
        // Parent + child ports ≈ the wakeup advice plus n parent entries.
        let g = families::complete_rotational(128);
        let gossip_bits = crate::oracle::advice_size(&GossipOracle::default().advise(&g, 0));
        let wakeup_bits =
            crate::oracle::advice_size(&crate::wakeup::SpanningTreeOracle::default().advise(&g, 0));
        assert!(gossip_bits >= wakeup_bits / 4);
        assert!(gossip_bits <= 4 * wakeup_bits + 16 * 128);
    }

    #[test]
    fn single_node_gossip() {
        let g = oraclesize_graph::PortGraph::from_adjacency(vec![vec![]]).unwrap();
        let run = execute(
            &g,
            0,
            &GossipOracle::default(),
            &TreeGossip,
            &SimConfig::default(),
        )
        .unwrap();
        assert_eq!(run.outcome.metrics.messages, 0);
        let learned = decode_gossip_output(run.outcome.outputs[0].as_ref().unwrap()).unwrap();
        assert_eq!(learned, BTreeSet::from([0]));
    }

    #[test]
    fn payload_bits_reflect_set_growth() {
        // Upward payloads grow toward the root: total payload bits are
        // superlinear in n (Θ(n log n) on a path), unlike the O(n)-bit
        // broadcast payload total of 0.
        let g = families::path(64);
        let run = execute(
            &g,
            0,
            &GossipOracle::default(),
            &TreeGossip,
            &SimConfig::default(),
        )
        .unwrap();
        assert!(run.outcome.metrics.payload_bits > 64 * 8);
    }

    #[test]
    fn own_value_always_in_output() {
        let mut rng = StdRng::seed_from_u64(53);
        let g = families::random_connected(15, 0.3, &mut rng);
        let run = execute(
            &g,
            7,
            &GossipOracle {
                algorithm: TreeAlgorithm::Dfs,
                seed: 0,
            },
            &TreeGossip,
            &SimConfig::default(),
        )
        .unwrap();
        for v in 0..15 {
            let learned = decode_gossip_output(run.outcome.outputs[v].as_ref().unwrap()).unwrap();
            assert!(learned.contains(&g.label(v)));
        }
    }
}
