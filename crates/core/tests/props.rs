//! Property-based tests for the paper's oracles and schemes: the theorem
//! guarantees hold on *random* networks, sources, and schedulers.

use oraclesize_core::broadcast::{scheme_b_message_bound, LightTreeOracle, SchemeB};
use oraclesize_core::execute;
use oraclesize_core::oracle::TruncatedOracle;
use oraclesize_core::wakeup::{SpanningTreeOracle, TreeWakeup};
use oraclesize_graph::families::{self, Family};
use oraclesize_sim::{advice_size, Oracle, SchedulerKind, SimConfig, TaskMode};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_family() -> impl Strategy<Value = Family> {
    proptest::sample::select(Family::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn theorem_2_1_holds_on_random_instances(
        fam in arb_family(),
        n in 4usize..64,
        seed in any::<u64>(),
        sched_seed in any::<u64>(),
        synchronous in any::<bool>(),
        anonymous in any::<bool>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = fam.build(n, &mut rng);
        let nodes = g.num_nodes();
        let source = seed as usize % nodes;
        let cfg = SimConfig::broadcast()
            .with_mode(TaskMode::Wakeup)
            .with_scheduler(SchedulerKind::Random { seed: sched_seed })
            .with_synchronous(synchronous)
            .with_anonymous(anonymous)
            .with_max_message_bits(0);
        let run = execute(&g, source, &SpanningTreeOracle::default(), &TreeWakeup, &cfg).unwrap();
        prop_assert!(run.outcome.all_informed());
        prop_assert_eq!(run.outcome.metrics.messages, (nodes - 1) as u64);
    }

    #[test]
    fn theorem_3_1_holds_on_random_instances(
        fam in arb_family(),
        n in 4usize..64,
        seed in any::<u64>(),
        sched_seed in any::<u64>(),
        synchronous in any::<bool>(),
        anonymous in any::<bool>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = fam.build(n, &mut rng);
        let nodes = g.num_nodes();
        let source = seed as usize % nodes;
        let cfg = SimConfig::broadcast()
            .with_scheduler(SchedulerKind::Random { seed: sched_seed })
            .with_synchronous(synchronous)
            .with_anonymous(anonymous)
            .with_max_message_bits(0);
        let run = execute(&g, source, &LightTreeOracle, &SchemeB, &cfg).unwrap();
        prop_assert!(run.outcome.all_informed());
        prop_assert!(run.oracle_bits <= 8 * nodes as u64,
            "{} bits > 8n on {} nodes", run.oracle_bits, nodes);
        prop_assert!(run.outcome.metrics.messages <= scheme_b_message_bound(nodes));
    }

    #[test]
    fn truncated_advice_never_panics_schemes(
        fam in arb_family(),
        n in 4usize..40,
        seed in any::<u64>(),
        keep_bits in 0u64..2000,
    ) {
        // Bit-level truncation produces undecodable advice; the schemes
        // must degrade gracefully (stay legal, never panic), though they
        // may fail to complete.
        let mut rng = StdRng::seed_from_u64(seed);
        let g = fam.build(n, &mut rng);
        let wakeup = TruncatedOracle::new(SpanningTreeOracle::default(), keep_bits);
        let w = execute(&g, 0, &wakeup, &TreeWakeup, &SimConfig::wakeup()).unwrap();
        prop_assert!(w.outcome.metrics.messages <= g.num_nodes() as u64);

        let broadcast = TruncatedOracle::new(LightTreeOracle, keep_bits);
        let b = execute(&g, 0, &broadcast, &SchemeB, &SimConfig::default()).unwrap();
        prop_assert!(b.outcome.metrics.messages <= scheme_b_message_bound(g.num_nodes()));
    }

    #[test]
    fn oracle_sizes_ordered_broadcast_below_wakeup_for_large_n(
        seed in any::<u64>(),
        n in 128usize..256,
    ) {
        // For n ≥ 128 the Θ(n log n) wakeup advice dominates the ≤ 8n
        // broadcast advice on dense graphs.
        let mut rng = StdRng::seed_from_u64(seed);
        let g = families::random_connected(n, 0.3, &mut rng);
        let w = advice_size(&SpanningTreeOracle::default().advise(&g, 0));
        let b = advice_size(&LightTreeOracle.advise(&g, 0));
        prop_assert!(b <= 8 * n as u64);
        prop_assert!(w > b, "wakeup {w} not above broadcast {b} at n={n}");
    }

    #[test]
    fn advice_is_decodable_by_the_matching_scheme(
        fam in arb_family(),
        n in 4usize..48,
        seed in any::<u64>(),
    ) {
        use oraclesize_bits::lists::{decode_port_list, decode_weight_list};
        let mut rng = StdRng::seed_from_u64(seed);
        let g = fam.build(n, &mut rng);
        for a in SpanningTreeOracle::default().advise(&g, 0) {
            prop_assert!(decode_port_list(&a).is_some());
        }
        for a in LightTreeOracle.advise(&g, 0) {
            prop_assert!(decode_weight_list(&a).is_some());
        }
    }
}
