//! CLI for the determinism linter.
//!
//! ```text
//! oraclesize-lint check                     # lint the whole workspace
//! oraclesize-lint check --rule D001         # one rule only
//! oraclesize-lint check --format json       # machine-readable output
//! oraclesize-lint check --root /some/tree   # lint another checkout
//! oraclesize-lint rules                     # list rules
//! ```
//!
//! Exit status: 0 clean, 1 findings, 2 usage error.

use std::path::PathBuf;
use std::process::ExitCode;

use oraclesize_lint::{check_workspace, known_rule, render_json, render_text, RULES};

fn usage() -> ExitCode {
    eprintln!(
        "usage: oraclesize-lint check [--rule <id>] [--format text|json] [--root <path>]\n\
         \x20      oraclesize-lint rules"
    );
    ExitCode::from(2)
}

fn default_root() -> PathBuf {
    // When run via `cargo run -p oraclesize-lint`, the workspace root is
    // two levels above this crate's manifest; fall back to the current
    // directory for a relocated binary.
    let baked = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    if baked.join("Cargo.toml").is_file() {
        baked
    } else {
        PathBuf::from(".")
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("rules") => {
            for r in RULES {
                println!("{}  {}", r.id, r.summary);
            }
            ExitCode::SUCCESS
        }
        Some("check") => check(&args[1..]),
        _ => usage(),
    }
}

fn check(args: &[String]) -> ExitCode {
    let mut rule: Option<String> = None;
    let mut format = "text".to_string();
    let mut root = default_root();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--rule" => match it.next() {
                Some(v) => rule = Some(v.clone()),
                None => return usage(),
            },
            "--format" => match it.next() {
                Some(v) if v == "text" || v == "json" => format = v.clone(),
                _ => return usage(),
            },
            "--root" => match it.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    if let Some(r) = &rule {
        if !known_rule(r) {
            eprintln!(
                "unknown rule {r:?}; known: {}",
                RULES.iter().map(|r| r.id).collect::<Vec<_>>().join(", ")
            );
            return ExitCode::from(2);
        }
    }
    let diags = match check_workspace(&root, rule.as_deref()) {
        Ok(d) => d,
        Err(e) => {
            eprintln!(
                "error: failed to read sources under {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };
    if format == "json" {
        println!("{}", render_json(&diags));
    } else {
        print!("{}", render_text(&diags));
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
