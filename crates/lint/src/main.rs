//! CLI for the determinism linter.
//!
//! ```text
//! oraclesize-lint check                     # lint the whole workspace
//! oraclesize-lint check --rule D001         # one rule only
//! oraclesize-lint check --format json       # machine-readable output
//! oraclesize-lint check --format sarif      # SARIF 2.1.0 for CI upload
//! oraclesize-lint check --baseline b.json   # fail only on NEW findings
//! oraclesize-lint check --paths crates/sim  # restrict to a path prefix
//! oraclesize-lint check --root /some/tree   # lint another checkout
//! oraclesize-lint graph                     # dump the call graph (JSON)
//! oraclesize-lint self-check                # lint the lint crate itself
//! oraclesize-lint rules                     # list rules
//! ```
//!
//! Exit status: 0 clean, 1 findings, 2 usage error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use oraclesize_lint::{
    analyze_sources, build_graph, known_rule, render_json, render_sarif, render_text, walk,
    Baseline, RULES,
};

fn usage() -> ExitCode {
    eprintln!(
        "usage: oraclesize-lint check [--rule <id>] [--format text|json|sarif]\n\
         \x20                           [--baseline <file>] [--paths <prefix>] [--root <path>]\n\
         \x20      oraclesize-lint graph [--root <path>]\n\
         \x20      oraclesize-lint self-check [--root <path>]\n\
         \x20      oraclesize-lint rules"
    );
    ExitCode::from(2)
}

fn default_root() -> PathBuf {
    // When run via `cargo run -p oraclesize-lint`, the workspace root is
    // two levels above this crate's manifest; fall back to the current
    // directory for a relocated binary.
    let baked = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    if baked.join("Cargo.toml").is_file() {
        baked
    } else {
        PathBuf::from(".")
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("rules") => {
            for r in RULES {
                println!("{}  {}", r.id, r.summary);
            }
            ExitCode::SUCCESS
        }
        Some("check") => check(&args[1..], None),
        // `self-check`: the analyzer's own sources must satisfy its own
        // rules — `check` restricted to crates/lint.
        Some("self-check") => check(&args[1..], Some("crates/lint/")),
        Some("graph") => graph(&args[1..]),
        _ => usage(),
    }
}

fn read_sources(root: &Path) -> Result<Vec<(String, String)>, ExitCode> {
    walk::collect_sources(root).map_err(|e| {
        eprintln!(
            "error: failed to read sources under {}: {e}",
            root.display()
        );
        ExitCode::from(2)
    })
}

fn graph(args: &[String]) -> ExitCode {
    let mut root = default_root();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => match it.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let sources = match read_sources(&root) {
        Ok(s) => s,
        Err(code) => return code,
    };
    println!("{}", build_graph(&sources).to_json().render());
    ExitCode::SUCCESS
}

fn check(args: &[String], path_filter: Option<&str>) -> ExitCode {
    let mut rule: Option<String> = None;
    let mut format = "text".to_string();
    let mut root = default_root();
    let mut baseline_path: Option<PathBuf> = None;
    let mut prefix: Option<String> = path_filter.map(str::to_string);
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--rule" => match it.next() {
                Some(v) => rule = Some(v.clone()),
                None => return usage(),
            },
            "--format" => match it.next() {
                Some(v) if v == "text" || v == "json" || v == "sarif" => format = v.clone(),
                _ => return usage(),
            },
            "--root" => match it.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage(),
            },
            "--baseline" => match it.next() {
                Some(v) => baseline_path = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--paths" => match it.next() {
                Some(v) => prefix = Some(v.clone()),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    if let Some(r) = &rule {
        if !known_rule(r) {
            eprintln!(
                "unknown rule {r:?}; known: {}",
                RULES.iter().map(|r| r.id).collect::<Vec<_>>().join(", ")
            );
            return ExitCode::from(2);
        }
    }
    let baseline = match &baseline_path {
        Some(p) => match std::fs::read_to_string(p) {
            Ok(text) => match Baseline::parse(&text) {
                Some(b) => Some(b),
                None => {
                    eprintln!("error: {} is not a lint JSON report", p.display());
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!("error: cannot read baseline {}: {e}", p.display());
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    let sources = match read_sources(&root) {
        Ok(s) => s,
        Err(code) => return code,
    };
    // Analysis always sees the whole workspace — the call graph and
    // cross-file facts need it — and the prefix filters *findings*.
    let mut diags = analyze_sources(&sources, rule.as_deref());
    if let Some(p) = &prefix {
        diags.retain(|d| d.path.starts_with(p.as_str()));
    }
    let mut suppressed = 0usize;
    if let Some(b) = &baseline {
        let (fresh, known) = b.partition(diags);
        diags = fresh;
        suppressed = known;
    }
    match format.as_str() {
        "json" => println!("{}", render_json(&diags)),
        "sarif" => println!("{}", render_sarif(&diags)),
        _ => {
            print!("{}", render_text(&diags));
            if suppressed > 0 {
                println!("lint: {suppressed} baselined finding(s) suppressed");
            }
        }
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
