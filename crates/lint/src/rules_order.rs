//! O-rules: ordering determinism.
//!
//! O001 catches the two float-order traps in deterministic crates:
//! a sort/extremum comparator built on `partial_cmp` (floats have no
//! total order — NaN makes the comparator panic or, under
//! `sort_unstable`, platform-dependent), and float accumulation
//! (`sum`/`product`/`fold`) over an unordered hash collection, where the
//! iteration order changes the rounding. O002 keeps parallel iteration
//! and thread-local state out of everything but the runtime's scheduling
//! split — `runtime::pool` (the executor, whose in-order slot merge is
//! the one sanctioned way to combine results across threads) and
//! `runtime::sched` (the work-stealing scheduler feeding it).

use crate::diag::Diagnostic;
use crate::lexer::{Tok, TokKind};
use crate::source::SourceFile;

/// Sort/extremum methods whose comparator argument O001 inspects.
const COMPARATOR_SINKS: &[&str] = &[
    "sort_by",
    "sort_unstable_by",
    "sort_by_key",
    "sort_unstable_by_key",
    "max_by",
    "min_by",
    "binary_search_by",
];

/// Accumulators whose operand order changes a float result.
const ACCUMULATORS: &[&str] = &["sum", "product", "fold"];

/// Identifiers that mark parallel iteration or thread-local merge state.
const PARALLEL_MARKERS: &[&str] = &[
    "par_iter",
    "into_par_iter",
    "par_bridge",
    "par_chunks",
    "par_extend",
    "rayon",
    "thread_local",
    "ThreadLocal",
    "LocalKey",
];

fn shipping(file: &SourceFile, i: usize) -> bool {
    !file.is_test_file && !file.in_test[i]
}

/// `true` when the token range contains a float marker: an `f32`/`f64`
/// ident (type ascription, turbofish, cast) or a float literal (the lexer
/// splits `0.5` into `Num . Num`).
fn has_float_marker(toks: &[Tok]) -> bool {
    for (k, t) in toks.iter().enumerate() {
        if t.is_ident("f32") || t.is_ident("f64") {
            return true;
        }
        if t.kind == TokKind::Num
            && toks.get(k + 1).is_some_and(|n| n.is_punct("."))
            && toks.get(k + 2).is_some_and(|n| n.kind == TokKind::Num)
        {
            return true;
        }
    }
    false
}

/// For an ident at `i`, the index of its argument list's `(`: directly
/// next, or past a `::<…>` turbofish. `None` when `i` is not a call.
fn call_open(toks: &[Tok], i: usize) -> Option<usize> {
    let next = toks.get(i + 1)?;
    if next.is_punct("(") {
        return Some(i + 1);
    }
    if next.is_punct("::") && toks.get(i + 2).is_some_and(|t| t.is_punct("<")) {
        let mut depth = 0isize;
        for (j, t) in toks.iter().enumerate().skip(i + 2) {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "<" => depth += 1,
                    ">" => {
                        depth -= 1;
                        if depth == 0 {
                            return toks.get(j + 1)?.is_punct("(").then_some(j + 1);
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    None
}

/// Index just past the `)` matching the `(` at `open`.
fn past_matching_paren(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0isize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            if t.text == "(" {
                depth += 1;
            } else if t.text == ")" {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
        }
    }
    toks.len()
}

/// O001: partial-order comparators and unordered float accumulation in
/// deterministic crates.
pub fn o001(file: &SourceFile, deterministic: bool, out: &mut Vec<Diagnostic>) {
    if !deterministic {
        return;
    }
    let toks = &file.lexed.toks;
    let hash_names = crate::rules::hash_bindings(toks);
    for i in 0..toks.len() {
        if !shipping(file, i) || toks[i].kind != TokKind::Ident {
            continue;
        }
        let name = toks[i].text.as_str();
        // The argument list's `(` — directly next, or past a `::<…>`
        // turbofish (`.sum::<f64>()`).
        let Some(open) = call_open(toks, i) else {
            continue;
        };
        if COMPARATOR_SINKS.contains(&name) {
            let end = past_matching_paren(toks, open);
            if toks[open..end].iter().any(|t| t.is_ident("partial_cmp")) {
                out.push(Diagnostic {
                    rule: "O001",
                    path: file.path.clone(),
                    line: toks[i].line,
                    message: format!(
                        "`{name}` with a `partial_cmp` comparator — floats have no total \
                         order (NaN panics the `expect` or reorders ties); compare with \
                         `total_cmp` or sort integer keys"
                    ),
                });
                continue;
            }
        }
        if ACCUMULATORS.contains(&name)
            && toks.get(i.wrapping_sub(1)).is_some_and(|t| t.is_punct("."))
        {
            // Statement back-scan: does the receiver chain iterate a hash
            // collection, and does the statement involve floats?
            let stmt_start = toks[..i]
                .iter()
                .rposition(|t| {
                    t.kind == TokKind::Punct && matches!(t.text.as_str(), ";" | "{" | "}" | "=>")
                })
                .map_or(0, |p| p + 1);
            let end = past_matching_paren(toks, open);
            let over_hash = toks[stmt_start..i].iter().any(|t| {
                t.is_ident("HashMap")
                    || t.is_ident("HashSet")
                    || (t.kind == TokKind::Ident && hash_names.contains(&t.text))
            });
            let floaty = has_float_marker(&toks[stmt_start..end.min(toks.len())]);
            if over_hash && floaty {
                out.push(Diagnostic {
                    rule: "O001",
                    path: file.path.clone(),
                    line: toks[i].line,
                    message: format!(
                        "float `{name}` over a HashMap/HashSet — the iteration order \
                         changes the rounding; accumulate over a BTree collection or a \
                         sorted drain"
                    ),
                });
            }
        }
    }
}

/// Modules sanctioned to hold parallel iteration and thread-local merge
/// state: the two halves of the runtime's block-STM-style split — the
/// executor (`pool`) and the work-stealing scheduler (`sched`) — plus
/// the sweep service's server, which is the service layer's one
/// sanctioned cross-thread merge point: connection handlers feed worker
/// results into the runtime's `OrderedCommitter` under a single lock, so
/// the merged artifact stays deterministic in cell order regardless of
/// handler interleaving.
const O002_ALLOWED: &[&str] = &[
    "crates/runtime/src/pool.rs",
    "crates/runtime/src/sched.rs",
    "crates/service/src/server.rs",
];

/// O002: parallel iteration / thread-local merges outside
/// `runtime::{pool, sched}`.
pub fn o002(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if O002_ALLOWED.contains(&file.path.as_str()) {
        return;
    }
    let toks = &file.lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if !shipping(file, i) {
            continue;
        }
        if t.kind == TokKind::Ident && PARALLEL_MARKERS.contains(&t.text.as_str()) {
            out.push(Diagnostic {
                rule: "O002",
                path: file.path.clone(),
                line: t.line,
                message: format!(
                    "`{}` merges results outside runtime::{{pool, sched}} — cross-thread \
                     combination must go through the pool's deterministic in-order slot \
                     merge",
                    t.text
                ),
            });
        }
    }
}
