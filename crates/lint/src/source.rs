//! A lexed source file with its test regions and resolved allows.

use crate::lexer::{lex, Allow, Lexed};
use crate::scope::test_regions;
use crate::walk::is_test_path;

/// One file, prepared for the rule passes.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// Token stream and raw allow directives.
    pub lexed: Lexed,
    /// Parallel to `lexed.toks`: `true` inside test regions.
    pub in_test: Vec<bool>,
    /// `true` when the whole file is test/bench code by path.
    pub is_test_file: bool,
    /// Lines covered by a `// lint:hot-path` marker (resolved like
    /// allows: a trailing marker covers its own line, an own-line marker
    /// the next line with code). A `fn` whose header sits on one of these
    /// lines is a root of the A001 reachability analysis.
    pub hot_lines: Vec<u32>,
    /// Each allow directive with the source line it covers.
    resolved_allows: Vec<(Allow, u32)>,
}

impl SourceFile {
    /// Lexes `src` and resolves each allow directive to the line it
    /// covers: its own line for a trailing comment, the next line with
    /// code for an own-line comment.
    pub fn new(path: &str, src: &str) -> SourceFile {
        let lexed = lex(src);
        let in_test = test_regions(&lexed.toks);
        let next_code_line = |after: u32| {
            lexed
                .toks
                .iter()
                .map(|t| t.line)
                .filter(|&l| l > after)
                .min()
                .unwrap_or(after + 1)
        };
        let resolved_allows = lexed
            .allows
            .iter()
            .map(|a| {
                let covered = if a.own_line {
                    next_code_line(a.line)
                } else {
                    a.line
                };
                (a.clone(), covered)
            })
            .collect();
        let hot_lines = lexed
            .hot_marks
            .iter()
            .map(|m| {
                if m.own_line {
                    next_code_line(m.line)
                } else {
                    m.line
                }
            })
            .collect();
        SourceFile {
            path: path.to_string(),
            is_test_file: is_test_path(path),
            lexed,
            in_test,
            hot_lines,
            resolved_allows,
        }
    }

    /// `true` when a `lint:allow` directive suppresses `rule` at `line`.
    /// A001/D003/D005/P001/P002 allows suppress only when they carry a
    /// `: reason` — a hot-path allocation, an ad-hoc thread, a nested
    /// layout, or a panic path kept on purpose must say why.
    pub fn suppressed(&self, rule: &str, line: u32) -> bool {
        self.resolved_allows.iter().any(|(a, covered)| {
            *covered == line
                && a.rules.iter().any(|r| r == rule)
                && (!matches!(rule, "A001" | "D003" | "D005" | "P001" | "P002")
                    || a.reason.is_some())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trailing_allow_covers_its_own_line() {
        let f = SourceFile::new("crates/sim/src/x.rs", "foo(); // lint:allow(D002)\nbar();");
        assert!(f.suppressed("D002", 1));
        assert!(!f.suppressed("D002", 2));
        assert!(!f.suppressed("D001", 1));
    }

    #[test]
    fn own_line_allow_covers_next_code_line() {
        let src = "// lint:allow(D003): pool internals\n\nspawn_stuff();";
        let f = SourceFile::new("crates/sim/src/x.rs", src);
        assert!(f.suppressed("D003", 3));
        assert!(!f.suppressed("D003", 1));
    }

    #[test]
    fn p001_allow_requires_reason() {
        let bare = SourceFile::new("crates/sim/src/x.rs", "x.unwrap(); // lint:allow(P001)");
        assert!(!bare.suppressed("P001", 1));
        let justified = SourceFile::new(
            "crates/sim/src/x.rs",
            "x.unwrap(); // lint:allow(P001): invariant holds by construction",
        );
        assert!(justified.suppressed("P001", 1));
    }
}
