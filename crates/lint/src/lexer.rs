//! A comment/string/char-aware tokenizer for Rust source.
//!
//! This is *not* a full Rust lexer — it is exactly precise enough that the
//! rule passes never mistake the inside of a comment, string, raw string,
//! or char literal for code (the cases that make naive grep-lints lie),
//! and never mistake a lifetime for a char literal. Tokens carry their
//! 1-based line so diagnostics are clickable.

/// Token classes the rule passes distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including `_` and raw `r#idents`).
    Ident,
    /// Punctuation; `::`, `=>`, and `->` are single tokens, all else is
    /// one character.
    Punct,
    /// Numeric literal.
    Num,
    /// String literal of any flavor (cooked, raw, byte, C).
    Str,
    /// Char or byte-char literal.
    Char,
    /// Lifetime (`'a`, `'_`, `'static`).
    Lifetime,
}

/// One token with its source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Exact text for idents/puncts; literal text is not retained.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
}

impl Tok {
    /// `true` iff this is an identifier with the given text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// `true` iff this is punctuation with the given text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokKind::Punct && self.text == text
    }
}

/// An inline `// lint:allow(<rule>, …): reason` escape hatch.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rule IDs named in the directive.
    pub rules: Vec<String>,
    /// Text after the closing paren's `:`, if any.
    pub reason: Option<String>,
    /// Line the comment sits on.
    pub line: u32,
    /// `true` when no code token precedes the comment on its line — the
    /// directive then covers the next line that has code.
    pub own_line: bool,
}

/// A `// lint:hot-path` marker: names the item it covers as a root of
/// the allocation-freedom call-graph analysis (rule A001).
#[derive(Debug, Clone)]
pub struct HotPathMark {
    /// Line the comment sits on.
    pub line: u32,
    /// `true` when no code token precedes the comment on its line — the
    /// marker then covers the next line that has code.
    pub own_line: bool,
}

/// A tokenized source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Token stream, comments and literals' contents excluded.
    pub toks: Vec<Tok>,
    /// All `lint:allow` directives found in line comments.
    pub allows: Vec<Allow>,
    /// All `lint:hot-path` markers found in line comments.
    pub hot_marks: Vec<HotPathMark>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Parses a `lint:allow(...)` directive out of a comment body.
fn parse_allow(comment: &str, line: u32, own_line: bool) -> Option<Allow> {
    let start = comment.find("lint:allow(")?;
    let rest = &comment[start + "lint:allow(".len()..];
    let close = rest.find(')')?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return None;
    }
    let tail = rest[close + 1..].trim_start();
    let reason = tail
        .strip_prefix(':')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty());
    Some(Allow {
        rules,
        reason,
        line,
        own_line,
    })
}

/// Tokenizes `src`, collecting `lint:allow` directives on the way.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut toks: Vec<Tok> = Vec::new();
    let mut allows: Vec<Allow> = Vec::new();
    let mut hot_marks: Vec<HotPathMark> = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // `true` once a token has been emitted on the current line; decides
    // whether a trailing comment's allow covers this line or the next.
    let line_has_code = |toks: &[Tok], line: u32| toks.last().is_some_and(|t: &Tok| t.line == line);

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i;
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            let body: String = chars[start..i].iter().collect();
            if let Some(a) = parse_allow(&body, line, !line_has_code(&toks, line)) {
                allows.push(a);
            }
            if body.contains("lint:hot-path") {
                hot_marks.push(HotPathMark {
                    line,
                    own_line: !line_has_code(&toks, line),
                });
            }
            continue;
        }
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            // Block comments nest in Rust.
            let mut depth = 1usize;
            i += 2;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            continue;
        }
        // String-literal prefixes: r"", r#""#, b"", br"", c"", cr"", b''.
        if is_ident_start(c) {
            if let Some(next) = string_or_char_after_prefix(&chars, i) {
                match next {
                    Prefixed::Raw(hash_start) => {
                        i = consume_raw_string(&chars, hash_start, &mut line);
                        toks.push(Tok {
                            kind: TokKind::Str,
                            text: String::new(),
                            line,
                        });
                        continue;
                    }
                    Prefixed::Cooked(quote_idx) => {
                        i = consume_cooked_string(&chars, quote_idx, &mut line);
                        toks.push(Tok {
                            kind: TokKind::Str,
                            text: String::new(),
                            line,
                        });
                        continue;
                    }
                    Prefixed::ByteChar(quote_idx) => {
                        i = consume_char_literal(&chars, quote_idx);
                        toks.push(Tok {
                            kind: TokKind::Char,
                            text: String::new(),
                            line,
                        });
                        continue;
                    }
                }
            }
            // Raw identifier `r#ident` (keep the prefix so `r#match` can
            // never be mistaken for the `match` keyword).
            let start = i;
            if c == 'r' && chars.get(i + 1) == Some(&'#') && {
                chars.get(i + 2).copied().is_some_and(is_ident_start)
            } {
                i += 2;
            }
            while i < chars.len() && is_ident_continue(chars[i]) {
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text: chars[start..i].iter().collect(),
                line,
            });
            continue;
        }
        if c == '"' {
            i = consume_cooked_string(&chars, i, &mut line);
            toks.push(Tok {
                kind: TokKind::Str,
                text: String::new(),
                line,
            });
            continue;
        }
        if c == '\'' {
            // Char literal vs lifetime. `'\…'` and `'X'` (any single char
            // followed by a closing quote) are chars; everything else is a
            // lifetime.
            if chars.get(i + 1) == Some(&'\\') {
                i = consume_char_literal(&chars, i);
                toks.push(Tok {
                    kind: TokKind::Char,
                    text: String::new(),
                    line,
                });
            } else if chars.get(i + 2) == Some(&'\'') && chars.get(i + 1) != Some(&'\'') {
                i += 3;
                toks.push(Tok {
                    kind: TokKind::Char,
                    text: String::new(),
                    line,
                });
            } else {
                let start = i;
                i += 1;
                while i < chars.len() && is_ident_continue(chars[i]) {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: chars[start..i].iter().collect(),
                    line,
                });
            }
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < chars.len() && (is_ident_continue(chars[i])) {
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Num,
                text: chars[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Punctuation, merging the three pairs the rules care about.
        let pair: String = chars[i..(i + 2).min(chars.len())].iter().collect();
        if pair == "::" || pair == "=>" || pair == "->" {
            toks.push(Tok {
                kind: TokKind::Punct,
                text: pair,
                line,
            });
            i += 2;
        } else {
            toks.push(Tok {
                kind: TokKind::Punct,
                text: c.to_string(),
                line,
            });
            i += 1;
        }
    }
    Lexed {
        toks,
        allows,
        hot_marks,
    }
}

enum Prefixed {
    /// Raw string; the index points at the first `#` or the quote.
    Raw(usize),
    /// Cooked string; the index points at the quote.
    Cooked(usize),
    /// Byte-char literal; the index points at the opening `'`.
    ByteChar(usize),
}

/// Detects `r`/`b`/`c`/`br`/`cr`-prefixed string and byte-char literals
/// starting at `i` (which holds an ident-start char).
fn string_or_char_after_prefix(chars: &[char], i: usize) -> Option<Prefixed> {
    let c = chars[i];
    let next = chars.get(i + 1).copied();
    match (c, next) {
        ('r', Some('"')) => Some(Prefixed::Raw(i + 1)),
        ('r', Some('#')) => {
            // Distinguish r#"…"# from the raw identifier r#ident.
            let mut j = i + 1;
            while chars.get(j) == Some(&'#') {
                j += 1;
            }
            (chars.get(j) == Some(&'"')).then_some(Prefixed::Raw(i + 1))
        }
        ('b', Some('"')) | ('c', Some('"')) => Some(Prefixed::Cooked(i + 1)),
        ('b', Some('\'')) => Some(Prefixed::ByteChar(i + 1)),
        ('b' | 'c', Some('r')) => {
            let mut j = i + 2;
            while chars.get(j) == Some(&'#') {
                j += 1;
            }
            (chars.get(j) == Some(&'"')).then_some(Prefixed::Raw(i + 2))
        }
        _ => None,
    }
}

/// Consumes a raw string starting at the first `#` (or the quote) and
/// returns the index just past the closing delimiter.
fn consume_raw_string(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    let mut hashes = 0usize;
    while chars.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    debug_assert_eq!(
        chars.get(i),
        Some(&'"'),
        "raw string must open with a quote"
    );
    i += 1;
    while i < chars.len() {
        if chars[i] == '\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if chars[i] == '"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while seen < hashes && chars.get(j) == Some(&'#') {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
        }
        i += 1;
    }
    i
}

/// Consumes a cooked string starting at its opening quote and returns the
/// index just past the closing quote.
fn consume_cooked_string(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Consumes a char (or byte-char) literal starting at its opening `'` and
/// returns the index just past the closing `'`.
fn consume_char_literal(chars: &[char], mut i: usize) -> usize {
    i += 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '\'' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_produce_no_idents() {
        let src = r##"let x = "HashMap::iter inside a string"; // HashMap here too
        /* and /* nested */ HashMap */ let y = 1;"##;
        assert_eq!(idents(src), vec!["let", "x", "let", "y"]);
    }

    #[test]
    fn raw_strings_with_hashes_are_opaque() {
        let src = "let s = r#\"quote \" and // slash and HashMap\"#; let t = 2;";
        assert_eq!(idents(src), vec!["let", "s", "let", "t"]);
    }

    #[test]
    fn char_literals_do_not_open_strings_or_comments() {
        // '"' must not start a string; '/' twice must not start a comment.
        let src = "let q = '\"'; let a = '/'; let b = '/'; let done = 1;";
        assert_eq!(
            idents(src),
            vec!["let", "q", "let", "a", "let", "b", "let", "done"]
        );
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let l = lex(src);
        let lifetimes = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 3);
        assert!(l.toks.iter().all(|t| t.kind != TokKind::Char));
    }

    #[test]
    fn allow_directives_are_parsed_with_reason_and_placement() {
        let src = "let x = 1; // lint:allow(D001): keys are pre-sorted\n// lint:allow(P001, D002)\nlet y = 2;";
        let l = lex(src);
        assert_eq!(l.allows.len(), 2);
        assert_eq!(l.allows[0].rules, vec!["D001"]);
        assert_eq!(l.allows[0].reason.as_deref(), Some("keys are pre-sorted"));
        assert!(!l.allows[0].own_line);
        assert_eq!(l.allows[1].rules, vec!["P001", "D002"]);
        assert!(l.allows[1].own_line);
        assert_eq!(l.allows[1].reason, None);
    }

    #[test]
    fn line_numbers_survive_multiline_literals() {
        let src = "let a = \"two\nlines\";\nlet b = 1;";
        let l = lex(src);
        let b = l.toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 3);
    }

    #[test]
    fn raw_identifier_keeps_prefix() {
        assert_eq!(idents("let r#match = 1;"), vec!["let", "r#match"]);
    }

    #[test]
    fn hot_path_marks_record_line_and_placement() {
        let src = "// lint:hot-path\nfn enqueue() {}\nfn other() {} // lint:hot-path";
        let l = lex(src);
        assert_eq!(l.hot_marks.len(), 2);
        assert_eq!((l.hot_marks[0].line, l.hot_marks[0].own_line), (1, true));
        assert_eq!((l.hot_marks[1].line, l.hot_marks[1].own_line), (3, false));
    }

    #[test]
    fn merged_puncts() {
        let l = lex("a::b => c -> d");
        let puncts: Vec<String> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(puncts, vec!["::", "=>", "->"]);
    }
}
