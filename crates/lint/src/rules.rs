//! The rule set: each rule has a stable ID, a scope, and a token-level
//! check. See DESIGN.md §8 for the rule table and how to add a rule.

use std::collections::BTreeSet;

use crate::diag::Diagnostic;
use crate::lexer::{Tok, TokKind};
use crate::source::SourceFile;

/// Static description of one rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable identifier (`D001`, …) used in diagnostics and
    /// `lint:allow(…)` directives.
    pub id: &'static str,
    /// One-line summary shown by `--help`.
    pub summary: &'static str,
}

/// Every rule the linter knows, in report order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "D001",
        summary: "no HashMap/HashSet iteration in deterministic crates (use BTreeMap/BTreeSet)",
    },
    RuleInfo {
        id: "D002",
        summary:
            "no wall-clock reads (Instant::now/SystemTime::now) outside the bench timing block",
    },
    RuleInfo {
        id: "D003",
        summary: "no thread spawning outside runtime::pool",
    },
    RuleInfo {
        id: "D004",
        summary: "no ambient entropy (thread_rng/OsRng/from_entropy) — randomness flows from seeds",
    },
    RuleInfo {
        id: "D005",
        summary:
            "no Vec<Vec<…>> adjacency-shaped struct fields in graph/sim library code (use flat CSR)",
    },
    RuleInfo {
        id: "P001",
        summary: "no unwrap()/expect()/panic! in sim/runtime library hot paths",
    },
    RuleInfo {
        id: "P002",
        summary: "no unwrap()/expect() on I/O results in library code (propagate or justify)",
    },
    RuleInfo {
        id: "H001",
        summary: "cross-file matches on #[non_exhaustive] enums carry a `_` arm",
    },
    RuleInfo {
        id: "A001",
        summary:
            "no allocating constructs (clone/to_vec/push/collect/Box::new/vec!/String::from) in \
             fns statically reachable from a `lint:hot-path` root",
    },
    RuleInfo {
        id: "O001",
        summary: "no partial_cmp comparators or float accumulation over hash collections in \
             deterministic crates (use total_cmp / BTree collections)",
    },
    RuleInfo {
        id: "O002",
        summary: "no parallel iteration or thread-local merge state outside \
             runtime::{pool, sched}",
    },
];

/// Crates whose outputs must be exactly replayable: D001's scope.
const DETERMINISTIC_PREFIXES: &[&str] = &[
    "crates/sim/src",
    "crates/runtime/src",
    "crates/core/src",
    "crates/graph/src",
    "crates/lowerbound/src",
    "crates/bits/src",
    "crates/analysis/src",
];

/// Facts gathered across the whole file set before per-file checks run.
#[derive(Debug, Default)]
pub struct WorkspaceInfo {
    /// `#[non_exhaustive]` enum name → path of the file defining it.
    pub non_exhaustive_enums: Vec<(String, String)>,
}

impl WorkspaceInfo {
    /// Scans every file for `#[non_exhaustive]` enum declarations.
    pub fn collect(files: &[SourceFile]) -> Self {
        let mut non_exhaustive_enums = Vec::new();
        for f in files {
            let toks = &f.lexed.toks;
            for i in 0..toks.len() {
                if !toks[i].is_ident("non_exhaustive") {
                    continue;
                }
                // Walk past the attribute's `]`, any further attributes,
                // and visibility modifiers, to the `enum` keyword.
                let mut j = i + 1;
                while j < toks.len() {
                    let t = &toks[j];
                    if t.is_punct("(") {
                        j = matching(toks, j, "(", ")") + 1;
                    } else if t.is_punct("]")
                        || t.is_punct("#")
                        || t.is_punct("[")
                        || t.is_ident("pub")
                        || t.is_ident("crate")
                        || t.is_ident("derive")
                        || t.is_ident("doc")
                        || t.is_ident("cfg")
                    {
                        j += 1;
                    } else {
                        break;
                    }
                }
                if toks.get(j).is_some_and(|t| t.is_ident("enum")) {
                    if let Some(name) = toks.get(j + 1) {
                        if name.kind == TokKind::Ident {
                            non_exhaustive_enums.push((name.text.clone(), f.path.clone()));
                        }
                    }
                }
            }
        }
        WorkspaceInfo {
            non_exhaustive_enums,
        }
    }
}

/// Runs every rule (or just `only`) over one file.
pub fn check_file(file: &SourceFile, info: &WorkspaceInfo, only: Option<&str>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let want = |id: &str| only.is_none_or(|o| o == id);
    if want("D001") {
        d001(file, &mut out);
    }
    if want("D002") {
        d002(file, &mut out);
    }
    if want("D003") {
        d003(file, &mut out);
    }
    if want("D004") {
        d004(file, &mut out);
    }
    if want("D005") {
        d005(file, &mut out);
    }
    if want("P001") {
        p001(file, &mut out);
    }
    if want("P002") {
        p002(file, &mut out);
    }
    if want("H001") {
        h001(file, info, &mut out);
    }
    if want("O001") {
        crate::rules_order::o001(file, in_deterministic_scope(&file.path), &mut out);
    }
    if want("O002") {
        crate::rules_order::o002(file, &mut out);
    }
    out
}

fn in_deterministic_scope(path: &str) -> bool {
    DETERMINISTIC_PREFIXES.iter().any(|p| path.starts_with(p)) || path == "crates/bench/src/grid.rs"
}

/// `true` when the token at `i` is shipping code (not tests).
fn shipping(file: &SourceFile, i: usize) -> bool {
    !file.is_test_file && !file.in_test[i]
}

fn diag(file: &SourceFile, rule: &'static str, i: usize, message: String) -> Diagnostic {
    Diagnostic {
        rule,
        path: file.path.clone(),
        line: file.lexed.toks[i].line,
        message,
    }
}

/// Methods whose call on a hash collection observes its iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
];

/// D001: HashMap/HashSet iteration in deterministic crates.
fn d001(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !in_deterministic_scope(&file.path) {
        return;
    }
    let toks = &file.lexed.toks;
    let hash_names = hash_bindings(toks);
    let is_hash = |t: &Tok| {
        t.kind == TokKind::Ident
            && (t.text == "HashMap" || t.text == "HashSet" || hash_names.contains(&t.text))
    };
    for i in 0..toks.len() {
        if !shipping(file, i) {
            continue;
        }
        // name.iter() / self.name.keys() / …
        if toks[i].kind == TokKind::Ident
            && hash_names.contains(&toks[i].text)
            && toks.get(i + 1).is_some_and(|t| t.is_punct("."))
            && toks.get(i + 2).is_some_and(|t| {
                t.kind == TokKind::Ident && ITER_METHODS.contains(&t.text.as_str())
            })
        {
            out.push(diag(
                file,
                "D001",
                i,
                format!(
                    "`{}.{}()` iterates a HashMap/HashSet — order is nondeterministic; \
                     use BTreeMap/BTreeSet or drain through a sort",
                    toks[i].text,
                    toks[i + 2].text
                ),
            ));
        }
        // for … in <expr touching a hash collection> { … }
        if toks[i].is_ident("for") && !toks.get(i + 1).is_some_and(|t| t.is_punct("<")) {
            let Some(in_idx) = find_loop_in(toks, i) else {
                continue;
            };
            let Some(body_open) = find_at_depth(toks, in_idx + 1, "{") else {
                continue;
            };
            if let Some(h) = toks[in_idx + 1..body_open].iter().find(|t| is_hash(t)) {
                out.push(diag(
                    file,
                    "D001",
                    i,
                    format!(
                        "`for … in` over HashMap/HashSet `{}` — order is nondeterministic; \
                         use BTreeMap/BTreeSet or drain through a sort",
                        h.text
                    ),
                ));
            }
        }
    }
}

/// Identifiers bound (let/field/param) to a HashMap/HashSet type in this
/// file. A heuristic: the statement or declarator's leading tokens are
/// searched for the type names; over-approximation is harmless because
/// only *iteration* of a collected name is flagged. Shared with O001,
/// which checks float accumulation over the same bindings.
pub(crate) fn hash_bindings(toks: &[Tok]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in 0..toks.len() {
        // let [mut] NAME … = … HashMap/HashSet … ;
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            let Some(name) = toks.get(j).filter(|t| t.kind == TokKind::Ident) else {
                continue;
            };
            let mut depth = 0isize;
            for t in toks.iter().skip(j + 1).take(200) {
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        ";" if depth <= 0 => break,
                        _ => {}
                    }
                }
                if t.is_ident("HashMap") || t.is_ident("HashSet") {
                    names.insert(name.text.clone());
                    break;
                }
            }
        }
        // NAME : [&['a] [mut]] [path ::] HashMap/HashSet < …   (fields, params)
        if toks[i].kind == TokKind::Ident && toks.get(i + 1).is_some_and(|t| t.is_punct(":")) {
            for t in toks.iter().skip(i + 2).take(12) {
                if t.kind == TokKind::Punct
                    && matches!(t.text.as_str(), "," | ")" | ";" | "{" | "}" | "=")
                {
                    break;
                }
                if t.is_ident("HashMap") || t.is_ident("HashSet") {
                    names.insert(toks[i].text.clone());
                    break;
                }
            }
        }
    }
    names
}

/// Index of the loop's `in` keyword (paren-depth 0 after the pattern).
fn find_loop_in(toks: &[Tok], for_idx: usize) -> Option<usize> {
    let mut depth = 0isize;
    for (j, t) in toks.iter().enumerate().skip(for_idx + 1).take(60) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                _ => {}
            }
        }
        if depth == 0 && t.is_ident("in") {
            return Some(j);
        }
    }
    None
}

/// First index at nesting depth 0 (from `start`) holding the given punct.
fn find_at_depth(toks: &[Tok], start: usize, punct: &str) -> Option<usize> {
    let mut depth = 0isize;
    for (j, t) in toks.iter().enumerate().skip(start).take(200) {
        if t.kind != TokKind::Punct {
            continue;
        }
        if depth == 0 && t.text == punct {
            return Some(j);
        }
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            _ => {}
        }
    }
    None
}

/// D002: wall-clock reads.
fn d002(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let toks = &file.lexed.toks;
    for i in 0..toks.len() {
        if !shipping(file, i) {
            continue;
        }
        let clocky = toks[i].is_ident("Instant") || toks[i].is_ident("SystemTime");
        if clocky
            && toks.get(i + 1).is_some_and(|t| t.is_punct("::"))
            && toks.get(i + 2).is_some_and(|t| t.is_ident("now"))
        {
            out.push(diag(
                file,
                "D002",
                i,
                format!(
                    "`{}::now()` reads the wall clock — metrics and artifacts must be \
                     replayable; only the bench report footer may time itself (with an allow)",
                    toks[i].text
                ),
            ));
        }
    }
}

/// D003: thread spawning outside `runtime::pool`.
fn d003(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if file.path == "crates/runtime/src/pool.rs" {
        return;
    }
    let toks = &file.lexed.toks;
    for i in 0..toks.len() {
        if !shipping(file, i) {
            continue;
        }
        let qualified = toks[i].is_ident("thread")
            && toks.get(i + 1).is_some_and(|t| t.is_punct("::"))
            && toks.get(i + 2).is_some_and(|t| t.is_ident("spawn"));
        let method = toks[i].is_punct(".")
            && toks.get(i + 1).is_some_and(|t| t.is_ident("spawn"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct("("));
        if qualified || method {
            out.push(diag(
                file,
                "D003",
                i,
                "thread spawned outside runtime::pool — all parallelism flows through \
                 the deterministic worker pool"
                    .to_string(),
            ));
        }
    }
}

/// D004: ambient entropy.
fn d004(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let toks = &file.lexed.toks;
    for i in 0..toks.len() {
        if !shipping(file, i) {
            continue;
        }
        let t = &toks[i];
        let bad_ident = t.is_ident("thread_rng")
            || t.is_ident("from_entropy")
            || t.is_ident("OsRng")
            || t.is_ident("getrandom");
        let rand_random = t.is_ident("rand")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && toks.get(i + 2).is_some_and(|n| n.is_ident("random"));
        if bad_ident || rand_random {
            out.push(diag(
                file,
                "D004",
                i,
                format!(
                    "`{}` draws OS entropy — all randomness must flow from an explicit seed",
                    t.text
                ),
            ));
        }
    }
}

/// D005: `Vec<Vec<…>>` struct fields in graph/sim library code. The
/// engine's memory-layout invariant (DESIGN.md §11) keeps per-node data
/// flat — CSR arrays or arenas — so an adjacency-shaped nested-Vec field
/// reintroduces one heap allocation per node and pointer-chasing scans.
/// Scope is *field declarations* in brace-struct bodies: locals,
/// parameters, and return types may still stage nested data before
/// flattening. An allow must carry a reason.
fn d005(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !(file.path.starts_with("crates/graph/src") || file.path.starts_with("crates/sim/src")) {
        return;
    }
    let toks = &file.lexed.toks;
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("struct") {
            i += 1;
            continue;
        }
        // Walk to the struct's field block; a `;` first means a tuple or
        // unit struct — no brace block to scan.
        let mut depth = 0isize;
        let mut open = None;
        for (j, t) in toks.iter().enumerate().skip(i + 1) {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    ";" if depth == 0 => break,
                    "{" if depth == 0 => {
                        open = Some(j);
                        break;
                    }
                    _ => {}
                }
            }
        }
        let Some(open) = open else {
            i += 1;
            continue;
        };
        let close = matching(toks, open, "{", "}");
        for j in open..close {
            if !shipping(file, j) {
                continue;
            }
            if toks[j].is_ident("Vec")
                && toks.get(j + 1).is_some_and(|t| t.is_punct("<"))
                && toks.get(j + 2).is_some_and(|t| t.is_ident("Vec"))
                && toks.get(j + 3).is_some_and(|t| t.is_punct("<"))
            {
                out.push(diag(
                    file,
                    "D005",
                    j,
                    "`Vec<Vec<…>>` field is an adjacency-shaped layout — store it flat \
                     (CSR offsets/targets or CsrRows) or allow with a justification \
                     (`lint:allow(D005): why`)"
                        .to_string(),
                ));
            }
        }
        i = close + 1;
    }
}

/// P001: panic paths in sim/runtime library code.
fn p001(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !(file.path.starts_with("crates/sim/src") || file.path.starts_with("crates/runtime/src")) {
        return;
    }
    let toks = &file.lexed.toks;
    for i in 0..toks.len() {
        if !shipping(file, i) {
            continue;
        }
        let t = &toks[i];
        let call =
            |name: &str| t.is_ident(name) && toks.get(i + 1).is_some_and(|n| n.is_punct("("));
        let is_macro = t.is_ident("panic") && toks.get(i + 1).is_some_and(|n| n.is_punct("!"));
        if call("unwrap") || call("expect") || is_macro {
            out.push(diag(
                file,
                "P001",
                i,
                format!(
                    "`{}` can panic in an engine hot path — return an error, restructure, \
                     or allow with a justification (`lint:allow(P001): why`)",
                    t.text
                ),
            ));
        }
    }
}

/// Identifiers that mark a statement as touching the filesystem: the
/// `std::fs`/`File` entry points plus the `Read`/`Write` methods whose
/// results callers are tempted to swallow.
const IO_MARKERS: &[&str] = &[
    "File",
    "create_dir_all",
    "flush",
    "fs",
    "read_exact",
    "read_line",
    "read_to_end",
    "read_to_string",
    "remove_dir_all",
    "remove_file",
    "sync_all",
    "write_all",
];

/// P002: `unwrap()`/`expect()` on an I/O result in library code. A torn
/// disk, a read-only checkout, or a missing directory must degrade into
/// an error the sweep can report — not a panic that kills it. Scope is
/// every library file outside P001's (which already bans *all* panics in
/// sim/runtime); binaries and `main.rs` own their process and may exit
/// however they like.
fn p002(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if file.path.starts_with("crates/sim/src")
        || file.path.starts_with("crates/runtime/src")
        || file.path.contains("/bin/")
        || file.path.ends_with("main.rs")
    {
        return;
    }
    let toks = &file.lexed.toks;
    for i in 1..toks.len() {
        if !shipping(file, i) {
            continue;
        }
        let t = &toks[i];
        let call =
            |name: &str| t.is_ident(name) && toks.get(i + 1).is_some_and(|n| n.is_punct("("));
        if !(call("unwrap") || call("expect")) || !toks[i - 1].is_punct(".") {
            continue;
        }
        // Walk back through the statement: an I/O marker before the
        // nearest statement boundary means this unwrap swallows an
        // `io::Result`.
        let marker = toks[..i - 1]
            .iter()
            .rev()
            .take(60)
            .take_while(|b| {
                !(b.kind == TokKind::Punct && matches!(b.text.as_str(), ";" | "{" | "}" | "=>"))
            })
            .find(|b| b.kind == TokKind::Ident && IO_MARKERS.contains(&b.text.as_str()));
        if let Some(op) = marker {
            out.push(diag(
                file,
                "P002",
                i,
                format!(
                    "`{}` on an I/O result (`{}` in the same statement) — propagate the \
                     error or allow with a justification (`lint:allow(P002): why`)",
                    t.text, op.text
                ),
            ));
        }
    }
}

/// H001: cross-file matches on `#[non_exhaustive]` enums need a `_` arm.
/// Matches inside the enum's defining file are exempt — there, rustc's
/// exhaustiveness check on variant addition is stronger than a `_` arm.
fn h001(file: &SourceFile, info: &WorkspaceInfo, out: &mut Vec<Diagnostic>) {
    let toks = &file.lexed.toks;
    let foreign: Vec<&str> = info
        .non_exhaustive_enums
        .iter()
        .filter(|(_, def_path)| def_path != &file.path)
        .map(|(name, _)| name.as_str())
        .collect();
    if foreign.is_empty() {
        return;
    }
    for i in 0..toks.len() {
        if !toks[i].is_ident("match") || !shipping(file, i) {
            continue;
        }
        let Some(open) = find_at_depth(toks, i + 1, "{") else {
            continue;
        };
        let close = matching(toks, open, "{", "}");
        let mut matched_enum: Option<&str> = None;
        let mut has_wildcard = false;
        for pattern in arms(toks, open + 1, close) {
            if let Some(e) = pattern.iter().enumerate().find_map(|(j, t)| {
                foreign
                    .iter()
                    .find(|name| {
                        t.is_ident(name) && pattern.get(j + 1).is_some_and(|n| n.is_punct("::"))
                    })
                    .copied()
            }) {
                matched_enum = Some(e);
            }
            let catch_all = match pattern {
                [only] => only.kind == TokKind::Ident && !foreign.contains(&only.text.as_str()),
                [first, second, ..] => {
                    first.kind == TokKind::Ident
                        && !foreign.contains(&first.text.as_str())
                        && (second.is_ident("if") || second.is_punct("@"))
                }
                [] => false,
            };
            has_wildcard |= catch_all;
        }
        if let Some(e) = matched_enum {
            if !has_wildcard {
                out.push(diag(
                    file,
                    "H001",
                    i,
                    format!(
                        "match on `#[non_exhaustive]` enum `{e}` outside its defining file \
                         has no `_` arm — new variants would break this site"
                    ),
                ));
            }
        }
    }
}

/// Splits a match body into arm patterns (tokens before each `=>`).
fn arms(toks: &[Tok], start: usize, end: usize) -> Vec<&[Tok]> {
    let mut out = Vec::new();
    let mut pos = start;
    while pos < end {
        // Pattern: up to `=>` at depth 0.
        let mut depth = 0isize;
        let mut arrow = None;
        for (j, t) in toks.iter().enumerate().take(end).skip(pos) {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "=>" if depth == 0 => {
                        arrow = Some(j);
                        break;
                    }
                    _ => {}
                }
            }
        }
        let Some(arrow) = arrow else { break };
        out.push(&toks[pos..arrow]);
        // Arm body: a brace block, or an expression up to `,` at depth 0.
        if toks.get(arrow + 1).is_some_and(|t| t.is_punct("{")) {
            pos = matching(toks, arrow + 1, "{", "}") + 1;
        } else {
            let mut depth = 0isize;
            let mut next = end;
            for (j, t) in toks.iter().enumerate().take(end).skip(arrow + 1) {
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        "," if depth == 0 => {
                            next = j;
                            break;
                        }
                        _ => {}
                    }
                }
            }
            pos = next;
        }
        if toks.get(pos).is_some_and(|t| t.is_punct(",")) {
            pos += 1;
        }
    }
    out
}

/// Index of the closing punct matching the opener at `open`, or
/// `toks.len()` if unbalanced.
fn matching(toks: &[Tok], open: usize, open_p: &str, close_p: &str) -> usize {
    let mut depth = 0isize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            if t.text == open_p {
                depth += 1;
            } else if t.text == close_p {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
        }
    }
    toks.len()
}
