//! `oraclesize-lint`: a dependency-free static-analysis pass enforcing
//! the workspace's reproducibility invariants.
//!
//! The BENCH artifacts of this repository promise byte-identical output
//! across thread counts, machines, and runs; the rules here catch the
//! constructs that silently break that promise (hash-order iteration,
//! wall-clock reads, stray threads, ambient entropy) plus two hygiene
//! rules (panic paths in engine code, fragile `#[non_exhaustive]`
//! matches). It lexes the workspace's own sources with a small
//! comment/string/char-aware tokenizer — no `syn`, no network, no
//! dependencies beyond `oraclesize-runtime`'s JSON writer.
//!
//! Run it with `cargo run -p oraclesize-lint -- check`; suppress a
//! finding in place with `// lint:allow(<rule>): reason`. The rule
//! table lives in [`rules::RULES`] and DESIGN.md §8.

#![warn(missing_docs)]

pub mod diag;
pub mod lexer;
pub mod rules;
pub mod scope;
pub mod source;
pub mod walk;

use std::io;
use std::path::Path;

pub use diag::{render_json, render_text, Diagnostic};
pub use rules::{RuleInfo, RULES};
pub use source::SourceFile;

/// `true` iff `rule` is a known rule ID.
pub fn known_rule(rule: &str) -> bool {
    RULES.iter().any(|r| r.id == rule)
}

/// Lints a set of `(path, contents)` sources and returns the surviving
/// findings in report order (path, then line, then rule). `only`
/// restricts the run to a single rule ID.
pub fn analyze_sources(sources: &[(String, String)], only: Option<&str>) -> Vec<Diagnostic> {
    let files: Vec<SourceFile> = sources
        .iter()
        .map(|(path, src)| SourceFile::new(path, src))
        .collect();
    let info = rules::WorkspaceInfo::collect(&files);
    let mut out = Vec::new();
    for f in &files {
        out.extend(
            rules::check_file(f, &info, only)
                .into_iter()
                .filter(|d| !f.suppressed(d.rule, d.line)),
        );
    }
    diag::sort(&mut out);
    out
}

/// Walks the workspace at `root` and lints every `.rs` file found.
pub fn check_workspace(root: &Path, only: Option<&str>) -> io::Result<Vec<Diagnostic>> {
    let sources = walk::collect_sources(root)?;
    Ok(analyze_sources(&sources, only))
}
