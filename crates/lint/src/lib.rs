//! `oraclesize-lint`: a dependency-free static-analysis pass enforcing
//! the workspace's reproducibility invariants.
//!
//! The BENCH artifacts of this repository promise byte-identical output
//! across thread counts, machines, and runs; the rules here catch the
//! constructs that silently break that promise (hash-order iteration,
//! wall-clock reads, stray threads, ambient entropy, partial-order float
//! comparators) plus hygiene rules (panic paths in engine code, fragile
//! `#[non_exhaustive]` matches) and the workspace-level A001 pass, which
//! walks the call graph from `// lint:hot-path` roots and flags every
//! allocating construct that is statically reachable from the delivery
//! path. It lexes and item-parses the workspace's own sources with a
//! small comment/string/char-aware tokenizer — no `syn`, no network, no
//! dependencies beyond `oraclesize-runtime`'s JSON writer.
//!
//! Run it with `cargo run -p oraclesize-lint -- check`; suppress a
//! finding in place with `// lint:allow(<rule>): reason`. The rule
//! table lives in [`rules::RULES`] and DESIGN.md §8; the analyzer
//! architecture (parser, call graph, resolution policy) in §12.

#![warn(missing_docs)]

pub mod baseline;
pub mod callgraph;
pub mod diag;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod rules_alloc;
pub mod rules_order;
pub mod scope;
pub mod source;
pub mod walk;

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

pub use baseline::Baseline;
pub use callgraph::CallGraph;
pub use diag::{render_json, render_sarif, render_text, Diagnostic};
pub use rules::{RuleInfo, RULES};
pub use source::SourceFile;

/// `true` iff `rule` is a known rule ID.
pub fn known_rule(rule: &str) -> bool {
    RULES.iter().any(|r| r.id == rule)
}

/// Builds the workspace call graph for a set of `(path, contents)`
/// sources — the structure behind A001 and the `graph` subcommand.
pub fn build_graph(sources: &[(String, String)]) -> CallGraph {
    let files: Vec<SourceFile> = sources
        .iter()
        .map(|(path, src)| SourceFile::new(path, src))
        .collect();
    CallGraph::build(&files)
}

/// Lints a set of `(path, contents)` sources and returns the surviving
/// findings in report order (path, then line, then rule). `only`
/// restricts the run to a single rule ID.
pub fn analyze_sources(sources: &[(String, String)], only: Option<&str>) -> Vec<Diagnostic> {
    let files: Vec<SourceFile> = sources
        .iter()
        .map(|(path, src)| SourceFile::new(path, src))
        .collect();
    let info = rules::WorkspaceInfo::collect(&files);
    let mut out = Vec::new();
    for f in &files {
        out.extend(rules::check_file(f, &info, only));
    }
    // A001 is a workspace-level rule: it needs the whole call graph, so
    // it runs once, not per file.
    if only.is_none_or(|o| o == "A001") {
        let graph = CallGraph::build(&files);
        rules_alloc::a001(&graph, &mut out);
    }
    // Suppression runs after *all* rules so global rules honour
    // `lint:allow(…)` directives too; a diagnostic's path keys back to
    // its file.
    let by_path: BTreeMap<&str, &SourceFile> = files.iter().map(|f| (f.path.as_str(), f)).collect();
    out.retain(|d| {
        by_path
            .get(d.path.as_str())
            .is_none_or(|f| !f.suppressed(d.rule, d.line))
    });
    diag::sort(&mut out);
    out
}

/// Walks the workspace at `root` and lints every `.rs` file found.
pub fn check_workspace(root: &Path, only: Option<&str>) -> io::Result<Vec<Diagnostic>> {
    let sources = walk::collect_sources(root)?;
    Ok(analyze_sources(&sources, only))
}
