//! A-rules: allocation freedom on the delivery hot path.
//!
//! A001 walks the workspace call graph from the `// lint:hot-path` roots
//! and flags every allocating construct in a statically reachable fn:
//! `clone` / `to_vec` / `push` / `collect` method calls, `Box::new` /
//! `String::from` / `Vec::push` qualified calls, and the `vec!` macro.
//! The root set lives in the code (markers on the delivery entry points),
//! not in the linter, so a new scheme that adds an entry point opts into
//! the same guarantee by annotating it. Escapes are `lint:allow(A001)`
//! **with a reason** — the duplication-fault branch keeps its deliberate
//! copy that way.

use crate::callgraph::CallGraph;
use crate::diag::Diagnostic;
use crate::parse::Call;

/// Method-call names that allocate or copy.
const ALLOC_METHODS: &[&str] = &["clone", "to_vec", "push", "collect"];

/// Qualified call tails that allocate.
const ALLOC_PATHS: &[&[&str]] = &[&["Box", "new"], &["String", "from"], &["Vec", "push"]];

/// Bang macros that allocate.
const ALLOC_MACROS: &[&str] = &["vec"];

/// `Some(construct-name)` when the call is an allocating construct.
fn alloc_construct(call: &Call) -> Option<String> {
    if call.is_macro {
        return ALLOC_MACROS
            .contains(&call.name())
            .then(|| format!("{}!", call.name()));
    }
    if call.segments.len() > 1 {
        let tail2: Vec<&str> = call
            .segments
            .iter()
            .rev()
            .take(2)
            .rev()
            .map(String::as_str)
            .collect();
        if ALLOC_PATHS.contains(&tail2.as_slice()) {
            return Some(tail2.join("::"));
        }
    }
    (ALLOC_METHODS.contains(&call.name()) && (call.method || call.segments.len() == 1))
        .then(|| call.name().to_string())
}

/// A001: allocating constructs in fns reachable from hot-path roots.
pub fn a001(graph: &CallGraph, out: &mut Vec<Diagnostic>) {
    for i in graph.reachable_fns() {
        let f = &graph.fns[i];
        let root = graph.witness_root(i).unwrap_or("?");
        for call in &f.calls {
            if let Some(construct) = alloc_construct(call) {
                out.push(Diagnostic {
                    rule: "A001",
                    path: f.file.clone(),
                    line: call.line,
                    message: format!(
                        "`{construct}` allocates in `{}`, statically reachable from \
                         hot-path root `{root}` — the delivery path is zero-alloc by \
                         contract; restructure or allow with a justification \
                         (`lint:allow(A001): why`)",
                        f.path
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn run(sources: &[(&str, &str)]) -> Vec<Diagnostic> {
        let files: Vec<SourceFile> = sources.iter().map(|(p, s)| SourceFile::new(p, s)).collect();
        let graph = CallGraph::build(&files);
        let mut out = Vec::new();
        a001(&graph, &mut out);
        out
    }

    #[test]
    fn flags_allocation_in_transitively_reachable_fn() {
        let src = "// lint:hot-path\n\
                   pub fn entry() { helper(); }\n\
                   fn helper(v: &[u32]) -> Vec<u32> { v.to_vec() }\n\
                   fn cold(v: &[u32]) -> Vec<u32> { v.to_vec() }\n";
        let diags = run(&[("crates/sim/src/a.rs", src)]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 3);
        assert!(diags[0].message.contains("sim::a::helper"));
        assert!(diags[0].message.contains("sim::a::entry"));
    }

    #[test]
    fn flags_every_listed_construct() {
        let src = "// lint:hot-path\n\
                   pub fn entry(x: &X, v: &mut Vec<u32>) {\n\
                   \x20   let _ = x.clone();\n\
                   \x20   v.push(1);\n\
                   \x20   let _ = Box::new(2);\n\
                   \x20   let _ = vec![3];\n\
                   \x20   let _ = String::from(\"s\");\n\
                   \x20   let _: Vec<u32> = v.iter().copied().collect();\n\
                   }\n";
        let diags = run(&[("crates/sim/src/a.rs", src)]);
        let lines: Vec<u32> = diags.iter().map(|d| d.line).collect();
        assert_eq!(lines, vec![3, 4, 5, 6, 7, 8], "{diags:?}");
    }

    #[test]
    fn unreachable_allocations_are_silent() {
        let src = "pub fn not_hot(v: &[u32]) -> Vec<u32> { v.to_vec() }\n";
        assert!(run(&[("crates/sim/src/a.rs", src)]).is_empty());
    }
}
