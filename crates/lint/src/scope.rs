//! A lightweight item tracker: which tokens live inside test code.
//!
//! Test code is any brace region introduced by an item carrying a
//! `#[test]`-like attribute (`#[test]`, `#[cfg(test)]`, `#[cfg(all(test,
//! …))]` — any attribute naming `test` without `not`), or by `mod tests`.
//! Regions nest; a `#[cfg(test)]` attribute on a braceless item
//! (`mod tests;`, `use …;`) covers nothing here — the out-of-line file is
//! classified by path instead (see [`crate::walk::is_test_path`]).

use crate::lexer::{Tok, TokKind};

/// For each token, `true` iff it is inside a test region.
pub fn test_regions(toks: &[Tok]) -> Vec<bool> {
    let mut out = Vec::with_capacity(toks.len());
    let mut depth = 0usize;
    let mut test_stack: Vec<usize> = Vec::new();
    // Brace depth at which a pending test attribute / `mod tests` header
    // waits for its item's opening brace.
    let mut pending: Option<usize> = None;

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        // An attribute: scan it whole so its own tokens (e.g. the `test`
        // in `#[cfg(test)]`) never leak into rule passes as "code", and
        // decide whether it marks the next item as test.
        if t.is_punct("#") && toks.get(i + 1).is_some_and(|n| n.is_punct("[")) {
            let close = matching_bracket(toks, i + 1);
            let body = &toks[i + 2..close.min(toks.len())];
            let has_test = body
                .iter()
                .any(|t| t.is_ident("test") || t.is_ident("tests"));
            let has_not = body.iter().any(|t| t.is_ident("not"));
            if has_test && !has_not {
                pending = Some(depth);
            }
            let end = close.min(toks.len().saturating_sub(1));
            for _ in i..=end {
                out.push(!test_stack.is_empty());
            }
            i = close + 1;
            continue;
        }
        out.push(!test_stack.is_empty());
        if t.is_ident("mod") && toks.get(i + 1).is_some_and(|n| n.is_ident("tests")) {
            pending = Some(depth);
        } else if t.is_punct("{") {
            if pending == Some(depth) {
                test_stack.push(depth);
                pending = None;
            }
            depth += 1;
        } else if t.is_punct("}") {
            depth = depth.saturating_sub(1);
            if test_stack.last() == Some(&depth) {
                test_stack.pop();
            }
        } else if t.is_punct(";") && pending == Some(depth) {
            // Attribute applied to a braceless item: nothing to cover.
            pending = None;
        }
        i += 1;
    }
    out
}

/// Index of the `]` matching the `[` at `open`, or `toks.len()` if
/// unbalanced.
fn matching_bracket(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0isize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
        }
    }
    toks.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn test_flag_of(src: &str, ident: &str) -> bool {
        let l = lex(src);
        let flags = test_regions(&l.toks);
        let idx = l
            .toks
            .iter()
            .position(|t| t.is_ident(ident))
            .unwrap_or_else(|| panic!("ident {ident} not found"));
        flags[idx]
    }

    #[test]
    fn cfg_test_module_is_test_code() {
        let src = "fn shipping() {}\n#[cfg(test)]\nmod tests {\n fn helper() { inner(); }\n}";
        assert!(!test_flag_of(src, "shipping"));
        assert!(test_flag_of(src, "inner"));
    }

    #[test]
    fn test_attribute_on_fn() {
        let src = "#[test]\nfn check() { probe(); }\nfn lib_code() { real(); }";
        assert!(test_flag_of(src, "probe"));
        assert!(!test_flag_of(src, "real"));
    }

    #[test]
    fn cfg_not_test_is_not_test_code() {
        let src = "#[cfg(not(test))]\nmod shipping { fn real_work() {} }";
        assert!(!test_flag_of(src, "real_work"));
    }

    #[test]
    fn nested_cfg_test_pops_correctly() {
        let src = "mod a {\n#[cfg(test)]\nmod tests { fn t() { x(); } }\nfn after() { y(); }\n}";
        assert!(test_flag_of(src, "x"));
        assert!(!test_flag_of(src, "y"));
    }

    #[test]
    fn braceless_cfg_test_item_covers_nothing() {
        let src = "#[cfg(test)]\nmod tests;\nfn shipping() { live(); }";
        assert!(!test_flag_of(src, "live"));
    }

    #[test]
    fn mod_tests_without_attribute_counts() {
        let src = "mod tests { fn t() { x(); } }";
        assert!(test_flag_of(src, "x"));
    }
}
