//! Workspace file discovery: every `.rs` file under the roots the rules
//! care about, in a deterministic order.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directories under the workspace root that are scanned for sources.
const SCAN_ROOTS: &[&str] = &["src", "crates", "tests", "examples"];

/// Path components that are never scanned.
const SKIP_COMPONENTS: &[&str] = &["target", "vendor", ".git"];

/// `true` when the path is test or bench code by location alone:
/// `tests/`, `benches/`, or a `tests.rs` out-of-line module.
pub fn is_test_path(path: &str) -> bool {
    let parts: Vec<&str> = path.split('/').collect();
    parts.iter().any(|p| *p == "tests" || *p == "benches")
        || parts.last().is_some_and(|p| *p == "tests.rs")
}

/// Collects every `.rs` file under the scan roots, returning
/// `(relative_path, contents)` pairs sorted by path. Relative paths use
/// forward slashes on every platform.
pub fn collect_sources(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut files: Vec<PathBuf> = Vec::new();
    for scan in SCAN_ROOTS {
        let dir = root.join(scan);
        if dir.is_dir() {
            visit(&dir, &mut files)?;
        }
    }
    let mut out = Vec::with_capacity(files.len());
    for f in files {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(&f)
            .components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect::<Vec<_>>()
            .join("/");
        let contents = fs::read_to_string(&f)?;
        out.push((rel, contents));
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

fn visit(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if !SKIP_COMPONENTS.contains(&name.as_str()) {
                visit(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_paths_by_location() {
        assert!(is_test_path("crates/sim/tests/props.rs"));
        assert!(is_test_path("tests/lower_bounds.rs"));
        assert!(is_test_path("crates/bench/benches/lower_bounds.rs"));
        assert!(is_test_path("crates/sim/src/engine/tests.rs"));
        assert!(!is_test_path("crates/sim/src/engine/run.rs"));
        assert!(!is_test_path("crates/sim/src/testkit.rs"));
    }
}
