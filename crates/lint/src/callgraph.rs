//! The workspace call graph: every shipping `fn`, keyed by qualified
//! path, with conservatively name-resolved call edges and reachability
//! from the `// lint:hot-path` roots.
//!
//! Resolution policy (documented in DESIGN.md §12): a qualified call
//! `a::B::foo(…)` resolves to every fn whose qualified path ends with the
//! written segments; an unqualified call `foo(…)` or method call
//! `recv.foo(…)` resolves by name through three widening tiers — same
//! file, then same crate, then the whole workspace — stopping at the
//! first tier with candidates. Method calls only resolve to fns that take
//! `self`. This over-approximates real dispatch (any same-named method
//! anywhere in the tier is an edge) and never under-approximates within a
//! tier, which is the right bias for a rule that must prove absence of
//! allocation.

use std::collections::BTreeMap;

use oraclesize_runtime::Json;

use crate::parse::{crate_of, parse_fns, Call, FnDef};
use crate::source::SourceFile;

/// The assembled graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Every shipping fn, sorted by (file, line) — a deterministic
    /// function of the source set regardless of discovery order.
    pub fns: Vec<FnDef>,
    /// `edges[i]` = indices of fns the `i`-th fn may call, sorted, deduped.
    pub edges: Vec<Vec<usize>>,
    /// Indices of `// lint:hot-path` roots.
    pub roots: Vec<usize>,
    /// `reachable[i]` = index of the root that reaches fn `i` (itself for
    /// a root), `None` when unreachable from every root.
    pub reachable: Vec<Option<usize>>,
}

impl CallGraph {
    /// Parses every file and assembles the graph. The result is
    /// independent of the order of `files`.
    pub fn build(files: &[SourceFile]) -> CallGraph {
        let mut fns: Vec<FnDef> = files.iter().flat_map(parse_fns).collect();
        fns.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));

        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.as_str()).or_default().push(i);
        }

        let mut edges: Vec<Vec<usize>> = Vec::with_capacity(fns.len());
        for caller in &fns {
            let mut out: Vec<usize> = caller
                .calls
                .iter()
                .flat_map(|c| resolve(&fns, &by_name, caller, c))
                .collect();
            out.sort_unstable();
            out.dedup();
            edges.push(out);
        }

        let roots: Vec<usize> = fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.hot)
            .map(|(i, _)| i)
            .collect();

        // BFS from every root, recording a witness root per reached fn.
        // Roots are visited in index order, so the witness is the first
        // (file, line)-ordered root that reaches the fn — deterministic.
        let mut reachable: Vec<Option<usize>> = vec![None; fns.len()];
        let mut queue: Vec<usize> = Vec::new();
        for &r in &roots {
            if reachable[r].is_none() {
                reachable[r] = Some(r);
                queue.push(r);
            }
            while let Some(v) = queue.pop() {
                let witness = reachable[v];
                for &w in &edges[v] {
                    if reachable[w].is_none() {
                        reachable[w] = witness;
                        queue.push(w);
                    }
                }
            }
        }

        CallGraph {
            fns,
            edges,
            roots,
            reachable,
        }
    }

    /// All reachable fn indices, in graph order.
    pub fn reachable_fns(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.fns.len()).filter(|&i| self.reachable[i].is_some())
    }

    /// The qualified path of the witness root for fn `i`, if reachable.
    pub fn witness_root(&self, i: usize) -> Option<&str> {
        self.reachable[i].map(|r| self.fns[r].path.as_str())
    }

    /// Renders the graph as a deterministic JSON document: roots, then one
    /// record per fn with its resolved callee paths and reachability.
    pub fn to_json(&self) -> Json {
        let roots: Vec<Json> = self
            .roots
            .iter()
            .map(|&r| Json::Str(self.fns[r].path.clone()))
            .collect();
        let functions: Vec<Json> = self
            .fns
            .iter()
            .enumerate()
            .map(|(i, f)| {
                let mut callees: Vec<String> = self.edges[i]
                    .iter()
                    .map(|&j| self.fns[j].path.clone())
                    .collect();
                callees.sort();
                callees.dedup();
                let callees: Vec<Json> = callees.into_iter().map(Json::Str).collect();
                let mut obj = Json::obj()
                    .field("path", f.path.as_str())
                    .field("file", f.file.as_str())
                    .field("line", u64::from(f.line))
                    .field("method", f.is_method)
                    .field("hot", f.hot)
                    .field("calls", f.calls.len() as u64)
                    .field("resolved", callees)
                    .field("reachable", self.reachable[i].is_some());
                if let Some(root) = self.witness_root(i) {
                    obj = obj.field("root", root);
                }
                obj
            })
            .collect();
        Json::obj()
            .field("roots", roots)
            .field("functions", functions)
            .field("count", self.fns.len())
    }
}

/// Resolves one call site to candidate fn indices.
fn resolve(
    fns: &[FnDef],
    by_name: &BTreeMap<&str, Vec<usize>>,
    caller: &FnDef,
    call: &Call,
) -> Vec<usize> {
    let Some(candidates) = by_name.get(call.name()) else {
        return Vec::new();
    };
    if call.segments.len() > 1 {
        // Qualified: match the written segments against the tail of each
        // candidate's qualified path.
        return candidates
            .iter()
            .copied()
            .filter(|&i| path_ends_with(&fns[i].path, &call.segments))
            .collect();
    }
    // Unqualified / method call: widening tiers. Method calls only bind
    // to fns with a `self` receiver.
    let eligible = |i: usize| !call.method || fns[i].is_method;
    let caller_crate = crate_of(&caller.file);
    let tiers: [&dyn Fn(usize) -> bool; 3] = [
        &|i: usize| fns[i].file == caller.file,
        &|i: usize| crate_of(&fns[i].file) == caller_crate,
        &|_: usize| true,
    ];
    for tier in tiers {
        let hits: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&i| eligible(i) && tier(i))
            .collect();
        if !hits.is_empty() {
            return hits;
        }
    }
    Vec::new()
}

/// `true` when the `::`-separated `path` ends with exactly `segments`.
fn path_ends_with(path: &str, segments: &[String]) -> bool {
    let parts: Vec<&str> = path.split("::").collect();
    if segments.len() > parts.len() {
        return false;
    }
    parts[parts.len() - segments.len()..]
        .iter()
        .zip(segments)
        .all(|(p, s)| *p == s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(sources: &[(&str, &str)]) -> CallGraph {
        let files: Vec<SourceFile> = sources.iter().map(|(p, s)| SourceFile::new(p, s)).collect();
        CallGraph::build(&files)
    }

    const HOT: &str = "// lint:hot-path\n\
                       pub fn entry() { helper(); }\n\
                       fn helper() { leaf(); }\n\
                       fn leaf() {}\n\
                       fn unrelated() {}\n";

    #[test]
    fn reachability_follows_edges_from_roots() {
        let g = graph(&[("crates/sim/src/a.rs", HOT)]);
        let by_path: BTreeMap<&str, usize> = g
            .fns
            .iter()
            .enumerate()
            .map(|(i, f)| (f.path.as_str(), i))
            .collect();
        assert!(g.reachable[by_path["sim::a::entry"]].is_some());
        assert!(g.reachable[by_path["sim::a::helper"]].is_some());
        assert!(g.reachable[by_path["sim::a::leaf"]].is_some());
        assert!(g.reachable[by_path["sim::a::unrelated"]].is_none());
        assert_eq!(
            g.witness_root(by_path["sim::a::leaf"]),
            Some("sim::a::entry")
        );
    }

    #[test]
    fn same_file_tier_shadows_workspace_candidates() {
        let g = graph(&[
            (
                "crates/sim/src/a.rs",
                "// lint:hot-path\nfn entry() { helper(); }\nfn helper() {}\n",
            ),
            (
                "crates/graph/src/b.rs",
                "fn helper() { stray(); }\nfn stray() {}\n",
            ),
        ]);
        let stray = g.fns.iter().position(|f| f.name == "stray").unwrap();
        assert!(
            g.reachable[stray].is_none(),
            "same-file helper must win over the cross-crate one"
        );
    }

    #[test]
    fn cross_crate_method_calls_resolve_at_the_workspace_tier() {
        let g = graph(&[
            (
                "crates/sim/src/a.rs",
                "// lint:hot-path\nfn entry(g: &G) { g.degree(0); }\n",
            ),
            (
                "crates/graph/src/b.rs",
                "pub struct G;\nimpl G {\n    pub fn degree(&self, v: usize) -> usize { v }\n}\n",
            ),
        ]);
        let degree = g.fns.iter().position(|f| f.name == "degree").unwrap();
        assert!(g.reachable[degree].is_some());
    }

    #[test]
    fn method_calls_do_not_bind_to_free_fns() {
        let g = graph(&[
            (
                "crates/sim/src/a.rs",
                "// lint:hot-path\nfn entry(x: &X) { x.emit(); }\n",
            ),
            (
                "crates/runtime/src/b.rs",
                "pub fn emit() { stray(); }\nfn stray() {}\n",
            ),
        ]);
        let stray = g.fns.iter().position(|f| f.name == "stray").unwrap();
        assert!(g.reachable[stray].is_none());
    }

    #[test]
    fn qualified_calls_match_path_tails() {
        let g = graph(&[
            (
                "crates/sim/src/a.rs",
                "// lint:hot-path\nfn entry() { other::Slab::insert(); }\n",
            ),
            (
                "crates/sim/src/other.rs",
                "pub struct Slab;\nimpl Slab {\n    pub fn insert() {}\n}\n\
                 pub struct Map;\nimpl Map {\n    pub fn insert() {}\n}\n",
            ),
        ]);
        let slab = g.fns.iter().position(|f| f.path.contains("Slab")).unwrap();
        let map = g.fns.iter().position(|f| f.path.contains("Map")).unwrap();
        assert!(g.reachable[slab].is_some());
        assert!(g.reachable[map].is_none());
    }

    #[test]
    fn graph_json_is_independent_of_file_order() {
        let a = ("crates/sim/src/a.rs", HOT);
        let b = (
            "crates/graph/src/b.rs",
            "pub fn leaf() {}\npub fn lone() { leaf(); }\n",
        );
        let fwd = graph(&[a, b]).to_json().render();
        let rev = graph(&[b, a]).to_json().render();
        assert_eq!(fwd, rev);
        assert!(oraclesize_runtime::json::parses(&fwd));
    }
}
