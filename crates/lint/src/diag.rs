//! Diagnostics: ordering and text/JSON rendering.

use oraclesize_runtime::Json;

/// One finding, anchored to a file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule ID (`D001`, …).
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

/// Sorts diagnostics into report order: path, then line, then rule.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
}

/// `path:line: RULE: message`, one finding per line, plus a summary line.
pub fn render_text(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&format!(
            "{}:{}: {}: {}\n",
            d.path, d.line, d.rule, d.message
        ));
    }
    if diags.is_empty() {
        out.push_str("lint: clean\n");
    } else {
        out.push_str(&format!("lint: {} finding(s)\n", diags.len()));
    }
    out
}

/// A deterministic JSON document: `{"findings": […], "count": N}` with
/// findings already in report order.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let findings: Vec<Json> = diags
        .iter()
        .map(|d| {
            Json::obj()
                .field("rule", d.rule)
                .field("path", d.path.as_str())
                .field("line", d.line as u64)
                .field("message", d.message.as_str())
        })
        .collect();
    Json::obj()
        .field("findings", findings)
        .field("count", diags.len())
        .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(rule: &'static str, path: &str, line: u32) -> Diagnostic {
        Diagnostic {
            rule,
            path: path.to_string(),
            line,
            message: "m".to_string(),
        }
    }

    #[test]
    fn sort_is_path_then_line_then_rule() {
        let mut v = vec![
            d("P001", "b.rs", 1),
            d("D002", "a.rs", 9),
            d("D001", "a.rs", 9),
            d("D001", "a.rs", 2),
        ];
        sort(&mut v);
        let order: Vec<(&str, u32, &str)> = v
            .iter()
            .map(|x| (x.path.as_str(), x.line, x.rule))
            .collect();
        assert_eq!(
            order,
            vec![
                ("a.rs", 2, "D001"),
                ("a.rs", 9, "D001"),
                ("a.rs", 9, "D002"),
                ("b.rs", 1, "P001")
            ]
        );
    }

    #[test]
    fn json_output_parses_and_is_deterministic() {
        let v = vec![d("D001", "a.rs", 2), d("D003", "b.rs", 7)];
        let first = render_json(&v);
        assert!(oraclesize_runtime::json::parses(&first));
        assert_eq!(first, render_json(&v));
        assert!(first.contains("\"count\": 2"));
    }
}
