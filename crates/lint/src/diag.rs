//! Diagnostics: ordering and text/JSON rendering.

use oraclesize_runtime::Json;

/// One finding, anchored to a file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule ID (`D001`, …).
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

/// Sorts diagnostics into report order: path, then line, then rule.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
}

/// `path:line: RULE: message`, one finding per line, plus a summary line.
pub fn render_text(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&format!(
            "{}:{}: {}: {}\n",
            d.path, d.line, d.rule, d.message
        ));
    }
    if diags.is_empty() {
        out.push_str("lint: clean\n");
    } else {
        out.push_str(&format!("lint: {} finding(s)\n", diags.len()));
    }
    out
}

/// A deterministic JSON document: `{"findings": […], "count": N}` with
/// findings already in report order.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let findings: Vec<Json> = diags
        .iter()
        .map(|d| {
            Json::obj()
                .field("rule", d.rule)
                .field("path", d.path.as_str())
                .field("line", d.line as u64)
                .field("message", d.message.as_str())
        })
        .collect();
    Json::obj()
        .field("findings", findings)
        .field("count", diags.len())
        .render()
}

/// Renders diagnostics as a SARIF 2.1.0 log (one run, one tool driver),
/// so CI can upload the findings and annotate PRs inline. The document is
/// rendered through `runtime::Json` and is deterministic: rules appear in
/// registry order, results in report order, and every result carries a
/// `ruleIndex` into the driver's rule table.
pub fn render_sarif(diags: &[Diagnostic]) -> String {
    let rules: Vec<Json> = crate::rules::RULES
        .iter()
        .map(|r| {
            Json::obj()
                .field("id", r.id)
                .field("shortDescription", Json::obj().field("text", r.summary))
                .field("defaultConfiguration", Json::obj().field("level", "error"))
        })
        .collect();
    let results: Vec<Json> = diags
        .iter()
        .map(|d| {
            let rule_index = crate::rules::RULES
                .iter()
                .position(|r| r.id == d.rule)
                .unwrap_or(0);
            Json::obj()
                .field("ruleId", d.rule)
                .field("ruleIndex", rule_index as u64)
                .field("level", "error")
                .field("message", Json::obj().field("text", d.message.as_str()))
                .field(
                    "locations",
                    vec![Json::obj().field(
                        "physicalLocation",
                        Json::obj()
                            .field(
                                "artifactLocation",
                                Json::obj()
                                    .field("uri", d.path.as_str())
                                    .field("uriBaseId", "SRCROOT"),
                            )
                            .field("region", Json::obj().field("startLine", u64::from(d.line))),
                    )],
                )
        })
        .collect();
    let driver = Json::obj()
        .field("name", "oraclesize-lint")
        .field("informationUri", "https://example.org/oraclesize")
        .field("rules", rules);
    Json::obj()
        .field(
            "$schema",
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
        )
        .field("version", "2.1.0")
        .field(
            "runs",
            vec![Json::obj()
                .field("tool", Json::obj().field("driver", driver))
                .field("results", results)
                .field("columnKind", "utf16CodeUnits")],
        )
        .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(rule: &'static str, path: &str, line: u32) -> Diagnostic {
        Diagnostic {
            rule,
            path: path.to_string(),
            line,
            message: "m".to_string(),
        }
    }

    #[test]
    fn sort_is_path_then_line_then_rule() {
        let mut v = vec![
            d("P001", "b.rs", 1),
            d("D002", "a.rs", 9),
            d("D001", "a.rs", 9),
            d("D001", "a.rs", 2),
        ];
        sort(&mut v);
        let order: Vec<(&str, u32, &str)> = v
            .iter()
            .map(|x| (x.path.as_str(), x.line, x.rule))
            .collect();
        assert_eq!(
            order,
            vec![
                ("a.rs", 2, "D001"),
                ("a.rs", 9, "D001"),
                ("a.rs", 9, "D002"),
                ("b.rs", 1, "P001")
            ]
        );
    }

    #[test]
    fn sarif_output_is_valid_json_with_rule_metadata() {
        let v = vec![d("D001", "a.rs", 2), d("A001", "b.rs", 7)];
        let s = render_sarif(&v);
        assert!(oraclesize_runtime::json::parses(&s));
        assert_eq!(s, render_sarif(&v), "must be deterministic");
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"ruleId\": \"D001\""));
        assert!(s.contains("\"startLine\": 7"));
        assert!(s.contains("\"name\": \"oraclesize-lint\""));
        // Empty runs still render a complete, parseable log.
        let empty = render_sarif(&[]);
        assert!(oraclesize_runtime::json::parses(&empty));
        assert!(empty.contains("\"results\": []"));
    }

    #[test]
    fn json_output_parses_and_is_deterministic() {
        let v = vec![d("D001", "a.rs", 2), d("D003", "b.rs", 7)];
        let first = render_json(&v);
        assert!(oraclesize_runtime::json::parses(&first));
        assert_eq!(first, render_json(&v));
        assert!(first.contains("\"count\": 2"));
    }
}
