//! Item-level parsing: `fn` definitions and the calls they make.
//!
//! Built directly on the token stream of [`crate::lexer`] — no `syn`, no
//! dependencies. The parser tracks inline `mod`/`impl` nesting with a
//! brace-depth scope stack, assigns every `fn` a qualified path of the
//! form `crate::module::Type::name`, records whether it takes `self`,
//! whether a `// lint:hot-path` marker covers its header line, and
//! extracts every call expression (`foo(…)`, `a::B::foo(…)`), receiver
//! method call (`.foo(…)`), and bang macro (`vec![…]`) in its body. The
//! output feeds [`crate::callgraph`].

use crate::lexer::{Tok, TokKind};
use crate::source::SourceFile;

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Call {
    /// Path segments as written: `[foo]` for `foo(…)` and `.foo(…)`,
    /// `[Vec, push]` for `Vec::push(…)`, `[a, B, foo]` for `a::B::foo(…)`.
    pub segments: Vec<String>,
    /// `true` for a receiver method call (`recv.foo(…)`).
    pub method: bool,
    /// `true` for a bang macro (`vec![…]`, `panic!(…)`).
    pub is_macro: bool,
    /// 1-based source line of the call's name token.
    pub line: u32,
}

impl Call {
    /// The called name (last path segment).
    pub fn name(&self) -> &str {
        self.segments.last().map(String::as_str).unwrap_or("")
    }
}

/// One `fn` definition with its qualified path and extracted calls.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Bare function name.
    pub name: String,
    /// Qualified path: `crate::module::Type::name` (the `Type` segment is
    /// present only for fns inside an `impl` block).
    pub path: String,
    /// Workspace-relative file the fn lives in.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// `true` when the parameter list starts with a `self` receiver.
    pub is_method: bool,
    /// `true` when a `// lint:hot-path` marker covers the header line.
    pub hot: bool,
    /// Calls made directly in this fn's body (nested fns excluded).
    pub calls: Vec<Call>,
}

/// Derives the leading module path from a workspace-relative file path:
/// `crates/sim/src/engine/delivery.rs` → `["sim", "engine", "delivery"]`,
/// `src/cli.rs` → `["oraclesize", "cli"]`. `lib.rs`, `mod.rs`, and
/// `main.rs` name their parent module rather than adding a segment.
pub fn module_base(path: &str) -> Vec<String> {
    let mut parts: Vec<&str> = path.split('/').collect();
    let file = parts.pop().unwrap_or("");
    let mut out: Vec<String> = Vec::new();
    match parts.first() {
        Some(&"crates") if parts.len() >= 2 => {
            out.push(parts[1].to_string());
            // Skip `crates/<name>/src`; keep deeper directories as modules.
            for p in parts.iter().skip(2).filter(|p| **p != "src") {
                out.push((*p).to_string());
            }
        }
        Some(&"src") => {
            out.push("oraclesize".to_string());
            for p in parts.iter().skip(1) {
                out.push((*p).to_string());
            }
        }
        _ => {
            for p in &parts {
                out.push((*p).to_string());
            }
        }
    }
    if !matches!(file, "lib.rs" | "mod.rs" | "main.rs") {
        if let Some(stem) = file.strip_suffix(".rs") {
            out.push(stem.to_string());
        }
    }
    out
}

/// The crate segment of a workspace-relative path (`sim` for
/// `crates/sim/src/…`, `oraclesize` for `src/…`).
pub fn crate_of(path: &str) -> String {
    module_base(path).first().cloned().unwrap_or_default()
}

/// Scope-stack entry: what kind of item opened the brace at this depth.
#[derive(Debug)]
enum Scope {
    /// `{` from an expression, block, fn body, struct, enum, …
    Plain,
    /// `mod name {` — pushed one module segment.
    Mod,
    /// `impl … Type … {` — pushed the type name as a segment.
    Impl,
}

/// Keywords that look like calls when followed by `(` but are not.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "fn", "loop", "in", "as", "let", "move", "else",
    "unsafe", "where", "impl", "dyn",
];

/// Parses every shipping (non-test) `fn` in `file`.
pub fn parse_fns(file: &SourceFile) -> Vec<FnDef> {
    let toks = &file.lexed.toks;
    let base = module_base(&file.path);
    let mut fns = Vec::new();
    let mut path_stack: Vec<String> = base;
    let mut scopes: Vec<Scope> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_ident("mod") && toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident) {
            // `mod name {` opens a module scope; `mod name;` does not.
            if toks.get(i + 2).is_some_and(|n| n.is_punct("{")) {
                path_stack.push(toks[i + 1].text.clone());
                scopes.push(Scope::Mod);
                i += 3;
                continue;
            }
            i += 2;
            continue;
        }
        if t.is_ident("impl") {
            if let Some((ty, open)) = impl_type(toks, i) {
                path_stack.push(ty);
                scopes.push(Scope::Impl);
                i = open + 1;
                continue;
            }
        }
        if t.is_ident("trait") && toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident) {
            // `trait Name … {` scopes its method declarations like an impl.
            let mut k = i + 2;
            let mut angle = 0isize;
            let mut open = None;
            while k < toks.len() {
                match toks[k].text.as_str() {
                    "<" if toks[k].kind == TokKind::Punct => angle += 1,
                    ">" if toks[k].kind == TokKind::Punct => angle -= 1,
                    "{" if toks[k].kind == TokKind::Punct && angle <= 0 => {
                        open = Some(k);
                        break;
                    }
                    ";" if toks[k].kind == TokKind::Punct && angle <= 0 => break,
                    _ => {}
                }
                k += 1;
            }
            if let Some(open) = open {
                path_stack.push(toks[i + 1].text.clone());
                scopes.push(Scope::Impl);
                i = open + 1;
                continue;
            }
        }
        if t.is_ident("fn") && toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident) {
            let (def, next) = parse_one_fn(file, toks, i, &path_stack);
            if let Some(def) = def {
                if !file.is_test_file && !file.in_test[i] {
                    fns.push(def);
                }
            }
            i = next;
            continue;
        }
        if t.is_punct("{") {
            scopes.push(Scope::Plain);
        } else if t.is_punct("}") {
            match scopes.pop() {
                Some(Scope::Mod) | Some(Scope::Impl) => {
                    path_stack.pop();
                }
                _ => {}
            }
        }
        i += 1;
    }
    fns
}

/// For an `impl` at `i`, the implemented type's name and the index of the
/// body's `{`. `None` when no brace follows at angle/paren depth 0.
fn impl_type(toks: &[Tok], i: usize) -> Option<(String, usize)> {
    let mut j = i + 1;
    let mut angle = 0isize;
    let mut after_for: Option<usize> = None;
    let mut open = None;
    while j < toks.len() {
        let t = &toks[j];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "{" if angle <= 0 => {
                    open = Some(j);
                    break;
                }
                ";" if angle <= 0 => return None,
                _ => {}
            }
        } else if t.is_ident("for") && angle <= 0 {
            after_for = Some(j + 1);
        }
        j += 1;
    }
    let open = open?;
    // The type is the first plain identifier of the (post-`for`) type
    // expression, skipping `&`, lifetimes, and leading path segments are
    // kept simple: the *last* ident before `<`/`{` is the type name
    // (`csr::CsrRows` → `CsrRows`).
    let start = after_for.unwrap_or(i + 1);
    let mut name: Option<String> = None;
    let mut angle2 = 0isize;
    for t in &toks[start..open] {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "<" => angle2 += 1,
                ">" => angle2 -= 1,
                _ => {}
            }
        } else if t.kind == TokKind::Ident && angle2 <= 0 && !t.is_ident("where") {
            name = Some(t.text.clone());
        }
    }
    Some((name.unwrap_or_else(|| "_".to_string()), open))
}

/// Parses the `fn` at `i` (which holds the `fn` keyword). Returns the
/// definition (None for fn-pointer types or parse failures) and the index
/// to resume the outer scan at — just past the signature for bodyless
/// declarations, at the body's `{` for bodied fns (so the outer scan
/// descends into the body and registers nested items too).
fn parse_one_fn(
    file: &SourceFile,
    toks: &[Tok],
    i: usize,
    path_stack: &[String],
) -> (Option<FnDef>, usize) {
    let name_tok = &toks[i + 1];
    let name = name_tok.text.clone();
    // Walk the signature: past generics `<…>` and params `(…)` to a `{`
    // (body) or `;` (trait declaration / extern) at depth 0.
    let mut j = i + 2;
    let mut angle = 0isize;
    let mut paren = 0isize;
    let mut params: Option<(usize, usize)> = None;
    let mut params_open = None;
    let mut body_open = None;
    while j < toks.len() {
        let t = &toks[j];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "->" => {} // not a closing angle
                "(" => {
                    if paren == 0 && angle <= 0 && params_open.is_none() {
                        params_open = Some(j);
                    }
                    paren += 1;
                }
                ")" => {
                    paren -= 1;
                    if paren == 0 {
                        if let Some(open) = params_open {
                            if params.is_none() {
                                params = Some((open, j));
                            }
                        }
                    }
                }
                "{" if paren == 0 && angle <= 0 => {
                    body_open = Some(j);
                    break;
                }
                ";" if paren == 0 && angle <= 0 => break,
                _ => {}
            }
        }
        j += 1;
    }
    let is_method = params.is_some_and(|(open, close)| {
        toks[open + 1..close]
            .iter()
            .take(4)
            .any(|t| t.is_ident("self"))
            && toks[open + 1..close]
                .iter()
                .take_while(|t| !t.is_ident("self"))
                .all(|t| {
                    t.kind == TokKind::Lifetime
                        || (t.kind == TokKind::Punct && matches!(t.text.as_str(), "&" | "mut"))
                        || t.is_ident("mut")
                })
    });
    let mut full_path = path_stack.to_vec();
    full_path.push(name.clone());
    let def = |calls: Vec<Call>| FnDef {
        name: name.clone(),
        path: full_path.join("::"),
        file: file.path.clone(),
        line: toks[i].line,
        is_method,
        hot: file.hot_lines.contains(&toks[i].line),
        calls,
    };
    match body_open {
        None => (Some(def(Vec::new())), j + 1),
        Some(open) => {
            let close = matching_brace(toks, open);
            let calls = extract_calls(toks, open + 1, close);
            (Some(def(calls)), open)
        }
    }
}

/// Extracts calls from a body token range, skipping nested `fn` bodies
/// (the nested fn is its own graph node; its calls belong to it).
fn extract_calls(toks: &[Tok], start: usize, end: usize) -> Vec<Call> {
    let mut out = Vec::new();
    let mut j = start;
    while j < end.min(toks.len()) {
        let t = &toks[j];
        // Nested fn definition: skip its whole body.
        if t.is_ident("fn") && toks.get(j + 1).is_some_and(|n| n.kind == TokKind::Ident) {
            let mut k = j + 2;
            let mut paren = 0isize;
            while k < end {
                match toks[k].text.as_str() {
                    "(" => paren += 1,
                    ")" => paren -= 1,
                    "{" if paren == 0 && toks[k].kind == TokKind::Punct => {
                        k = matching_brace(toks, k);
                        break;
                    }
                    ";" if paren == 0 && toks[k].kind == TokKind::Punct => break,
                    _ => {}
                }
                k += 1;
            }
            j = k + 1;
            continue;
        }
        if t.kind == TokKind::Ident && !NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
            let next = toks.get(j + 1);
            if next.is_some_and(|n| n.is_punct("(")) {
                let method = j > 0 && toks[j - 1].is_punct(".");
                let segments = if method {
                    vec![t.text.clone()]
                } else {
                    path_segments_ending_at(toks, j)
                };
                out.push(Call {
                    segments,
                    method,
                    is_macro: false,
                    line: t.line,
                });
            } else if next.is_some_and(|n| n.is_punct("!"))
                && toks
                    .get(j + 2)
                    .is_some_and(|n| n.is_punct("(") || n.is_punct("[") || n.is_punct("{"))
            {
                out.push(Call {
                    segments: vec![t.text.clone()],
                    method: false,
                    is_macro: true,
                    line: t.line,
                });
            }
        }
        j += 1;
    }
    out
}

/// The `::`-joined path ending at the ident at `j`: for `a::B::foo` with
/// `j` at `foo`, returns `[a, B, foo]`.
fn path_segments_ending_at(toks: &[Tok], j: usize) -> Vec<String> {
    let mut rev = vec![toks[j].text.clone()];
    let mut k = j;
    while k >= 2 && toks[k - 1].is_punct("::") && toks[k - 2].kind == TokKind::Ident {
        rev.push(toks[k - 2].text.clone());
        k -= 2;
    }
    rev.reverse();
    rev
}

/// Index of the `}` matching the `{` at `open`, or `toks.len()`.
fn matching_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0isize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            if t.text == "{" {
                depth += 1;
            } else if t.text == "}" {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
        }
    }
    toks.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fns(path: &str, src: &str) -> Vec<FnDef> {
        parse_fns(&SourceFile::new(path, src))
    }

    #[test]
    fn module_base_maps_workspace_layouts() {
        assert_eq!(
            module_base("crates/sim/src/engine/delivery.rs"),
            vec!["sim", "engine", "delivery"]
        );
        assert_eq!(module_base("crates/sim/src/lib.rs"), vec!["sim"]);
        assert_eq!(
            module_base("crates/sim/src/engine/mod.rs"),
            vec!["sim", "engine"]
        );
        assert_eq!(module_base("src/cli.rs"), vec!["oraclesize", "cli"]);
        assert_eq!(
            module_base("src/bin/oraclesize.rs"),
            vec!["oraclesize", "bin", "oraclesize"]
        );
    }

    #[test]
    fn fn_paths_include_mod_and_impl_nesting() {
        let src = "pub struct S;\n\
                   impl S {\n    pub fn get(&self) -> u32 { helper() }\n}\n\
                   mod inner {\n    fn helper() -> u32 { 7 }\n}\n\
                   fn free() {}\n";
        let got = fns("crates/graph/src/csr.rs", src);
        let paths: Vec<&str> = got.iter().map(|f| f.path.as_str()).collect();
        assert_eq!(
            paths,
            vec![
                "graph::csr::S::get",
                "graph::csr::inner::helper",
                "graph::csr::free"
            ]
        );
        assert!(got[0].is_method);
        assert!(!got[1].is_method);
    }

    #[test]
    fn impl_trait_for_type_uses_the_type() {
        let src = "impl<'a> Display for NetState<'a> {\n    fn fmt(&self) {}\n}\n";
        let got = fns("crates/sim/src/engine/delivery.rs", src);
        assert_eq!(got[0].path, "sim::engine::delivery::NetState::fmt");
    }

    #[test]
    fn calls_are_extracted_with_shape() {
        let src = "fn f(x: Vec<u32>) {\n\
                   \x20   helper();\n\
                   \x20   x.push(1);\n\
                   \x20   Box::new(2);\n\
                   \x20   let v = vec![1, 2];\n\
                   \x20   drop(v);\n\
                   }\n";
        let got = fns("crates/sim/src/x.rs", src);
        let f = &got[0];
        let shapes: Vec<(String, bool, bool)> = f
            .calls
            .iter()
            .map(|c| (c.segments.join("::"), c.method, c.is_macro))
            .collect();
        assert_eq!(
            shapes,
            vec![
                ("helper".into(), false, false),
                ("push".into(), true, false),
                ("Box::new".into(), false, false),
                ("vec".into(), false, true),
                ("drop".into(), false, false),
            ]
        );
    }

    #[test]
    fn hot_path_marker_marks_the_fn() {
        let src = "// lint:hot-path\nfn hot() {}\nfn cold() {}\n";
        let got = fns("crates/sim/src/x.rs", src);
        assert!(got[0].hot);
        assert!(!got[1].hot);
    }

    #[test]
    fn test_region_fns_are_excluded() {
        let src = "fn shipping() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n";
        let got = fns("crates/sim/src/x.rs", src);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].name, "shipping");
    }

    #[test]
    fn nested_fn_bodies_do_not_leak_calls() {
        let src = "fn outer() {\n\
                   \x20   fn inner() { inner_call(); }\n\
                   \x20   outer_call();\n\
                   }\n";
        let got = fns("crates/sim/src/x.rs", src);
        let outer = got.iter().find(|f| f.name == "outer").unwrap();
        assert_eq!(outer.calls.len(), 1);
        assert_eq!(outer.calls[0].name(), "outer_call");
        assert!(got.iter().any(|f| f.name == "inner"));
    }

    #[test]
    fn keyword_parens_are_not_calls() {
        let src = "fn f(x: bool) -> u32 {\n    if (x) { 1 } else { 2 }\n}\n";
        let got = fns("crates/sim/src/x.rs", src);
        assert!(got[0].calls.is_empty());
    }
}
