//! Baseline suppression: adopt the linter on a tree with known findings.
//!
//! A baseline file is exactly the linter's own JSON report
//! (`check --format json`): `{"findings": [{"rule", "path", "line", …},
//! …], "count": N}`. `check --baseline <file>` drops findings listed in
//! it and fails only on *new* ones, so a rule can land before the last
//! fix does. The committed `lint-baseline.json` is empty — the fix pass
//! of PR 8 cleared it — and stays in the repo as the ratchet: adding to
//! it is a reviewed decision, not a side effect.

use std::collections::BTreeSet;

use crate::diag::Diagnostic;

/// A parsed set of known findings.
#[derive(Debug, Default)]
pub struct Baseline {
    keys: BTreeSet<(String, String, u32)>,
}

impl Baseline {
    /// Parses baseline text (the `check --format json` document). `None`
    /// when the text is not a valid report — a torn baseline must fail
    /// loudly, not silently suppress everything.
    pub fn parse(text: &str) -> Option<Baseline> {
        let doc = oraclesize_runtime::json::parse(text)?;
        let findings = match doc.get("findings")? {
            oraclesize_runtime::Json::Array(items) => items,
            _ => return None,
        };
        let mut keys = BTreeSet::new();
        for f in findings {
            let rule = f.get("rule")?.as_str()?.to_string();
            let path = f.get("path")?.as_str()?.to_string();
            let line = u32::try_from(f.get("line")?.as_u64()?).ok()?;
            keys.insert((rule, path, line));
        }
        Some(Baseline { keys })
    }

    /// Number of baselined findings.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` when the baseline lists nothing.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// `true` when the diagnostic is a known finding.
    pub fn contains(&self, d: &Diagnostic) -> bool {
        // Key by (rule, path, line): stable across runs of the same tree;
        // a moved finding resurfaces, which is the safe direction.
        self.keys
            .contains(&(d.rule.to_string(), d.path.clone(), d.line))
    }

    /// Splits diagnostics into (new, suppressed-by-baseline).
    pub fn partition(&self, diags: Vec<Diagnostic>) -> (Vec<Diagnostic>, usize) {
        let total = diags.len();
        let fresh: Vec<Diagnostic> = diags.into_iter().filter(|d| !self.contains(d)).collect();
        let suppressed = total - fresh.len();
        (fresh, suppressed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::render_json;

    fn d(rule: &'static str, path: &str, line: u32) -> Diagnostic {
        Diagnostic {
            rule,
            path: path.to_string(),
            line,
            message: "m".to_string(),
        }
    }

    #[test]
    fn round_trips_the_json_report_format() {
        let diags = vec![d("D001", "a.rs", 2), d("P001", "b.rs", 9)];
        let b = Baseline::parse(&render_json(&diags)).expect("own report must parse");
        assert_eq!(b.len(), 2);
        assert!(b.contains(&d("D001", "a.rs", 2)));
        assert!(!b.contains(&d("D001", "a.rs", 3)));
        let (fresh, suppressed) = b.partition(vec![d("D001", "a.rs", 2), d("D002", "c.rs", 1)]);
        assert_eq!(suppressed, 1);
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].rule, "D002");
    }

    #[test]
    fn empty_baseline_suppresses_nothing() {
        let b = Baseline::parse(&render_json(&[])).unwrap();
        assert!(b.is_empty());
        let (fresh, suppressed) = b.partition(vec![d("D001", "a.rs", 2)]);
        assert_eq!((fresh.len(), suppressed), (1, 0));
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(Baseline::parse("not json").is_none());
        assert!(Baseline::parse("{\"count\": 0}").is_none());
        assert!(Baseline::parse("{\"findings\": [{\"rule\": \"D001\"}], \"count\": 1}").is_none());
    }
}
