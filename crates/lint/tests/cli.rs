//! End-to-end CLI contract: exit 0 clean, 1 with findings (and a
//! clickable file:line on stdout), 2 on usage errors.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

fn fixture_tree(name: &str, src: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/lint-fixtures")
        .join(name);
    let src_dir = dir.join("crates/sim/src");
    fs::create_dir_all(&src_dir).expect("create fixture tree");
    fs::write(src_dir.join("fixture.rs"), src).expect("write fixture");
    dir
}

fn run(args: &[&str], root: &PathBuf) -> (Option<i32>, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_oraclesize-lint"))
        .args(args)
        .arg("--root")
        .arg(root)
        .output()
        .expect("run linter binary");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn violations_exit_one_with_file_line() {
    let dir = fixture_tree("bad", "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n");
    let (code, stdout) = run(&["check"], &dir);
    assert_eq!(code, Some(1));
    assert!(
        stdout.contains("crates/sim/src/fixture.rs:1: P001:"),
        "stdout was: {stdout}"
    );

    let (code, stdout) = run(&["check", "--format", "json"], &dir);
    assert_eq!(code, Some(1));
    assert!(stdout.contains("\"count\": 1"), "stdout was: {stdout}");
    assert!(
        stdout.contains("\"rule\": \"P001\""),
        "stdout was: {stdout}"
    );
}

#[test]
fn clean_tree_exits_zero() {
    let dir = fixture_tree("clean", "pub fn f(x: u32) -> u32 { x + 1 }\n");
    let (code, stdout) = run(&["check"], &dir);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("lint: clean"), "stdout was: {stdout}");
}

#[test]
fn unknown_rule_exits_two() {
    let dir = fixture_tree("usage", "pub fn f() {}\n");
    let (code, _) = run(&["check", "--rule", "Z999"], &dir);
    assert_eq!(code, Some(2));
}

#[test]
fn sarif_format_renders_a_valid_log_and_exits_one() {
    let dir = fixture_tree("sarif", "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n");
    let (code, stdout) = run(&["check", "--format", "sarif"], &dir);
    assert_eq!(code, Some(1));
    assert!(
        stdout.contains("\"version\": \"2.1.0\""),
        "stdout was: {stdout}"
    );
    assert!(
        stdout.contains("\"ruleId\": \"P001\""),
        "stdout was: {stdout}"
    );
    assert!(
        stdout.contains("\"uri\": \"crates/sim/src/fixture.rs\""),
        "stdout was: {stdout}"
    );
}

#[test]
fn baseline_suppresses_known_findings_and_flags_new_ones() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    let dir = fixture_tree("baseline", src);
    // Capture the current findings as the baseline…
    let (code, report) = run(&["check", "--format", "json"], &dir);
    assert_eq!(code, Some(1));
    let baseline = dir.join("baseline.json");
    fs::write(&baseline, &report).expect("write baseline");
    // …and the same tree now passes against it.
    let (code, stdout) = run(&["check", "--baseline", baseline.to_str().unwrap()], &dir);
    assert_eq!(code, Some(0), "stdout was: {stdout}");
    assert!(
        stdout.contains("1 baselined finding(s)"),
        "stdout was: {stdout}"
    );
    // A new finding on another line still fails.
    let worse =
        "fn f(x: Option<u32>) -> u32 { x.unwrap() }\nfn g(y: Option<u32>) -> u32 { y.unwrap() }\n";
    fs::write(dir.join("crates/sim/src/fixture.rs"), worse).expect("grow fixture");
    let (code, stdout) = run(&["check", "--baseline", baseline.to_str().unwrap()], &dir);
    assert_eq!(code, Some(1), "stdout was: {stdout}");
    assert!(stdout.contains("fixture.rs:2"), "stdout was: {stdout}");
    assert!(!stdout.contains("fixture.rs:1:"), "stdout was: {stdout}");
}

#[test]
fn malformed_baseline_exits_two() {
    let dir = fixture_tree("badbase", "pub fn f(x: u32) -> u32 { x + 1 }\n");
    let baseline = dir.join("baseline.json");
    fs::write(&baseline, "not a report").expect("write baseline");
    let (code, _) = run(&["check", "--baseline", baseline.to_str().unwrap()], &dir);
    assert_eq!(code, Some(2));
    let (code, _) = run(&["check", "--baseline", "/nonexistent/b.json"], &dir);
    assert_eq!(code, Some(2));
}

#[test]
fn graph_subcommand_dumps_deterministic_json() {
    let dir = fixture_tree(
        "graph",
        "// lint:hot-path\npub fn entry() { helper(); }\nfn helper() {}\n",
    );
    let (code, first) = run(&["graph"], &dir);
    assert_eq!(code, Some(0));
    assert!(
        first.contains("\"roots\": [\"sim::fixture::entry\"]"),
        "stdout was: {first}"
    );
    assert!(first.contains("\"reachable\": true"), "stdout was: {first}");
    let (_, second) = run(&["graph"], &dir);
    assert_eq!(
        first, second,
        "graph dump must be byte-identical across runs"
    );
}

#[test]
fn self_check_restricts_findings_to_the_lint_crate() {
    // The fixture tree has a finding in crates/sim — self-check must not
    // report it (and the tree has no crates/lint sources at all).
    let dir = fixture_tree("selfcheck", "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n");
    let (code, stdout) = run(&["self-check"], &dir);
    assert_eq!(code, Some(0), "stdout was: {stdout}");
    assert!(stdout.contains("lint: clean"), "stdout was: {stdout}");
}

#[test]
fn paths_prefix_restricts_findings() {
    let dir = fixture_tree("paths", "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n");
    let (code, _) = run(&["check", "--paths", "crates/sim/"], &dir);
    assert_eq!(code, Some(1));
    let (code, stdout) = run(&["check", "--paths", "crates/graph/"], &dir);
    assert_eq!(code, Some(0), "stdout was: {stdout}");
}
