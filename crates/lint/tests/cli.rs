//! End-to-end CLI contract: exit 0 clean, 1 with findings (and a
//! clickable file:line on stdout), 2 on usage errors.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

fn fixture_tree(name: &str, src: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/lint-fixtures")
        .join(name);
    let src_dir = dir.join("crates/sim/src");
    fs::create_dir_all(&src_dir).expect("create fixture tree");
    fs::write(src_dir.join("fixture.rs"), src).expect("write fixture");
    dir
}

fn run(args: &[&str], root: &PathBuf) -> (Option<i32>, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_oraclesize-lint"))
        .args(args)
        .arg("--root")
        .arg(root)
        .output()
        .expect("run linter binary");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn violations_exit_one_with_file_line() {
    let dir = fixture_tree("bad", "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n");
    let (code, stdout) = run(&["check"], &dir);
    assert_eq!(code, Some(1));
    assert!(
        stdout.contains("crates/sim/src/fixture.rs:1: P001:"),
        "stdout was: {stdout}"
    );

    let (code, stdout) = run(&["check", "--format", "json"], &dir);
    assert_eq!(code, Some(1));
    assert!(stdout.contains("\"count\": 1"), "stdout was: {stdout}");
    assert!(
        stdout.contains("\"rule\": \"P001\""),
        "stdout was: {stdout}"
    );
}

#[test]
fn clean_tree_exits_zero() {
    let dir = fixture_tree("clean", "pub fn f(x: u32) -> u32 { x + 1 }\n");
    let (code, stdout) = run(&["check"], &dir);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("lint: clean"), "stdout was: {stdout}");
}

#[test]
fn unknown_rule_exits_two() {
    let dir = fixture_tree("usage", "pub fn f() {}\n");
    let (code, _) = run(&["check", "--rule", "Z999"], &dir);
    assert_eq!(code, Some(2));
}
