//! Fixture tests: every rule has at least one firing and one clean
//! fixture, exercised through the library API with synthetic paths.

use oraclesize_lint::{analyze_sources, render_json, Diagnostic};

fn lint_one(path: &str, src: &str) -> Vec<Diagnostic> {
    analyze_sources(&[(path.to_string(), src.to_string())], None)
}

fn rules_of(diags: &[Diagnostic]) -> Vec<&str> {
    diags.iter().map(|d| d.rule).collect()
}

// ---------------------------------------------------------------- D001

#[test]
fn d001_fires_on_hashmap_method_iteration() {
    let src = "use std::collections::HashMap;\n\
               fn f(m: &HashMap<u32, u32>) -> u32 {\n\
               \x20   m.keys().sum()\n\
               }\n";
    let diags = lint_one("crates/sim/src/fixture.rs", src);
    assert_eq!(rules_of(&diags), vec!["D001"]);
    assert_eq!(diags[0].line, 3);
}

#[test]
fn d001_fires_on_for_loop_over_hashset() {
    let src = "use std::collections::HashSet;\n\
               fn g(s: &HashSet<u32>) {\n\
               \x20   for x in s.iter() { drop(x); }\n\
               }\n\
               fn h() {\n\
               \x20   let mut seen = std::collections::HashSet::new();\n\
               \x20   seen.insert(1);\n\
               \x20   for x in &seen { drop(x); }\n\
               }\n";
    let diags = lint_one("crates/graph/src/fixture.rs", src);
    assert!(diags.iter().any(|d| d.rule == "D001" && d.line == 3));
    assert!(diags.iter().any(|d| d.rule == "D001" && d.line == 8));
}

#[test]
fn d001_clean_on_btreemap_and_lookup_only_hashmap() {
    let src = "use std::collections::{BTreeMap, HashMap};\n\
               fn f(m: &BTreeMap<u32, u32>, h: &HashMap<u32, u32>) -> u32 {\n\
               \x20   m.keys().sum::<u32>() + h.get(&1).copied().unwrap_or(0)\n\
               }\n";
    assert!(lint_one("crates/sim/src/fixture.rs", src).is_empty());
}

#[test]
fn d001_ignores_out_of_scope_crates_and_tests() {
    let src = "use std::collections::HashMap;\n\
               fn f(m: &HashMap<u32, u32>) -> u32 { m.keys().sum() }\n";
    // `explore` is not a deterministic crate.
    assert!(lint_one("crates/explore/src/fixture.rs", src).is_empty());
    // Test modules inside a deterministic crate are exempt.
    let test_src = "#[cfg(test)]\nmod tests {\n use std::collections::HashMap;\n\
                    fn f(m: &HashMap<u32, u32>) -> u32 { m.keys().sum() }\n}\n";
    assert!(lint_one("crates/sim/src/fixture.rs", test_src).is_empty());
}

#[test]
fn d001_skips_mentions_inside_strings_and_comments() {
    let src = "fn f() -> &'static str {\n\
               \x20   // a HashMap .iter() in a comment is fine\n\
               \x20   \"for x in HashMap::new().iter()\"\n\
               }\n";
    assert!(lint_one("crates/sim/src/fixture.rs", src).is_empty());
}

// ---------------------------------------------------------------- D002

#[test]
fn d002_fires_on_instant_now() {
    let src = "fn f() {\n    let t = std::time::Instant::now();\n    drop(t);\n}\n";
    let diags = lint_one("crates/core/src/fixture.rs", src);
    assert_eq!(rules_of(&diags), vec!["D002"]);
    assert_eq!(diags[0].line, 2);
}

#[test]
fn d002_fires_on_system_time_anywhere() {
    let src = "fn f() -> std::time::SystemTime { std::time::SystemTime::now() }\n";
    assert_eq!(
        rules_of(&lint_one("crates/analysis/src/fixture.rs", src)),
        vec!["D002"]
    );
}

#[test]
fn d002_suppressed_by_trailing_allow() {
    let src = "fn f() {\n\
               \x20   let t = std::time::Instant::now(); // lint:allow(D002): report footer only\n\
               \x20   drop(t);\n\
               }\n";
    assert!(lint_one("crates/bench/src/fixture.rs", src).is_empty());
}

// ---------------------------------------------------------------- D003

#[test]
fn d003_fires_on_thread_spawn() {
    let src = "fn f() {\n    std::thread::spawn(|| {});\n}\n";
    let diags = lint_one("crates/sim/src/fixture.rs", src);
    assert_eq!(rules_of(&diags), vec!["D003"]);
    assert_eq!(diags[0].line, 2);
}

#[test]
fn d003_fires_on_scoped_spawn_method() {
    let src = "fn f(scope: &S) {\n    scope.spawn(|| {});\n}\n";
    assert_eq!(
        rules_of(&lint_one("crates/bench/src/fixture.rs", src)),
        vec!["D003"]
    );
}

#[test]
fn d003_exempts_the_pool_module() {
    let src = "fn f() {\n    std::thread::spawn(|| {});\n}\n";
    assert!(lint_one("crates/runtime/src/pool.rs", src).is_empty());
}

// ---------------------------------------------------------------- D004

#[test]
fn d004_fires_on_thread_rng_and_os_rng() {
    let src = "fn f() {\n\
               \x20   let mut a = rand::thread_rng();\n\
               \x20   let mut b = StdRng::from_entropy();\n\
               }\n";
    let diags = lint_one("crates/explore/src/fixture.rs", src);
    assert_eq!(rules_of(&diags), vec!["D004", "D004"]);
    assert_eq!((diags[0].line, diags[1].line), (2, 3));
}

#[test]
fn d004_clean_on_seeded_rng() {
    let src = "fn f() {\n    let mut rng = StdRng::seed_from_u64(7);\n    drop(rng);\n}\n";
    assert!(lint_one("crates/explore/src/fixture.rs", src).is_empty());
}

// ---------------------------------------------------------------- D005

#[test]
fn d005_fires_on_nested_vec_struct_field() {
    let src = "pub struct Adjacency {\n\
               \x20   pub adj: Vec<Vec<(usize, usize)>>,\n\
               \x20   labels: Vec<u64>,\n\
               }\n";
    let diags = lint_one("crates/graph/src/fixture.rs", src);
    assert_eq!(rules_of(&diags), vec!["D005"]);
    assert_eq!(diags[0].line, 2);
}

#[test]
fn d005_clean_on_flat_fields_locals_and_params() {
    // CSR-shaped fields are the point of the rule…
    let flat = "pub struct Csr {\n\
                \x20   offsets: Vec<usize>,\n\
                \x20   targets: Vec<usize>,\n\
                }\n";
    assert!(lint_one("crates/graph/src/fixture.rs", flat).is_empty());
    // …and staging nested data in locals, params, or return types is
    // fine: only the stored layout is constrained.
    let staged = "fn flatten(adj: Vec<Vec<usize>>) -> Vec<usize> {\n\
                  \x20   let nested: Vec<Vec<usize>> = vec![adj.concat()];\n\
                  \x20   nested.concat()\n\
                  }\n";
    assert!(lint_one("crates/sim/src/fixture.rs", staged).is_empty());
}

#[test]
fn d005_scoped_to_graph_and_sim_and_exempts_tests() {
    let src = "struct T { rows: Vec<Vec<String>> }\n";
    assert!(lint_one("crates/analysis/src/fixture.rs", src).is_empty());
    let in_test = "#[cfg(test)]\nmod tests {\n struct T { rows: Vec<Vec<u8>> }\n}\n";
    assert!(lint_one("crates/graph/src/fixture.rs", in_test).is_empty());
}

#[test]
fn d005_allow_requires_reason() {
    let bare = "struct B {\n\
                \x20   adj: Vec<Vec<u8>>, // lint:allow(D005)\n\
                }\n";
    assert_eq!(
        rules_of(&lint_one("crates/graph/src/fixture.rs", bare)),
        vec!["D005"]
    );
    let justified = "struct B {\n\
                     \x20   // lint:allow(D005): builder staging area, flattened by build()\n\
                     \x20   adj: Vec<Vec<u8>>,\n\
                     }\n";
    assert!(lint_one("crates/graph/src/fixture.rs", justified).is_empty());
}

// ---------------------------------------------------------------- P001

#[test]
fn p001_fires_on_unwrap_expect_panic_in_engine_code() {
    let src = "fn f(x: Option<u32>) -> u32 {\n\
               \x20   let a = x.unwrap();\n\
               \x20   let b = x.expect(\"present\");\n\
               \x20   if a != b { panic!(\"mismatch\"); }\n\
               \x20   a\n\
               }\n";
    let diags = lint_one("crates/sim/src/fixture.rs", src);
    assert_eq!(rules_of(&diags), vec!["P001", "P001", "P001"]);
    assert_eq!(
        diags.iter().map(|d| d.line).collect::<Vec<_>>(),
        vec![2, 3, 4]
    );
}

#[test]
fn p001_scoped_to_sim_and_runtime_only() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    assert_eq!(
        rules_of(&lint_one("crates/runtime/src/fixture.rs", src)),
        vec!["P001"]
    );
    assert!(lint_one("crates/graph/src/fixture.rs", src).is_empty());
}

#[test]
fn p001_exempts_tests_and_honors_justified_allows() {
    let in_test = "#[cfg(test)]\nmod tests {\n fn f(x: Option<u32>) -> u32 { x.unwrap() }\n}\n";
    assert!(lint_one("crates/sim/src/fixture.rs", in_test).is_empty());

    let justified = "fn f(x: Option<u32>) -> u32 {\n\
         \x20   // lint:allow(P001): x is Some by the caller's invariant\n\
         \x20   x.unwrap()\n\
         }\n";
    assert!(lint_one("crates/sim/src/fixture.rs", justified).is_empty());
}

#[test]
fn p001_allow_without_reason_does_not_suppress() {
    let src = "fn f(x: Option<u32>) -> u32 {\n\
               \x20   x.unwrap() // lint:allow(P001)\n\
               }\n";
    assert_eq!(
        rules_of(&lint_one("crates/sim/src/fixture.rs", src)),
        vec!["P001"]
    );
}

// ---------------------------------------------------------------- P002

#[test]
fn p002_fires_on_unwrap_and_expect_of_io_results() {
    let src = "fn f() -> String {\n\
               \x20   std::fs::create_dir_all(\"out\").unwrap();\n\
               \x20   std::fs::read_to_string(\"out/x\").expect(\"readable\")\n\
               }\n";
    let diags = lint_one("crates/bench/src/fixture.rs", src);
    assert_eq!(rules_of(&diags), vec!["P002", "P002"]);
    assert_eq!(diags.iter().map(|d| d.line).collect::<Vec<_>>(), vec![2, 3]);
}

#[test]
fn p002_fires_on_write_and_flush_methods() {
    let src = "use std::io::Write;\n\
               fn f(w: &mut std::fs::File) {\n\
               \x20   w.write_all(b\"x\").unwrap();\n\
               \x20   w.flush().unwrap();\n\
               }\n";
    let diags = lint_one("crates/analysis/src/fixture.rs", src);
    assert_eq!(rules_of(&diags), vec!["P002", "P002"]);
}

#[test]
fn p002_clean_on_non_io_unwrap_and_propagated_io() {
    // A plain Option unwrap is not P002's business…
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    assert!(lint_one("crates/bench/src/fixture.rs", src).is_empty());
    // …and neither is I/O whose error is propagated.
    let propagated = "fn f() -> std::io::Result<String> {\n\
                      \x20   std::fs::read_to_string(\"x\")\n\
                      }\n";
    assert!(lint_one("crates/bench/src/fixture.rs", propagated).is_empty());
    // A statement boundary resets the marker: the unwrap is on a
    // different statement than the I/O call.
    let separated = "fn f() -> u32 {\n\
                     \x20   let _ = std::fs::remove_file(\"x\");\n\
                     \x20   Some(1).unwrap()\n\
                     }\n";
    assert!(lint_one("crates/bench/src/fixture.rs", separated).is_empty());
}

#[test]
fn p002_exempts_binaries_tests_and_p001_scope() {
    let src = "fn f() { std::fs::remove_file(\"x\").unwrap(); }\n";
    // Binaries and main.rs own their exit path.
    assert!(lint_one("crates/bench/src/bin/fixture.rs", src).is_empty());
    assert!(lint_one("crates/lint/src/main.rs", src).is_empty());
    // sim/runtime are P001's turf — the same line reports once, as P001.
    assert_eq!(
        rules_of(&lint_one("crates/sim/src/fixture.rs", src)),
        vec!["P001"]
    );
    // Tests may unwrap freely.
    let in_test =
        "#[cfg(test)]\nmod tests {\n fn f() { std::fs::remove_file(\"x\").unwrap(); }\n}\n";
    assert!(lint_one("crates/bench/src/fixture.rs", in_test).is_empty());
}

#[test]
fn p002_allow_requires_reason() {
    let bare = "fn f() {\n\
                \x20   std::fs::remove_file(\"x\").unwrap() // lint:allow(P002)\n\
                }\n";
    assert_eq!(
        rules_of(&lint_one("crates/bench/src/fixture.rs", bare)),
        vec!["P002"]
    );
    let justified = "fn f() {\n\
                     \x20   std::fs::remove_file(\"x\").unwrap() // lint:allow(P002): scratch dir, test-only helper\n\
                     }\n";
    assert!(lint_one("crates/bench/src/fixture.rs", justified).is_empty());
}

// ---------------------------------------------------------------- H001

const ENUM_DEF: &str = "#[non_exhaustive]\npub enum Verdict { Yes, No }\n\
                        fn local(v: &Verdict) -> u32 {\n\
                        \x20   match v { Verdict::Yes => 1, Verdict::No => 0 }\n\
                        }\n";

fn lint_pair(user_src: &str) -> Vec<Diagnostic> {
    analyze_sources(
        &[
            (
                "crates/core/src/verdict.rs".to_string(),
                ENUM_DEF.to_string(),
            ),
            ("crates/sim/src/user.rs".to_string(), user_src.to_string()),
        ],
        None,
    )
}

#[test]
fn h001_fires_on_cross_file_match_without_wildcard() {
    let user = "use crate::Verdict;\n\
                fn f(v: &Verdict) -> u32 {\n\
                \x20   match v {\n\
                \x20       Verdict::Yes => 1,\n\
                \x20       Verdict::No => 0,\n\
                \x20   }\n\
                }\n";
    let diags = lint_pair(user);
    assert_eq!(rules_of(&diags), vec!["H001"]);
    assert_eq!(diags[0].path, "crates/sim/src/user.rs");
    assert_eq!(diags[0].line, 3);
}

#[test]
fn h001_clean_with_wildcard_or_binding_arm() {
    let underscore = "fn f(v: &Verdict) -> u32 {\n\
                      \x20   match v { Verdict::Yes => 1, _ => 0 }\n\
                      }\n";
    assert!(lint_pair(underscore).is_empty());
    let binding = "fn f(v: &Verdict) -> u32 {\n\
                   \x20   match v { Verdict::Yes => 1, other => why(other) }\n\
                   }\n";
    assert!(lint_pair(binding).is_empty());
}

#[test]
fn h001_exempts_the_defining_file() {
    // ENUM_DEF itself matches exhaustively in the defining file; rustc's
    // own exhaustiveness check covers that site.
    let diags = analyze_sources(
        &[(
            "crates/core/src/verdict.rs".to_string(),
            ENUM_DEF.to_string(),
        )],
        None,
    );
    assert!(diags.is_empty());
}

// ----------------------------------------------------- output contracts

#[test]
fn diagnostics_sort_path_then_line_and_json_is_deterministic() {
    let sources = vec![
        (
            "crates/sim/src/zz.rs".to_string(),
            "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n".to_string(),
        ),
        (
            "crates/sim/src/aa.rs".to_string(),
            "fn g() {\n    std::thread::spawn(|| {});\n    let t = std::time::Instant::now();\n}\n"
                .to_string(),
        ),
    ];
    let diags = analyze_sources(&sources, None);
    let keys: Vec<(&str, u32, &str)> = diags
        .iter()
        .map(|d| (d.path.as_str(), d.line, d.rule))
        .collect();
    assert_eq!(
        keys,
        vec![
            ("crates/sim/src/aa.rs", 2, "D003"),
            ("crates/sim/src/aa.rs", 3, "D002"),
            ("crates/sim/src/zz.rs", 1, "P001"),
        ]
    );
    let json = render_json(&diags);
    assert!(oraclesize_runtime::json::parses(&json));
    assert_eq!(json, render_json(&analyze_sources(&sources, None)));
    let aa = json.find("aa.rs").unwrap();
    let zz = json.find("zz.rs").unwrap();
    assert!(aa < zz, "findings must be ordered by path");
}

#[test]
fn rule_filter_restricts_output() {
    let src = "fn g(x: Option<u32>) {\n\
               \x20   std::thread::spawn(|| {});\n\
               \x20   x.unwrap();\n\
               }\n";
    let sources = vec![("crates/sim/src/fixture.rs".to_string(), src.to_string())];
    let only_d003 = analyze_sources(&sources, Some("D003"));
    assert_eq!(rules_of(&only_d003), vec!["D003"]);
    let only_p001 = analyze_sources(&sources, Some("P001"));
    assert_eq!(rules_of(&only_p001), vec!["P001"]);
}

// ---------------------------------------------------------------- A001

#[test]
fn a001_fires_on_allocation_reachable_from_hot_root() {
    let src = "// lint:hot-path\n\
               pub fn entry() { helper(); }\n\
               fn helper(v: &[u32]) -> Vec<u32> { v.to_vec() }\n";
    let diags = lint_one("crates/sim/src/fixture.rs", src);
    assert_eq!(rules_of(&diags), vec!["A001"]);
    assert_eq!(diags[0].line, 3);
    assert!(diags[0].message.contains("sim::fixture::entry"));
}

#[test]
fn a001_crosses_crates_through_method_calls() {
    let sources = vec![
        (
            "crates/sim/src/engine.rs".to_string(),
            "// lint:hot-path\npub fn entry(b: &B) { b.grow(); }\n".to_string(),
        ),
        (
            "crates/bits/src/b.rs".to_string(),
            "pub struct B { v: Vec<u32> }\nimpl B {\n    pub fn grow(&mut self) { self.v.push(1); }\n}\n"
                .to_string(),
        ),
    ];
    let diags = analyze_sources(&sources, Some("A001"));
    assert_eq!(rules_of(&diags), vec!["A001"]);
    assert_eq!(diags[0].path, "crates/bits/src/b.rs");
    assert!(diags[0].message.contains("`push`"), "{}", diags[0].message);
}

#[test]
fn a001_is_silent_without_hot_roots_or_reachability() {
    // Allocation with no hot-path marker anywhere: silent.
    let src = "pub fn cold(v: &[u32]) -> Vec<u32> { v.to_vec() }\n";
    assert!(lint_one("crates/sim/src/fixture.rs", src).is_empty());
    // A hot root that never reaches the allocating fn: silent.
    let src = "// lint:hot-path\n\
               pub fn entry() {}\n\
               fn stray(v: &[u32]) -> Vec<u32> { v.to_vec() }\n";
    assert!(lint_one("crates/sim/src/fixture.rs", src).is_empty());
}

#[test]
fn a001_allow_requires_a_reason() {
    let bare = "// lint:hot-path\n\
                pub fn entry(v: &mut Vec<u32>) {\n\
                \x20   v.push(1); // lint:allow(A001)\n\
                }\n";
    let diags = lint_one("crates/sim/src/fixture.rs", bare);
    assert_eq!(rules_of(&diags), vec!["A001"], "bare allow must not count");
    let reasoned = "// lint:hot-path\n\
                    pub fn entry(v: &mut Vec<u32>) {\n\
                    \x20   v.push(1); // lint:allow(A001): pre-reserved staging\n\
                    }\n";
    assert!(lint_one("crates/sim/src/fixture.rs", reasoned).is_empty());
}

// ---------------------------------------------------------------- O001

#[test]
fn o001_fires_on_partial_cmp_comparators_in_deterministic_crates() {
    let src = "pub fn f(v: &mut [f64]) {\n\
               \x20   v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n\
               }\n";
    let diags = analyze_sources(
        &[(
            "crates/analysis/src/fixture.rs".to_string(),
            src.to_string(),
        )],
        Some("O001"),
    );
    assert_eq!(rules_of(&diags), vec!["O001"]);
    assert_eq!(diags[0].line, 2);
    assert!(diags[0].message.contains("total_cmp"));
}

#[test]
fn o001_clean_on_total_cmp_and_out_of_scope_crates() {
    let total = "pub fn f(v: &mut [f64]) { v.sort_by(f64::total_cmp); }\n";
    assert!(analyze_sources(
        &[(
            "crates/analysis/src/fixture.rs".to_string(),
            total.to_string()
        )],
        Some("O001"),
    )
    .is_empty());
    // Same partial_cmp sort in a non-deterministic crate: out of scope.
    let partial = "pub fn f(v: &mut [f64]) {\n\
                   \x20   v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n\
                   }\n";
    assert!(analyze_sources(
        &[(
            "crates/explore/src/fixture.rs".to_string(),
            partial.to_string()
        )],
        Some("O001"),
    )
    .is_empty());
}

#[test]
fn o001_fires_on_float_sum_over_hash_collection() {
    let src = "use std::collections::HashMap;\n\
               pub fn f(m: &HashMap<u32, f64>) -> f64 {\n\
               \x20   m.values().sum::<f64>()\n\
               }\n";
    let diags = analyze_sources(
        &[(
            "crates/analysis/src/fixture.rs".to_string(),
            src.to_string(),
        )],
        Some("O001"),
    );
    assert_eq!(rules_of(&diags), vec!["O001"]);
    assert_eq!(diags[0].line, 3);
}

#[test]
fn o001_clean_on_integer_sums_and_btree_floats() {
    let ints = "use std::collections::HashMap;\n\
                pub fn f(m: &HashMap<u32, u64>) -> u64 { m.values().sum::<u64>() }\n";
    assert!(analyze_sources(
        &[(
            "crates/analysis/src/fixture.rs".to_string(),
            ints.to_string()
        )],
        Some("O001"),
    )
    .is_empty());
    let btree = "use std::collections::BTreeMap;\n\
                 pub fn f(m: &BTreeMap<u32, f64>) -> f64 { m.values().sum::<f64>() }\n";
    assert!(analyze_sources(
        &[(
            "crates/analysis/src/fixture.rs".to_string(),
            btree.to_string()
        )],
        Some("O001"),
    )
    .is_empty());
}

// ---------------------------------------------------------------- O002

#[test]
fn o002_fires_on_parallel_markers_outside_the_pool() {
    let src = "pub fn f(v: &[u32]) -> u32 {\n\
               \x20   v.par_iter().copied().max().unwrap_or(0)\n\
               }\n";
    let diags = analyze_sources(
        &[(
            "crates/analysis/src/fixture.rs".to_string(),
            src.to_string(),
        )],
        Some("O002"),
    );
    assert_eq!(rules_of(&diags), vec!["O002"]);
    assert!(diags[0].message.contains("runtime::{pool, sched}"));
    let tls = "thread_local! { static SCRATCH: u32 = 0; }\n";
    let diags = analyze_sources(
        &[("crates/sim/src/fixture.rs".to_string(), tls.to_string())],
        Some("O002"),
    );
    assert_eq!(rules_of(&diags), vec!["O002"]);
}

#[test]
fn o002_exempts_the_pool_and_tests() {
    let src = "pub fn f() { thread_local! { static S: u32 = 0; } }\n";
    assert!(analyze_sources(
        &[("crates/runtime/src/pool.rs".to_string(), src.to_string())],
        Some("O002"),
    )
    .is_empty());
    let in_test = "#[cfg(test)]\nmod tests {\n    fn f() { let x = thread_local; }\n}\n";
    assert!(analyze_sources(
        &[("crates/sim/src/fixture.rs".to_string(), in_test.to_string())],
        Some("O002"),
    )
    .is_empty());
}

#[test]
fn o002_exempts_the_scheduler_but_nothing_else_new() {
    // The scheduler half of the runtime's executor/scheduler split is
    // sanctioned alongside the pool…
    let src = "pub fn f() { thread_local! { static DEQUE: u32 = 0; } }\n";
    assert!(analyze_sources(
        &[("crates/runtime/src/sched.rs".to_string(), src.to_string())],
        Some("O002"),
    )
    .is_empty());
    // …but the exemption is a file list, not a crate grant: the same
    // marker in a sibling module still fires.
    for path in [
        "crates/runtime/src/supervise.rs",
        "crates/runtime/src/batch.rs",
        "crates/bench/src/grid.rs",
    ] {
        let diags = analyze_sources(&[(path.to_string(), src.to_string())], Some("O002"));
        assert_eq!(rules_of(&diags), vec!["O002"], "path {path}");
        assert!(diags[0].message.contains("runtime::{pool, sched}"));
    }
}

#[test]
fn o002_exempts_the_sweep_server_but_not_the_rest_of_the_service() {
    // The sweep service's server is its sanctioned cross-thread merge
    // point (results settle through the runtime's OrderedCommitter under
    // one lock), so it sits in the allow list…
    let src = "pub fn f() { thread_local! { static MERGE: u32 = 0; } }\n";
    assert!(analyze_sources(
        &[("crates/service/src/server.rs".to_string(), src.to_string())],
        Some("O002"),
    )
    .is_empty());
    // …while the service's worker, client, and protocol modules get no
    // such grant: parallel merge state anywhere else in the crate fires.
    for path in [
        "crates/service/src/worker.rs",
        "crates/service/src/client.rs",
        "crates/service/src/proto.rs",
        "crates/service/src/lib.rs",
    ] {
        let diags = analyze_sources(&[(path.to_string(), src.to_string())], Some("O002"));
        assert_eq!(rules_of(&diags), vec!["O002"], "path {path}");
        assert!(diags[0].message.contains("runtime::{pool, sched}"));
    }
}

#[test]
fn d003_still_fires_on_service_threads_without_a_reason() {
    // The server's connection handlers carry reasoned `lint:allow(D003)`
    // comments; the same spawn without one (or with a bare allow) is
    // still a violation anywhere outside runtime::pool.
    let src = "pub fn f() { std::thread::spawn(|| {}); }\n";
    let diags = analyze_sources(
        &[("crates/service/src/server.rs".to_string(), src.to_string())],
        Some("D003"),
    );
    assert_eq!(rules_of(&diags), vec!["D003"]);
    let bare = "pub fn f() {\n\
                \x20   std::thread::spawn(|| {}); // lint:allow(D003)\n\
                }\n";
    let diags = analyze_sources(
        &[("crates/service/src/server.rs".to_string(), bare.to_string())],
        Some("D003"),
    );
    assert_eq!(rules_of(&diags), vec!["D003"], "bare allow needs a reason");
    let reasoned = "pub fn f() {\n\
                    \x20   // lint:allow(D003): I/O-bound waiter, results merge in cell order\n\
                    \x20   std::thread::spawn(|| {});\n\
                    }\n";
    assert!(analyze_sources(
        &[(
            "crates/service/src/server.rs".to_string(),
            reasoned.to_string()
        )],
        Some("D003"),
    )
    .is_empty());
}
