//! The A001 contract against the *real* engine sources: the delivery
//! path's hot-root annotations and its one sanctioned copy — the
//! duplication-fault `clone` — are load-bearing. Stripping that clone's
//! `lint:allow(A001)` must make the lint fail, proving the rule watches
//! the line and the allow is doing real work (not suppressing nothing).

use std::fs;
use std::path::PathBuf;

use oraclesize_lint::{analyze_sources, walk};

fn workspace_sources() -> Vec<(String, String)> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    walk::collect_sources(&root).expect("workspace sources must be readable")
}

#[test]
fn delivery_hot_roots_are_annotated() {
    let src = fs::read_to_string(
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../sim/src/engine/delivery.rs"),
    )
    .expect("read delivery.rs");
    assert_eq!(
        src.matches("lint:hot-path").count(),
        2,
        "enqueue and take_in_flight must both carry the hot-path marker"
    );
}

#[test]
fn stripping_the_duplication_clone_allow_fails_the_lint() {
    let mut sources = workspace_sources();
    let delivery = sources
        .iter_mut()
        .find(|(p, _)| p == "crates/sim/src/engine/delivery.rs")
        .expect("delivery.rs in workspace");
    // Sanity: the annotated tree is clean.
    assert!(
        analyze_sources(&workspace_sources(), Some("A001")).is_empty(),
        "annotated workspace must be A001-clean"
    );
    // Strip the allow covering the duplication-fault `message.clone()`.
    let before = delivery.1.clone();
    delivery.1 = before
        .lines()
        .filter(|l| !(l.contains("lint:allow(A001)") && l.contains("sanctioned copy")))
        .collect::<Vec<_>>()
        .join("\n");
    assert_ne!(
        before, delivery.1,
        "the sanctioned-copy allow must exist to strip"
    );
    let diags = analyze_sources(&sources, Some("A001"));
    assert!(
        diags.iter().any(|d| {
            d.rule == "A001"
                && d.path == "crates/sim/src/engine/delivery.rs"
                && d.message.contains("`clone`")
        }),
        "stripping the duplication-branch allow must surface A001, got:\n{}",
        oraclesize_lint::render_text(&diags)
    );
}
