//! The workspace must lint clean: the same check CI runs, as a test.

use std::path::PathBuf;

use oraclesize_lint::check_workspace;

#[test]
fn workspace_has_no_findings() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let diags = check_workspace(&root, None).expect("workspace sources must be readable");
    assert!(
        diags.is_empty(),
        "lint findings in workspace:\n{}",
        oraclesize_lint::render_text(&diags)
    );
}
