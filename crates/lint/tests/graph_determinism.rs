//! Property: call-graph construction is deterministic — the `graph`
//! subcommand's JSON is a pure function of the source *set*, independent
//! of file-discovery order and stable across repeated builds.

use oraclesize_lint::build_graph;
use proptest::prelude::*;

/// A pool of synthetic files exercising every resolution tier: same-file,
/// same-crate, cross-crate method, qualified path, and a hot root.
fn pool() -> Vec<(String, String)> {
    vec![
        (
            "crates/sim/src/engine.rs".to_string(),
            "// lint:hot-path\npub fn entry(g: &G) { helper(); g.degree(0); other::Slab::insert(); }\n\
             fn helper() { leaf(); }\nfn leaf() {}\n"
                .to_string(),
        ),
        (
            "crates/sim/src/other.rs".to_string(),
            "pub struct Slab;\nimpl Slab {\n    pub fn insert() {}\n}\npub fn leaf() {}\n".to_string(),
        ),
        (
            "crates/graph/src/lib.rs".to_string(),
            "pub struct G;\nimpl G {\n    pub fn degree(&self, v: usize) -> usize { v }\n}\n".to_string(),
        ),
        (
            "crates/runtime/src/json.rs".to_string(),
            "pub fn render() { helper(); }\nfn helper() {}\n".to_string(),
        ),
        (
            "crates/bits/src/lib.rs".to_string(),
            "pub struct B;\nimpl B {\n    pub fn get(&self) -> usize { 0 }\n}\n".to_string(),
        ),
    ]
}

proptest! {
    #[test]
    fn graph_json_is_independent_of_discovery_order(
        // A random permutation, derived by sorting indices on random keys.
        order in proptest::collection::vec(any::<u64>(), 5).prop_map(|keys| {
            let mut idx: Vec<usize> = (0..keys.len()).collect();
            idx.sort_by_key(|&i| keys[i]);
            idx
        })
    ) {
        let files = pool();
        let canonical = build_graph(&files).to_json().render();
        let shuffled: Vec<(String, String)> = order.iter().map(|&i| files[i].clone()).collect();
        prop_assert_eq!(&build_graph(&shuffled).to_json().render(), &canonical);
        // Repeated builds of the same order are byte-identical too.
        prop_assert_eq!(&build_graph(&shuffled).to_json().render(), &canonical);
    }

    #[test]
    fn graph_json_is_stable_under_subsetting(mask in proptest::collection::vec(any::<bool>(), 5)) {
        // Any subset of the pool still yields deterministic, parseable JSON.
        let files: Vec<(String, String)> = pool()
            .into_iter()
            .zip(&mask)
            .filter(|(_, keep)| **keep)
            .map(|(f, _)| f)
            .collect();
        let a = build_graph(&files).to_json().render();
        let b = build_graph(&files).to_json().render();
        prop_assert_eq!(&a, &b);
        prop_assert!(oraclesize_runtime::json::parses(&a));
    }
}
