//! Property-based tests for the execution engine.

use oraclesize_bits::BitString;
use oraclesize_graph::families::{self, Family};
use oraclesize_sim::engine::{run, SimConfig};
use oraclesize_sim::protocol::{FloodOnce, Message, NodeBehavior, NodeView, Outgoing, Protocol};
use oraclesize_sim::trace::TraceSpec;
use oraclesize_sim::{FaultPlan, SchedulerKind};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_family() -> impl Strategy<Value = Family> {
    proptest::sample::select(Family::ALL.to_vec())
}

fn arb_scheduler() -> impl Strategy<Value = SchedulerKind> {
    (any::<u64>()).prop_flat_map(|seed| {
        proptest::sample::select(vec![
            SchedulerKind::Fifo,
            SchedulerKind::Lifo,
            SchedulerKind::Random { seed },
            SchedulerKind::Starve,
        ])
    })
}

fn arb_fault_plan() -> impl Strategy<Value = FaultPlan> {
    (any::<u64>(), 0.0f64..0.9, 0.0f64..0.9, 0.0f64..0.9)
        .prop_map(|(seed, drop, dup, flip)| FaultPlan::message_faults(seed, drop, dup, flip))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn flooding_always_completes_and_counts_match(
        fam in arb_family(),
        n in 4usize..48,
        seed in any::<u64>(),
        sched in arb_scheduler(),
        synchronous in any::<bool>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = fam.build(n, &mut rng);
        let nodes = g.num_nodes();
        let source = seed as usize % nodes;
        let cfg = SimConfig::broadcast()
            .with_scheduler(sched)
            .with_synchronous(synchronous)
            .capture_trace(TraceSpec::Full);
        let advice = oraclesize_sim::testkit::no_advice(nodes);
        let out = run(&g, source, &advice, &FloodOnce, &cfg).unwrap();
        prop_assert!(out.all_informed());
        // Deterministic count: deg(source) + Σ_{v≠source} (deg(v) − 1).
        let expected: usize = g.degree(source)
            + (0..nodes).filter(|&v| v != source).map(|v| g.degree(v) - 1).sum::<usize>();
        prop_assert_eq!(out.metrics.messages as usize, expected);
        prop_assert_eq!(out.deliveries().count() as u64, out.metrics.steps);
    }

    #[test]
    fn informedness_is_monotone_along_trace(
        n in 4usize..32,
        seed in any::<u64>(),
        sched in arb_scheduler(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = families::random_connected(n, 0.3, &mut rng);
        let cfg = SimConfig::broadcast()
            .with_scheduler(sched)
            .capture_trace(TraceSpec::Full);
        let advice = oraclesize_sim::testkit::no_advice(n);
        let out = run(&g, 0, &advice, &FloodOnce, &cfg).unwrap();
        // Replay the trace: a node can only send a source-carrying message
        // after the source or after receiving one.
        let mut informed = vec![false; n];
        informed[0] = true;
        for d in out.deliveries() {
            if d.carries_source {
                prop_assert!(informed[d.from], "uninformed {} sent M", d.from);
                informed[d.to] = true;
            }
        }
        prop_assert!(informed.iter().all(|&x| x));
    }

    #[test]
    fn engine_is_deterministic(
        n in 4usize..32,
        seed in any::<u64>(),
        rng_seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(rng_seed);
        let g = families::random_connected(n, 0.25, &mut rng);
        let cfg = SimConfig::broadcast()
            .with_scheduler(SchedulerKind::Random { seed })
            .capture_trace(TraceSpec::Full);
        let advice = oraclesize_sim::testkit::no_advice(n);
        let a = run(&g, 0, &advice, &FloodOnce, &cfg).unwrap();
        let b = run(&g, 0, &advice, &FloodOnce, &cfg).unwrap();
        prop_assert_eq!(a.trace, b.trace);
        prop_assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn informed_messages_never_exceed_messages(
        fam in arb_family(),
        n in 4usize..40,
        seed in any::<u64>(),
        sched in arb_scheduler(),
        plan in arb_fault_plan(),
        synchronous in any::<bool>(),
    ) {
        // The documented RunMetrics invariants, under every scheduler and
        // arbitrary message-fault rates.
        let mut rng = StdRng::seed_from_u64(seed);
        let g = fam.build(n, &mut rng);
        let nodes = g.num_nodes();
        let cfg = SimConfig::broadcast()
            .with_scheduler(sched)
            .with_synchronous(synchronous)
            .with_faults(plan);
        let advice = oraclesize_sim::testkit::no_advice(nodes);
        let out = run(&g, seed as usize % nodes, &advice, &FloodOnce, &cfg).unwrap();
        let m = &out.metrics;
        prop_assert!(m.informed_messages <= m.messages,
            "informed {} > messages {}", m.informed_messages, m.messages);
        prop_assert_eq!(m.steps, m.messages - m.faults.dropped + m.faults.duplicated);
    }

    #[test]
    fn faulty_runs_are_deterministic_per_seed(
        n in 4usize..32,
        seed in any::<u64>(),
        plan in arb_fault_plan(),
        sched in arb_scheduler(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = families::random_connected(n, 0.3, &mut rng);
        let mut plan = plan;
        plan.crashes.insert(seed as usize % n, seed % 3);
        let cfg = SimConfig::broadcast()
            .with_scheduler(sched)
            .with_faults(plan)
            .capture_trace(TraceSpec::Full);
        let advice = oraclesize_sim::testkit::no_advice(n);
        let a = run(&g, 0, &advice, &FloodOnce, &cfg).unwrap();
        let b = run(&g, 0, &advice, &FloodOnce, &cfg).unwrap();
        prop_assert_eq!(a.trace, b.trace);
        prop_assert_eq!(a.metrics, b.metrics);
        prop_assert_eq!(a.informed, b.informed);
        prop_assert_eq!(a.crashed, b.crashed);
    }

    #[test]
    fn advice_reaches_the_right_node(n in 2usize..24, seed in any::<u64>()) {
        // A probe protocol that asserts its advice equals its label.
        struct Probe;
        struct ProbeState;
        impl NodeBehavior for ProbeState {
            fn on_start(&mut self) -> Vec<Outgoing> { Vec::new() }
            fn on_receive(&mut self, _p: usize, _m: Message) -> Vec<Outgoing> { Vec::new() }
        }
        impl Protocol for Probe {
            fn create(&self, view: NodeView) -> Box<dyn NodeBehavior> {
                let mut expected = BitString::new();
                expected.push_uint(view.id.expect("labeled run"), 16);
                assert_eq!(view.advice, expected, "advice misrouted");
                Box::new(ProbeState)
            }
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let g = families::random_connected(n, 0.5, &mut rng);
        let advice: Vec<BitString> = (0..n)
            .map(|v| {
                let mut s = BitString::new();
                s.push_uint(g.label(v), 16);
                s
            })
            .collect();
        run(&g, 0, &advice, &Probe, &SimConfig::default()).unwrap();
    }
}
