//! Message-passing execution engine for oracle-assisted communication
//! schemes.
//!
//! The paper's model (§1.4): each node runs a *scheme* — a function from its
//! local history (advice string, status bit, identity, degree, messages
//! received so far with their arrival ports) to a set of messages to send on
//! its ports. This crate executes such schemes on a
//! [`PortGraph`](oraclesize_graph::PortGraph):
//!
//! * [`protocol`] — the [`Protocol`]/[`NodeBehavior`] traits mirroring the
//!   scheme signature `A(f(v), s(v), id(v), deg(v))`, and the [`NodeView`]
//!   a node is allowed to see,
//! * [`oracle`] — the [`Oracle`] trait assigning per-node advice, and the
//!   paper's oracle-size accounting,
//! * [`instance`] — frozen `Arc`-shared problem instances and the
//!   workspace's one run facade, [`run`],
//! * [`engine`] — the executor, with **synchronous** (round-based) and
//!   **asynchronous** (adversarially scheduled) delivery, mechanical
//!   enforcement of the *wakeup rule* (non-source nodes stay silent until
//!   informed), informedness tracking (the source message piggybacks on any
//!   message sent by an informed node), and bit-exact accounting,
//! * [`trace`] — the streaming observability layer: the event taxonomy,
//!   [`TraceSink`](trace::TraceSink)s, per-round rollups, and trace
//!   diffing,
//! * [`scheduler`] — delivery orders: FIFO, LIFO, seeded-random, and the
//!   starving adversary that delays source-carrying messages,
//! * [`faults`] — seeded fault injection: message drop/duplication/bit
//!   flips, crash-stop nodes, and the advice-corruption adversary,
//! * [`metrics`] — message/bit/round/fault counts used by every experiment,
//! * [`testkit`] — shared helpers (e.g. the trivial no-advice oracle) used
//!   by tests across the workspace.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use oraclesize_sim::prelude::*;
//! use oraclesize_graph::families;
//! use oraclesize_bits::BitString;
//!
//! let g = Arc::new(families::cycle(5));
//! let instance = Instance::with_advice(g, 0, vec![BitString::new(); 5]);
//! let outcome = run(&instance, &FloodOnce, &SimConfig::default()).unwrap();
//! assert!(outcome.all_informed());
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod faults;
pub mod history;
pub mod instance;
pub mod metrics;
pub mod oracle;
pub mod protocol;
pub mod scheduler;
pub mod testkit;
pub mod trace;

pub use engine::{Completion, RunOutcome, SimConfig, SimError, TaskMode};
pub use faults::{AdviceAdversary, FaultCounts, FaultPlan};
pub use history::{History, HistoryProtocol};
pub use instance::{run, run_streamed, Instance};
pub use metrics::RunMetrics;
pub use oracle::{advice_size, Oracle};
pub use protocol::{Message, NodeBehavior, NodeView, Outgoing, Protocol};
pub use scheduler::SchedulerKind;
pub use trace::{TraceEvent, TraceSink, TraceSpec, TraceStats};

/// The most common imports for running schemes on instances.
///
/// ```
/// use oraclesize_sim::prelude::*;
/// ```
pub mod prelude {
    pub use crate::engine::{Completion, RunOutcome, SimConfig, SimError, TaskMode};
    pub use crate::faults::FaultPlan;
    pub use crate::instance::{run, run_streamed, Instance};
    pub use crate::metrics::RunMetrics;
    pub use crate::oracle::{advice_size, Oracle};
    pub use crate::protocol::{FloodOnce, Message, NodeBehavior, NodeView, Outgoing, Protocol};
    pub use crate::scheduler::SchedulerKind;
    pub use crate::trace::{
        NullSink, RingSink, TraceEvent, TraceSink, TraceSpec, TraceStats, VecSink,
    };
}
