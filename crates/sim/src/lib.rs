//! Message-passing execution engine for oracle-assisted communication
//! schemes.
//!
//! The paper's model (§1.4): each node runs a *scheme* — a function from its
//! local history (advice string, status bit, identity, degree, messages
//! received so far with their arrival ports) to a set of messages to send on
//! its ports. This crate executes such schemes on a
//! [`PortGraph`](oraclesize_graph::PortGraph):
//!
//! * [`protocol`] — the [`Protocol`]/[`NodeBehavior`] traits mirroring the
//!   scheme signature `A(f(v), s(v), id(v), deg(v))`, and the [`NodeView`]
//!   a node is allowed to see,
//! * [`engine`] — the executor, with **synchronous** (round-based) and
//!   **asynchronous** (adversarially scheduled) delivery, mechanical
//!   enforcement of the *wakeup rule* (non-source nodes stay silent until
//!   informed), informedness tracking (the source message piggybacks on any
//!   message sent by an informed node), and bit-exact accounting,
//! * [`scheduler`] — delivery orders: FIFO, LIFO, seeded-random, and the
//!   starving adversary that delays source-carrying messages,
//! * [`faults`] — seeded fault injection: message drop/duplication/bit
//!   flips, crash-stop nodes, and the advice-corruption adversary,
//! * [`metrics`] — message/bit/round/fault counts used by every experiment,
//! * [`testkit`] — shared helpers (e.g. the trivial no-advice oracle) used
//!   by tests across the workspace.
//!
//! # Examples
//!
//! ```
//! use oraclesize_graph::families;
//! use oraclesize_sim::engine::{SimConfig, run};
//! use oraclesize_sim::protocol::FloodOnce;
//! use oraclesize_bits::BitString;
//!
//! let g = families::cycle(5);
//! let advice = vec![BitString::new(); 5];
//! let outcome = run(&g, 0, &advice, &FloodOnce, &SimConfig::default()).unwrap();
//! assert!(outcome.all_informed());
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod faults;
pub mod history;
pub mod metrics;
pub mod protocol;
pub mod scheduler;
pub mod testkit;

pub use engine::{run, Completion, RunOutcome, SimConfig, SimError, TaskMode};
pub use faults::{AdviceAdversary, FaultCounts, FaultPlan};
pub use history::{History, HistoryProtocol};
pub use metrics::RunMetrics;
pub use protocol::{Message, NodeBehavior, NodeView, Outgoing, Protocol};
pub use scheduler::SchedulerKind;
