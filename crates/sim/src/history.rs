//! The paper's literal scheme formalization (§1.4): a *scheme* is a
//! function from the node's **history**
//! `H = (f(v), s(v), id(v), deg(v), (m₁,p₁), …, (m_k,p_k))`
//! to a set of messages to send.
//!
//! The reactive [`Protocol`]/[`NodeBehavior`] pair is the efficient way to
//! implement schemes, but some experiments want the textbook form —
//! [`HistoryProtocol`] adapts any `Fn(&History) -> Vec<Outgoing>` closure
//! into a protocol by re-invoking it on every event with the accumulated
//! history. The two forms are interchangeable (see the tests, which replay
//! flooding both ways and compare traces).

use std::sync::Arc;

use oraclesize_bits::BitString;
use oraclesize_graph::Port;

use crate::protocol::{Message, NodeBehavior, NodeView, Outgoing, Protocol};

/// The total knowledge of a node at one point of an execution — the
/// quadruple it starts with plus every message received so far with its
/// arrival port.
#[derive(Debug, Clone)]
pub struct History {
    /// `f(v)` — the advice string.
    pub advice: BitString,
    /// `s(v)` — the status bit.
    pub is_source: bool,
    /// `id(v)`; `None` in the anonymous model.
    pub id: Option<u64>,
    /// `deg(v)`.
    pub degree: usize,
    /// `(m_i, p_i)` in arrival order.
    pub received: Vec<(Message, Port)>,
}

impl History {
    /// The history of a node before any delivery.
    pub fn initial(view: &NodeView) -> Self {
        History {
            advice: view.advice.clone(),
            is_source: view.is_source,
            id: view.id,
            degree: view.degree,
            received: Vec::new(),
        }
    }

    /// `true` once any received message carried the source message (or the
    /// node is the source) — the paper's "informed".
    pub fn is_informed(&self) -> bool {
        self.is_source || self.received.iter().any(|(m, _)| m.carries_source)
    }
}

/// The scheme type of §1.4: history in, sends out. Invoked once with the
/// empty history (the spontaneous round) and once per delivery.
pub type SchemeFn = Arc<dyn Fn(&History) -> Vec<Outgoing> + Send + Sync>;

/// Adapts a [`SchemeFn`] into a [`Protocol`].
#[derive(Clone)]
pub struct HistoryProtocol {
    name: &'static str,
    scheme: SchemeFn,
}

impl std::fmt::Debug for HistoryProtocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistoryProtocol")
            .field("name", &self.name)
            .finish()
    }
}

impl HistoryProtocol {
    /// Wraps `scheme` under a display name.
    pub fn new(
        name: &'static str,
        scheme: impl Fn(&History) -> Vec<Outgoing> + Send + Sync + 'static,
    ) -> Self {
        HistoryProtocol {
            name,
            scheme: Arc::new(scheme),
        }
    }
}

struct HistoryState {
    history: History,
    scheme: SchemeFn,
}

impl NodeBehavior for HistoryState {
    fn on_start(&mut self) -> Vec<Outgoing> {
        (self.scheme)(&self.history)
    }

    fn on_receive(&mut self, port: Port, message: Message) -> Vec<Outgoing> {
        // By-value delivery: the payload is *filed*, not cloned — the
        // history form now rides the same zero-clone path as reactive
        // schemes.
        self.history.received.push((message, port));
        (self.scheme)(&self.history)
    }
}

impl Protocol for HistoryProtocol {
    fn create(&self, view: NodeView) -> Box<dyn NodeBehavior> {
        Box::new(HistoryState {
            history: History::initial(&view),
            scheme: Arc::clone(&self.scheme),
        })
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run, SimConfig};
    use crate::protocol::FloodOnce;
    use oraclesize_graph::families;

    /// Flooding expressed as a pure history scheme: forward once, on the
    /// event that first made the node informed.
    fn flooding_scheme() -> HistoryProtocol {
        HistoryProtocol::new("history-flood", |h: &History| {
            if h.is_source {
                // The source sends exactly on the empty history.
                if h.received.is_empty() {
                    return (0..h.degree)
                        .map(|p| Outgoing::new(p, Message::empty()))
                        .collect();
                }
                return Vec::new();
            }
            // Fire iff the LAST message is the first informed one.
            let informed_count = h.received.iter().filter(|(m, _)| m.carries_source).count();
            match h.received.last() {
                Some((m, p)) if m.carries_source && informed_count == 1 => (0..h.degree)
                    .filter(|&q| q != *p)
                    .map(|q| Outgoing::new(q, Message::empty()))
                    .collect(),
                _ => Vec::new(),
            }
        })
    }

    #[test]
    fn history_flooding_matches_reactive_flooding() {
        let g = families::complete_rotational(10);
        let advice = crate::testkit::no_advice(10);
        let cfg = SimConfig::broadcast().capture_trace(crate::trace::TraceSpec::Full);
        let reactive = run(&g, 0, &advice, &FloodOnce, &cfg).unwrap();
        let historical = run(&g, 0, &advice, &flooding_scheme(), &cfg).unwrap();
        assert_eq!(reactive.metrics, historical.metrics);
        assert_eq!(reactive.trace, historical.trace);
        assert!(historical.all_informed());
    }

    #[test]
    fn history_accumulates_in_arrival_order() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc as StdArc;
        let max_seen = StdArc::new(AtomicUsize::new(0));
        let probe = {
            let max_seen = StdArc::clone(&max_seen);
            HistoryProtocol::new("probe", move |h: &History| {
                max_seen.fetch_max(h.received.len(), Ordering::Relaxed);
                // Ports in the history must all be in range.
                assert!(h.received.iter().all(|&(_, p)| p < h.degree));
                Vec::new()
            })
        };
        let g = families::star(5);
        let advice = crate::testkit::no_advice(5);
        // Nothing is ever sent, so histories stay empty…
        run(&g, 0, &advice, &probe, &SimConfig::default()).unwrap();
        assert_eq!(max_seen.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn informedness_matches_engine_view() {
        let g = families::path(4);
        let advice = crate::testkit::no_advice(4);
        let scheme = HistoryProtocol::new("chain", |h: &History| {
            // Forward the source message down the path using history only.
            if h.is_source && h.received.is_empty() {
                return vec![Outgoing::new(0, Message::empty())];
            }
            if !h.is_source && h.is_informed() && h.received.len() == 1 {
                let (_, p) = h.received[0];
                return (0..h.degree)
                    .filter(|&q| q != p)
                    .map(|q| Outgoing::new(q, Message::empty()))
                    .collect();
            }
            Vec::new()
        });
        let out = run(&g, 0, &advice, &scheme, &SimConfig::default()).unwrap();
        assert!(out.all_informed());
        assert_eq!(out.metrics.messages, 3);
    }
}
