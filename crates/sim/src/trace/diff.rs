//! First-divergence comparison of two rendered trace files.
//!
//! Traces of a seeded run are byte-identical across thread counts, so the
//! interesting question about two trace files is never "how do they
//! differ?" but "**where do they first diverge**, and what was happening
//! there?". This module answers that for line-oriented trace renderings
//! (one event per line — the JSONL format written by
//! `oraclesize_runtime::trace`, but any line format works).

/// Result of comparing two trace files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceDiff {
    /// Byte-identical (same lines, same count).
    Identical {
        /// Number of lines compared.
        lines: usize,
    },
    /// The files differ; details of the first divergence.
    Diverged(Divergence),
}

/// The first point where two trace files disagree, with enough context to
/// orient a post-mortem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// 1-based line number of the first difference.
    pub line: usize,
    /// The left file's line (`None` if the left file ended first).
    pub left: Option<String>,
    /// The right file's line (`None` if the right file ended first).
    pub right: Option<String>,
    /// Up to three shared lines immediately preceding the divergence.
    pub context: Vec<String>,
    /// Grid cell in scope at the divergence, if the lines carry one.
    pub cell: Option<u64>,
    /// Last round seen (from `rollup`/`phase` records) before diverging.
    pub round: Option<u64>,
    /// Nodes named on the diverging lines (`from`/`to`/`node` fields).
    pub nodes: Vec<u64>,
}

impl TraceDiff {
    /// `true` for [`TraceDiff::Identical`].
    pub fn is_identical(&self) -> bool {
        matches!(self, TraceDiff::Identical { .. })
    }

    /// Human-readable report, one screen, stable formatting.
    pub fn render(&self) -> String {
        match self {
            TraceDiff::Identical { lines } => {
                format!("traces identical ({lines} lines)")
            }
            TraceDiff::Diverged(d) => {
                let mut out = String::new();
                out.push_str(&format!("traces diverge at line {}", d.line));
                if let Some(cell) = d.cell {
                    out.push_str(&format!(" (cell {cell}"));
                    match d.round {
                        Some(r) => out.push_str(&format!(", round {r})")),
                        None => out.push(')'),
                    }
                } else if let Some(r) = d.round {
                    out.push_str(&format!(" (round {r})"));
                }
                if !d.nodes.is_empty() {
                    let names: Vec<String> = d.nodes.iter().map(|n| n.to_string()).collect();
                    out.push_str(&format!(", nodes [{}]", names.join(", ")));
                }
                out.push('\n');
                for c in &d.context {
                    out.push_str(&format!("    {c}\n"));
                }
                match &d.left {
                    Some(l) => out.push_str(&format!("  - {l}\n")),
                    None => out.push_str("  - <end of file>\n"),
                }
                match &d.right {
                    Some(r) => out.push_str(&format!("  + {r}\n")),
                    None => out.push_str("  + <end of file>\n"),
                }
                out
            }
        }
    }
}

/// Extracts the integer value of `"key": N` (or `"key":N`) from a rendered
/// line, if present.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)? + needle.len();
    let rest = line[at..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    rest[..end].parse().ok()
}

/// Compares two trace files line by line and reports the first divergence
/// with cell/round/node context, or [`TraceDiff::Identical`].
pub fn diff_lines(left: &str, right: &str) -> TraceDiff {
    let mut lines_seen = 0usize;
    let mut context: Vec<String> = Vec::new();
    let mut cell: Option<u64> = None;
    let mut round: Option<u64> = None;
    let mut l_iter = left.lines();
    let mut r_iter = right.lines();
    loop {
        let (l, r) = (l_iter.next(), r_iter.next());
        match (l, r) {
            (None, None) => return TraceDiff::Identical { lines: lines_seen },
            (l, r) if l == r => {
                lines_seen += 1;
                // Shared line: update the running context.
                if let Some(line) = l {
                    if let Some(c) = field_u64(line, "cell") {
                        cell = Some(c);
                    }
                    if let Some(rd) = field_u64(line, "round") {
                        round = Some(rd);
                    }
                    if context.len() == 3 {
                        context.remove(0);
                    }
                    context.push(line.to_string());
                }
            }
            (l, r) => {
                let mut nodes: Vec<u64> = Vec::new();
                for line in [l, r].into_iter().flatten() {
                    for key in ["from", "to", "node"] {
                        if let Some(n) = field_u64(line, key) {
                            if !nodes.contains(&n) {
                                nodes.push(n);
                            }
                        }
                    }
                    // The diverging lines themselves are the freshest
                    // cell/round context.
                    if cell.is_none() {
                        cell = field_u64(line, "cell");
                    }
                    if round.is_none() {
                        round = field_u64(line, "round");
                    }
                }
                return TraceDiff::Diverged(Divergence {
                    line: lines_seen + 1,
                    left: l.map(str::to_string),
                    right: r.map(str::to_string),
                    context,
                    cell,
                    round,
                    nodes,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_files() {
        let a = "{\"kind\": \"enqueue\"}\n{\"kind\": \"deliver\"}\n";
        assert_eq!(diff_lines(a, a), TraceDiff::Identical { lines: 2 });
        assert!(diff_lines(a, a).is_identical());
    }

    #[test]
    fn first_divergence_with_context() {
        let a =
            "{\"cell\": 0, \"round\": 1}\nsame\n{\"kind\": \"deliver\", \"from\": 2, \"to\": 3}\n";
        let b =
            "{\"cell\": 0, \"round\": 1}\nsame\n{\"kind\": \"deliver\", \"from\": 2, \"to\": 4}\n";
        match diff_lines(a, b) {
            TraceDiff::Diverged(d) => {
                assert_eq!(d.line, 3);
                assert_eq!(d.cell, Some(0));
                assert_eq!(d.round, Some(1));
                assert_eq!(d.context.len(), 2);
                assert!(d.nodes.contains(&2));
                assert!(d.nodes.contains(&3));
                assert!(d.nodes.contains(&4));
            }
            other => panic!("expected divergence, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_a_divergence() {
        let a = "x\ny\n";
        let b = "x\n";
        match diff_lines(a, b) {
            TraceDiff::Diverged(d) => {
                assert_eq!(d.line, 2);
                assert_eq!(d.left.as_deref(), Some("y"));
                assert_eq!(d.right, None);
            }
            other => panic!("expected divergence, got {other:?}"),
        }
    }

    #[test]
    fn render_is_stable() {
        let a = "{\"cell\": 2, \"round\": 5}\n{\"from\": 1, \"to\": 2}\n";
        let b = "{\"cell\": 2, \"round\": 5}\n{\"from\": 1, \"to\": 7}\n";
        let report = diff_lines(a, b).render();
        assert!(report.contains("line 2"));
        assert!(report.contains("cell 2"));
        assert!(report.contains("round 5"));
        assert!(report.contains("  - "));
        assert!(report.contains("  + "));
        assert_eq!(
            diff_lines(a, a).render(),
            "traces identical (2 lines)".to_string()
        );
    }

    #[test]
    fn field_extraction_handles_spacing() {
        assert_eq!(field_u64("{\"round\": 12}", "round"), Some(12));
        assert_eq!(field_u64("{\"round\":12}", "round"), Some(12));
        assert_eq!(field_u64("{\"round\": \"x\"}", "round"), None);
        assert_eq!(field_u64("{}", "round"), None);
    }
}
