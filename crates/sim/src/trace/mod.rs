//! Structured execution traces: the event taxonomy, streaming sinks, and
//! first-divergence comparison.
//!
//! The engine used to record a flat `Vec` of deliveries when asked; this
//! module replaces that with a streaming observability layer:
//!
//! * [`TraceEvent`] — the taxonomy: message lifecycle ([`Enqueue`]
//!   → [`Deliver`]/[`Drop`], with [`Corrupt`] and [`Wake`] annotations),
//!   phase structure ([`PhaseStart`], [`Quiescence`]), and per-round
//!   [`Rollup`] records carrying informed-count / message-count /
//!   frontier-size;
//! * [`TraceSink`] — the streaming consumer trait. Events are emitted as
//!   they happen, so a sink with bounded memory (a ring, a line writer)
//!   traces arbitrarily long runs without accumulating a vector;
//! * [`NullSink`] / [`VecSink`] / [`RingSink`] — the stock sinks;
//! * [`TraceStats`] — constant-size per-run tallies, cheap enough to wire
//!   into every grid cell;
//! * [`diff`] — first-divergence comparison of two rendered trace files.
//!
//! # Determinism
//!
//! Every event is emitted from the (serial) engine loop in execution
//! order, and message ids ([`MsgId`]) are assigned in enqueue order, so the
//! trace of a seeded run is a pure function of `(graph, source, advice,
//! protocol, config)` — byte-identical no matter how many worker threads a
//! surrounding batch uses. The JSONL writer in `oraclesize_runtime::trace`
//! relies on this to diff parallel sweeps byte-for-byte.
//!
//! # Cost when off
//!
//! With [`TraceSpec::Off`] the engine drives a [`NullSink`]: every emission
//! site is guarded by one boolean test and the trace path performs **zero
//! allocations** — the same discipline as the zero-clone delivery path
//! (`payload_copies == 0` on fault-free runs).
//!
//! [`Enqueue`]: TraceEvent::Enqueue
//! [`Deliver`]: TraceEvent::Deliver
//! [`Drop`]: TraceEvent::Drop
//! [`Corrupt`]: TraceEvent::Corrupt
//! [`Wake`]: TraceEvent::Wake
//! [`PhaseStart`]: TraceEvent::PhaseStart
//! [`Quiescence`]: TraceEvent::Quiescence
//! [`Rollup`]: TraceEvent::Rollup

pub mod diff;
pub mod sink;

pub use diff::{diff_lines, Divergence, TraceDiff};
pub use sink::{NullSink, RingSink, TraceSink, VecSink};

use oraclesize_graph::{NodeId, Port};

/// Causal message identifier: assigned serially in enqueue order, so ids
/// are stable across schedulers and across batch thread counts. A
/// duplication fault's extra copy gets its own id (it is a distinct
/// in-flight delivery with its own fate).
pub type MsgId = u64;

/// Which part of the run an event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// The spontaneous phase: `on_start` sends, before any delivery.
    Spontaneous,
    /// A synchronous round (1-based; round 0's sends are the spontaneous
    /// phase draining). Asynchronous runs stay in one implicit round.
    Round(u64),
    /// A quiescence poll (1-based).
    QuiescencePoll(u32),
}

/// Why a message left the network without being processed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropFault {
    /// A drop fault consumed it in flight.
    Lost,
    /// The wire delivered it to a crash-stopped node; nobody was listening.
    ToCrashed,
}

/// One message processed by a live receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Message id (see [`MsgId`]).
    pub msg: MsgId,
    /// Delivery step (0-based, equals `RunMetrics::steps` at delivery).
    pub step: u64,
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Arrival port at the receiver.
    pub arrival_port: Port,
    /// Payload size in bits.
    pub bits: u64,
    /// Whether the message carried the source message.
    pub carries_source: bool,
}

/// Per-round progress snapshot, emitted at each synchronous round boundary
/// and once at quiescence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rollup {
    /// The round that just finished (0 = the spontaneous sends' round).
    pub round: u64,
    /// Nodes informed at the boundary.
    pub informed: u64,
    /// Messages accepted so far (cumulative).
    pub messages: u64,
    /// In-flight messages scheduled for the next round (the frontier).
    pub frontier: u64,
}

/// One observation from the engine, in execution order.
///
/// All variants are `Copy` and heap-free: emitting an event never
/// allocates, so sinks alone decide the memory profile of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A new phase began.
    PhaseStart {
        /// Which phase.
        phase: Phase,
    },
    /// A send was accepted into the network.
    Enqueue {
        /// Message id.
        msg: MsgId,
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// Payload size in bits.
        bits: u64,
        /// Whether the message carries the source message.
        carries_source: bool,
    },
    /// An in-flight message was removed without a live delivery.
    Drop {
        /// Message id.
        msg: MsgId,
        /// Sending node.
        from: NodeId,
        /// Intended receiver.
        to: NodeId,
        /// Why it vanished.
        fault: DropFault,
    },
    /// A bit-flip fault mutated an in-flight payload.
    Corrupt {
        /// Message id.
        msg: MsgId,
        /// Index of the flipped payload bit.
        bit: u64,
    },
    /// A message was processed by a live receiver.
    Deliver(Delivery),
    /// A delivery informed a previously-uninformed node.
    Wake {
        /// The newly informed node.
        node: NodeId,
        /// Delivery step of the informing message.
        step: u64,
        /// The informing message.
        msg: MsgId,
    },
    /// A quiescence poll ran.
    Quiescence {
        /// Poll index (1-based).
        poll: u32,
        /// Whether any node returned sends.
        spoke: bool,
    },
    /// Per-round progress record.
    Rollup(Rollup),
}

impl TraceEvent {
    /// The delivery record, if this event is a [`TraceEvent::Deliver`].
    pub fn as_delivery(&self) -> Option<&Delivery> {
        match self {
            TraceEvent::Deliver(d) => Some(d),
            _ => None,
        }
    }

    /// The rollup record, if this event is a [`TraceEvent::Rollup`].
    pub fn as_rollup(&self) -> Option<&Rollup> {
        match self {
            TraceEvent::Rollup(r) => Some(r),
            _ => None,
        }
    }

    /// Stable lowercase tag for rendering (`"deliver"`, `"rollup"`, …).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::PhaseStart { .. } => "phase",
            TraceEvent::Enqueue { .. } => "enqueue",
            TraceEvent::Drop { .. } => "drop",
            TraceEvent::Corrupt { .. } => "corrupt",
            TraceEvent::Deliver(_) => "deliver",
            TraceEvent::Wake { .. } => "wake",
            TraceEvent::Quiescence { .. } => "quiescence",
            TraceEvent::Rollup(_) => "rollup",
        }
    }
}

/// Constant-size tallies of an emitted trace, kept even when the events
/// themselves stream through a bounded sink. All-zero when tracing is off.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Total events emitted.
    pub events: u64,
    /// [`TraceEvent::Enqueue`] count.
    pub enqueued: u64,
    /// [`TraceEvent::Deliver`] count.
    pub delivered: u64,
    /// [`TraceEvent::Drop`] count (lost + to-crashed).
    pub dropped: u64,
    /// [`TraceEvent::Corrupt`] count.
    pub corrupted: u64,
    /// [`TraceEvent::Wake`] count.
    pub wakes: u64,
    /// [`TraceEvent::Rollup`] count.
    pub rollups: u64,
}

impl TraceStats {
    /// Folds one event into the tallies.
    pub fn absorb(&mut self, event: &TraceEvent) {
        self.events += 1;
        match event {
            TraceEvent::Enqueue { .. } => self.enqueued += 1,
            TraceEvent::Deliver(_) => self.delivered += 1,
            TraceEvent::Drop { .. } => self.dropped += 1,
            TraceEvent::Corrupt { .. } => self.corrupted += 1,
            TraceEvent::Wake { .. } => self.wakes += 1,
            TraceEvent::Rollup(_) => self.rollups += 1,
            TraceEvent::PhaseStart { .. } | TraceEvent::Quiescence { .. } => {}
        }
    }

    /// Tallies a finished event slice (e.g. a collected [`VecSink`]).
    pub fn tally(events: &[TraceEvent]) -> Self {
        let mut stats = TraceStats::default();
        for e in events {
            stats.absorb(e);
        }
        stats
    }
}

/// What kind of trace a [`SimConfig`](crate::engine::SimConfig) requests.
///
/// This is the *cloneable spec* carried by configs (and thus by batch
/// [`RunRequest`](../../oraclesize_runtime/struct.RunRequest.html)s); the
/// engine materialises the matching sink per run. To stream into your own
/// sink instead, call [`run_streamed`](crate::run_streamed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceSpec {
    /// No tracing: the engine drives a [`NullSink`]; the trace path does
    /// not allocate.
    #[default]
    Off,
    /// Collect every event into [`RunOutcome::trace`](crate::RunOutcome::trace).
    Full,
    /// Keep only the last `capacity` events — bounded-memory post-mortems
    /// for `Degraded` or error outcomes.
    Ring {
        /// Events retained.
        capacity: usize,
    },
}

impl TraceSpec {
    /// `true` unless the spec is [`TraceSpec::Off`].
    pub fn is_on(&self) -> bool {
        !matches!(self, TraceSpec::Off)
    }
}

/// Engine-side wrapper around a sink: caches `enabled()` so the hot path
/// pays one branch, and tallies [`TraceStats`] alongside emission.
pub(crate) struct Recorder<'a> {
    sink: &'a mut dyn TraceSink,
    /// Cached `sink.enabled()`; emission sites may pre-check this to skip
    /// computing event fields (e.g. the per-round informed scan).
    pub on: bool,
    /// Tallies of everything emitted through this recorder.
    pub stats: TraceStats,
}

impl<'a> Recorder<'a> {
    pub fn new(sink: &'a mut dyn TraceSink) -> Self {
        let on = sink.enabled();
        Recorder {
            sink,
            on,
            stats: TraceStats::default(),
        }
    }

    #[inline]
    pub fn emit(&mut self, event: TraceEvent) {
        if self.on {
            self.stats.absorb(&event);
            self.sink.emit(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_tags_are_stable() {
        assert_eq!(
            TraceEvent::PhaseStart {
                phase: Phase::Spontaneous
            }
            .kind(),
            "phase"
        );
        assert_eq!(
            TraceEvent::Rollup(Rollup {
                round: 0,
                informed: 1,
                messages: 0,
                frontier: 0,
            })
            .kind(),
            "rollup"
        );
    }

    #[test]
    fn stats_tally_matches_absorb() {
        let events = [
            TraceEvent::Enqueue {
                msg: 0,
                from: 0,
                to: 1,
                bits: 0,
                carries_source: true,
            },
            TraceEvent::Deliver(Delivery {
                msg: 0,
                step: 0,
                from: 0,
                to: 1,
                arrival_port: 0,
                bits: 0,
                carries_source: true,
            }),
            TraceEvent::Wake {
                node: 1,
                step: 0,
                msg: 0,
            },
            TraceEvent::Drop {
                msg: 1,
                from: 1,
                to: 0,
                fault: DropFault::Lost,
            },
        ];
        let stats = TraceStats::tally(&events);
        assert_eq!(stats.events, 4);
        assert_eq!(stats.enqueued, 1);
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.wakes, 1);
        assert_eq!(stats.dropped, 1);
        assert_eq!(stats.corrupted, 0);
    }

    #[test]
    fn off_spec_is_default_and_off() {
        assert_eq!(TraceSpec::default(), TraceSpec::Off);
        assert!(!TraceSpec::Off.is_on());
        assert!(TraceSpec::Full.is_on());
        assert!(TraceSpec::Ring { capacity: 4 }.is_on());
    }

    #[test]
    fn recorder_with_null_sink_is_off() {
        let mut sink = NullSink;
        let rec = Recorder::new(&mut sink);
        assert!(!rec.on);
    }
}
