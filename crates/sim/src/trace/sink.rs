//! Streaming trace consumers: null, collecting, and ring-buffer sinks.

use crate::trace::TraceEvent;

/// A streaming consumer of [`TraceEvent`]s.
///
/// The engine calls [`emit`](TraceSink::emit) once per event, in execution
/// order, from a single thread. Sinks own their memory policy: a collecting
/// sink grows, a ring stays bounded, a writer streams to I/O.
///
/// # Contract
///
/// * [`enabled`](TraceSink::enabled) is sampled **once per run**; a sink
///   returning `false` (only [`NullSink`] in this crate) receives no
///   events and the engine skips all event construction.
/// * `emit` must not assume it sees every event of a lifecycle — a ring
///   that wrapped has lost the matching `Enqueue` of a later `Deliver`.
/// * Sinks must be deterministic functions of the event stream if the
///   surrounding experiment relies on byte-identical traces (the JSONL
///   writer in `oraclesize_runtime` does).
pub trait TraceSink {
    /// Whether this sink wants events at all. Defaults to `true`.
    fn enabled(&self) -> bool {
        true
    }

    /// Consumes one event.
    fn emit(&mut self, event: TraceEvent);
}

/// The no-op sink driven when tracing is off: reports `enabled() == false`
/// so the engine never constructs an event, and drops anything emitted
/// anyway. Carries no state and never allocates.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn emit(&mut self, _event: TraceEvent) {}
}

/// Collects every event into a vector — the [`TraceSpec::Full`]
/// materialisation and the handiest sink for tests.
///
/// [`TraceSpec::Full`]: crate::trace::TraceSpec::Full
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    events: Vec<TraceEvent>,
}

impl VecSink {
    /// An empty sink. Does not allocate until the first event.
    pub fn new() -> Self {
        VecSink::default()
    }

    /// The events collected so far.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consumes the sink, returning the collected events.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }
}

impl TraceSink for VecSink {
    fn emit(&mut self, event: TraceEvent) {
        // lint:allow(A001): sinks only run when tracing is on — the recorder's
        // cached flag keeps untraced delivery off this path entirely
        self.events.push(event);
    }
}

/// Keeps the last `capacity` events in a fixed-size ring — bounded-memory
/// post-mortems for long runs. A resumed ring (events fed in several
/// batches) holds exactly the same tail as one fed the stream in a single
/// pass; only the last `capacity` events ever matter.
#[derive(Debug, Clone)]
pub struct RingSink {
    buf: Vec<TraceEvent>,
    capacity: usize,
    /// Index of the oldest retained event once the ring has wrapped.
    head: usize,
    /// Total events ever emitted (≥ retained).
    seen: u64,
}

impl RingSink {
    /// A ring retaining the last `capacity` events. Allocation happens
    /// lazily as events arrive; `capacity == 0` retains nothing.
    pub fn new(capacity: usize) -> Self {
        RingSink {
            buf: Vec::new(),
            capacity,
            head: 0,
            seen: 0,
        }
    }

    /// Configured retention.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events retained right now (`min(seen, capacity)`).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever emitted into the ring, including overwritten ones.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The retained tail, oldest first.
    pub fn tail(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

impl TraceSink for RingSink {
    fn emit(&mut self, event: TraceEvent) {
        self.seen += 1;
        if self.capacity == 0 {
            return;
        }
        if self.buf.len() < self.capacity {
            // lint:allow(A001): ring fill is bounded by capacity and only runs
            // when tracing is on; steady state overwrites in place
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Phase, TraceEvent};

    fn ev(i: u64) -> TraceEvent {
        TraceEvent::Enqueue {
            msg: i,
            from: 0,
            to: 1,
            bits: i,
            carries_source: false,
        }
    }

    #[test]
    fn null_sink_is_disabled() {
        let mut s = NullSink;
        assert!(!s.enabled());
        s.emit(ev(0)); // harmless
    }

    #[test]
    fn vec_sink_collects_in_order() {
        let mut s = VecSink::new();
        for i in 0..5 {
            s.emit(ev(i));
        }
        let events = s.into_events();
        assert_eq!(events.len(), 5);
        assert_eq!(events[3], ev(3));
    }

    #[test]
    fn ring_keeps_exactly_the_tail() {
        let mut s = RingSink::new(3);
        for i in 0..10 {
            s.emit(ev(i));
        }
        assert_eq!(s.seen(), 10);
        assert_eq!(s.len(), 3);
        assert_eq!(s.tail(), vec![ev(7), ev(8), ev(9)]);
    }

    #[test]
    fn ring_below_capacity_keeps_everything() {
        let mut s = RingSink::new(8);
        s.emit(ev(0));
        s.emit(ev(1));
        assert_eq!(s.tail(), vec![ev(0), ev(1)]);
    }

    #[test]
    fn zero_capacity_ring_retains_nothing() {
        let mut s = RingSink::new(0);
        s.emit(ev(0));
        assert!(s.is_empty());
        assert_eq!(s.seen(), 1);
        assert!(s.tail().is_empty());
    }

    #[test]
    fn resumed_ring_matches_single_pass() {
        // Feed the same stream in one pass vs. two chunks: identical tails.
        let stream: Vec<TraceEvent> = (0..20)
            .map(|i| {
                if i % 7 == 0 {
                    TraceEvent::PhaseStart {
                        phase: Phase::Round(i),
                    }
                } else {
                    ev(i)
                }
            })
            .collect();
        let mut single = RingSink::new(6);
        for e in &stream {
            single.emit(*e);
        }
        let mut resumed = RingSink::new(6);
        for e in &stream[..9] {
            resumed.emit(*e);
        }
        for e in &stream[9..] {
            resumed.emit(*e);
        }
        assert_eq!(single.tail(), resumed.tail());
        assert_eq!(single.seen(), resumed.seen());
    }
}
