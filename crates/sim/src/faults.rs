//! Fault injection: a seeded, deterministic adversary for robustness
//! experiments.
//!
//! The paper's model assumes a reliable network: every message sent is
//! eventually delivered, and the oracle's advice arrives intact. A
//! [`FaultPlan`] relaxes both assumptions so experiments can measure how
//! gracefully the schemes of Theorems 2.1 and 3.1 degrade:
//!
//! * **message faults** — each accepted send is independently dropped,
//!   duplicated, or has one payload bit flipped in flight,
//! * **crash-stop nodes** — a node in the crash set transmits its first `k`
//!   messages and then halts forever (it neither sends nor processes
//!   further deliveries),
//! * **advice corruption** — an [`AdviceAdversary`] mutates the oracle's
//!   output before the run starts.
//!
//! All randomness comes from a single `StdRng` seeded with
//! [`FaultPlan::seed`], so a run with the same plan, graph, and scheduler
//! is bit-for-bit reproducible. A plan that [is inert](FaultPlan::is_inert)
//! makes the engine skip the fault path entirely: metrics and traces are
//! identical to a fault-free run.

use std::collections::BTreeMap;

use oraclesize_bits::BitString;
use oraclesize_graph::NodeId;
use rand::rngs::StdRng;
use rand::Rng;

/// How the adversary mutates the oracle's advice before the run.
///
/// The `Completed`/`Degraded` classification (see
/// [`RunOutcome::classify`](crate::engine::RunOutcome::classify)) is what
/// distinguishes a scheme that survives corruption from one that quiesces
/// having silently lost part of the network.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[non_exhaustive]
pub enum AdviceAdversary {
    /// Leave the advice untouched.
    #[default]
    None,
    /// Flip each advice bit independently with probability `prob`.
    FlipBits {
        /// Per-bit flip probability in `[0, 1]`.
        prob: f64,
    },
    /// Truncate each node's advice to the first `⌈keep·len⌉` bits.
    Truncate {
        /// Fraction of each string to keep, in `[0, 1]`.
        keep: f64,
    },
    /// Swap the advice strings of nodes `a` and `b` — each gets advice
    /// computed for the other's position in the network.
    SwapPair {
        /// First node.
        a: NodeId,
        /// Second node.
        b: NodeId,
    },
    /// With probability `prob` per node, replace its advice with `bits`
    /// uniformly random bits.
    Garbage {
        /// Per-node replacement probability in `[0, 1]`.
        prob: f64,
        /// Length of the replacement string.
        bits: usize,
    },
}

impl AdviceAdversary {
    /// `true` iff this adversary never changes anything.
    pub fn is_inert(&self) -> bool {
        match self {
            AdviceAdversary::None => true,
            AdviceAdversary::FlipBits { prob } => *prob <= 0.0,
            AdviceAdversary::Truncate { keep } => *keep >= 1.0,
            AdviceAdversary::SwapPair { a, b } => a == b,
            AdviceAdversary::Garbage { prob, .. } => *prob <= 0.0,
        }
    }

    /// Applies the adversary in place, returning the number of mutations
    /// (flipped bits, truncated/replaced strings, or swaps).
    pub fn corrupt(&self, advice: &mut [BitString], rng: &mut StdRng) -> u64 {
        match *self {
            AdviceAdversary::None => 0,
            AdviceAdversary::FlipBits { prob } => {
                let mut flips = 0;
                for a in advice.iter_mut() {
                    let mutated: Vec<bool> = a
                        .iter()
                        .map(|bit| {
                            if rng.gen_bool(prob.clamp(0.0, 1.0)) {
                                flips += 1;
                                !bit
                            } else {
                                bit
                            }
                        })
                        .collect();
                    *a = BitString::from_bits(mutated);
                }
                flips
            }
            AdviceAdversary::Truncate { keep } => {
                let keep = keep.clamp(0.0, 1.0);
                let mut cuts = 0;
                for a in advice.iter_mut() {
                    let new_len = (keep * a.len() as f64).ceil() as usize;
                    if new_len < a.len() {
                        *a = BitString::from_bits(a.iter().take(new_len));
                        cuts += 1;
                    }
                }
                cuts
            }
            AdviceAdversary::SwapPair { a, b } => {
                if a != b && a < advice.len() && b < advice.len() && advice[a] != advice[b] {
                    advice.swap(a, b);
                    1
                } else {
                    0
                }
            }
            AdviceAdversary::Garbage { prob, bits } => {
                let mut replaced = 0;
                for a in advice.iter_mut() {
                    if rng.gen_bool(prob.clamp(0.0, 1.0)) {
                        *a = BitString::from_bits((0..bits).map(|_| rng.gen_bool(0.5)));
                        replaced += 1;
                    }
                }
                replaced
            }
        }
    }
}

/// A complete, seeded description of the faults injected into one run.
///
/// The default plan is fault-free and costs nothing: the engine checks
/// [`is_inert`](FaultPlan::is_inert) once and takes the exact fault-free
/// code path.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every fault decision in this run.
    pub seed: u64,
    /// Probability that an accepted send is silently discarded in flight.
    pub drop_prob: f64,
    /// Probability that an accepted (non-dropped) send is delivered twice.
    pub duplicate_prob: f64,
    /// Probability that a delivered copy has one uniformly random payload
    /// bit inverted. Empty payloads cannot be flipped. The transport-level
    /// informed flag is never corrupted — it models the source *message*
    /// piggybacking on the send, not a payload bit.
    pub bit_flip_prob: f64,
    /// Crash-stop schedule: node `v ↦ k` transmits its first `k` accepted
    /// messages, then halts (sends suppressed, deliveries ignored). `k = 0`
    /// means the node is down from the start.
    pub crashes: BTreeMap<NodeId, u64>,
    /// Pre-run advice corruption.
    pub advice: AdviceAdversary,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            bit_flip_prob: 0.0,
            crashes: BTreeMap::new(),
            advice: AdviceAdversary::None,
        }
    }
}

impl FaultPlan {
    /// A plan injecting only message faults, with the given seed.
    pub fn message_faults(seed: u64, drop: f64, duplicate: f64, bit_flip: f64) -> Self {
        FaultPlan {
            seed,
            drop_prob: drop,
            duplicate_prob: duplicate,
            bit_flip_prob: bit_flip,
            ..Default::default()
        }
    }

    /// A plan applying only advice corruption, with the given seed.
    pub fn advice_only(seed: u64, advice: AdviceAdversary) -> Self {
        FaultPlan {
            seed,
            advice,
            ..Default::default()
        }
    }

    /// `true` iff this plan can never inject any fault; the engine then
    /// guarantees metrics and trace identical to a fault-free run.
    pub fn is_inert(&self) -> bool {
        self.drop_prob <= 0.0
            && self.duplicate_prob <= 0.0
            && self.bit_flip_prob <= 0.0
            && self.crashes.is_empty()
            && self.advice.is_inert()
    }
}

/// Counts of faults actually injected during one run, reported in
/// [`RunMetrics::faults`](crate::metrics::RunMetrics::faults).
///
/// Accounting relationships (asynchronous mode): `messages` counts sends
/// accepted from live nodes, so deliveries (`steps`) equal
/// `messages − dropped + duplicated`. Suppressed sends and deliveries to
/// crashed nodes never enter `messages`/`steps` arithmetic beyond the
/// counters here.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Sends discarded in flight.
    pub dropped: u64,
    /// Extra copies delivered due to duplication.
    pub duplicated: u64,
    /// Payload bits inverted in flight.
    pub payload_flips: u64,
    /// Sends a crashed node attempted after halting.
    pub suppressed_sends: u64,
    /// Deliveries addressed to an already-crashed node.
    pub to_crashed: u64,
    /// Mutations the advice adversary performed before the run.
    pub advice_mutations: u64,
    /// Payload clones the duplication fault manufactured. The delivery
    /// hot path *moves* payloads, so this is `0` for every run — faulty
    /// or not — in which no duplication fired; tests use it to assert the
    /// engine's zero-copy contract.
    pub payload_copies: u64,
    /// In-flight slab slots the engine was forced to create outside the
    /// bulk per-batch reserve. Like `payload_copies` this is bookkeeping
    /// for a structural contract, not an injected fault: the delivery
    /// queues hold indices into a recycled slab, so it is `0` on every
    /// run in which no duplication fired — tests use it to assert the
    /// zero-allocation discipline of the hot path.
    pub queue_allocs: u64,
}

impl FaultCounts {
    /// Total number of injected faults of all kinds.
    pub fn total(&self) -> u64 {
        self.dropped
            + self.duplicated
            + self.payload_flips
            + self.suppressed_sends
            + self.to_crashed
            + self.advice_mutations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn advice_fixture() -> Vec<BitString> {
        vec![
            BitString::parse("10110010").unwrap(),
            BitString::parse("0101").unwrap(),
            BitString::new(),
            BitString::parse("111000111000").unwrap(),
        ]
    }

    #[test]
    fn default_plan_is_inert() {
        assert!(FaultPlan::default().is_inert());
        assert!(AdviceAdversary::None.is_inert());
        assert!(AdviceAdversary::FlipBits { prob: 0.0 }.is_inert());
        assert!(AdviceAdversary::Truncate { keep: 1.0 }.is_inert());
        assert!(AdviceAdversary::SwapPair { a: 2, b: 2 }.is_inert());
        assert!(AdviceAdversary::Garbage { prob: 0.0, bits: 8 }.is_inert());
    }

    #[test]
    fn non_trivial_plans_are_not_inert() {
        assert!(!FaultPlan::message_faults(1, 0.1, 0.0, 0.0).is_inert());
        assert!(!FaultPlan::message_faults(1, 0.0, 0.1, 0.0).is_inert());
        assert!(!FaultPlan::message_faults(1, 0.0, 0.0, 0.1).is_inert());
        let crash = FaultPlan {
            crashes: [(3, 0)].into(),
            ..Default::default()
        };
        assert!(!crash.is_inert());
        assert!(!FaultPlan::advice_only(1, AdviceAdversary::SwapPair { a: 0, b: 1 }).is_inert());
    }

    #[test]
    fn corruption_is_deterministic_per_seed() {
        for adversary in [
            AdviceAdversary::FlipBits { prob: 0.5 },
            AdviceAdversary::Garbage {
                prob: 0.7,
                bits: 16,
            },
        ] {
            let mut a = advice_fixture();
            let mut b = advice_fixture();
            let na = adversary.corrupt(&mut a, &mut StdRng::seed_from_u64(42));
            let nb = adversary.corrupt(&mut b, &mut StdRng::seed_from_u64(42));
            assert_eq!(a, b);
            assert_eq!(na, nb);
            let mut c = advice_fixture();
            adversary.corrupt(&mut c, &mut StdRng::seed_from_u64(43));
            assert_ne!(a, c, "{adversary:?}: different seeds should differ");
        }
    }

    #[test]
    fn flip_all_inverts_every_bit() {
        let mut advice = advice_fixture();
        let original = advice_fixture();
        let flips = AdviceAdversary::FlipBits { prob: 1.0 }
            .corrupt(&mut advice, &mut StdRng::seed_from_u64(0));
        let total_bits: usize = original.iter().map(|a| a.len()).sum();
        assert_eq!(flips as usize, total_bits);
        for (a, o) in advice.iter().zip(&original) {
            assert_eq!(a.len(), o.len());
            for (x, y) in a.iter().zip(o.iter()) {
                assert_ne!(x, y);
            }
        }
    }

    #[test]
    fn truncate_halves_lengths() {
        let mut advice = advice_fixture();
        let cuts = AdviceAdversary::Truncate { keep: 0.5 }
            .corrupt(&mut advice, &mut StdRng::seed_from_u64(0));
        assert_eq!(cuts, 3); // the empty string cannot shrink
        assert_eq!(advice[0].len(), 4);
        assert_eq!(advice[1].len(), 2);
        assert_eq!(advice[2].len(), 0);
        assert_eq!(advice[3].len(), 6);
        // Kept prefix is unchanged.
        assert_eq!(advice[0], BitString::parse("1011").unwrap());
    }

    #[test]
    fn swap_pair_exchanges_and_reports_once() {
        let mut advice = advice_fixture();
        let adversary = AdviceAdversary::SwapPair { a: 0, b: 3 };
        let n = adversary.corrupt(&mut advice, &mut StdRng::seed_from_u64(0));
        assert_eq!(n, 1);
        let original = advice_fixture();
        assert_eq!(advice[0], original[3]);
        assert_eq!(advice[3], original[0]);
        // Out-of-range nodes are ignored rather than panicking.
        let mut advice = advice_fixture();
        let n = AdviceAdversary::SwapPair { a: 0, b: 99 }
            .corrupt(&mut advice, &mut StdRng::seed_from_u64(0));
        assert_eq!(n, 0);
        assert_eq!(advice, advice_fixture());
    }

    #[test]
    fn garbage_at_rate_one_replaces_everything() {
        let mut advice = advice_fixture();
        let n = AdviceAdversary::Garbage {
            prob: 1.0,
            bits: 24,
        }
        .corrupt(&mut advice, &mut StdRng::seed_from_u64(9));
        assert_eq!(n, 4);
        assert!(advice.iter().all(|a| a.len() == 24));
    }

    #[test]
    fn fault_counts_total_sums_all_kinds() {
        let c = FaultCounts {
            dropped: 1,
            duplicated: 2,
            payload_flips: 3,
            suppressed_sends: 4,
            to_crashed: 5,
            advice_mutations: 6,
            payload_copies: 7,
            queue_allocs: 8,
        };
        // payload_copies and queue_allocs are bookkeeping for the
        // zero-copy / zero-allocation contracts, not fault kinds, so they
        // stay out of total().
        assert_eq!(c.total(), 21);
        assert_eq!(FaultCounts::default().total(), 0);
    }
}
