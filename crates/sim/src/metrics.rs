//! Run accounting: the quantities every experiment reports.

use crate::faults::FaultCounts;

/// Bit-exact accounting of one scheme execution.
///
/// `messages` is the paper's *message complexity* — the total number of
/// messages the scheme produced. `payload_bits` and `max_message_bits`
/// support the bounded-message-size claims of §1.3.
///
/// # Invariants
///
/// `informed_messages ≤ messages` always: the informed count is a filtered
/// view of the same send stream. Under a fault-free plan `steps = messages`
/// in asynchronous mode; with faults,
/// `steps = messages − faults.dropped + faults.duplicated` (drops remove a
/// delivery, duplicates add one).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunMetrics {
    /// Total messages accepted from (live) senders. Under fault injection
    /// this counts sends, not deliveries: dropped messages are included,
    /// duplicated deliveries are not double-counted.
    pub messages: u64,
    /// Messages that carried the source message (sent by informed nodes).
    pub informed_messages: u64,
    /// Sum of payload sizes over all messages, in bits.
    pub payload_bits: u64,
    /// Largest single payload, in bits.
    pub max_message_bits: u64,
    /// Synchronous rounds executed: the index of the last round in which a
    /// message was delivered (round 0 holds the spontaneous sends, so this
    /// is `0` when everything quiesces in the first round or no messages
    /// were sent at all). Asynchronous runs have no rounds — the field
    /// stays `0` there; see [`steps`](RunMetrics::steps) instead.
    pub rounds: u64,
    /// Individual deliveries performed (asynchronous mode; equals
    /// `messages` when no faults are injected).
    pub steps: u64,
    /// Number of nodes informed at quiescence (including the source).
    pub informed_nodes: u64,
    /// Faults actually injected during the run; all-zero for inert plans.
    pub faults: FaultCounts,
}

impl RunMetrics {
    /// `true` if message complexity is within `c·n` for the given factor —
    /// the "linear number of messages" criterion instantiated with an
    /// explicit constant.
    pub fn is_linear(&self, n: usize, factor: f64) -> bool {
        (self.messages as f64) <= factor * n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let m = RunMetrics::default();
        assert_eq!(m.messages, 0);
        assert_eq!(m.informed_nodes, 0);
    }

    #[test]
    fn linearity_check() {
        let m = RunMetrics {
            messages: 99,
            ..Default::default()
        };
        assert!(m.is_linear(100, 1.0));
        assert!(!m.is_linear(100, 0.5));
        assert!(m.is_linear(33, 3.0));
    }
}
