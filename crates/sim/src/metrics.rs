//! Run accounting: the quantities every experiment reports.

/// Bit-exact accounting of one scheme execution.
///
/// `messages` is the paper's *message complexity* — the total number of
/// messages the scheme produced. `payload_bits` and `max_message_bits`
/// support the bounded-message-size claims of §1.3.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunMetrics {
    /// Total messages delivered (= sent; the engine never drops messages).
    pub messages: u64,
    /// Messages that carried the source message (sent by informed nodes).
    pub informed_messages: u64,
    /// Sum of payload sizes over all messages, in bits.
    pub payload_bits: u64,
    /// Largest single payload, in bits.
    pub max_message_bits: u64,
    /// Synchronous rounds executed (1 + the round in which the last message
    /// was delivered); `0` if no messages were sent. Counts delivery steps
    /// in asynchronous mode divided by nothing — see `steps`.
    pub rounds: u64,
    /// Individual delivery steps (asynchronous mode; equals `messages`).
    pub steps: u64,
    /// Number of nodes informed at quiescence (including the source).
    pub informed_nodes: u64,
}

impl RunMetrics {
    /// `true` if message complexity is within `c·n` for the given factor —
    /// the "linear number of messages" criterion instantiated with an
    /// explicit constant.
    pub fn is_linear(&self, n: usize, factor: f64) -> bool {
        (self.messages as f64) <= factor * n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let m = RunMetrics::default();
        assert_eq!(m.messages, 0);
        assert_eq!(m.informed_nodes, 0);
    }

    #[test]
    fn linearity_check() {
        let m = RunMetrics {
            messages: 99,
            ..Default::default()
        };
        assert!(m.is_linear(100, 1.0));
        assert!(!m.is_linear(100, 0.5));
        assert!(m.is_linear(33, 3.0));
    }
}
