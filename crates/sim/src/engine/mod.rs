//! The executor: delivers messages, enforces the task rules, accounts.
//!
//! The engine is split along its three concerns:
//!
//! * [`config`] — what to run: [`TaskMode`], [`SimConfig`] and its
//!   builder;
//! * [`delivery`] — the network state machine: validation, accounting,
//!   fault injection, and the zero-clone delivery hot path (payloads move
//!   out of the send queue; a clone happens only when a duplication fault
//!   manufactures an extra delivery);
//! * [`outcome`] — what came back: [`RunOutcome`], [`Completion`], and
//!   the [`SimError`] abort reasons;
//! * [`run`](mod@run) — the driver loop tying them together, emitting
//!   [`crate::trace`] events through a
//!   [`TraceSink`](crate::trace::TraceSink) as it goes.
//!
//! All public names are re-exported here, so `engine::run`,
//! `engine::SimConfig`, … keep working exactly as before the split. The
//! instance-level facade is [`crate::run`].

pub mod config;
pub mod delivery;
pub mod outcome;
pub mod run;

pub use config::{SimConfig, TaskMode};
pub use outcome::{Completion, RunOutcome, SimError};
pub use run::{run, run_with_sink};

#[cfg(test)]
mod tests;
