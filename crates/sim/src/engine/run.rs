//! The driver loop: instantiate schemes, drain the network, poll
//! quiescence, collect the outcome.
//!
//! [`run_with_sink`] is the single underlying implementation; [`run`]
//! wraps it, materialising the sink requested by
//! [`SimConfig::trace`](crate::engine::SimConfig::trace). Every other
//! entry point in the workspace (`sim::run`, `core::execute`,
//! `runtime::batch`) delegates here.

use std::collections::VecDeque;

use oraclesize_bits::{BitArena, BitString};
use oraclesize_graph::{NodeId, PortGraph};

use crate::engine::config::SimConfig;
use crate::engine::delivery::{InFlight, NetState};
use crate::engine::outcome::{RunOutcome, SimError};
use crate::protocol::{NodeBehavior, NodeView, Protocol};
use crate::scheduler::Scheduler;
use crate::trace::{
    Delivery, NullSink, Phase, RingSink, Rollup, TraceEvent, TraceSink, TraceSpec, VecSink,
};

/// Executes `protocol` on `g` from `source` with the given per-node advice.
///
/// Nodes are instantiated in node-id order; `on_start` is invoked in that
/// order before any delivery. Execution runs to quiescence (no in-flight
/// messages) and returns the outcome. The trace requested by
/// [`SimConfig::trace`](crate::engine::SimConfig::trace) is collected into
/// [`RunOutcome::trace`] (all events for [`TraceSpec::Full`], the retained
/// tail for [`TraceSpec::Ring`], nothing — and no allocation — for
/// [`TraceSpec::Off`]). To stream events into your own sink instead, use
/// [`run_with_sink`].
///
/// # Errors
///
/// See [`SimError`]. Any error aborts the run immediately.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn run(
    g: &PortGraph,
    source: NodeId,
    advice: &[BitString],
    protocol: &dyn Protocol,
    config: &SimConfig,
) -> Result<RunOutcome, SimError> {
    match config.trace {
        TraceSpec::Off => run_with_sink(g, source, advice, protocol, config, &mut NullSink),
        TraceSpec::Full => {
            let mut sink = VecSink::new();
            let mut out = run_with_sink(g, source, advice, protocol, config, &mut sink)?;
            out.trace = sink.into_events();
            Ok(out)
        }
        TraceSpec::Ring { capacity } => {
            let mut sink = RingSink::new(capacity);
            let mut out = run_with_sink(g, source, advice, protocol, config, &mut sink)?;
            out.trace = sink.tail();
            Ok(out)
        }
    }
}

/// [`run`], streaming trace events into a caller-supplied sink.
///
/// This is the single underlying executor. The sink argument wins over
/// [`SimConfig::trace`](crate::engine::SimConfig::trace) — the spec only
/// tells [`run`] which stock sink to materialise — and
/// [`RunOutcome::trace`] comes back empty (the caller owns the events).
/// Because the caller keeps the sink even when the run aborts with a
/// [`SimError`], a [`RingSink`] passed here doubles as an error
/// post-mortem buffer.
///
/// # Errors / Panics
///
/// As [`run`].
pub fn run_with_sink(
    g: &PortGraph,
    source: NodeId,
    advice: &[BitString],
    protocol: &dyn Protocol,
    config: &SimConfig,
    sink: &mut dyn TraceSink,
) -> Result<RunOutcome, SimError> {
    assert!(source < g.num_nodes(), "source out of range");
    let n = g.num_nodes();
    if advice.len() != n {
        return Err(SimError::AdviceCount {
            expected: n,
            got: advice.len(),
        });
    }

    let mut net = NetState::new(g, config, source, sink);
    let corrupted = net.corrupt_advice(advice);
    // One contiguous buffer for all n advice strings (SoA layout,
    // DESIGN.md §11) instead of n separately-allocated clones; node views
    // materialise their own string from their arena span.
    let advice = BitArena::from_strings(corrupted.as_deref().unwrap_or(advice));

    let mut behaviors: Vec<Box<dyn NodeBehavior>> = (0..n)
        .map(|v| {
            protocol.create(NodeView {
                advice: advice.get(v),
                is_source: v == source,
                id: if config.anonymous {
                    None
                } else {
                    Some(g.label(v))
                },
                degree: g.degree(v),
            })
        })
        .collect();

    // The queues hold slab indices; payloads live in `net.slab` and never
    // move between enqueue and delivery.
    let mut pending: VecDeque<u32> = VecDeque::new();
    let mut next_round: VecDeque<u32> = VecDeque::new();

    // Spontaneous phase.
    net.rec.emit(TraceEvent::PhaseStart {
        phase: Phase::Spontaneous,
    });
    for (v, behavior) in behaviors.iter_mut().enumerate() {
        let sends = behavior.on_start();
        net.enqueue(v, sends, &mut pending)?;
    }

    let mut scheduler: Scheduler = config.scheduler.instantiate();
    let mut steps: u64 = 0;
    let mut rounds: u64 = 0;
    let mut polls: u32 = 0;

    'run: loop {
        // Delivery loop: drain the network to quiescence.
        loop {
            if pending.is_empty() {
                if config.synchronous && !next_round.is_empty() {
                    if net.rec.on {
                        net.rec.emit(TraceEvent::Rollup(Rollup {
                            round: rounds,
                            informed: net.informed.count_ones() as u64,
                            messages: net.metrics.messages,
                            frontier: next_round.len() as u64,
                        }));
                    }
                    // Swap (not take): the drained queue keeps its buffer,
                    // so alternating rounds reuse two allocations forever.
                    std::mem::swap(&mut pending, &mut next_round);
                    rounds += 1;
                    net.rec.emit(TraceEvent::PhaseStart {
                        phase: Phase::Round(rounds),
                    });
                    continue;
                }
                break;
            }
            if steps >= config.max_steps {
                return Err(SimError::StepLimit {
                    limit: config.max_steps,
                });
            }
            let next = if config.synchronous {
                pending.pop_front()
            } else {
                scheduler.take(&mut pending, |&i: &u32| net.slab.carries_source(i))
            };
            let Some(slot) = next else {
                // Unreachable given the nonempty check above; an empty pool
                // is quiescence, not an error.
                break;
            };
            let Some(InFlight {
                msg,
                from,
                to,
                arrival_port,
                message,
            }) = net.take_in_flight(slot)
            else {
                // Unreachable: queued indices always name occupied slots.
                break;
            };

            let step = steps;
            steps += 1;

            if net.crashed.get(to) {
                // The wire delivered it, but nobody is listening: the node
                // neither learns the source message nor reacts.
                net.metrics.faults.to_crashed += 1;
                net.rec.emit(TraceEvent::Drop {
                    msg,
                    from,
                    to,
                    fault: crate::trace::DropFault::ToCrashed,
                });
                continue;
            }
            net.rec.emit(TraceEvent::Deliver(Delivery {
                msg,
                step,
                from,
                to,
                arrival_port,
                bits: message.size_bits() as u64,
                carries_source: message.carries_source,
            }));
            if message.carries_source && !net.informed.get(to) {
                net.informed.set(to, true);
                net.rec.emit(TraceEvent::Wake {
                    node: to,
                    step,
                    msg,
                });
            }

            let sends = behaviors[to].on_receive(arrival_port, message);
            let out = if config.synchronous {
                &mut next_round
            } else {
                &mut pending
            };
            net.enqueue(to, sends, out)?;
        }

        // Quiescence: poll live nodes for retries, bounded by the config.
        // A fully silent poll (the default hook) ends the run. "Silent"
        // means no node *returned* a send — a poll whose sends were all
        // dropped by the fault plan still counts as speaking, so a retrying
        // scheme keeps its remaining attempts under total message loss.
        if polls >= config.max_quiescence_polls {
            break;
        }
        polls += 1;
        net.rec.emit(TraceEvent::PhaseStart {
            phase: Phase::QuiescencePoll(polls),
        });
        let mut spoke = false;
        for (v, behavior) in behaviors.iter_mut().enumerate() {
            if net.crashed.get(v) {
                continue;
            }
            let sends = behavior.on_quiescence();
            spoke |= !sends.is_empty();
            net.enqueue(v, sends, &mut pending)?;
        }
        net.rec.emit(TraceEvent::Quiescence { poll: polls, spoke });
        if !spoke {
            break 'run;
        }
    }

    net.metrics.steps = steps;
    net.metrics.rounds = rounds;
    net.metrics.informed_nodes = net.informed.count_ones() as u64;
    net.metrics.faults.queue_allocs = net.slab.queue_allocs;
    if net.rec.on {
        // Final progress record at quiescence: the frontier is empty.
        net.rec.emit(TraceEvent::Rollup(Rollup {
            round: rounds,
            informed: net.metrics.informed_nodes,
            messages: net.metrics.messages,
            frontier: 0,
        }));
    }
    let outputs = behaviors.iter().map(|b| b.output()).collect();
    Ok(RunOutcome {
        metrics: net.metrics,
        informed: net.informed.to_bools(),
        crashed: net.crashed.to_bools(),
        trace: Vec::new(),
        trace_stats: net.rec.stats,
        outputs,
    })
}
