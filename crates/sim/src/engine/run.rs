//! The driver loop: instantiate schemes, drain the network, poll
//! quiescence, collect the outcome.

use std::collections::VecDeque;

use oraclesize_bits::BitString;
use oraclesize_graph::{NodeId, PortGraph};

use crate::engine::config::SimConfig;
use crate::engine::delivery::{InFlight, NetState};
use crate::engine::outcome::{RunOutcome, SimError, TraceEvent};
use crate::protocol::{NodeBehavior, NodeView, Protocol};
use crate::scheduler::Scheduler;

/// Executes `protocol` on `g` from `source` with the given per-node advice.
///
/// Nodes are instantiated in node-id order; `on_start` is invoked in that
/// order before any delivery. Execution runs to quiescence (no in-flight
/// messages) and returns the outcome.
///
/// # Errors
///
/// See [`SimError`]. Any error aborts the run immediately.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn run(
    g: &PortGraph,
    source: NodeId,
    advice: &[BitString],
    protocol: &dyn Protocol,
    config: &SimConfig,
) -> Result<RunOutcome, SimError> {
    assert!(source < g.num_nodes(), "source out of range");
    let n = g.num_nodes();
    if advice.len() != n {
        return Err(SimError::AdviceCount {
            expected: n,
            got: advice.len(),
        });
    }

    let mut net = NetState::new(g, config, source);
    let corrupted = net.corrupt_advice(advice);
    let advice: &[BitString] = corrupted.as_deref().unwrap_or(advice);

    let mut behaviors: Vec<Box<dyn NodeBehavior>> = (0..n)
        .map(|v| {
            protocol.create(NodeView {
                advice: advice[v].clone(),
                is_source: v == source,
                id: if config.anonymous {
                    None
                } else {
                    Some(g.label(v))
                },
                degree: g.degree(v),
            })
        })
        .collect();

    let mut trace = Vec::new();
    let mut pending: VecDeque<InFlight> = VecDeque::new();
    let mut next_round: VecDeque<InFlight> = VecDeque::new();

    // Spontaneous phase.
    for (v, behavior) in behaviors.iter_mut().enumerate() {
        let sends = behavior.on_start();
        net.enqueue(v, sends, &mut pending)?;
    }

    let mut scheduler: Scheduler = config.scheduler.instantiate();
    let mut steps: u64 = 0;
    let mut rounds: u64 = 0;
    let mut polls: u32 = 0;

    'run: loop {
        // Delivery loop: drain the network to quiescence.
        loop {
            if pending.is_empty() {
                if config.synchronous && !next_round.is_empty() {
                    pending = std::mem::take(&mut next_round);
                    rounds += 1;
                    continue;
                }
                break;
            }
            if steps >= config.max_steps {
                return Err(SimError::StepLimit {
                    limit: config.max_steps,
                });
            }
            let next = if config.synchronous {
                pending.pop_front()
            } else {
                scheduler.take(&mut pending, |m: &InFlight| m.message.carries_source)
            };
            let Some(InFlight {
                from,
                to,
                arrival_port,
                message,
            }) = next
            else {
                // Unreachable given the nonempty check above; an empty pool
                // is quiescence, not an error.
                break;
            };

            if config.capture_trace {
                trace.push(TraceEvent {
                    step: steps,
                    from,
                    to,
                    arrival_port,
                    bits: message.size_bits() as u64,
                    carries_source: message.carries_source,
                });
            }
            steps += 1;

            if net.crashed[to] {
                // The wire delivered it, but nobody is listening: the node
                // neither learns the source message nor reacts.
                net.metrics.faults.to_crashed += 1;
                continue;
            }
            if message.carries_source {
                net.informed[to] = true;
            }

            let sends = behaviors[to].on_receive(arrival_port, &message);
            let out = if config.synchronous {
                &mut next_round
            } else {
                &mut pending
            };
            net.enqueue(to, sends, out)?;
        }

        // Quiescence: poll live nodes for retries, bounded by the config.
        // A fully silent poll (the default hook) ends the run. "Silent"
        // means no node *returned* a send — a poll whose sends were all
        // dropped by the fault plan still counts as speaking, so a retrying
        // scheme keeps its remaining attempts under total message loss.
        if polls >= config.max_quiescence_polls {
            break;
        }
        polls += 1;
        let mut spoke = false;
        for (v, behavior) in behaviors.iter_mut().enumerate() {
            if net.crashed[v] {
                continue;
            }
            let sends = behavior.on_quiescence();
            spoke |= !sends.is_empty();
            net.enqueue(v, sends, &mut pending)?;
        }
        if !spoke {
            break 'run;
        }
    }

    net.metrics.steps = steps;
    net.metrics.rounds = rounds;
    net.metrics.informed_nodes = net.informed.iter().filter(|&&x| x).count() as u64;
    let outputs = behaviors.iter().map(|b| b.output()).collect();
    Ok(RunOutcome {
        metrics: net.metrics,
        informed: net.informed,
        crashed: net.crashed,
        trace,
        outputs,
    })
}
