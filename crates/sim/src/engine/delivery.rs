//! The network state machine: send validation, accounting, fault
//! injection, and the zero-clone, zero-allocation delivery hot path.

use std::collections::VecDeque;

use oraclesize_bits::{BitSet, BitString};
use oraclesize_graph::{NodeId, Port, PortGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::engine::config::{SimConfig, TaskMode};
use crate::engine::outcome::SimError;
use crate::metrics::RunMetrics;
use crate::protocol::{Message, Outgoing};
use crate::trace::{DropFault, MsgId, Recorder, TraceEvent, TraceSink};

/// An in-flight message.
pub(crate) struct InFlight {
    pub msg: MsgId,
    pub from: NodeId,
    pub to: NodeId,
    pub arrival_port: Port,
    pub message: Message,
}

/// Slab arena for in-flight messages.
///
/// The delivery queues hold `u32` slot indices, not [`InFlight`] values:
/// payloads are moved into a slot once at [`insert`](MsgSlab::insert) and
/// never move again until [`take`](MsgSlab::take) hands them to the
/// receiver. Freed slots are recycled through a free list, so a run's
/// steady state performs no per-delivery heap allocation at all.
///
/// [`enqueue`](NetState::enqueue) bulk-[`reserve`](MsgSlab::reserve)s one
/// slot per send up front; that growth is amortised (geometric `Vec`
/// growth) and deliberately *not* counted. What `queue_allocs` counts is
/// an insert that outruns the prepared free list and forces a fresh slot —
/// on a fault-free run that can never happen (one send, one slot), so
/// engine tests pin `queue_allocs == 0` the same way they pin
/// `payload_copies == 0`. Only the extra deliveries a duplication fault
/// manufactures can trip it.
#[derive(Default)]
pub(crate) struct MsgSlab {
    slots: Vec<Option<InFlight>>,
    free: Vec<u32>,
    /// Slots created outside [`reserve`](MsgSlab::reserve) — forced,
    /// per-delivery growth. Reported as
    /// [`FaultCounts::queue_allocs`](crate::faults::FaultCounts::queue_allocs).
    pub queue_allocs: u64,
}

impl MsgSlab {
    /// Pre-extends the free list so the next `extra` inserts all reuse
    /// prepared slots. Bulk, amortised growth — not counted.
    pub fn reserve(&mut self, extra: usize) {
        let need = extra.saturating_sub(self.free.len());
        self.slots.reserve(need);
        self.free.reserve(need);
        for _ in 0..need {
            let idx = self.slots.len() as u32;
            // lint:allow(A001): bulk amortised slot growth — one reserve per
            // batch, deliberately uncounted (see the MsgSlab contract above)
            self.slots.push(None);
            // lint:allow(A001): free-list half of the same bulk reserve
            self.free.push(idx);
        }
    }

    /// Stores one in-flight message, returning its slot index. Running
    /// past the prepared free list forces a fresh slot, counted in
    /// [`queue_allocs`](MsgSlab::queue_allocs).
    pub fn insert(&mut self, m: InFlight) -> u32 {
        match self.free.pop() {
            Some(idx) => {
                self.slots[idx as usize] = Some(m);
                idx
            }
            None => {
                self.queue_allocs += 1;
                let idx = self.slots.len() as u32;
                // lint:allow(A001): forced growth past the reserve — duplication
                // faults only, and every occurrence is counted in queue_allocs
                self.slots.push(Some(m));
                idx
            }
        }
    }

    /// Removes and returns the message in slot `idx`, recycling the slot.
    /// `None` for a vacant or out-of-range slot.
    pub fn take(&mut self, idx: u32) -> Option<InFlight> {
        let m = self.slots.get_mut(idx as usize)?.take();
        if m.is_some() {
            // lint:allow(A001): recycles a slot index into capacity the matching
            // reserve already created — never grows on a fault-free run
            self.free.push(idx);
        }
        m
    }

    /// Whether slot `idx` holds a message carrying the source bit —
    /// the starving scheduler's predicate, answered without touching the
    /// payload.
    pub fn carries_source(&self, idx: u32) -> bool {
        self.slots
            .get(idx as usize)
            .and_then(|s| s.as_ref())
            .is_some_and(|m| m.message.carries_source)
    }
}

/// Everything the engine mutates while messages are in flight: node status
/// (informed, crashed, send budgets), the in-flight slab, accounting, the
/// fault RNG, and the trace recorder.
///
/// Node status lives in struct-of-arrays form — packed [`BitSet`]s for the
/// two boolean planes, a flat `Vec<u64>` for send budgets — so a
/// million-node run costs two 125 kB bitsets, not two megabyte-sized
/// `Vec<bool>`s (DESIGN.md §11).
///
/// Splitting this off the driver loop lets [`enqueue`](NetState::enqueue)
/// borrow the whole machine mutably while the driver keeps its own handles
/// on the delivery queues.
pub(crate) struct NetState<'a> {
    g: &'a PortGraph,
    config: &'a SimConfig,
    /// Which nodes have the source message.
    pub informed: BitSet,
    /// Which nodes have crash-stopped.
    pub crashed: BitSet,
    sends_made: Vec<u64>,
    /// In-flight payload storage; the delivery queues hold indices into it.
    pub slab: MsgSlab,
    /// Accounting, updated per accepted send.
    pub metrics: RunMetrics,
    fault_rng: Option<StdRng>,
    /// Next message id: assigned serially in enqueue order, so ids are a
    /// deterministic function of the run, not of any surrounding batch.
    next_msg: MsgId,
    /// Trace emission (no-op when the sink is disabled).
    pub rec: Recorder<'a>,
}

impl<'a> NetState<'a> {
    /// Fresh state: only the source is informed; zero-budget crash nodes
    /// are dead from the start. An inert fault plan takes no RNG and the
    /// run is bit-for-bit identical to a fault-free execution.
    pub fn new(
        g: &'a PortGraph,
        config: &'a SimConfig,
        source: NodeId,
        sink: &'a mut dyn TraceSink,
    ) -> Self {
        let n = g.num_nodes();
        let plan = &config.faults;
        let fault_rng = if plan.is_inert() {
            None
        } else {
            Some(StdRng::seed_from_u64(plan.seed))
        };
        let mut informed = BitSet::new(n);
        informed.set(source, true);
        let mut crashed = BitSet::new(n);
        for (&v, &budget) in &plan.crashes {
            if budget == 0 && v < n {
                crashed.set(v, true);
            }
        }
        NetState {
            g,
            config,
            informed,
            crashed,
            sends_made: vec![0; n],
            slab: MsgSlab::default(),
            metrics: RunMetrics::default(),
            fault_rng,
            next_msg: 0,
            rec: Recorder::new(sink),
        }
    }

    /// Applies the advice-corruption adversary, returning the mutated
    /// advice if the plan has an active fault RNG. Must be called before
    /// any [`enqueue`](NetState::enqueue) so the RNG stream matches the
    /// documented draw order (advice first, then in-flight faults).
    pub fn corrupt_advice(&mut self, advice: &[BitString]) -> Option<Vec<BitString>> {
        let rng = self.fault_rng.as_mut()?;
        let mut mutated = advice.to_vec();
        self.metrics.faults.advice_mutations = self.config.faults.advice.corrupt(&mut mutated, rng);
        Some(mutated)
    }

    /// Removes the in-flight message in slab slot `idx` for delivery.
    // lint:hot-path
    pub fn take_in_flight(&mut self, idx: u32) -> Option<InFlight> {
        self.slab.take(idx)
    }

    /// Enqueues `sends` from node `v` onto `out`, validating rules,
    /// accounting, and injecting in-flight faults. A crashed node's sends
    /// are suppressed (it is dead, so they are not wakeup violations
    /// either); protocol errors from live nodes still abort the run even
    /// under faults.
    ///
    /// This is the delivery hot path: each accepted payload is *moved*
    /// into a slab slot and `out` receives only its `u32` index. The only
    /// copies are the extra deliveries a duplication fault manufactures,
    /// counted in
    /// [`FaultCounts::payload_copies`](crate::faults::FaultCounts::payload_copies);
    /// the only uncovered slot growth is likewise duplication-only,
    /// counted in
    /// [`FaultCounts::queue_allocs`](crate::faults::FaultCounts::queue_allocs).
    /// Trace emission is likewise free when off: event construction sits
    /// behind the recorder's cached `on` flag and events are stack-only.
    // lint:hot-path
    pub fn enqueue(
        &mut self,
        v: NodeId,
        sends: Vec<Outgoing>,
        out: &mut VecDeque<u32>,
    ) -> Result<(), SimError> {
        if sends.is_empty() {
            return Ok(());
        }
        if self.crashed.get(v) {
            self.metrics.faults.suppressed_sends += sends.len() as u64;
            return Ok(());
        }
        if self.config.mode == TaskMode::Wakeup && !self.informed.get(v) {
            return Err(SimError::WakeupViolation { node: v });
        }
        self.slab.reserve(sends.len());
        for s in sends {
            if s.port >= self.g.degree(v) {
                return Err(SimError::PortOutOfRange {
                    node: v,
                    port: s.port,
                    degree: self.g.degree(v),
                });
            }
            let bits = s.message.size_bits() as u64;
            if let Some(limit) = self.config.max_message_bits {
                if bits > limit {
                    return Err(SimError::MessageTooLarge {
                        node: v,
                        bits,
                        limit,
                    });
                }
            }
            if self.crashed.get(v) {
                // The crash budget ran out earlier in this batch.
                self.metrics.faults.suppressed_sends += 1;
                continue;
            }
            let (to, arrival_port) = self.g.neighbor_via(v, s.port);
            let mut message = s.message;
            message.carries_source = self.informed.get(v);
            self.metrics.messages += 1;
            if message.carries_source {
                self.metrics.informed_messages += 1;
            }
            self.metrics.payload_bits += bits;
            self.metrics.max_message_bits = self.metrics.max_message_bits.max(bits);
            self.sends_made[v] += 1;
            if self
                .config
                .faults
                .crashes
                .get(&v)
                .is_some_and(|&k| self.sends_made[v] >= k)
            {
                self.crashed.set(v, true);
            }
            let msg = self.next_msg;
            self.next_msg += 1;
            self.rec.emit(TraceEvent::Enqueue {
                msg,
                from: v,
                to,
                bits,
                carries_source: message.carries_source,
            });
            // In-flight faults: drop, duplicate, or corrupt the payload.
            let mut copies: u32 = 1;
            if let Some(rng) = self.fault_rng.as_mut() {
                if rng.gen_bool(self.config.faults.drop_prob.clamp(0.0, 1.0)) {
                    self.metrics.faults.dropped += 1;
                    copies = 0;
                    self.rec.emit(TraceEvent::Drop {
                        msg,
                        from: v,
                        to,
                        fault: DropFault::Lost,
                    });
                } else if rng.gen_bool(self.config.faults.duplicate_prob.clamp(0.0, 1.0)) {
                    self.metrics.faults.duplicated += 1;
                    copies = 2;
                }
            }
            // Zero-clone hot path: the last delivery takes ownership of
            // the payload; only the extra deliveries of a duplication
            // fault are cloned (and counted). Clones go first so the RNG
            // draw order (one flip check per delivered copy) matches the
            // committed artifacts. Each extra copy gets its own message id
            // (fresh `Enqueue` event): it is a distinct in-flight delivery
            // with its own fate.
            for _ in 1..copies {
                self.metrics.faults.payload_copies += 1;
                let copy_id = self.next_msg;
                self.next_msg += 1;
                self.rec.emit(TraceEvent::Enqueue {
                    msg: copy_id,
                    from: v,
                    to,
                    bits,
                    carries_source: message.carries_source,
                });
                // lint:allow(A001): the one sanctioned copy — a duplication fault
                // manufactures an extra delivery, counted in payload_copies
                let delivered = self.maybe_flip(copy_id, message.clone());
                let slot = self.slab.insert(InFlight {
                    msg: copy_id,
                    from: v,
                    to,
                    arrival_port,
                    message: delivered,
                });
                out.push_back(slot);
            }
            if copies > 0 {
                let delivered = self.maybe_flip(msg, message);
                let slot = self.slab.insert(InFlight {
                    msg,
                    from: v,
                    to,
                    arrival_port,
                    message: delivered,
                });
                out.push_back(slot);
            }
        }
        Ok(())
    }

    /// Applies the bit-flip fault to one delivered copy: with the plan's
    /// probability, one uniformly chosen payload bit is inverted.
    fn maybe_flip(&mut self, msg: MsgId, mut message: Message) -> Message {
        if let Some(rng) = self.fault_rng.as_mut() {
            if !message.payload.is_empty()
                && rng.gen_bool(self.config.faults.bit_flip_prob.clamp(0.0, 1.0))
            {
                let idx = rng.gen_range(0..message.payload.len());
                message.payload =
                    BitString::from_bits(message.payload.iter().enumerate().map(|(i, b)| {
                        if i == idx {
                            !b
                        } else {
                            b
                        }
                    }));
                self.metrics.faults.payload_flips += 1;
                self.rec.emit(TraceEvent::Corrupt {
                    msg,
                    bit: idx as u64,
                });
            }
        }
        message
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(msg: MsgId) -> InFlight {
        InFlight {
            msg,
            from: 0,
            to: 1,
            arrival_port: 0,
            message: Message::empty(),
        }
    }

    #[test]
    fn reserved_inserts_are_not_counted() {
        let mut slab = MsgSlab::default();
        slab.reserve(3);
        let a = slab.insert(dummy(0));
        let b = slab.insert(dummy(1));
        let c = slab.insert(dummy(2));
        assert_eq!(slab.queue_allocs, 0);
        assert_eq!(slab.take(b).map(|m| m.msg), Some(1));
        assert_eq!(slab.take(a).map(|m| m.msg), Some(0));
        assert_eq!(slab.take(c).map(|m| m.msg), Some(2));
    }

    #[test]
    fn unreserved_insert_forces_growth() {
        let mut slab = MsgSlab::default();
        slab.reserve(1);
        slab.insert(dummy(0));
        slab.insert(dummy(1)); // outruns the reserve: forced slot
        assert_eq!(slab.queue_allocs, 1);
    }

    #[test]
    fn freed_slots_are_recycled() {
        let mut slab = MsgSlab::default();
        slab.reserve(1);
        let a = slab.insert(dummy(0));
        assert!(slab.take(a).is_some());
        let b = slab.insert(dummy(1));
        assert_eq!(a, b, "freed slot must be reused");
        assert_eq!(slab.queue_allocs, 0);
    }

    #[test]
    fn take_vacant_or_out_of_range_is_none() {
        let mut slab = MsgSlab::default();
        slab.reserve(2);
        assert!(slab.take(0).is_none(), "vacant slot");
        assert!(slab.take(99).is_none(), "out of range");
        let a = slab.insert(dummy(7));
        assert!(slab.take(a).is_some());
        assert!(slab.take(a).is_none(), "double take");
    }

    #[test]
    fn carries_source_reads_without_removing() {
        let mut slab = MsgSlab::default();
        slab.reserve(2);
        let mut m = dummy(0);
        m.message.carries_source = true;
        let a = slab.insert(m);
        let b = slab.insert(dummy(1));
        assert!(slab.carries_source(a));
        assert!(!slab.carries_source(b));
        assert!(!slab.carries_source(42), "out of range is uninformed");
        assert!(slab.take(a).is_some(), "predicate must not remove");
    }

    #[test]
    fn reserve_tops_up_only_the_shortfall() {
        let mut slab = MsgSlab::default();
        slab.reserve(4);
        let a = slab.insert(dummy(0));
        slab.take(a);
        // 4 free slots remain; reserving 4 again must create none.
        let before = slab.slots.len();
        slab.reserve(4);
        assert_eq!(slab.slots.len(), before);
        for i in 0..4 {
            slab.insert(dummy(i));
        }
        assert_eq!(slab.queue_allocs, 0);
    }
}
