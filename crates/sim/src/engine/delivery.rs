//! The network state machine: send validation, accounting, fault
//! injection, and the zero-clone delivery hot path.

use std::collections::VecDeque;

use oraclesize_bits::BitString;
use oraclesize_graph::{NodeId, Port, PortGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::engine::config::{SimConfig, TaskMode};
use crate::engine::outcome::SimError;
use crate::metrics::RunMetrics;
use crate::protocol::{Message, Outgoing};
use crate::trace::{DropFault, MsgId, Recorder, TraceEvent, TraceSink};

/// An in-flight message.
pub(crate) struct InFlight {
    pub msg: MsgId,
    pub from: NodeId,
    pub to: NodeId,
    pub arrival_port: Port,
    pub message: Message,
}

/// Everything the engine mutates while messages are in flight: node status
/// (informed, crashed, send budgets), accounting, the fault RNG, and the
/// trace recorder.
///
/// Splitting this off the driver loop lets [`enqueue`](NetState::enqueue)
/// borrow the whole machine mutably while the driver keeps its own handles
/// on the delivery queues.
pub(crate) struct NetState<'a> {
    g: &'a PortGraph,
    config: &'a SimConfig,
    /// Which nodes have the source message.
    pub informed: Vec<bool>,
    /// Which nodes have crash-stopped.
    pub crashed: Vec<bool>,
    sends_made: Vec<u64>,
    /// Accounting, updated per accepted send.
    pub metrics: RunMetrics,
    fault_rng: Option<StdRng>,
    /// Next message id: assigned serially in enqueue order, so ids are a
    /// deterministic function of the run, not of any surrounding batch.
    next_msg: MsgId,
    /// Trace emission (no-op when the sink is disabled).
    pub rec: Recorder<'a>,
}

impl<'a> NetState<'a> {
    /// Fresh state: only the source is informed; zero-budget crash nodes
    /// are dead from the start. An inert fault plan takes no RNG and the
    /// run is bit-for-bit identical to a fault-free execution.
    pub fn new(
        g: &'a PortGraph,
        config: &'a SimConfig,
        source: NodeId,
        sink: &'a mut dyn TraceSink,
    ) -> Self {
        let n = g.num_nodes();
        let plan = &config.faults;
        let fault_rng = if plan.is_inert() {
            None
        } else {
            Some(StdRng::seed_from_u64(plan.seed))
        };
        let mut informed = vec![false; n];
        informed[source] = true;
        let crashed = (0..n)
            .map(|v| plan.crashes.get(&v).is_some_and(|&k| k == 0))
            .collect();
        NetState {
            g,
            config,
            informed,
            crashed,
            sends_made: vec![0; n],
            metrics: RunMetrics::default(),
            fault_rng,
            next_msg: 0,
            rec: Recorder::new(sink),
        }
    }

    /// Applies the advice-corruption adversary, returning the mutated
    /// advice if the plan has an active fault RNG. Must be called before
    /// any [`enqueue`](NetState::enqueue) so the RNG stream matches the
    /// documented draw order (advice first, then in-flight faults).
    pub fn corrupt_advice(&mut self, advice: &[BitString]) -> Option<Vec<BitString>> {
        let rng = self.fault_rng.as_mut()?;
        let mut mutated = advice.to_vec();
        self.metrics.faults.advice_mutations = self.config.faults.advice.corrupt(&mut mutated, rng);
        Some(mutated)
    }

    /// Enqueues `sends` from node `v` onto `out`, validating rules,
    /// accounting, and injecting in-flight faults. A crashed node's sends
    /// are suppressed (it is dead, so they are not wakeup violations
    /// either); protocol errors from live nodes still abort the run even
    /// under faults.
    ///
    /// This is the delivery hot path: each accepted payload is *moved*
    /// into the queue. The only copies are the extra deliveries a
    /// duplication fault manufactures, counted in
    /// [`FaultCounts::payload_copies`](crate::faults::FaultCounts::payload_copies).
    /// Trace emission is likewise free when off: event construction sits
    /// behind the recorder's cached `on` flag and events are stack-only.
    pub fn enqueue(
        &mut self,
        v: NodeId,
        sends: Vec<Outgoing>,
        out: &mut VecDeque<InFlight>,
    ) -> Result<(), SimError> {
        if sends.is_empty() {
            return Ok(());
        }
        if self.crashed[v] {
            self.metrics.faults.suppressed_sends += sends.len() as u64;
            return Ok(());
        }
        if self.config.mode == TaskMode::Wakeup && !self.informed[v] {
            return Err(SimError::WakeupViolation { node: v });
        }
        for s in sends {
            if s.port >= self.g.degree(v) {
                return Err(SimError::PortOutOfRange {
                    node: v,
                    port: s.port,
                    degree: self.g.degree(v),
                });
            }
            let bits = s.message.size_bits() as u64;
            if let Some(limit) = self.config.max_message_bits {
                if bits > limit {
                    return Err(SimError::MessageTooLarge {
                        node: v,
                        bits,
                        limit,
                    });
                }
            }
            if self.crashed[v] {
                // The crash budget ran out earlier in this batch.
                self.metrics.faults.suppressed_sends += 1;
                continue;
            }
            let (to, arrival_port) = self.g.neighbor_via(v, s.port);
            let mut message = s.message;
            message.carries_source = self.informed[v];
            self.metrics.messages += 1;
            if message.carries_source {
                self.metrics.informed_messages += 1;
            }
            self.metrics.payload_bits += bits;
            self.metrics.max_message_bits = self.metrics.max_message_bits.max(bits);
            self.sends_made[v] += 1;
            if self
                .config
                .faults
                .crashes
                .get(&v)
                .is_some_and(|&k| self.sends_made[v] >= k)
            {
                self.crashed[v] = true;
            }
            let msg = self.next_msg;
            self.next_msg += 1;
            self.rec.emit(TraceEvent::Enqueue {
                msg,
                from: v,
                to,
                bits,
                carries_source: message.carries_source,
            });
            // In-flight faults: drop, duplicate, or corrupt the payload.
            let mut copies: u32 = 1;
            if let Some(rng) = self.fault_rng.as_mut() {
                if rng.gen_bool(self.config.faults.drop_prob.clamp(0.0, 1.0)) {
                    self.metrics.faults.dropped += 1;
                    copies = 0;
                    self.rec.emit(TraceEvent::Drop {
                        msg,
                        from: v,
                        to,
                        fault: DropFault::Lost,
                    });
                } else if rng.gen_bool(self.config.faults.duplicate_prob.clamp(0.0, 1.0)) {
                    self.metrics.faults.duplicated += 1;
                    copies = 2;
                }
            }
            // Zero-clone hot path: the last delivery takes ownership of
            // the payload; only the extra deliveries of a duplication
            // fault are cloned (and counted). Clones go first so the RNG
            // draw order (one flip check per delivered copy) matches the
            // committed artifacts. Each extra copy gets its own message id
            // (fresh `Enqueue` event): it is a distinct in-flight delivery
            // with its own fate.
            for _ in 1..copies {
                self.metrics.faults.payload_copies += 1;
                let copy_id = self.next_msg;
                self.next_msg += 1;
                self.rec.emit(TraceEvent::Enqueue {
                    msg: copy_id,
                    from: v,
                    to,
                    bits,
                    carries_source: message.carries_source,
                });
                let delivered = self.maybe_flip(copy_id, message.clone());
                out.push_back(InFlight {
                    msg: copy_id,
                    from: v,
                    to,
                    arrival_port,
                    message: delivered,
                });
            }
            if copies > 0 {
                let delivered = self.maybe_flip(msg, message);
                out.push_back(InFlight {
                    msg,
                    from: v,
                    to,
                    arrival_port,
                    message: delivered,
                });
            }
        }
        Ok(())
    }

    /// Applies the bit-flip fault to one delivered copy: with the plan's
    /// probability, one uniformly chosen payload bit is inverted.
    fn maybe_flip(&mut self, msg: MsgId, mut message: Message) -> Message {
        if let Some(rng) = self.fault_rng.as_mut() {
            if !message.payload.is_empty()
                && rng.gen_bool(self.config.faults.bit_flip_prob.clamp(0.0, 1.0))
            {
                let idx = rng.gen_range(0..message.payload.len());
                message.payload =
                    BitString::from_bits(message.payload.iter().enumerate().map(|(i, b)| {
                        if i == idx {
                            !b
                        } else {
                            b
                        }
                    }));
                self.metrics.faults.payload_flips += 1;
                self.rec.emit(TraceEvent::Corrupt {
                    msg,
                    bit: idx as u64,
                });
            }
        }
        message
    }
}
