//! Execution configuration: task rules and delivery model.

use crate::faults::FaultPlan;
use crate::scheduler::SchedulerKind;

/// Which communication task's rules the engine enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TaskMode {
    /// Broadcast: every node may transmit spontaneously.
    #[default]
    Broadcast,
    /// Wakeup: a node other than the source must stay silent until it has
    /// received a message carrying the source message. Any earlier send is
    /// a [`SimError`](crate::engine::SimError)`::WakeupViolation`.
    Wakeup,
}

/// Execution configuration.
///
/// The default is synchronous broadcast with FIFO delivery, no message-size
/// limit, identities visible, and no trace capture.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Task rules to enforce.
    pub mode: TaskMode,
    /// `true`: round-based synchronous delivery (all messages sent in round
    /// `r` arrive in round `r+1`). `false`: asynchronous — the
    /// [`scheduler`](SimConfig::scheduler) picks each next delivery.
    pub synchronous: bool,
    /// Delivery order for asynchronous mode.
    pub scheduler: SchedulerKind,
    /// Abort after this many deliveries
    /// ([`SimError::StepLimit`](crate::engine::SimError::StepLimit)); guards
    /// against non-quiescent protocols.
    pub max_steps: u64,
    /// If set, any payload larger than this many bits aborts the run
    /// ([`SimError::MessageTooLarge`](crate::engine::SimError::MessageTooLarge))
    /// — the bounded-message-size model.
    pub max_message_bits: Option<u64>,
    /// Erase node identities (`NodeView::id = None`) — the anonymous model
    /// of §1.3.
    pub anonymous: bool,
    /// Record a [`TraceEvent`](crate::engine::TraceEvent) per delivery (for
    /// tests and examples).
    pub capture_trace: bool,
    /// Faults to inject (see [`crate::faults`]). The default plan is inert:
    /// the engine then behaves bit-for-bit as a fault-free run.
    pub faults: FaultPlan,
    /// How many times the engine polls
    /// [`NodeBehavior::on_quiescence`](crate::protocol::NodeBehavior::on_quiescence)
    /// after the network drains before declaring the run over. Each poll
    /// that produces sends resumes delivery; schemes that never speak at
    /// quiescence terminate after one silent poll regardless of this limit.
    pub max_quiescence_polls: u32,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            mode: TaskMode::Broadcast,
            synchronous: true,
            scheduler: SchedulerKind::Fifo,
            max_steps: 10_000_000,
            max_message_bits: None,
            anonymous: false,
            capture_trace: false,
            faults: FaultPlan::default(),
            max_quiescence_polls: 8,
        }
    }
}

impl SimConfig {
    /// Synchronous wakeup configuration.
    pub fn wakeup() -> Self {
        SimConfig {
            mode: TaskMode::Wakeup,
            ..Default::default()
        }
    }

    /// Asynchronous broadcast under the given scheduler.
    pub fn asynchronous(scheduler: SchedulerKind) -> Self {
        SimConfig {
            synchronous: false,
            scheduler,
            ..Default::default()
        }
    }
}
