//! Execution configuration: task rules, delivery model, and the builder.

use crate::faults::FaultPlan;
use crate::scheduler::SchedulerKind;
use crate::trace::TraceSpec;

/// Which communication task's rules the engine enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TaskMode {
    /// Broadcast: every node may transmit spontaneously.
    #[default]
    Broadcast,
    /// Wakeup: a node other than the source must stay silent until it has
    /// received a message carrying the source message. Any earlier send is
    /// a [`SimError`](crate::engine::SimError)`::WakeupViolation`.
    Wakeup,
}

/// Execution configuration.
///
/// The default is synchronous broadcast with FIFO delivery, no message-size
/// limit, identities visible, and no trace capture. Configurations are
/// built fluently from a base constructor — fields stay readable, but the
/// struct is `#[non_exhaustive]`, so construction outside this crate goes
/// through the `#[must_use]` builder methods:
///
/// ```
/// use oraclesize_sim::engine::SimConfig;
/// use oraclesize_sim::scheduler::SchedulerKind;
/// use oraclesize_sim::trace::TraceSpec;
///
/// let config = SimConfig::wakeup()
///     .with_scheduler(SchedulerKind::Lifo)
///     .with_max_steps(100_000)
///     .capture_trace(TraceSpec::Full);
/// assert!(!config.synchronous);
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct SimConfig {
    /// Task rules to enforce.
    pub mode: TaskMode,
    /// `true`: round-based synchronous delivery (all messages sent in round
    /// `r` arrive in round `r+1`). `false`: asynchronous — the
    /// [`scheduler`](SimConfig::scheduler) picks each next delivery.
    pub synchronous: bool,
    /// Delivery order for asynchronous mode.
    pub scheduler: SchedulerKind,
    /// Abort after this many deliveries
    /// ([`SimError::StepLimit`](crate::engine::SimError::StepLimit)); guards
    /// against non-quiescent protocols.
    pub max_steps: u64,
    /// If set, any payload larger than this many bits aborts the run
    /// ([`SimError::MessageTooLarge`](crate::engine::SimError::MessageTooLarge))
    /// — the bounded-message-size model.
    pub max_message_bits: Option<u64>,
    /// Erase node identities (`NodeView::id = None`) — the anonymous model
    /// of §1.3.
    pub anonymous: bool,
    /// What trace to capture (see [`crate::trace`]). [`TraceSpec::Off`] by
    /// default: the trace path then performs no allocations at all.
    pub trace: TraceSpec,
    /// Faults to inject (see [`crate::faults`]). The default plan is inert:
    /// the engine then behaves bit-for-bit as a fault-free run.
    pub faults: FaultPlan,
    /// How many times the engine polls
    /// [`NodeBehavior::on_quiescence`](crate::protocol::NodeBehavior::on_quiescence)
    /// after the network drains before declaring the run over. Each poll
    /// that produces sends resumes delivery; schemes that never speak at
    /// quiescence terminate after one silent poll regardless of this limit.
    pub max_quiescence_polls: u32,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            mode: TaskMode::Broadcast,
            synchronous: true,
            scheduler: SchedulerKind::Fifo,
            max_steps: 10_000_000,
            max_message_bits: None,
            anonymous: false,
            trace: TraceSpec::Off,
            faults: FaultPlan::default(),
            max_quiescence_polls: 8,
        }
    }
}

impl SimConfig {
    /// Synchronous broadcast — the same as [`Default`], spelled as a base
    /// for builder chains.
    pub fn broadcast() -> Self {
        SimConfig::default()
    }

    /// Synchronous wakeup configuration.
    pub fn wakeup() -> Self {
        SimConfig::default().with_mode(TaskMode::Wakeup)
    }

    /// Sets the task rules to enforce.
    #[must_use]
    pub fn with_mode(mut self, mode: TaskMode) -> Self {
        self.mode = mode;
        self
    }

    /// Switches to asynchronous delivery under `scheduler`.
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.synchronous = false;
        self.scheduler = scheduler;
        self
    }

    /// Picks the delivery model directly: `true` for round-based
    /// synchronous delivery, `false` for the configured scheduler.
    #[must_use]
    pub fn with_synchronous(mut self, synchronous: bool) -> Self {
        self.synchronous = synchronous;
        self
    }

    /// Sets the delivery budget.
    #[must_use]
    pub fn with_max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Bounds every payload to `bits` bits.
    #[must_use]
    pub fn with_max_message_bits(mut self, bits: u64) -> Self {
        self.max_message_bits = Some(bits);
        self
    }

    /// Hides node identities (the anonymous model).
    #[must_use]
    pub fn with_anonymous(mut self, anonymous: bool) -> Self {
        self.anonymous = anonymous;
        self
    }

    /// Installs a fault plan.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the quiescence-poll budget.
    #[must_use]
    pub fn with_quiescence_polls(mut self, polls: u32) -> Self {
        self.max_quiescence_polls = polls;
        self
    }

    /// Requests a trace (see [`crate::trace`] for the taxonomy and sinks).
    #[must_use]
    pub fn capture_trace(mut self, trace: TraceSpec) -> Self {
        self.trace = trace;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_composes() {
        let cfg = SimConfig::wakeup()
            .with_scheduler(SchedulerKind::Lifo)
            .with_max_steps(5)
            .with_max_message_bits(7)
            .with_anonymous(true)
            .with_quiescence_polls(3)
            .capture_trace(TraceSpec::Ring { capacity: 16 });
        assert_eq!(cfg.mode, TaskMode::Wakeup);
        assert!(!cfg.synchronous);
        assert_eq!(cfg.scheduler, SchedulerKind::Lifo);
        assert_eq!(cfg.max_steps, 5);
        assert_eq!(cfg.max_message_bits, Some(7));
        assert!(cfg.anonymous);
        assert_eq!(cfg.max_quiescence_polls, 3);
        assert_eq!(cfg.trace, TraceSpec::Ring { capacity: 16 });
    }
}
