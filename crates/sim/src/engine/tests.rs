use super::*;
use crate::faults::FaultPlan;
use crate::protocol::{FloodOnce, Message, NodeBehavior, NodeView, Outgoing, Protocol, Silent};
use crate::scheduler::SchedulerKind;
use crate::testkit::no_advice;
use crate::trace::{DropFault, NullSink, Phase, TraceEvent, TraceSpec, TraceStats, VecSink};
use oraclesize_bits::BitString;
use oraclesize_graph::{families, Port};

#[test]
fn flooding_cycle_informs_all() {
    let g = families::cycle(5);
    let out = run(&g, 0, &no_advice(5), &FloodOnce, &SimConfig::default()).unwrap();
    assert!(out.all_informed());
    // Source sends 2, each of the 4 others forwards 1.
    assert_eq!(out.metrics.messages, 6);
    assert_eq!(out.metrics.informed_nodes, 5);
    assert!(out.metrics.rounds >= 2);
}

#[test]
fn flooding_complete_costs_quadratic() {
    let n = 10;
    let g = families::complete_rotational(n);
    let out = run(&g, 0, &no_advice(n), &FloodOnce, &SimConfig::default()).unwrap();
    assert!(out.all_informed());
    // Source: n−1, every other node: n−2.
    assert_eq!(out.metrics.messages as usize, (n - 1) + (n - 1) * (n - 2));
}

#[test]
fn silent_run_quiesces_with_single_informed() {
    let g = families::path(4);
    let out = run(&g, 2, &no_advice(4), &Silent, &SimConfig::default()).unwrap();
    assert!(!out.all_informed());
    assert_eq!(out.informed_count(), 1);
    assert_eq!(out.metrics.messages, 0);
    assert_eq!(out.metrics.rounds, 0);
}

#[test]
fn async_schedulers_all_complete_flooding() {
    let g = families::complete_rotational(8);
    for kind in SchedulerKind::sweep(7) {
        let cfg = SimConfig::broadcast().with_scheduler(kind);
        let out = run(&g, 3, &no_advice(8), &FloodOnce, &cfg).unwrap();
        assert!(out.all_informed(), "{}", kind.name());
        assert_eq!(out.metrics.steps, out.metrics.messages);
    }
}

#[test]
fn random_scheduler_is_deterministic_per_seed() {
    let g = families::complete_rotational(9);
    let cfg = SimConfig::broadcast()
        .with_scheduler(SchedulerKind::Random { seed: 5 })
        .capture_trace(TraceSpec::Full);
    let a = run(&g, 0, &no_advice(9), &FloodOnce, &cfg).unwrap();
    let b = run(&g, 0, &no_advice(9), &FloodOnce, &cfg).unwrap();
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.metrics, b.metrics);
}

#[test]
fn wakeup_mode_rejects_spontaneous_transmissions() {
    // FloodOnce is a legal wakeup protocol (only the source starts),
    // so craft a protocol where a non-source node speaks at start.
    struct Chatty;
    struct ChattyState {
        degree: usize,
    }
    impl NodeBehavior for ChattyState {
        fn on_start(&mut self) -> Vec<Outgoing> {
            (0..self.degree.min(1))
                .map(|p| Outgoing::new(p, Message::empty()))
                .collect()
        }
        fn on_receive(&mut self, _p: Port, _m: Message) -> Vec<Outgoing> {
            Vec::new()
        }
    }
    impl Protocol for Chatty {
        fn create(&self, view: NodeView) -> Box<dyn NodeBehavior> {
            Box::new(ChattyState {
                degree: view.degree,
            })
        }
    }
    let g = families::path(3);
    let err = run(&g, 0, &no_advice(3), &Chatty, &SimConfig::wakeup()).unwrap_err();
    assert!(matches!(err, SimError::WakeupViolation { .. }));
    // The same protocol is fine in broadcast mode.
    run(&g, 0, &no_advice(3), &Chatty, &SimConfig::default()).unwrap();
}

#[test]
fn flood_is_a_legal_wakeup_scheme() {
    let g = families::cycle(6);
    let out = run(&g, 0, &no_advice(6), &FloodOnce, &SimConfig::wakeup()).unwrap();
    assert!(out.all_informed());
}

#[test]
fn message_size_limit_enforced() {
    struct BigTalker;
    struct BigState {
        is_source: bool,
    }
    impl NodeBehavior for BigState {
        fn on_start(&mut self) -> Vec<Outgoing> {
            if self.is_source {
                let payload = BitString::from_bits((0..100).map(|i| i % 2 == 0));
                vec![Outgoing::new(0, Message::new(payload))]
            } else {
                Vec::new()
            }
        }
        fn on_receive(&mut self, _p: Port, _m: Message) -> Vec<Outgoing> {
            Vec::new()
        }
    }
    impl Protocol for BigTalker {
        fn create(&self, view: NodeView) -> Box<dyn NodeBehavior> {
            Box::new(BigState {
                is_source: view.is_source,
            })
        }
    }
    let g = families::path(2);
    let cfg = SimConfig::broadcast().with_max_message_bits(64);
    let err = run(&g, 0, &no_advice(2), &BigTalker, &cfg).unwrap_err();
    assert_eq!(
        err,
        SimError::MessageTooLarge {
            node: 0,
            bits: 100,
            limit: 64
        }
    );
}

#[test]
fn step_limit_stops_ping_pong() {
    struct PingPong;
    struct PingState {
        is_source: bool,
    }
    impl NodeBehavior for PingState {
        fn on_start(&mut self) -> Vec<Outgoing> {
            if self.is_source {
                vec![Outgoing::new(0, Message::empty())]
            } else {
                Vec::new()
            }
        }
        fn on_receive(&mut self, port: Port, _m: Message) -> Vec<Outgoing> {
            vec![Outgoing::new(port, Message::empty())]
        }
    }
    impl Protocol for PingPong {
        fn create(&self, view: NodeView) -> Box<dyn NodeBehavior> {
            Box::new(PingState {
                is_source: view.is_source,
            })
        }
    }
    let g = families::path(2);
    let cfg = SimConfig::broadcast().with_max_steps(50);
    let err = run(&g, 0, &no_advice(2), &PingPong, &cfg).unwrap_err();
    assert_eq!(err, SimError::StepLimit { limit: 50 });
}

#[test]
fn port_out_of_range_detected() {
    struct Wild;
    struct WildState {
        is_source: bool,
    }
    impl NodeBehavior for WildState {
        fn on_start(&mut self) -> Vec<Outgoing> {
            if self.is_source {
                vec![Outgoing::new(99, Message::empty())]
            } else {
                Vec::new()
            }
        }
        fn on_receive(&mut self, _p: Port, _m: Message) -> Vec<Outgoing> {
            Vec::new()
        }
    }
    impl Protocol for Wild {
        fn create(&self, view: NodeView) -> Box<dyn NodeBehavior> {
            Box::new(WildState {
                is_source: view.is_source,
            })
        }
    }
    let g = families::path(3);
    let err = run(&g, 0, &no_advice(3), &Wild, &SimConfig::default()).unwrap_err();
    assert!(matches!(
        err,
        SimError::PortOutOfRange {
            node: 0,
            port: 99,
            ..
        }
    ));
}

#[test]
fn advice_count_mismatch_rejected() {
    let g = families::path(3);
    let err = run(&g, 0, &no_advice(2), &Silent, &SimConfig::default()).unwrap_err();
    assert_eq!(
        err,
        SimError::AdviceCount {
            expected: 3,
            got: 2
        }
    );
}

#[test]
fn anonymous_mode_hides_ids() {
    struct IdProbe;
    struct ProbeState;
    impl NodeBehavior for ProbeState {
        fn on_start(&mut self) -> Vec<Outgoing> {
            Vec::new()
        }
        fn on_receive(&mut self, _p: Port, _m: Message) -> Vec<Outgoing> {
            Vec::new()
        }
    }
    impl Protocol for IdProbe {
        fn create(&self, view: NodeView) -> Box<dyn NodeBehavior> {
            assert!(view.id.is_none(), "identity leaked in anonymous mode");
            Box::new(ProbeState)
        }
    }
    let g = families::path(3);
    let cfg = SimConfig::broadcast().with_anonymous(true);
    run(&g, 0, &no_advice(3), &IdProbe, &cfg).unwrap();
}

#[test]
fn trace_capture_matches_metrics() {
    let g = families::cycle(4);
    let cfg = SimConfig::broadcast().capture_trace(TraceSpec::Full);
    let out = run(&g, 0, &no_advice(4), &FloodOnce, &cfg).unwrap();
    assert_eq!(out.deliveries().count() as u64, out.metrics.steps);
    assert_eq!(out.metrics.steps, out.metrics.messages);
    // Every traced delivery of an informed message has the flag.
    assert!(out.deliveries().any(|d| d.carries_source));
    // Fault-free: every enqueue has a matching delivery, nothing dropped.
    assert_eq!(out.trace_stats.enqueued, out.trace_stats.delivered);
    assert_eq!(out.trace_stats.dropped, 0);
    assert_eq!(out.trace_stats, TraceStats::tally(&out.trace));
}

#[test]
fn trace_taxonomy_covers_the_run() {
    let g = families::cycle(4);
    let cfg = SimConfig::broadcast().capture_trace(TraceSpec::Full);
    let out = run(&g, 0, &no_advice(4), &FloodOnce, &cfg).unwrap();
    // The spontaneous phase opens the trace.
    assert_eq!(
        out.trace.first(),
        Some(&TraceEvent::PhaseStart {
            phase: Phase::Spontaneous
        })
    );
    // Every non-source node wakes exactly once.
    assert_eq!(out.trace_stats.wakes, 3);
    // One rollup per finished round plus the final one at quiescence,
    // each with a monotone informed count ending at n.
    let rollups: Vec<_> = out.trace.iter().filter_map(|e| e.as_rollup()).collect();
    assert_eq!(rollups.len() as u64, out.metrics.rounds + 1);
    assert!(rollups.windows(2).all(|w| w[0].informed <= w[1].informed));
    let last = rollups.last().unwrap();
    assert_eq!(last.informed, 4);
    assert_eq!(last.frontier, 0);
    assert_eq!(last.messages, out.metrics.messages);
    // Message ids are causal: a delivery never precedes its enqueue.
    for d in out.deliveries() {
        let enq = out
            .trace
            .iter()
            .position(|e| matches!(e, TraceEvent::Enqueue { msg, .. } if *msg == d.msg));
        let del = out
            .trace
            .iter()
            .position(|e| e.as_delivery().is_some_and(|x| x.msg == d.msg));
        assert!(enq.unwrap() < del.unwrap());
    }
}

#[test]
fn ring_spec_keeps_the_tail() {
    let g = families::complete_rotational(8);
    let full = run(
        &g,
        0,
        &no_advice(8),
        &FloodOnce,
        &SimConfig::broadcast().capture_trace(TraceSpec::Full),
    )
    .unwrap();
    let ring = run(
        &g,
        0,
        &no_advice(8),
        &FloodOnce,
        &SimConfig::broadcast().capture_trace(TraceSpec::Ring { capacity: 5 }),
    )
    .unwrap();
    assert_eq!(ring.trace.len(), 5);
    let tail = &full.trace[full.trace.len() - 5..];
    assert_eq!(ring.trace, tail);
    // Stats still cover the whole run, not just the retained tail.
    assert_eq!(ring.trace_stats, full.trace_stats);
}

#[test]
fn untraced_runs_allocate_nothing_on_the_trace_path() {
    // TraceSpec::Off drives a NullSink: the outcome's trace vec must be
    // the never-allocated `Vec::new()` and the stats all-zero — the
    // allocation-free discipline mirroring `payload_copies == 0`.
    let g = families::complete_rotational(16);
    let out = run(&g, 0, &no_advice(16), &FloodOnce, &SimConfig::default()).unwrap();
    assert_eq!(out.trace.capacity(), 0);
    assert_eq!(out.trace_stats, TraceStats::default());
    assert_eq!(out.metrics.faults.payload_copies, 0);
    assert_eq!(out.metrics.faults.queue_allocs, 0);
}

#[test]
fn external_sink_sees_the_same_events_as_full_capture() {
    let g = families::cycle(6);
    let cfg = SimConfig::broadcast();
    let mut sink = VecSink::new();
    let streamed = run_with_sink(&g, 0, &no_advice(6), &FloodOnce, &cfg, &mut sink).unwrap();
    assert!(streamed.trace.is_empty());
    let collected = run(
        &g,
        0,
        &no_advice(6),
        &FloodOnce,
        &cfg.clone().capture_trace(TraceSpec::Full),
    )
    .unwrap();
    assert_eq!(collected.trace, sink.into_events());
}

#[test]
fn streamed_sink_survives_an_aborted_run() {
    // On a SimError the caller still holds the sink — the post-mortem
    // contract for ring buffers.
    let g = families::path(3);
    let cfg = SimConfig::wakeup();
    let mut sink = VecSink::new();
    let err = run_with_sink(&g, 0, &no_advice(2), &FloodOnce, &cfg, &mut sink).unwrap_err();
    assert!(matches!(err, SimError::AdviceCount { .. }));
    // A second sink observing a run that fails mid-flight keeps the
    // events emitted before the abort.
    let g = families::complete_rotational(6);
    let chatty = SimConfig::broadcast().with_max_steps(3);
    let mut sink = VecSink::new();
    let err = run_with_sink(&g, 0, &no_advice(6), &FloodOnce, &chatty, &mut sink).unwrap_err();
    assert!(matches!(err, SimError::StepLimit { .. }));
    assert!(!sink.events().is_empty());
}

#[test]
fn crashed_receiver_shows_as_drop_event() {
    let g = families::path(4);
    let cfg = SimConfig::broadcast()
        .with_faults(FaultPlan {
            crashes: [(1, 0)].into(),
            ..Default::default()
        })
        .capture_trace(TraceSpec::Full);
    let out = run(&g, 0, &no_advice(4), &FloodOnce, &cfg).unwrap();
    let drops: Vec<_> = out
        .trace
        .iter()
        .filter(|e| matches!(e, TraceEvent::Drop { .. }))
        .collect();
    assert_eq!(drops.len(), 1);
    assert!(matches!(
        drops[0],
        TraceEvent::Drop {
            to: 1,
            fault: DropFault::ToCrashed,
            ..
        }
    ));
    // Dropped-to-crashed deliveries count as steps but not deliveries.
    assert_eq!(
        out.deliveries().count() as u64 + out.trace_stats.dropped,
        out.metrics.steps
    );
}

#[test]
fn null_sink_run_matches_traced_run_metrics() {
    // Tracing must be observation only: metrics identical with and
    // without it, under faults and async scheduling alike.
    let g = families::complete_rotational(10);
    let base = SimConfig::broadcast()
        .with_scheduler(SchedulerKind::Random { seed: 9 })
        .with_faults(FaultPlan::message_faults(13, 0.2, 0.2, 0.3));
    let mut null = NullSink;
    let untraced = run_with_sink(&g, 0, &no_advice(10), &FloodOnce, &base, &mut null).unwrap();
    let traced = run(
        &g,
        0,
        &no_advice(10),
        &FloodOnce,
        &base.clone().capture_trace(TraceSpec::Full),
    )
    .unwrap();
    assert_eq!(untraced.metrics, traced.metrics);
    assert_eq!(untraced.informed, traced.informed);
}

#[test]
fn total_drop_quiesces_degraded() {
    let g = families::path(5);
    let cfg = SimConfig::broadcast()
        .with_scheduler(SchedulerKind::Fifo)
        .with_faults(FaultPlan::message_faults(3, 1.0, 0.0, 0.0));
    let out = run(&g, 0, &no_advice(5), &FloodOnce, &cfg).unwrap();
    assert!(!out.all_informed());
    assert_eq!(out.classify(), Completion::Degraded { uninformed: 4 });
    // Only the source's spontaneous send happened; it was dropped.
    assert_eq!(out.metrics.messages, 1);
    assert_eq!(out.metrics.faults.dropped, 1);
    assert_eq!(out.metrics.steps, 0);
}

#[test]
fn duplication_adds_deliveries_not_messages() {
    let g = families::path(4);
    let cfg = SimConfig::broadcast()
        .with_scheduler(SchedulerKind::Fifo)
        .with_faults(FaultPlan::message_faults(7, 0.0, 1.0, 0.0));
    let out = run(&g, 0, &no_advice(4), &FloodOnce, &cfg).unwrap();
    assert!(out.all_informed());
    assert_eq!(out.classify(), Completion::Completed);
    assert_eq!(out.metrics.faults.duplicated, out.metrics.messages);
    assert_eq!(
        out.metrics.steps,
        out.metrics.messages + out.metrics.faults.duplicated
    );
    // Each duplicated send manufactures exactly one payload clone, and
    // only those extra copies may force slab growth past the per-batch
    // reserve.
    assert_eq!(out.metrics.faults.payload_copies, out.metrics.messages);
    assert!(
        out.metrics.faults.queue_allocs > 0,
        "the first doubled batch must outrun its reserve"
    );
}

#[test]
fn fault_free_delivery_never_copies_payloads_or_grows_queues() {
    // The delivery hot path moves payloads into recycled slab slots; with
    // an inert plan (and even with an active plan that never duplicates)
    // both the clone counter and the forced-slot counter must stay zero.
    let g = families::complete_rotational(16);
    let out = run(&g, 0, &no_advice(16), &FloodOnce, &SimConfig::default()).unwrap();
    assert!(out.metrics.messages > 0);
    assert_eq!(out.metrics.faults.payload_copies, 0);
    assert_eq!(out.metrics.faults.queue_allocs, 0);

    let dropping = SimConfig::broadcast()
        .with_scheduler(SchedulerKind::Fifo)
        .with_faults(FaultPlan::message_faults(5, 0.3, 0.0, 0.5));
    let out = run(&g, 0, &no_advice(16), &FloodOnce, &dropping).unwrap();
    assert_eq!(
        out.metrics.faults.payload_copies, 0,
        "drops and bit flips must not clone payloads"
    );
    assert_eq!(
        out.metrics.faults.queue_allocs, 0,
        "drops and bit flips must not force queue growth"
    );
}

#[test]
fn bit_flips_corrupt_delivered_payloads() {
    // The source sends a known 8-bit payload; with flip probability 1
    // the receiver must observe a payload at Hamming distance exactly 1.
    struct TaggedState {
        is_source: bool,
        seen: std::rc::Rc<std::cell::RefCell<Vec<BitString>>>,
    }
    impl NodeBehavior for TaggedState {
        fn on_start(&mut self) -> Vec<Outgoing> {
            if self.is_source {
                vec![Outgoing::new(
                    0,
                    Message::new(BitString::parse("10101010").unwrap()),
                )]
            } else {
                Vec::new()
            }
        }
        fn on_receive(&mut self, _p: Port, m: Message) -> Vec<Outgoing> {
            self.seen.borrow_mut().push(m.payload.clone());
            Vec::new()
        }
    }
    struct TaggedProtocol {
        seen: std::rc::Rc<std::cell::RefCell<Vec<BitString>>>,
    }
    impl Protocol for TaggedProtocol {
        fn create(&self, view: NodeView) -> Box<dyn NodeBehavior> {
            Box::new(TaggedState {
                is_source: view.is_source,
                seen: std::rc::Rc::clone(&self.seen),
            })
        }
    }
    let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    let g = families::path(2);
    let cfg = SimConfig::broadcast().with_faults(FaultPlan::message_faults(11, 0.0, 0.0, 1.0));
    let protocol = TaggedProtocol {
        seen: std::rc::Rc::clone(&seen),
    };
    let out = run(&g, 0, &no_advice(2), &protocol, &cfg).unwrap();
    assert_eq!(out.metrics.faults.payload_flips, 1);
    let original = BitString::parse("10101010").unwrap();
    let received = &seen.borrow()[0];
    let distance = original
        .iter()
        .zip(received.iter())
        .filter(|(a, b)| a != b)
        .count();
    assert_eq!(distance, 1);
}

#[test]
fn crash_stop_silences_a_relay() {
    // Node 1 on a path is down from the start: the flood cannot pass
    // it, deliveries to it are counted, and classify() excuses the
    // crashed node itself but not the nodes stranded behind it.
    let g = families::path(4);
    let cfg = SimConfig::broadcast().with_faults(FaultPlan {
        crashes: [(1, 0)].into(),
        ..Default::default()
    });
    let out = run(&g, 0, &no_advice(4), &FloodOnce, &cfg).unwrap();
    assert!(out.crashed[1]);
    assert_eq!(out.metrics.faults.to_crashed, 1);
    assert_eq!(out.classify(), Completion::Degraded { uninformed: 2 });
    assert_eq!(out.informed_count(), 1);
}

#[test]
fn crash_budget_counts_sends() {
    // The source of a 5-star may make two sends, then halts: exactly
    // two leaves wake up, the remaining two spontaneous sends are
    // suppressed.
    let g = families::star(5);
    let cfg = SimConfig::broadcast().with_faults(FaultPlan {
        crashes: [(0, 2)].into(),
        ..Default::default()
    });
    let out = run(&g, 0, &no_advice(5), &FloodOnce, &cfg).unwrap();
    assert!(out.crashed[0]);
    assert_eq!(out.metrics.messages, 2);
    assert_eq!(out.metrics.faults.suppressed_sends, 2);
    assert_eq!(out.informed_count(), 3);
    assert_eq!(out.classify(), Completion::Degraded { uninformed: 2 });
}

#[test]
fn faulty_runs_are_reproducible_per_seed() {
    let g = families::complete_rotational(10);
    let plan = FaultPlan::message_faults(77, 0.3, 0.2, 0.0);
    let cfg = SimConfig::broadcast()
        .with_scheduler(SchedulerKind::Random { seed: 4 })
        .with_faults(plan)
        .capture_trace(TraceSpec::Full);
    let a = run(&g, 0, &no_advice(10), &FloodOnce, &cfg).unwrap();
    let b = run(&g, 0, &no_advice(10), &FloodOnce, &cfg).unwrap();
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.metrics, b.metrics);
    assert_eq!(a.informed, b.informed);
}

#[test]
fn inert_plan_with_nonzero_seed_changes_nothing() {
    let g = families::complete_rotational(8);
    let baseline = run(&g, 2, &no_advice(8), &FloodOnce, &SimConfig::default()).unwrap();
    let cfg = SimConfig::broadcast().with_faults(FaultPlan {
        seed: 999,
        ..Default::default()
    });
    let with_inert = run(&g, 2, &no_advice(8), &FloodOnce, &cfg).unwrap();
    assert_eq!(baseline.metrics, with_inert.metrics);
    assert_eq!(baseline.informed, with_inert.informed);
}

#[test]
fn quiescence_polls_are_bounded() {
    // A protocol that always speaks at quiescence must be cut off
    // after `max_quiescence_polls` resumptions.
    struct Nagger;
    struct NagState;
    impl NodeBehavior for NagState {
        fn on_start(&mut self) -> Vec<Outgoing> {
            Vec::new()
        }
        fn on_receive(&mut self, _p: Port, _m: Message) -> Vec<Outgoing> {
            Vec::new()
        }
        fn on_quiescence(&mut self) -> Vec<Outgoing> {
            vec![Outgoing::new(0, Message::empty())]
        }
    }
    impl Protocol for Nagger {
        fn create(&self, _view: NodeView) -> Box<dyn NodeBehavior> {
            Box::new(NagState)
        }
    }
    let g = families::path(2);
    let cfg = SimConfig::broadcast().with_quiescence_polls(3);
    let out = run(&g, 0, &no_advice(2), &Nagger, &cfg).unwrap();
    // Both nodes nag once per poll.
    assert_eq!(out.metrics.messages, 6);
}

#[test]
fn error_display_nonempty() {
    let errs: Vec<SimError> = vec![
        SimError::WakeupViolation { node: 1 },
        SimError::MessageTooLarge {
            node: 2,
            bits: 10,
            limit: 5,
        },
        SimError::StepLimit { limit: 7 },
        SimError::PortOutOfRange {
            node: 3,
            port: 9,
            degree: 2,
        },
        SimError::AdviceCount {
            expected: 4,
            got: 0,
        },
    ];
    for e in errs {
        assert!(!e.to_string().is_empty());
    }
}
