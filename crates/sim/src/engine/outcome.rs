//! What an execution returns: errors, traces, and the run outcome.

use std::error::Error;
use std::fmt;

use oraclesize_bits::BitString;
use oraclesize_graph::{NodeId, Port};

use crate::metrics::RunMetrics;
use crate::trace::{Delivery, TraceEvent, TraceStats};

/// Errors that abort an execution.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A non-source node transmitted before being informed, in wakeup mode.
    WakeupViolation {
        /// The offending node.
        node: NodeId,
    },
    /// A payload exceeded [`SimConfig::max_message_bits`](crate::engine::SimConfig::max_message_bits).
    MessageTooLarge {
        /// The sending node.
        node: NodeId,
        /// Payload size.
        bits: u64,
        /// Configured limit.
        limit: u64,
    },
    /// The delivery budget ran out before quiescence.
    StepLimit {
        /// The configured limit.
        limit: u64,
    },
    /// A scheme addressed a port `≥ deg(v)`.
    PortOutOfRange {
        /// The sending node.
        node: NodeId,
        /// The bogus port.
        port: Port,
        /// The node's degree.
        degree: usize,
    },
    /// `advice.len()` differed from the number of nodes.
    AdviceCount {
        /// Nodes in the graph.
        expected: usize,
        /// Advice strings supplied.
        got: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::WakeupViolation { node } => {
                write!(f, "node {node} transmitted before being woken up")
            }
            SimError::MessageTooLarge { node, bits, limit } => {
                write!(f, "node {node} sent {bits} bits, limit {limit}")
            }
            SimError::StepLimit { limit } => write!(f, "step limit {limit} exhausted"),
            SimError::PortOutOfRange { node, port, degree } => {
                write!(f, "node {node} sent on port {port} but has degree {degree}")
            }
            SimError::AdviceCount { expected, got } => {
                write!(f, "expected {expected} advice strings, got {got}")
            }
        }
    }
}

impl Error for SimError {}

/// How a quiescent run is judged once faults are possible: reaching
/// quiescence alone is *not* success — a scheme whose messages were dropped
/// quiesces with part of the network still asleep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completion {
    /// Every surviving (non-crashed) node ended up informed.
    Completed,
    /// The run quiesced with surviving nodes still uninformed — the
    /// silent failure mode that message loss and advice corruption induce.
    Degraded {
        /// Surviving nodes left uninformed.
        uninformed: usize,
    },
}

/// The result of a completed (quiescent) execution.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Accounting.
    pub metrics: RunMetrics,
    /// Which nodes ended up informed.
    pub informed: Vec<bool>,
    /// Which nodes crash-stopped during the run (all `false` without a
    /// fault plan).
    pub crashed: Vec<bool>,
    /// Captured trace events: all of them under
    /// [`TraceSpec::Full`](crate::trace::TraceSpec::Full), the retained
    /// tail under [`TraceSpec::Ring`](crate::trace::TraceSpec::Ring),
    /// empty (no allocation) when tracing is off or events streamed to an
    /// external sink via [`run_with_sink`](crate::engine::run::run_with_sink).
    pub trace: Vec<TraceEvent>,
    /// Constant-size tallies of everything emitted, kept even when the
    /// events themselves streamed through a bounded sink. All-zero when
    /// tracing is off.
    pub trace_stats: TraceStats,
    /// Per-node outputs collected from
    /// [`crate::protocol::NodeBehavior::output`] at quiescence.
    pub outputs: Vec<Option<BitString>>,
}

impl RunOutcome {
    /// `true` iff every node — crashed or not — is informed. The strict,
    /// fault-free notion of task completion.
    pub fn all_informed(&self) -> bool {
        self.informed.iter().all(|&x| x)
    }

    /// Number of informed nodes.
    pub fn informed_count(&self) -> usize {
        self.informed.iter().filter(|&&x| x).count()
    }

    /// The delivery records in the captured [`trace`](RunOutcome::trace),
    /// in execution order — the view the old flat delivery trace offered.
    pub fn deliveries(&self) -> impl Iterator<Item = &Delivery> {
        self.trace.iter().filter_map(TraceEvent::as_delivery)
    }

    /// Judges the run against the surviving nodes: crashed nodes are
    /// excused, but a quiesced run with live uninformed nodes is
    /// [`Degraded`](Completion::Degraded), never a success.
    pub fn classify(&self) -> Completion {
        let uninformed = self
            .informed
            .iter()
            .zip(&self.crashed)
            .filter(|&(&informed, &crashed)| !informed && !crashed)
            .count();
        if uninformed == 0 {
            Completion::Completed
        } else {
            Completion::Degraded { uninformed }
        }
    }
}
