//! The scheme abstraction: what a node sees and how it reacts.

use oraclesize_bits::BitString;
use oraclesize_graph::Port;

/// Everything a node is allowed to know before communication starts —
/// exactly the quadruple `(f(v), s(v), id(v), deg(v))` of the paper.
///
/// In the anonymous model (`id = None`) the upper bounds still hold
/// (paper §1.3); the engine erases identities when configured to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeView {
    /// The oracle's advice string `f(v)`.
    pub advice: BitString,
    /// The status bit `s(v)`: `true` iff this node is the source.
    pub is_source: bool,
    /// The node's label `id(v)`; `None` in the anonymous model.
    pub id: Option<u64>,
    /// The node's degree `deg(v)` — also its number of ports.
    pub degree: usize,
}

/// A message payload. The engine appends the *informed* flag implicitly:
/// the paper observes that "the source message can be appended to any
/// message sent by an informed node", so informedness is a transport-level
/// property, not part of the payload.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Message {
    /// The control bits chosen by the sending scheme.
    pub payload: BitString,
    /// Whether the sender was informed when this message was sent; set by
    /// the engine, ignored on outgoing messages.
    pub carries_source: bool,
}

impl Message {
    /// A message with the given payload (flag filled in by the engine).
    pub fn new(payload: BitString) -> Self {
        Message {
            payload,
            carries_source: false,
        }
    }

    /// An empty control message (0 payload bits — e.g. Scheme B's "hello"
    /// could be 1 bit; protocols choose their own framing).
    pub fn empty() -> Self {
        Message::default()
    }

    /// Size accounted against the bounded-message limit: payload bits.
    pub fn size_bits(&self) -> usize {
        self.payload.len()
    }
}

/// A send instruction: put `message` on local port `port`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outgoing {
    /// Local port to send on (`< degree`).
    pub port: Port,
    /// The message to send.
    pub message: Message,
}

impl Outgoing {
    /// Convenience constructor.
    pub fn new(port: Port, message: Message) -> Self {
        Outgoing { port, message }
    }
}

/// The per-node state machine produced by a [`Protocol`] — operationally a
/// *broadcast scheme* `S_v`: a map from the history to date to a set of
/// sends.
pub trait NodeBehavior {
    /// Called once before any delivery. Returning sends here is a
    /// *spontaneous* transmission — allowed in the broadcast task,
    /// forbidden for non-source nodes in the wakeup task (the engine
    /// enforces this).
    fn on_start(&mut self) -> Vec<Outgoing>;

    /// Called when a message arrives on `port`. The message is passed by
    /// value: the behavior *owns* each delivery, so a history-accumulating
    /// scheme files the payload without cloning it — the engine's
    /// zero-clone contract extends through the receive boundary.
    fn on_receive(&mut self, port: Port, message: Message) -> Vec<Outgoing>;

    /// Called when the network quiesces (no message in flight), up to
    /// [`SimConfig::max_quiescence_polls`](crate::engine::SimConfig::max_quiescence_polls)
    /// times per run. Returning sends resumes execution — the hook a
    /// retry-capable scheme uses to re-send messages it suspects were lost.
    /// The wakeup rule still applies: an uninformed non-source node must
    /// return nothing in wakeup mode. The default is silence, so plain
    /// schemes quiesce exactly as before.
    fn on_quiescence(&mut self) -> Vec<Outgoing> {
        Vec::new()
    }

    /// Called once at quiescence; a task whose result is node state (e.g.
    /// gossip: "every node knows every value") returns it here for the
    /// engine to collect into
    /// [`RunOutcome::outputs`](crate::engine::RunOutcome::outputs).
    fn output(&self) -> Option<BitString> {
        None
    }
}

/// An algorithm `A` in the paper's sense: given the node view, produce the
/// node's scheme. The algorithm is *unaware of the network* — it sees only
/// the view.
pub trait Protocol {
    /// Instantiates the scheme for one node.
    fn create(&self, view: NodeView) -> Box<dyn NodeBehavior>;

    /// Short name used in experiment tables.
    fn name(&self) -> &'static str {
        "unnamed"
    }
}

/// The trivial oracle-free broadcast baseline: the source floods on all
/// ports; every node forwards the first informed message it receives to
/// all other ports. Θ(m) messages — the benchmark Scheme B beats.
#[derive(Debug, Clone, Copy, Default)]
pub struct FloodOnce;

struct FloodState {
    degree: usize,
    is_source: bool,
    forwarded: bool,
}

impl NodeBehavior for FloodState {
    fn on_start(&mut self) -> Vec<Outgoing> {
        if self.is_source && !self.forwarded {
            self.forwarded = true;
            (0..self.degree)
                .map(|p| Outgoing::new(p, Message::empty()))
                .collect()
        } else {
            Vec::new()
        }
    }

    fn on_receive(&mut self, port: Port, message: Message) -> Vec<Outgoing> {
        if message.carries_source && !self.forwarded {
            self.forwarded = true;
            (0..self.degree)
                .filter(|&p| p != port)
                .map(|p| Outgoing::new(p, Message::empty()))
                .collect()
        } else {
            Vec::new()
        }
    }
}

impl Protocol for FloodOnce {
    fn create(&self, view: NodeView) -> Box<dyn NodeBehavior> {
        Box::new(FloodState {
            degree: view.degree,
            is_source: view.is_source,
            forwarded: false,
        })
    }

    fn name(&self) -> &'static str {
        "flood-once"
    }
}

/// A protocol that does nothing at all — used to test engine accounting
/// and quiescence.
#[derive(Debug, Clone, Copy, Default)]
pub struct Silent;

struct SilentState;

impl NodeBehavior for SilentState {
    fn on_start(&mut self) -> Vec<Outgoing> {
        Vec::new()
    }

    fn on_receive(&mut self, _port: Port, _message: Message) -> Vec<Outgoing> {
        Vec::new()
    }
}

impl Protocol for Silent {
    fn create(&self, _view: NodeView) -> Box<dyn NodeBehavior> {
        Box::new(SilentState)
    }

    fn name(&self) -> &'static str {
        "silent"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_sizes() {
        assert_eq!(Message::empty().size_bits(), 0);
        let m = Message::new(BitString::parse("10110").unwrap());
        assert_eq!(m.size_bits(), 5);
        assert!(!m.carries_source);
    }

    #[test]
    fn flood_source_sends_everywhere_once() {
        let view = NodeView {
            advice: BitString::new(),
            is_source: true,
            id: Some(0),
            degree: 3,
        };
        let mut b = FloodOnce.create(view);
        let sends = b.on_start();
        assert_eq!(sends.len(), 3);
        assert!(b.on_start().is_empty(), "source must not flood twice");
    }

    #[test]
    fn flood_non_source_waits_for_informed_message() {
        let view = NodeView {
            advice: BitString::new(),
            is_source: false,
            id: Some(1),
            degree: 4,
        };
        let mut b = FloodOnce.create(view);
        assert!(b.on_start().is_empty());
        // Uninformed control message: ignored.
        let control = Message::empty();
        assert!(b.on_receive(0, control).is_empty());
        // Informed message: forward to the 3 other ports.
        let mut informed = Message::empty();
        informed.carries_source = true;
        let sends = b.on_receive(1, informed.clone());
        assert_eq!(sends.len(), 3);
        assert!(sends.iter().all(|s| s.port != 1));
        // Second informed message: silence.
        assert!(b.on_receive(2, informed).is_empty());
    }

    #[test]
    fn silent_is_silent() {
        let view = NodeView {
            advice: BitString::new(),
            is_source: true,
            id: None,
            degree: 2,
        };
        let mut b = Silent.create(view);
        assert!(b.on_start().is_empty());
        assert!(b.on_receive(0, Message::empty()).is_empty());
    }
}
