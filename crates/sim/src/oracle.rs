//! The oracle abstraction and size accounting.
//!
//! The trait lives here — next to the engine that consumes advice — so a
//! problem [`Instance`](crate::Instance) can be built without reaching
//! into the scheme crates. Concrete oracles (the paper's constructions)
//! live in `oraclesize_core`.

use oraclesize_bits::BitString;
use oraclesize_graph::{NodeId, PortGraph};

/// An oracle `O`: looks at the entire labeled network (and the source) and
/// assigns an advice string to every node.
///
/// The paper's oracles depend only on the network, but the source is part
/// of the labeled instance (the status bit marks it), so we pass it
/// explicitly: the constructive oracles root their spanning trees there.
///
/// The returned vector is indexed by node id and must have exactly
/// `g.num_nodes()` entries.
pub trait Oracle {
    /// Computes the advice assignment `f = O(G)`.
    fn advise(&self, g: &PortGraph, source: NodeId) -> Vec<BitString>;

    /// Short name used in experiment tables.
    fn name(&self) -> &'static str {
        "unnamed"
    }
}

/// The paper's oracle size: the sum of the lengths of all assigned strings,
/// in bits.
pub fn advice_size(advice: &[BitString]) -> u64 {
    advice.iter().map(|s| s.len() as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advice_size_sums_bits() {
        let advice = vec![
            BitString::parse("101").unwrap(),
            BitString::new(),
            BitString::parse("1").unwrap(),
        ];
        assert_eq!(advice_size(&advice), 4);
    }

    #[test]
    fn empty_assignment_has_size_zero() {
        assert_eq!(advice_size(&[]), 0);
        assert_eq!(advice_size(&vec![BitString::new(); 3]), 0);
    }
}
