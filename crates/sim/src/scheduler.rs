//! Delivery schedulers: the adversary that orders in-flight messages.
//!
//! The paper's upper bounds hold under *total asynchrony* — any delivery
//! order the adversary picks. The engine models this by keeping a pool of
//! in-flight messages and letting a [`SchedulerKind`] choose which one is
//! delivered next. Synchronous execution (used by the lower bounds) is a
//! mode of the engine itself, not a scheduler.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// The delivery orders exercised by the scheduler-sweep experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum SchedulerKind {
    /// Deliver the oldest in-flight message first (per-network FIFO).
    Fifo,
    /// Deliver the newest in-flight message first — a depth-first
    /// adversary that starves early messages as long as possible.
    Lifo,
    /// Deliver a uniformly random in-flight message (seeded).
    Random {
        /// RNG seed; runs are reproducible given the seed.
        seed: u64,
    },
    /// Greedily delay every message carrying the source bit: deliver the
    /// oldest *uninformed* message while any exists, an informed one only
    /// when nothing else is in flight. The worst legal adversary for
    /// dissemination progress — it forces every control conversation to
    /// finish before letting the source message advance.
    Starve,
}

impl SchedulerKind {
    /// All kinds (with a fixed seed for the random one), for sweeps.
    pub fn sweep(seed: u64) -> [SchedulerKind; 4] {
        [
            SchedulerKind::Fifo,
            SchedulerKind::Lifo,
            SchedulerKind::Random { seed },
            SchedulerKind::Starve,
        ]
    }

    /// Display name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerKind::Fifo => "fifo",
            SchedulerKind::Lifo => "lifo",
            SchedulerKind::Random { .. } => "random",
            SchedulerKind::Starve => "starve",
        }
    }

    pub(crate) fn instantiate(&self) -> Scheduler {
        match self {
            SchedulerKind::Fifo => Scheduler::Fifo,
            SchedulerKind::Lifo => Scheduler::Lifo,
            SchedulerKind::Random { seed } => Scheduler::Random(StdRng::seed_from_u64(*seed)),
            SchedulerKind::Starve => Scheduler::Starve,
        }
    }
}

/// Instantiated scheduler state. (The `Random` variant carries an RNG and
/// dwarfs the others; a single scheduler exists per run, so the size skew
/// is irrelevant.)
#[allow(clippy::large_enum_variant)]
pub(crate) enum Scheduler {
    Fifo,
    Lifo,
    Random(StdRng),
    Starve,
}

impl Scheduler {
    /// Removes and returns the next in-flight message, or `None` on an
    /// empty pool. FIFO pops the front, LIFO the back, and the random
    /// scheduler swaps its pick to the front first (uniform over the
    /// remaining pool either way) — all O(1). The starving scheduler
    /// delivers the oldest message for which `is_starved` is `false`,
    /// falling back to the front when every message is starved; this scans
    /// the pool (O(n)).
    pub(crate) fn take<T>(
        &mut self,
        pending: &mut std::collections::VecDeque<T>,
        is_starved: impl Fn(&T) -> bool,
    ) -> Option<T> {
        match self {
            Scheduler::Fifo => pending.pop_front(),
            Scheduler::Lifo => pending.pop_back(),
            Scheduler::Random(rng) => {
                if pending.is_empty() {
                    return None;
                }
                let idx = rng.gen_range(0..pending.len());
                pending.swap(0, idx);
                pending.pop_front()
            }
            Scheduler::Starve => {
                let idx = pending.iter().position(|m| !is_starved(m)).unwrap_or(0);
                pending.remove(idx)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    fn drain(kind: SchedulerKind, items: Vec<u32>) -> Vec<u32> {
        drain_starving(kind, items, |_| false)
    }

    fn drain_starving(
        kind: SchedulerKind,
        items: Vec<u32>,
        is_starved: impl Fn(&u32) -> bool,
    ) -> Vec<u32> {
        let mut s = kind.instantiate();
        let mut pool: VecDeque<u32> = items.into();
        let mut out = Vec::new();
        while let Some(next) = s.take(&mut pool, &is_starved) {
            out.push(next);
        }
        out
    }

    #[test]
    fn fifo_takes_front_lifo_takes_back() {
        assert_eq!(drain(SchedulerKind::Fifo, vec![1, 2, 3]), vec![1, 2, 3]);
        assert_eq!(drain(SchedulerKind::Lifo, vec![1, 2, 3]), vec![3, 2, 1]);
    }

    #[test]
    fn random_is_reproducible_and_a_permutation() {
        let kind = SchedulerKind::Random { seed: 99 };
        let a = drain(kind, (0..50).collect());
        let b = drain(kind, (0..50).collect());
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(a, (0..50).collect::<Vec<u32>>(), "seed 99 should shuffle");
    }

    #[test]
    fn starve_delays_marked_messages_to_the_end() {
        // Odd values are "informed": they must come out only after every
        // even value, preserving FIFO order within each class.
        let out = drain_starving(SchedulerKind::Starve, vec![1, 2, 3, 4, 5, 6], |x| {
            x % 2 == 1
        });
        assert_eq!(out, vec![2, 4, 6, 1, 3, 5]);
        // All-starved pool degenerates to FIFO.
        let out = drain_starving(SchedulerKind::Starve, vec![1, 3, 5], |x| x % 2 == 1);
        assert_eq!(out, vec![1, 3, 5]);
    }

    #[test]
    fn starve_ignores_predicate_false_pools() {
        assert_eq!(drain(SchedulerKind::Starve, vec![7, 8, 9]), vec![7, 8, 9]);
    }

    #[test]
    fn sweep_names_are_distinct() {
        let names: Vec<&str> = SchedulerKind::sweep(1).iter().map(|k| k.name()).collect();
        assert_eq!(names, vec!["fifo", "lifo", "random", "starve"]);
    }
}
