//! The executor: delivers messages, enforces the task rules, accounts.

use std::error::Error;
use std::fmt;

use oraclesize_bits::BitString;
use oraclesize_graph::{NodeId, Port, PortGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::faults::FaultPlan;
use crate::metrics::RunMetrics;
use crate::protocol::{Message, NodeBehavior, NodeView, Outgoing, Protocol};
use crate::scheduler::{Scheduler, SchedulerKind};

/// Which communication task's rules the engine enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TaskMode {
    /// Broadcast: every node may transmit spontaneously.
    #[default]
    Broadcast,
    /// Wakeup: a node other than the source must stay silent until it has
    /// received a message carrying the source message. Any earlier send is
    /// a [`SimError::WakeupViolation`].
    Wakeup,
}

/// Execution configuration.
///
/// The default is synchronous broadcast with FIFO delivery, no message-size
/// limit, identities visible, and no trace capture.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Task rules to enforce.
    pub mode: TaskMode,
    /// `true`: round-based synchronous delivery (all messages sent in round
    /// `r` arrive in round `r+1`). `false`: asynchronous — the
    /// [`scheduler`](SimConfig::scheduler) picks each next delivery.
    pub synchronous: bool,
    /// Delivery order for asynchronous mode.
    pub scheduler: SchedulerKind,
    /// Abort after this many deliveries ([`SimError::StepLimit`]); guards
    /// against non-quiescent protocols.
    pub max_steps: u64,
    /// If set, any payload larger than this many bits aborts the run
    /// ([`SimError::MessageTooLarge`]) — the bounded-message-size model.
    pub max_message_bits: Option<u64>,
    /// Erase node identities (`NodeView::id = None`) — the anonymous model
    /// of §1.3.
    pub anonymous: bool,
    /// Record a [`TraceEvent`] per delivery (for tests and examples).
    pub capture_trace: bool,
    /// Faults to inject (see [`crate::faults`]). The default plan is inert:
    /// the engine then behaves bit-for-bit as a fault-free run.
    pub faults: FaultPlan,
    /// How many times the engine polls
    /// [`NodeBehavior::on_quiescence`] after the network drains before
    /// declaring the run over. Each poll that produces sends resumes
    /// delivery; schemes that never speak at quiescence terminate after one
    /// silent poll regardless of this limit.
    pub max_quiescence_polls: u32,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            mode: TaskMode::Broadcast,
            synchronous: true,
            scheduler: SchedulerKind::Fifo,
            max_steps: 10_000_000,
            max_message_bits: None,
            anonymous: false,
            capture_trace: false,
            faults: FaultPlan::default(),
            max_quiescence_polls: 8,
        }
    }
}

impl SimConfig {
    /// Synchronous wakeup configuration.
    pub fn wakeup() -> Self {
        SimConfig {
            mode: TaskMode::Wakeup,
            ..Default::default()
        }
    }

    /// Asynchronous broadcast under the given scheduler.
    pub fn asynchronous(scheduler: SchedulerKind) -> Self {
        SimConfig {
            synchronous: false,
            scheduler,
            ..Default::default()
        }
    }
}

/// Errors that abort an execution.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A non-source node transmitted before being informed, in wakeup mode.
    WakeupViolation {
        /// The offending node.
        node: NodeId,
    },
    /// A payload exceeded [`SimConfig::max_message_bits`].
    MessageTooLarge {
        /// The sending node.
        node: NodeId,
        /// Payload size.
        bits: u64,
        /// Configured limit.
        limit: u64,
    },
    /// The delivery budget ran out before quiescence.
    StepLimit {
        /// The configured limit.
        limit: u64,
    },
    /// A scheme addressed a port `≥ deg(v)`.
    PortOutOfRange {
        /// The sending node.
        node: NodeId,
        /// The bogus port.
        port: Port,
        /// The node's degree.
        degree: usize,
    },
    /// `advice.len()` differed from the number of nodes.
    AdviceCount {
        /// Nodes in the graph.
        expected: usize,
        /// Advice strings supplied.
        got: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::WakeupViolation { node } => {
                write!(f, "node {node} transmitted before being woken up")
            }
            SimError::MessageTooLarge { node, bits, limit } => {
                write!(f, "node {node} sent {bits} bits, limit {limit}")
            }
            SimError::StepLimit { limit } => write!(f, "step limit {limit} exhausted"),
            SimError::PortOutOfRange { node, port, degree } => {
                write!(f, "node {node} sent on port {port} but has degree {degree}")
            }
            SimError::AdviceCount { expected, got } => {
                write!(f, "expected {expected} advice strings, got {got}")
            }
        }
    }
}

impl Error for SimError {}

/// One delivery, as recorded when [`SimConfig::capture_trace`] is on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Delivery step (0-based).
    pub step: u64,
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Arrival port at the receiver.
    pub arrival_port: Port,
    /// Payload size in bits.
    pub bits: u64,
    /// Whether the message carried the source message.
    pub carries_source: bool,
}

/// How a quiescent run is judged once faults are possible: reaching
/// quiescence alone is *not* success — a scheme whose messages were dropped
/// quiesces with part of the network still asleep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completion {
    /// Every surviving (non-crashed) node ended up informed.
    Completed,
    /// The run quiesced with surviving nodes still uninformed — the
    /// silent failure mode that message loss and advice corruption induce.
    Degraded {
        /// Surviving nodes left uninformed.
        uninformed: usize,
    },
}

/// The result of a completed (quiescent) execution.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Accounting.
    pub metrics: RunMetrics,
    /// Which nodes ended up informed.
    pub informed: Vec<bool>,
    /// Which nodes crash-stopped during the run (all `false` without a
    /// fault plan).
    pub crashed: Vec<bool>,
    /// Delivery trace (empty unless [`SimConfig::capture_trace`]).
    pub trace: Vec<TraceEvent>,
    /// Per-node outputs collected from
    /// [`crate::protocol::NodeBehavior::output`] at quiescence.
    pub outputs: Vec<Option<BitString>>,
}

impl RunOutcome {
    /// `true` iff every node — crashed or not — is informed. The strict,
    /// fault-free notion of task completion.
    pub fn all_informed(&self) -> bool {
        self.informed.iter().all(|&x| x)
    }

    /// Number of informed nodes.
    pub fn informed_count(&self) -> usize {
        self.informed.iter().filter(|&&x| x).count()
    }

    /// Judges the run against the surviving nodes: crashed nodes are
    /// excused, but a quiesced run with live uninformed nodes is
    /// [`Degraded`](Completion::Degraded), never a success.
    pub fn classify(&self) -> Completion {
        let uninformed = self
            .informed
            .iter()
            .zip(&self.crashed)
            .filter(|&(&informed, &crashed)| !informed && !crashed)
            .count();
        if uninformed == 0 {
            Completion::Completed
        } else {
            Completion::Degraded { uninformed }
        }
    }
}

/// An in-flight message.
struct InFlight {
    from: NodeId,
    to: NodeId,
    arrival_port: Port,
    message: Message,
}

/// Executes `protocol` on `g` from `source` with the given per-node advice.
///
/// Nodes are instantiated in node-id order; `on_start` is invoked in that
/// order before any delivery. Execution runs to quiescence (no in-flight
/// messages) and returns the outcome.
///
/// # Errors
///
/// See [`SimError`]. Any error aborts the run immediately.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn run(
    g: &PortGraph,
    source: NodeId,
    advice: &[BitString],
    protocol: &dyn Protocol,
    config: &SimConfig,
) -> Result<RunOutcome, SimError> {
    assert!(source < g.num_nodes(), "source out of range");
    let n = g.num_nodes();
    if advice.len() != n {
        return Err(SimError::AdviceCount {
            expected: n,
            got: advice.len(),
        });
    }

    // Fault machinery. An inert plan takes `None` here and the run is
    // bit-for-bit identical to a fault-free execution.
    let plan = &config.faults;
    let mut fault_rng: Option<StdRng> = if plan.is_inert() {
        None
    } else {
        Some(StdRng::seed_from_u64(plan.seed))
    };
    let mut metrics = RunMetrics::default();

    let corrupted_advice: Vec<BitString>;
    let advice: &[BitString] = if let Some(rng) = fault_rng.as_mut() {
        let mut mutated = advice.to_vec();
        metrics.faults.advice_mutations = plan.advice.corrupt(&mut mutated, rng);
        corrupted_advice = mutated;
        &corrupted_advice
    } else {
        advice
    };

    let mut behaviors: Vec<Box<dyn NodeBehavior>> = (0..n)
        .map(|v| {
            protocol.create(NodeView {
                advice: advice[v].clone(),
                is_source: v == source,
                id: if config.anonymous {
                    None
                } else {
                    Some(g.label(v))
                },
                degree: g.degree(v),
            })
        })
        .collect();

    let mut informed = vec![false; n];
    informed[source] = true;

    // Crash-stop state: node `v` halts once it has made its budgeted number
    // of sends; a zero budget means it never lived at all.
    let mut crashed: Vec<bool> = (0..n)
        .map(|v| plan.crashes.get(&v).is_some_and(|&k| k == 0))
        .collect();
    let mut sends_made: Vec<u64> = vec![0; n];

    let mut trace = Vec::new();
    let mut pending: std::collections::VecDeque<InFlight> = std::collections::VecDeque::new();
    let mut next_round: std::collections::VecDeque<InFlight> = std::collections::VecDeque::new();

    // Enqueues `sends` from node `v`, validating rules, accounting, and
    // injecting in-flight faults. A crashed node's sends are suppressed
    // (it is dead, so they are not wakeup violations either); protocol
    // errors from live nodes still abort the run even under faults.
    let enqueue = |v: NodeId,
                   sends: Vec<Outgoing>,
                   informed: &[bool],
                   metrics: &mut RunMetrics,
                   crashed: &mut [bool],
                   sends_made: &mut [u64],
                   fault_rng: &mut Option<StdRng>,
                   out: &mut std::collections::VecDeque<InFlight>|
     -> Result<(), SimError> {
        if sends.is_empty() {
            return Ok(());
        }
        if crashed[v] {
            metrics.faults.suppressed_sends += sends.len() as u64;
            return Ok(());
        }
        if config.mode == TaskMode::Wakeup && !informed[v] {
            return Err(SimError::WakeupViolation { node: v });
        }
        for s in sends {
            if s.port >= g.degree(v) {
                return Err(SimError::PortOutOfRange {
                    node: v,
                    port: s.port,
                    degree: g.degree(v),
                });
            }
            let bits = s.message.size_bits() as u64;
            if let Some(limit) = config.max_message_bits {
                if bits > limit {
                    return Err(SimError::MessageTooLarge {
                        node: v,
                        bits,
                        limit,
                    });
                }
            }
            if crashed[v] {
                // The crash budget ran out earlier in this batch.
                metrics.faults.suppressed_sends += 1;
                continue;
            }
            let (to, arrival_port) = g.neighbor_via(v, s.port);
            let mut message = s.message;
            message.carries_source = informed[v];
            metrics.messages += 1;
            if message.carries_source {
                metrics.informed_messages += 1;
            }
            metrics.payload_bits += bits;
            metrics.max_message_bits = metrics.max_message_bits.max(bits);
            sends_made[v] += 1;
            if plan.crashes.get(&v).is_some_and(|&k| sends_made[v] >= k) {
                crashed[v] = true;
            }
            // In-flight faults: drop, duplicate, or corrupt the payload.
            let mut copies: u32 = 1;
            if let Some(rng) = fault_rng.as_mut() {
                if rng.gen_bool(plan.drop_prob.clamp(0.0, 1.0)) {
                    metrics.faults.dropped += 1;
                    copies = 0;
                } else if rng.gen_bool(plan.duplicate_prob.clamp(0.0, 1.0)) {
                    metrics.faults.duplicated += 1;
                    copies = 2;
                }
            }
            for _ in 0..copies {
                let mut delivered = message.clone();
                if let Some(rng) = fault_rng.as_mut() {
                    if !delivered.payload.is_empty()
                        && rng.gen_bool(plan.bit_flip_prob.clamp(0.0, 1.0))
                    {
                        let idx = rng.gen_range(0..delivered.payload.len());
                        delivered.payload = BitString::from_bits(
                            delivered
                                .payload
                                .iter()
                                .enumerate()
                                .map(|(i, b)| if i == idx { !b } else { b }),
                        );
                        metrics.faults.payload_flips += 1;
                    }
                }
                out.push_back(InFlight {
                    from: v,
                    to,
                    arrival_port,
                    message: delivered,
                });
            }
        }
        Ok(())
    };

    // Spontaneous phase.
    for (v, behavior) in behaviors.iter_mut().enumerate() {
        let sends = behavior.on_start();
        enqueue(
            v,
            sends,
            &informed,
            &mut metrics,
            &mut crashed,
            &mut sends_made,
            &mut fault_rng,
            &mut pending,
        )?;
    }

    let mut scheduler: Scheduler = config.scheduler.instantiate();
    let mut steps: u64 = 0;
    let mut rounds: u64 = 0;
    let mut polls: u32 = 0;

    'run: loop {
        // Delivery loop: drain the network to quiescence.
        loop {
            if pending.is_empty() {
                if config.synchronous && !next_round.is_empty() {
                    pending = std::mem::take(&mut next_round);
                    rounds += 1;
                    continue;
                }
                break;
            }
            if steps >= config.max_steps {
                return Err(SimError::StepLimit {
                    limit: config.max_steps,
                });
            }
            let InFlight {
                from,
                to,
                arrival_port,
                message,
            } = if config.synchronous {
                pending.pop_front().expect("nonempty checked above")
            } else {
                scheduler.take(&mut pending, |m: &InFlight| m.message.carries_source)
            };

            if config.capture_trace {
                trace.push(TraceEvent {
                    step: steps,
                    from,
                    to,
                    arrival_port,
                    bits: message.size_bits() as u64,
                    carries_source: message.carries_source,
                });
            }
            steps += 1;

            if crashed[to] {
                // The wire delivered it, but nobody is listening: the node
                // neither learns the source message nor reacts.
                metrics.faults.to_crashed += 1;
                continue;
            }
            if message.carries_source {
                informed[to] = true;
            }

            let sends = behaviors[to].on_receive(arrival_port, &message);
            let out = if config.synchronous {
                &mut next_round
            } else {
                &mut pending
            };
            enqueue(
                to,
                sends,
                &informed,
                &mut metrics,
                &mut crashed,
                &mut sends_made,
                &mut fault_rng,
                out,
            )?;
        }

        // Quiescence: poll live nodes for retries, bounded by the config.
        // A fully silent poll (the default hook) ends the run. "Silent"
        // means no node *returned* a send — a poll whose sends were all
        // dropped by the fault plan still counts as speaking, so a retrying
        // scheme keeps its remaining attempts under total message loss.
        if polls >= config.max_quiescence_polls {
            break;
        }
        polls += 1;
        let mut spoke = false;
        for v in 0..n {
            if crashed[v] {
                continue;
            }
            let sends = behaviors[v].on_quiescence();
            spoke |= !sends.is_empty();
            enqueue(
                v,
                sends,
                &informed,
                &mut metrics,
                &mut crashed,
                &mut sends_made,
                &mut fault_rng,
                &mut pending,
            )?;
        }
        if !spoke {
            break 'run;
        }
    }

    metrics.steps = steps;
    metrics.rounds = rounds;
    metrics.informed_nodes = informed.iter().filter(|&&x| x).count() as u64;
    let outputs = behaviors.iter().map(|b| b.output()).collect();
    Ok(RunOutcome {
        metrics,
        informed,
        crashed,
        trace,
        outputs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{FloodOnce, Silent};
    use oraclesize_graph::families;

    fn no_advice(n: usize) -> Vec<BitString> {
        vec![BitString::new(); n]
    }

    #[test]
    fn flooding_cycle_informs_all() {
        let g = families::cycle(5);
        let out = run(&g, 0, &no_advice(5), &FloodOnce, &SimConfig::default()).unwrap();
        assert!(out.all_informed());
        // Source sends 2, each of the 4 others forwards 1.
        assert_eq!(out.metrics.messages, 6);
        assert_eq!(out.metrics.informed_nodes, 5);
        assert!(out.metrics.rounds >= 2);
    }

    #[test]
    fn flooding_complete_costs_quadratic() {
        let n = 10;
        let g = families::complete_rotational(n);
        let out = run(&g, 0, &no_advice(n), &FloodOnce, &SimConfig::default()).unwrap();
        assert!(out.all_informed());
        // Source: n−1, every other node: n−2.
        assert_eq!(out.metrics.messages as usize, (n - 1) + (n - 1) * (n - 2));
    }

    #[test]
    fn silent_run_quiesces_with_single_informed() {
        let g = families::path(4);
        let out = run(&g, 2, &no_advice(4), &Silent, &SimConfig::default()).unwrap();
        assert!(!out.all_informed());
        assert_eq!(out.informed_count(), 1);
        assert_eq!(out.metrics.messages, 0);
        assert_eq!(out.metrics.rounds, 0);
    }

    #[test]
    fn async_schedulers_all_complete_flooding() {
        let g = families::complete_rotational(8);
        for kind in SchedulerKind::sweep(7) {
            let cfg = SimConfig::asynchronous(kind);
            let out = run(&g, 3, &no_advice(8), &FloodOnce, &cfg).unwrap();
            assert!(out.all_informed(), "{}", kind.name());
            assert_eq!(out.metrics.steps, out.metrics.messages);
        }
    }

    #[test]
    fn random_scheduler_is_deterministic_per_seed() {
        let g = families::complete_rotational(9);
        let cfg = SimConfig {
            capture_trace: true,
            ..SimConfig::asynchronous(SchedulerKind::Random { seed: 5 })
        };
        let a = run(&g, 0, &no_advice(9), &FloodOnce, &cfg).unwrap();
        let b = run(&g, 0, &no_advice(9), &FloodOnce, &cfg).unwrap();
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn wakeup_mode_rejects_spontaneous_transmissions() {
        // FloodOnce is a legal wakeup protocol (only the source starts),
        // so craft a protocol where a non-source node speaks at start.
        struct Chatty;
        struct ChattyState {
            degree: usize,
        }
        impl NodeBehavior for ChattyState {
            fn on_start(&mut self) -> Vec<Outgoing> {
                (0..self.degree.min(1))
                    .map(|p| Outgoing::new(p, Message::empty()))
                    .collect()
            }
            fn on_receive(&mut self, _p: Port, _m: &Message) -> Vec<Outgoing> {
                Vec::new()
            }
        }
        impl Protocol for Chatty {
            fn create(&self, view: NodeView) -> Box<dyn NodeBehavior> {
                Box::new(ChattyState {
                    degree: view.degree,
                })
            }
        }
        let g = families::path(3);
        let err = run(&g, 0, &no_advice(3), &Chatty, &SimConfig::wakeup()).unwrap_err();
        assert!(matches!(err, SimError::WakeupViolation { .. }));
        // The same protocol is fine in broadcast mode.
        run(&g, 0, &no_advice(3), &Chatty, &SimConfig::default()).unwrap();
    }

    #[test]
    fn flood_is_a_legal_wakeup_scheme() {
        let g = families::cycle(6);
        let out = run(&g, 0, &no_advice(6), &FloodOnce, &SimConfig::wakeup()).unwrap();
        assert!(out.all_informed());
    }

    #[test]
    fn message_size_limit_enforced() {
        struct BigTalker;
        struct BigState {
            is_source: bool,
        }
        impl NodeBehavior for BigState {
            fn on_start(&mut self) -> Vec<Outgoing> {
                if self.is_source {
                    let payload = BitString::from_bits((0..100).map(|i| i % 2 == 0));
                    vec![Outgoing::new(0, Message::new(payload))]
                } else {
                    Vec::new()
                }
            }
            fn on_receive(&mut self, _p: Port, _m: &Message) -> Vec<Outgoing> {
                Vec::new()
            }
        }
        impl Protocol for BigTalker {
            fn create(&self, view: NodeView) -> Box<dyn NodeBehavior> {
                Box::new(BigState {
                    is_source: view.is_source,
                })
            }
        }
        let g = families::path(2);
        let cfg = SimConfig {
            max_message_bits: Some(64),
            ..Default::default()
        };
        let err = run(&g, 0, &no_advice(2), &BigTalker, &cfg).unwrap_err();
        assert_eq!(
            err,
            SimError::MessageTooLarge {
                node: 0,
                bits: 100,
                limit: 64
            }
        );
    }

    #[test]
    fn step_limit_stops_ping_pong() {
        struct PingPong;
        struct PingState {
            is_source: bool,
        }
        impl NodeBehavior for PingState {
            fn on_start(&mut self) -> Vec<Outgoing> {
                if self.is_source {
                    vec![Outgoing::new(0, Message::empty())]
                } else {
                    Vec::new()
                }
            }
            fn on_receive(&mut self, port: Port, _m: &Message) -> Vec<Outgoing> {
                vec![Outgoing::new(port, Message::empty())]
            }
        }
        impl Protocol for PingPong {
            fn create(&self, view: NodeView) -> Box<dyn NodeBehavior> {
                Box::new(PingState {
                    is_source: view.is_source,
                })
            }
        }
        let g = families::path(2);
        let cfg = SimConfig {
            max_steps: 50,
            ..Default::default()
        };
        let err = run(&g, 0, &no_advice(2), &PingPong, &cfg).unwrap_err();
        assert_eq!(err, SimError::StepLimit { limit: 50 });
    }

    #[test]
    fn port_out_of_range_detected() {
        struct Wild;
        struct WildState {
            is_source: bool,
        }
        impl NodeBehavior for WildState {
            fn on_start(&mut self) -> Vec<Outgoing> {
                if self.is_source {
                    vec![Outgoing::new(99, Message::empty())]
                } else {
                    Vec::new()
                }
            }
            fn on_receive(&mut self, _p: Port, _m: &Message) -> Vec<Outgoing> {
                Vec::new()
            }
        }
        impl Protocol for Wild {
            fn create(&self, view: NodeView) -> Box<dyn NodeBehavior> {
                Box::new(WildState {
                    is_source: view.is_source,
                })
            }
        }
        let g = families::path(3);
        let err = run(&g, 0, &no_advice(3), &Wild, &SimConfig::default()).unwrap_err();
        assert!(matches!(
            err,
            SimError::PortOutOfRange {
                node: 0,
                port: 99,
                ..
            }
        ));
    }

    #[test]
    fn advice_count_mismatch_rejected() {
        let g = families::path(3);
        let err = run(&g, 0, &no_advice(2), &Silent, &SimConfig::default()).unwrap_err();
        assert_eq!(
            err,
            SimError::AdviceCount {
                expected: 3,
                got: 2
            }
        );
    }

    #[test]
    fn anonymous_mode_hides_ids() {
        struct IdProbe;
        struct ProbeState;
        impl NodeBehavior for ProbeState {
            fn on_start(&mut self) -> Vec<Outgoing> {
                Vec::new()
            }
            fn on_receive(&mut self, _p: Port, _m: &Message) -> Vec<Outgoing> {
                Vec::new()
            }
        }
        impl Protocol for IdProbe {
            fn create(&self, view: NodeView) -> Box<dyn NodeBehavior> {
                assert!(view.id.is_none(), "identity leaked in anonymous mode");
                Box::new(ProbeState)
            }
        }
        let g = families::path(3);
        let cfg = SimConfig {
            anonymous: true,
            ..Default::default()
        };
        run(&g, 0, &no_advice(3), &IdProbe, &cfg).unwrap();
    }

    #[test]
    fn trace_capture_matches_metrics() {
        let g = families::cycle(4);
        let cfg = SimConfig {
            capture_trace: true,
            ..Default::default()
        };
        let out = run(&g, 0, &no_advice(4), &FloodOnce, &cfg).unwrap();
        assert_eq!(out.trace.len() as u64, out.metrics.steps);
        assert_eq!(out.metrics.steps, out.metrics.messages);
        // Every traced delivery of an informed message has the flag.
        assert!(out.trace.iter().any(|e| e.carries_source));
    }

    #[test]
    fn total_drop_quiesces_degraded() {
        let g = families::path(5);
        let cfg = SimConfig {
            faults: FaultPlan::message_faults(3, 1.0, 0.0, 0.0),
            ..SimConfig::asynchronous(SchedulerKind::Fifo)
        };
        let out = run(&g, 0, &no_advice(5), &FloodOnce, &cfg).unwrap();
        assert!(!out.all_informed());
        assert_eq!(out.classify(), Completion::Degraded { uninformed: 4 });
        // Only the source's spontaneous send happened; it was dropped.
        assert_eq!(out.metrics.messages, 1);
        assert_eq!(out.metrics.faults.dropped, 1);
        assert_eq!(out.metrics.steps, 0);
    }

    #[test]
    fn duplication_adds_deliveries_not_messages() {
        let g = families::path(4);
        let cfg = SimConfig {
            faults: FaultPlan::message_faults(7, 0.0, 1.0, 0.0),
            ..SimConfig::asynchronous(SchedulerKind::Fifo)
        };
        let out = run(&g, 0, &no_advice(4), &FloodOnce, &cfg).unwrap();
        assert!(out.all_informed());
        assert_eq!(out.classify(), Completion::Completed);
        assert_eq!(out.metrics.faults.duplicated, out.metrics.messages);
        assert_eq!(
            out.metrics.steps,
            out.metrics.messages + out.metrics.faults.duplicated
        );
    }

    #[test]
    fn bit_flips_corrupt_delivered_payloads() {
        // The source sends a known 8-bit payload; with flip probability 1
        // the receiver must observe a payload at Hamming distance exactly 1.
        struct TaggedState {
            is_source: bool,
            seen: std::rc::Rc<std::cell::RefCell<Vec<BitString>>>,
        }
        impl NodeBehavior for TaggedState {
            fn on_start(&mut self) -> Vec<Outgoing> {
                if self.is_source {
                    vec![Outgoing::new(
                        0,
                        Message::new(BitString::parse("10101010").unwrap()),
                    )]
                } else {
                    Vec::new()
                }
            }
            fn on_receive(&mut self, _p: Port, m: &Message) -> Vec<Outgoing> {
                self.seen.borrow_mut().push(m.payload.clone());
                Vec::new()
            }
        }
        struct TaggedProtocol {
            seen: std::rc::Rc<std::cell::RefCell<Vec<BitString>>>,
        }
        impl Protocol for TaggedProtocol {
            fn create(&self, view: NodeView) -> Box<dyn NodeBehavior> {
                Box::new(TaggedState {
                    is_source: view.is_source,
                    seen: std::rc::Rc::clone(&self.seen),
                })
            }
        }
        let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let g = families::path(2);
        let cfg = SimConfig {
            faults: FaultPlan::message_faults(11, 0.0, 0.0, 1.0),
            ..Default::default()
        };
        let protocol = TaggedProtocol {
            seen: std::rc::Rc::clone(&seen),
        };
        let out = run(&g, 0, &no_advice(2), &protocol, &cfg).unwrap();
        assert_eq!(out.metrics.faults.payload_flips, 1);
        let original = BitString::parse("10101010").unwrap();
        let received = &seen.borrow()[0];
        let distance = original
            .iter()
            .zip(received.iter())
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(distance, 1);
    }

    #[test]
    fn crash_stop_silences_a_relay() {
        // Node 1 on a path is down from the start: the flood cannot pass
        // it, deliveries to it are counted, and classify() excuses the
        // crashed node itself but not the nodes stranded behind it.
        let g = families::path(4);
        let cfg = SimConfig {
            faults: FaultPlan {
                crashes: [(1, 0)].into(),
                ..Default::default()
            },
            ..Default::default()
        };
        let out = run(&g, 0, &no_advice(4), &FloodOnce, &cfg).unwrap();
        assert!(out.crashed[1]);
        assert_eq!(out.metrics.faults.to_crashed, 1);
        assert_eq!(out.classify(), Completion::Degraded { uninformed: 2 });
        assert_eq!(out.informed_count(), 1);
    }

    #[test]
    fn crash_budget_counts_sends() {
        // The source of a 5-star may make two sends, then halts: exactly
        // two leaves wake up, the remaining two spontaneous sends are
        // suppressed.
        let g = families::star(5);
        let cfg = SimConfig {
            faults: FaultPlan {
                crashes: [(0, 2)].into(),
                ..Default::default()
            },
            ..Default::default()
        };
        let out = run(&g, 0, &no_advice(5), &FloodOnce, &cfg).unwrap();
        assert!(out.crashed[0]);
        assert_eq!(out.metrics.messages, 2);
        assert_eq!(out.metrics.faults.suppressed_sends, 2);
        assert_eq!(out.informed_count(), 3);
        assert_eq!(out.classify(), Completion::Degraded { uninformed: 2 });
    }

    #[test]
    fn faulty_runs_are_reproducible_per_seed() {
        let g = families::complete_rotational(10);
        let plan = FaultPlan::message_faults(77, 0.3, 0.2, 0.0);
        let cfg = SimConfig {
            capture_trace: true,
            faults: plan,
            ..SimConfig::asynchronous(SchedulerKind::Random { seed: 4 })
        };
        let a = run(&g, 0, &no_advice(10), &FloodOnce, &cfg).unwrap();
        let b = run(&g, 0, &no_advice(10), &FloodOnce, &cfg).unwrap();
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.informed, b.informed);
    }

    #[test]
    fn inert_plan_with_nonzero_seed_changes_nothing() {
        let g = families::complete_rotational(8);
        let baseline = run(&g, 2, &no_advice(8), &FloodOnce, &SimConfig::default()).unwrap();
        let cfg = SimConfig {
            faults: FaultPlan {
                seed: 999,
                ..Default::default()
            },
            ..Default::default()
        };
        let with_inert = run(&g, 2, &no_advice(8), &FloodOnce, &cfg).unwrap();
        assert_eq!(baseline.metrics, with_inert.metrics);
        assert_eq!(baseline.informed, with_inert.informed);
    }

    #[test]
    fn quiescence_polls_are_bounded() {
        // A protocol that always speaks at quiescence must be cut off
        // after `max_quiescence_polls` resumptions.
        struct Nagger;
        struct NagState;
        impl NodeBehavior for NagState {
            fn on_start(&mut self) -> Vec<Outgoing> {
                Vec::new()
            }
            fn on_receive(&mut self, _p: Port, _m: &Message) -> Vec<Outgoing> {
                Vec::new()
            }
            fn on_quiescence(&mut self) -> Vec<Outgoing> {
                vec![Outgoing::new(0, Message::empty())]
            }
        }
        impl Protocol for Nagger {
            fn create(&self, _view: NodeView) -> Box<dyn NodeBehavior> {
                Box::new(NagState)
            }
        }
        let g = families::path(2);
        let cfg = SimConfig {
            max_quiescence_polls: 3,
            ..Default::default()
        };
        let out = run(&g, 0, &no_advice(2), &Nagger, &cfg).unwrap();
        // Both nodes nag once per poll.
        assert_eq!(out.metrics.messages, 6);
    }

    #[test]
    fn error_display_nonempty() {
        let errs: Vec<SimError> = vec![
            SimError::WakeupViolation { node: 1 },
            SimError::MessageTooLarge {
                node: 2,
                bits: 10,
                limit: 5,
            },
            SimError::StepLimit { limit: 7 },
            SimError::PortOutOfRange {
                node: 3,
                port: 9,
                degree: 2,
            },
            SimError::AdviceCount {
                expected: 4,
                got: 0,
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
