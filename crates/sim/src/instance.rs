//! `Arc`-shared immutable problem instances, and the workspace's one
//! run facade.

use std::sync::Arc;

use oraclesize_bits::BitString;
use oraclesize_graph::{NodeId, PortGraph};

use crate::engine::{self, RunOutcome, SimConfig, SimError};
use crate::oracle::{advice_size, Oracle};
use crate::protocol::Protocol;
use crate::trace::TraceSink;

/// One immutable problem instance: a port-labeled graph, a source, and the
/// advice an oracle assigned — built **once**, then shared by every cell
/// and every worker thread through an `Arc`.
///
/// Building dense instances (and running oracles on them) dominates many
/// sweeps; sharing removes both the rebuild and the per-seed advice
/// recomputation from the hot path. The graph itself is held behind its
/// own `Arc` so several instances (e.g. one per scheme, whose oracles
/// assign different advice) can still share a single adjacency structure.
#[derive(Debug, Clone)]
pub struct Instance {
    /// The shared network.
    pub graph: Arc<PortGraph>,
    /// The broadcast/wakeup source the advice was computed for.
    pub source: NodeId,
    /// Per-node advice strings.
    pub advice: Vec<BitString>,
    /// Total advice size in bits — the paper's oracle size.
    pub oracle_bits: u64,
}

impl Instance {
    /// Runs `oracle` on the shared graph and freezes the result.
    pub fn build(graph: Arc<PortGraph>, source: NodeId, oracle: &dyn Oracle) -> Arc<Instance> {
        let advice = oracle.advise(&graph, source);
        let oracle_bits = advice_size(&advice);
        Arc::new(Instance {
            graph,
            source,
            advice,
            oracle_bits,
        })
    }

    /// Freezes precomputed advice (for callers that build advice by hand).
    pub fn with_advice(
        graph: Arc<PortGraph>,
        source: NodeId,
        advice: Vec<BitString>,
    ) -> Arc<Instance> {
        let oracle_bits = advice_size(&advice);
        Arc::new(Instance {
            graph,
            source,
            advice,
            oracle_bits,
        })
    }

    /// Number of nodes in the shared graph.
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }
}

// The whole point of Instance is cross-thread sharing; fail compilation
// loudly if a field ever stops being Send + Sync.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Instance>();
};

/// Executes `protocol` on a frozen [`Instance`] — the workspace's single
/// run facade.
///
/// Every higher-level entry point reduces to this call:
/// `oraclesize_core::execute` builds the instance from an oracle first;
/// `oraclesize_runtime::run_batch` fans instances out across a worker
/// pool; the engine-level [`engine::run`](crate::engine::run::run) is the
/// same executor without the instance wrapper. Tracing follows
/// [`SimConfig::trace`]; to stream events into your own sink, use
/// [`run_streamed`].
///
/// # Errors
///
/// See [`SimError`]. Any error aborts the run immediately.
///
/// # Panics
///
/// Panics if `instance.source` is out of range for the instance's graph
/// (unreachable for instances built by [`Instance::build`] from an
/// in-range source).
pub fn run(
    instance: &Instance,
    protocol: &dyn Protocol,
    config: &SimConfig,
) -> Result<RunOutcome, SimError> {
    engine::run::run(
        &instance.graph,
        instance.source,
        &instance.advice,
        protocol,
        config,
    )
}

/// [`run`], streaming trace events into a caller-supplied sink instead of
/// materialising one from [`SimConfig::trace`]. The caller keeps the sink
/// when the run aborts, so a bounded sink doubles as an error post-mortem
/// buffer.
///
/// # Errors / Panics
///
/// As [`run`].
pub fn run_streamed(
    instance: &Instance,
    protocol: &dyn Protocol,
    config: &SimConfig,
    sink: &mut dyn TraceSink,
) -> Result<RunOutcome, SimError> {
    engine::run::run_with_sink(
        &instance.graph,
        instance.source,
        &instance.advice,
        protocol,
        config,
        sink,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::FloodOnce;
    use crate::testkit::no_advice;
    use crate::trace::{TraceSpec, VecSink};
    use oraclesize_graph::families;

    struct NoAdviceOracle;
    impl Oracle for NoAdviceOracle {
        fn advise(&self, g: &PortGraph, _source: NodeId) -> Vec<BitString> {
            no_advice(g.num_nodes())
        }
    }

    #[test]
    fn build_computes_oracle_size() {
        let g = Arc::new(families::cycle(6));
        let inst = Instance::build(Arc::clone(&g), 0, &NoAdviceOracle);
        assert_eq!(inst.oracle_bits, 0);
        assert_eq!(inst.advice.len(), 6);
        assert_eq!(inst.num_nodes(), 6);
        // The graph is shared, not copied.
        assert!(Arc::ptr_eq(&g, &inst.graph));
    }

    #[test]
    fn facade_matches_engine_run() {
        let g = Arc::new(families::cycle(5));
        let inst = Instance::with_advice(Arc::clone(&g), 0, no_advice(5));
        let config = SimConfig::default();
        let via_facade = run(&inst, &FloodOnce, &config).unwrap();
        let via_engine = engine::run::run(&g, 0, &inst.advice, &FloodOnce, &config).unwrap();
        assert_eq!(via_facade.metrics, via_engine.metrics);
        assert!(via_facade.all_informed());
    }

    #[test]
    fn streamed_facade_fills_external_sink() {
        let g = Arc::new(families::cycle(4));
        let inst = Instance::with_advice(Arc::clone(&g), 0, no_advice(4));
        let config = SimConfig::default().capture_trace(TraceSpec::Full);
        let mut sink = VecSink::new();
        let out = run_streamed(&inst, &FloodOnce, &config, &mut sink).unwrap();
        // The caller owns the events; the outcome's own vec stays empty.
        assert!(out.trace.is_empty());
        assert!(!sink.events().is_empty());
        assert_eq!(out.trace_stats.events, sink.events().len() as u64);
        // And the non-streamed facade collects the identical events.
        let collected = run(&inst, &FloodOnce, &config).unwrap();
        assert_eq!(collected.trace, sink.into_events());
    }
}
