//! Shared test support used by unit, property, and integration tests
//! across the workspace.
//!
//! These helpers are deliberately tiny — the point is that every crate
//! spells "the trivial oracle" the same way instead of redefining it.

use oraclesize_bits::BitString;

/// Advice for the trivial (empty) oracle: `n` empty strings, total size 0
/// bits. The advice every oracle-free baseline runs with.
pub fn no_advice(n: usize) -> Vec<BitString> {
    vec![BitString::new(); n]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_advice_is_empty_per_node() {
        let a = no_advice(3);
        assert_eq!(a.len(), 3);
        assert!(a.iter().all(|s| s.is_empty()));
    }
}
