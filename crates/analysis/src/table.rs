//! Markdown and CSV rendering of experiment tables.

use std::fmt::Write as _;

/// A simple column-oriented table: a header row plus string cells.
///
/// # Examples
///
/// ```
/// use oraclesize_analysis::Table;
///
/// let mut t = Table::new(["n", "messages"]);
/// t.row(["8", "7"]);
/// t.row(["16", "15"]);
/// let md = t.to_markdown();
/// assert!(md.contains("| n | messages |"));
/// assert_eq!(t.to_csv().lines().count(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header width.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width {} != header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders GitHub-flavored Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.header.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.header
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Renders CSV (no quoting — cells are expected to be plain numbers
    /// and identifiers; commas in cells are replaced by semicolons).
    pub fn to_csv(&self) -> String {
        let clean = |s: &str| s.replace(',', ";");
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|c| clean(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| clean(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Formats a float with sensible experiment-table precision: integers
/// verbatim, otherwise two decimals.
pub fn fmt_num(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_shape() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1", "2"]).row(["3", "4"]);
        let md = t.to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "| a | b |");
        assert_eq!(lines[1], "|---|---|");
        assert_eq!(lines[3], "| 3 | 4 |");
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new(["x"]);
        t.row(["a,b"]);
        assert_eq!(t.to_csv(), "x\na;b\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_rejected() {
        Table::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn fmt_num_modes() {
        assert_eq!(fmt_num(42.0), "42");
        assert_eq!(fmt_num(3.54159), "3.54");
        assert_eq!(fmt_num(-7.0), "-7");
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(["a"]);
        assert!(t.is_empty());
        t.row(["1"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }
}
