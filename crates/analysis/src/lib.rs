//! Experiment analysis: model fitting, summary statistics, and table
//! rendering for EXPERIMENTS.md.
//!
//! The reproduction criterion for the paper's asymptotic statements is
//! *shape*: oracle sizes that are `Θ(n log n)` must fit `a·n·log2(n) + b`
//! markedly better than `a·n + b`, and so on. [`fit`] provides the
//! least-squares machinery, [`stats`] the summary statistics, and
//! [`table`] the Markdown/CSV rendering used by the `experiments` binary.

#![warn(missing_docs)]

pub mod fit;
pub mod stats;
pub mod table;

pub use fit::{best_model, fit_model, Fit, Model};
pub use table::Table;
