//! Summary statistics over repeated measurements.

/// Mean of a slice; `0` for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (`n − 1` denominator); `0` for fewer than two
/// points.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// The `p`-th percentile (`0 ≤ p ≤ 100`) by nearest-rank on a sorted copy.
///
/// # Panics
///
/// Panics if `xs` is empty or `p` out of range.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile out of range");
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank]
}

/// Median — shorthand for the 50th percentile.
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// Min and max of a nonempty slice.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn min_max(xs: &[f64]) -> (f64, f64) {
    assert!(!xs.is_empty(), "min_max of empty slice");
    xs.iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &x| {
            (lo.min(x), hi.max(x))
        })
}

/// Aggregate summary of a measurement series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// Median.
    pub median: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes a nonempty series.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn of(xs: &[f64]) -> Self {
        let (min, max) = min_max(xs);
        Summary {
            count: xs.len(),
            mean: mean(xs),
            stddev: stddev(xs),
            min,
            median: median(xs),
            max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev_basics() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Sample stddev of this classic set is ~2.138.
        assert!((stddev(&xs) - 2.13809).abs() < 1e-4);
    }

    #[test]
    fn empty_and_singleton_edge_cases() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(stddev(&[]), 0.0);
        assert_eq!(stddev(&[5.0]), 0.0);
    }

    #[test]
    fn percentiles_ordered() {
        let xs: Vec<f64> = (1..=101).map(|i| i as f64).collect();
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 101.0);
        assert_eq!(median(&xs), 51.0);
        assert!(percentile(&xs, 25.0) < percentile(&xs, 75.0));
    }

    #[test]
    fn summary_consistent() {
        let xs = [3.0, 1.0, 2.0];
        let s = Summary::of(&xs);
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.median, 2.0);
        assert!((s.mean - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile(&[], 50.0);
    }
}
