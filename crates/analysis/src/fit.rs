//! Least-squares fits of asymptotic growth models.

use std::fmt;

/// A one-parameter-family growth model `y ≈ a·g(x) + b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Model {
    /// `g(x) = 1` — constant.
    Constant,
    /// `g(x) = log2 x`.
    Logarithmic,
    /// `g(x) = x`.
    Linear,
    /// `g(x) = x·log2 x`.
    NLogN,
    /// `g(x) = x²`.
    Quadratic,
}

impl Model {
    /// The models compared when classifying a measured growth curve.
    pub const ALL: [Model; 5] = [
        Model::Constant,
        Model::Logarithmic,
        Model::Linear,
        Model::NLogN,
        Model::Quadratic,
    ];

    /// Evaluates the basis function `g(x)`.
    pub fn basis(&self, x: f64) -> f64 {
        match self {
            Model::Constant => 1.0,
            Model::Logarithmic => x.max(1.0).log2(),
            Model::Linear => x,
            Model::NLogN => x * x.max(2.0).log2(),
            Model::Quadratic => x * x,
        }
    }

    /// Display name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            Model::Constant => "O(1)",
            Model::Logarithmic => "O(log n)",
            Model::Linear => "O(n)",
            Model::NLogN => "O(n log n)",
            Model::Quadratic => "O(n^2)",
        }
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A fitted model `y ≈ a·g(x) + b` with its goodness of fit.
#[derive(Debug, Clone, Copy)]
pub struct Fit {
    /// The fitted model family.
    pub model: Model,
    /// Slope `a`.
    pub a: f64,
    /// Intercept `b`.
    pub b: f64,
    /// Coefficient of determination `R² ∈ (−∞, 1]`.
    pub r_squared: f64,
}

impl Fit {
    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.a * self.model.basis(x) + self.b
    }
}

/// Ordinary least squares of `y` against `a·g(x) + b`.
///
/// # Panics
///
/// Panics if fewer than 2 points are supplied or `xs.len() != ys.len()`.
pub fn fit_model(model: Model, xs: &[f64], ys: &[f64]) -> Fit {
    assert_eq!(xs.len(), ys.len(), "mismatched point counts");
    assert!(xs.len() >= 2, "need at least two points");
    let n = xs.len() as f64;
    let gs: Vec<f64> = xs.iter().map(|&x| model.basis(x)).collect();
    let mean_g = gs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut sgg = 0.0;
    let mut sgy = 0.0;
    for (g, y) in gs.iter().zip(ys) {
        sgg += (g - mean_g) * (g - mean_g);
        sgy += (g - mean_g) * (y - mean_y);
    }
    let a = if sgg == 0.0 { 0.0 } else { sgy / sgg };
    let b = mean_y - a * mean_g;
    // R² = 1 − SS_res / SS_tot.
    let ss_tot: f64 = ys.iter().map(|y| (y - mean_y) * (y - mean_y)).sum();
    let ss_res: f64 = gs
        .iter()
        .zip(ys)
        .map(|(g, y)| {
            let e = y - (a * g + b);
            e * e
        })
        .sum();
    let r_squared = if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    };
    Fit {
        model,
        a,
        b,
        r_squared,
    }
}

/// Fits every model in [`Model::ALL`] and returns them sorted best-first
/// by `R²`.
pub fn best_model(xs: &[f64], ys: &[f64]) -> Vec<Fit> {
    let mut fits: Vec<Fit> = Model::ALL.iter().map(|&m| fit_model(m, xs, ys)).collect();
    fits.sort_by(|p, q| q.r_squared.total_cmp(&p.r_squared));
    fits
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xs() -> Vec<f64> {
        (4..12).map(|k| (1u64 << k) as f64).collect()
    }

    #[test]
    fn exact_linear_data_fits_perfectly() {
        let x = xs();
        let y: Vec<f64> = x.iter().map(|&v| 3.0 * v + 7.0).collect();
        let fit = fit_model(Model::Linear, &x, &y);
        assert!((fit.a - 3.0).abs() < 1e-9);
        assert!((fit.b - 7.0).abs() < 1e-6);
        assert!(fit.r_squared > 1.0 - 1e-12);
        assert!((fit.predict(100.0) - 307.0).abs() < 1e-6);
    }

    #[test]
    fn nlogn_data_prefers_nlogn_model() {
        let x = xs();
        let y: Vec<f64> = x.iter().map(|&v| 2.0 * v * v.log2() + 5.0).collect();
        let ranked = best_model(&x, &y);
        assert_eq!(ranked[0].model, Model::NLogN);
        assert!(ranked[0].r_squared > 0.999999);
        // And strictly better than the pure-linear explanation.
        let linear = ranked.iter().find(|f| f.model == Model::Linear).unwrap();
        assert!(ranked[0].r_squared > linear.r_squared);
    }

    #[test]
    fn quadratic_data_prefers_quadratic() {
        let x = xs();
        let y: Vec<f64> = x.iter().map(|&v| 0.5 * v * v).collect();
        let ranked = best_model(&x, &y);
        assert_eq!(ranked[0].model, Model::Quadratic);
    }

    #[test]
    fn constant_data_gets_r2_one_for_constant() {
        let x = xs();
        let y = vec![42.0; x.len()];
        let fit = fit_model(Model::Constant, &x, &y);
        assert_eq!(fit.r_squared, 1.0);
        assert!((fit.predict(9.0) - 42.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_linear_still_recovers_slope() {
        let x = xs();
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, &v)| 3.0 * v + if i % 2 == 0 { 10.0 } else { -10.0 })
            .collect();
        let fit = fit_model(Model::Linear, &x, &y);
        assert!((fit.a - 3.0).abs() < 0.1, "a = {}", fit.a);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_point_rejected() {
        fit_model(Model::Linear, &[1.0], &[1.0]);
    }

    #[test]
    fn model_names_distinct() {
        let mut names: Vec<&str> = Model::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Model::ALL.len());
    }
}
