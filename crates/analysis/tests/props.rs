//! Property-based tests for the analysis toolkit.

use oraclesize_analysis::fit::{best_model, fit_model, Model};
use oraclesize_analysis::stats::{mean, median, min_max, percentile, stddev, Summary};
use oraclesize_analysis::Table;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn perfect_linear_recovered(a in -100.0f64..100.0, b in -1000.0f64..1000.0) {
        prop_assume!(a.abs() > 1e-6);
        let xs: Vec<f64> = (1..=10).map(|k| (k * k) as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| a * x + b).collect();
        let fit = fit_model(Model::Linear, &xs, &ys);
        prop_assert!((fit.a - a).abs() < 1e-6 * a.abs().max(1.0));
        prop_assert!(fit.r_squared > 1.0 - 1e-9);
    }

    #[test]
    fn r_squared_never_exceeds_one(
        ys in proptest::collection::vec(-1e6f64..1e6, 3..40),
    ) {
        let xs: Vec<f64> = (1..=ys.len()).map(|k| k as f64).collect();
        for m in Model::ALL {
            let fit = fit_model(m, &xs, &ys);
            prop_assert!(fit.r_squared <= 1.0 + 1e-12, "{m:?}");
        }
    }

    #[test]
    fn best_model_identifies_generator(
        scale in 0.5f64..50.0,
        which in 0usize..3,
    ) {
        let xs: Vec<f64> = (4..=12).map(|k| (1u64 << k) as f64).collect();
        let model = [Model::Linear, Model::NLogN, Model::Quadratic][which];
        let ys: Vec<f64> = xs.iter().map(|&x| scale * model.basis(x)).collect();
        let ranked = best_model(&xs, &ys);
        prop_assert_eq!(ranked[0].model, model);
    }

    #[test]
    fn stats_invariants(xs in proptest::collection::vec(-1e9f64..1e9, 1..100)) {
        let (lo, hi) = min_max(&xs);
        let m = mean(&xs);
        let md = median(&xs);
        prop_assert!(lo <= m + 1e-6 && m <= hi + 1e-6);
        prop_assert!(lo <= md && md <= hi);
        prop_assert!(stddev(&xs) >= 0.0);
        let s = Summary::of(&xs);
        prop_assert_eq!(s.count, xs.len());
        prop_assert_eq!(s.min, lo);
        prop_assert_eq!(s.max, hi);
    }

    #[test]
    fn percentiles_monotone(
        xs in proptest::collection::vec(-1e6f64..1e6, 1..60),
        p1 in 0.0f64..100.0,
        p2 in 0.0f64..100.0,
    ) {
        let (lo, hi) = (p1.min(p2), p1.max(p2));
        prop_assert!(percentile(&xs, lo) <= percentile(&xs, hi));
    }

    #[test]
    fn tables_render_consistent_shapes(
        rows in proptest::collection::vec(
            (any::<u32>(), any::<u32>()),
            0..20,
        ),
    ) {
        let mut t = Table::new(["a", "b"]);
        for (a, b) in &rows {
            t.row([a.to_string(), b.to_string()]);
        }
        let md = t.to_markdown();
        prop_assert_eq!(md.lines().count(), rows.len() + 2);
        let csv = t.to_csv();
        prop_assert_eq!(csv.lines().count(), rows.len() + 1);
    }
}
