//! T1/T2 runtime benches: wakeup oracle construction and scheme execution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oraclesize_core::execute;
use oraclesize_core::wakeup::{SpanningTreeOracle, TreeWakeup};
use oraclesize_graph::families;
use oraclesize_sim::Oracle;
use oraclesize_sim::SimConfig;
use std::time::Duration;

fn bench_oracle_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("wakeup_oracle_advise");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for k in [6u32, 8, 10] {
        let n = 1usize << k;
        let g = families::complete_rotational(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| SpanningTreeOracle::default().advise(g, 0));
        });
    }
    group.finish();
}

fn bench_wakeup_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_wakeup_run");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for k in [6u32, 8, 10] {
        let n = 1usize << k;
        let g = families::complete_rotational(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| {
                let run = execute(
                    g,
                    0,
                    &SpanningTreeOracle::default(),
                    &TreeWakeup,
                    &SimConfig::wakeup(),
                )
                .expect("wakeup runs");
                assert_eq!(run.outcome.metrics.messages, n as u64 - 1);
                run.outcome.metrics.messages
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_oracle_construction, bench_wakeup_execution);
criterion_main!(benches);
