//! T11 runtime benches: advice codec throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oraclesize_bits::codec::{AnyCodec, Codec};
use oraclesize_bits::lists::{
    decode_port_list, decode_weight_list, encode_port_list, encode_weight_list,
};
use oraclesize_bits::BitString;
use std::time::Duration;

fn bench_codecs(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec_roundtrip_1k_values");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let values: Vec<u64> = (0..1000u64).map(|i| i * 37 % 4096).collect();
    for codec in [
        AnyCodec::ContinuationPairs,
        AnyCodec::EliasGamma,
        AnyCodec::EliasDelta,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(codec.name()),
            &codec,
            |b, codec| {
                b.iter(|| {
                    let mut s = BitString::new();
                    for &v in &values {
                        codec.encode(v, &mut s);
                    }
                    let mut r = s.reader();
                    let mut sum = 0u64;
                    while !r.is_empty() {
                        sum += codec.decode(&mut r).expect("roundtrip");
                    }
                    sum
                });
            },
        );
    }
    group.finish();
}

fn bench_advice_payloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("advice_payloads");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let ports: Vec<u64> = (0..256).collect();
    group.bench_function("port_list_256_of_1024", |b| {
        b.iter(|| {
            let enc = encode_port_list(&ports, 1024);
            decode_port_list(&enc).expect("roundtrip").len()
        });
    });
    let weights: Vec<u64> = (0..256u64).map(|i| i * i % 512).collect();
    group.bench_function("weight_list_256", |b| {
        b.iter(|| {
            let enc = encode_weight_list(&weights);
            decode_weight_list(&enc).expect("roundtrip").len()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_codecs, bench_advice_payloads);
criterion_main!(benches);
