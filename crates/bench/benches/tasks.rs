//! Runtime benches for the extended task suite: gossip, election,
//! construction, exploration.

use criterion::{criterion_group, criterion_main, Criterion};
use oraclesize_core::construction::{BfsTreeOracle, ZeroMessageTree};
use oraclesize_core::election::{AnnouncedLeader, ElectionOracle};
use oraclesize_core::execute;
use oraclesize_core::gossip::{GossipOracle, TreeGossip};
use oraclesize_explore::agent::{walk, WalkConfig};
use oraclesize_explore::oracle::tour_advice;
use oraclesize_explore::strategies::{DfsBacktrack, GuidedTour};
use oraclesize_graph::families;
use oraclesize_sim::SimConfig;
use std::time::Duration;

fn bench_gossip(c: &mut Criterion) {
    let mut group = c.benchmark_group("tasks");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let g = families::complete_rotational(128);
    group.bench_function("gossip_k128", |b| {
        b.iter(|| {
            let run = execute(
                &g,
                0,
                &GossipOracle::default(),
                &TreeGossip,
                &SimConfig::default(),
            )
            .expect("gossip runs");
            assert_eq!(run.outcome.metrics.messages, 254);
            run.outcome.metrics.payload_bits
        });
    });
    group.bench_function("election_k128", |b| {
        b.iter(|| {
            execute(
                &g,
                0,
                &ElectionOracle,
                &AnnouncedLeader,
                &SimConfig::default(),
            )
            .expect("election runs")
            .outcome
            .metrics
            .messages
        });
    });
    group.bench_function("bfs_construction_k128", |b| {
        b.iter(|| {
            execute(
                &g,
                0,
                &BfsTreeOracle,
                &ZeroMessageTree,
                &SimConfig::default(),
            )
            .expect("construction runs")
            .oracle_bits
        });
    });
    group.finish();
}

fn bench_exploration(c: &mut Criterion) {
    let mut group = c.benchmark_group("exploration");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let g = families::complete_rotational(96);
    let advice = tour_advice(&g, 0);
    let empty = oraclesize_sim::testkit::no_advice(96);
    group.bench_function("guided_tour_k96", |b| {
        b.iter(|| {
            let r = walk(
                &g,
                0,
                &advice,
                &mut GuidedTour::new(),
                &WalkConfig::default(),
            );
            assert!(r.covered_all);
            r.moves
        });
    });
    group.bench_function("dfs_backtrack_k96", |b| {
        b.iter(|| {
            let r = walk(
                &g,
                0,
                &empty,
                &mut DfsBacktrack::new(),
                &WalkConfig::default(),
            );
            assert!(r.covered_all);
            r.moves
        });
    });
    group.finish();
}

criterion_group!(benches, bench_gossip, bench_exploration);
criterion_main!(benches);
