//! T5/T6/T7 runtime benches: adversary games, counting tables, trade-off
//! curve points.

use criterion::{criterion_group, criterion_main, Criterion};
use oraclesize_graph::gadgets;
use oraclesize_lowerbound::adversary::{all_ordered_instances, play, ExplicitAdversary};
use oraclesize_lowerbound::counting::wakeup_bound;
use oraclesize_lowerbound::discovery::{all_edges, SequentialStrategy};
use oraclesize_lowerbound::truncation::tradeoff_curve;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;
use std::time::Duration;

fn bench_adversary_game(c: &mut Criterion) {
    let mut group = c.benchmark_group("adversary");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let pool = all_edges(6);
    let family = all_ordered_instances(&pool, 2);
    group.bench_function("game_k6_x2", |b| {
        b.iter(|| {
            let result = play(
                6,
                &BTreeSet::new(),
                ExplicitAdversary::new(family.clone()),
                &mut SequentialStrategy,
            );
            assert!(result.probes as f64 >= result.bound);
            result.probes
        });
    });
    group.finish();
}

fn bench_counting(c: &mut Criterion) {
    let mut group = c.benchmark_group("counting");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    group.bench_function("wakeup_bound_2e15", |b| {
        b.iter(|| wakeup_bound(1 << 15, 0.25).message_bound);
    });
    group.finish();
}

fn bench_tradeoff_point(c: &mut Criterion) {
    let mut group = c.benchmark_group("tradeoff");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let mut rng = StdRng::seed_from_u64(1);
    let (g, _) = gadgets::random_subdivided_complete(32, 32, &mut rng);
    group.bench_function("curve_3pts_gns32", |b| {
        b.iter(|| {
            tradeoff_curve(&g, 0, &[0, 300, u64::MAX], 0)
                .expect("curve runs")
                .len()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_adversary_game,
    bench_counting,
    bench_tradeoff_point
);
criterion_main!(benches);
