//! T3/T4 runtime benches: light-tree construction and Scheme B execution,
//! against the flooding baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oraclesize_core::broadcast::{LightTreeOracle, SchemeB};
use oraclesize_core::execute;
use oraclesize_core::oracle::EmptyOracle;
use oraclesize_graph::{families, spanning};
use oraclesize_sim::protocol::FloodOnce;
use oraclesize_sim::SimConfig;
use std::time::Duration;

fn bench_light_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("light_tree_build");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for k in [6u32, 8, 10] {
        let n = 1usize << k;
        let g = families::complete_rotational(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| {
                let t = spanning::light_tree(g, 0);
                assert!(t.contribution(g) <= 4 * n as u64);
                t
            });
        });
    }
    group.finish();
}

fn bench_scheme_b_vs_flooding(c: &mut Criterion) {
    let mut group = c.benchmark_group("broadcast_run");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for k in [6u32, 8] {
        let n = 1usize << k;
        let g = families::complete_rotational(n);
        group.bench_with_input(BenchmarkId::new("scheme_b", n), &g, |b, g| {
            b.iter(|| {
                execute(g, 0, &LightTreeOracle, &SchemeB, &SimConfig::default())
                    .expect("broadcast runs")
                    .outcome
                    .metrics
                    .messages
            });
        });
        group.bench_with_input(BenchmarkId::new("flooding", n), &g, |b, g| {
            b.iter(|| {
                execute(g, 0, &EmptyOracle, &FloodOnce, &SimConfig::default())
                    .expect("flooding runs")
                    .outcome
                    .metrics
                    .messages
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_light_tree, bench_scheme_b_vs_flooding);
criterion_main!(benches);
