//! Shared experiment plumbing: sweeps, seeds, and report assembly.

use oraclesize_graph::families::Family;

/// The master seed every experiment derives from; recorded in
/// EXPERIMENTS.md so runs are reproducible.
pub const MASTER_SEED: u64 = 2006;

/// The graph-size sweep used by the size/message experiments
/// (`2^k` for `k = 4..=max_pow`).
pub fn size_sweep(max_pow: u32) -> Vec<usize> {
    (4..=max_pow).map(|k| 1usize << k).collect()
}

/// The family subset used for dense sweeps (keeps the harness fast while
/// covering sparse, dense, tree-like and adversarial shapes).
pub const SWEEP_FAMILIES: [Family; 5] = [
    Family::Complete,
    Family::Hypercube,
    Family::RandomSparse,
    Family::Lollipop,
    Family::RandomTree,
];

/// A rendered experiment report: heading, prose, and one or more tables.
#[derive(Debug, Clone, Default)]
pub struct Report {
    sections: Vec<String>,
}

impl Report {
    /// An empty report with a Markdown heading.
    pub fn new(title: &str) -> Self {
        Report {
            sections: vec![format!("## {title}\n")],
        }
    }

    /// Appends a paragraph.
    pub fn para(&mut self, text: &str) -> &mut Self {
        self.sections.push(format!("{text}\n"));
        self
    }

    /// Appends a rendered table (Markdown or CSV fenced block).
    pub fn block(&mut self, body: &str) -> &mut Self {
        self.sections.push(body.to_string());
        self
    }

    /// Appends a CSV block fenced for Markdown.
    pub fn csv(&mut self, body: &str) -> &mut Self {
        self.sections.push(format!("```csv\n{body}```\n"));
        self
    }

    /// Renders the report.
    pub fn render(&self) -> String {
        self.sections.join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_sweep_is_powers_of_two() {
        assert_eq!(size_sweep(6), vec![16, 32, 64]);
    }

    #[test]
    fn report_renders_in_order() {
        let mut r = Report::new("T0");
        r.para("hello").block("| a |\n");
        let s = r.render();
        assert!(s.starts_with("## T0"));
        assert!(s.find("hello").unwrap() < s.find("| a |").unwrap());
    }
}
