//! One function per experiment; each returns a rendered Markdown report.
//!
//! T10 and T20 are *grid experiments*: they declare their cells up front
//! (see [`crate::grid`]) and dispatch the whole matrix to the runtime
//! pool, so `--threads N` parallelizes them without changing a byte of
//! output.

use std::collections::BTreeSet;

use oraclesize_analysis::fit::{best_model, fit_model, Model};
use oraclesize_analysis::table::{fmt_num, Table};
use oraclesize_core::baselines::{FullMapOracle, MapWakeup};
use oraclesize_core::broadcast::{scheme_b_message_bound, LightTreeOracle, SchemeB};
use oraclesize_core::execute;
use oraclesize_core::oracle::EmptyOracle;
use oraclesize_core::wakeup::{SpanningTreeOracle, TreeWakeup};
use oraclesize_graph::families::{self, Family};
use oraclesize_graph::gadgets;
use oraclesize_graph::spanning::TreeAlgorithm;
use oraclesize_lowerbound::adversary::{all_ordered_instances, play, ExplicitAdversary};
use oraclesize_lowerbound::counting::{
    broadcast_bound, wakeup_bound, wakeup_bound_subdivisions_approx, wakeup_threshold,
};
use oraclesize_lowerbound::discovery::{
    all_edges, AdaptiveNeighborStrategy, DiscoveryStrategy, RandomStrategy, SequentialStrategy,
};
use oraclesize_lowerbound::truncation::tradeoff_curve;
use oraclesize_runtime::spec::to_ppm;
use oraclesize_runtime::{AdviceSpec, CellSpec, FaultSpec, InstanceSpec, SchedulerSpec, SweepSpec};
use oraclesize_sim::protocol::FloodOnce;
use oraclesize_sim::{advice_size, Oracle, SchedulerKind, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::grid::{emit_json, CellGrid, ExpOptions};
use crate::harness::{size_sweep, Report, MASTER_SEED, SWEEP_FAMILIES};

/// Experiment ids in canonical order.
pub const ALL_IDS: [&str; 24] = [
    "t1", "t2", "t3", "t4", "t5", "t6", "t7", "t8", "t9", "t10", "t11", "t12", "t13", "t14", "t15",
    "t16", "t17", "t18", "t19", "t20", "f1", "f2", "f3", "scale",
];

/// Dispatches an experiment by id.
///
/// # Errors
///
/// Propagates artifact-emission failures (unwritable `--json-dir`) and
/// interrupted sweeps from the grid experiments.
///
/// # Panics
///
/// Panics on an unknown id (callers validate against [`ALL_IDS`]).
pub fn run_experiment(id: &str, opts: &ExpOptions) -> Result<String, String> {
    let large = opts.large;
    match id {
        "t1" => Ok(t1_wakeup_oracle_size(large)),
        "t2" => Ok(t2_wakeup_messages(large)),
        "t3" => Ok(t3_tree_contributions(large)),
        "t4" => Ok(t4_broadcast_bounds(large)),
        "t5" => Ok(t5_adversary_games()),
        "t6" => Ok(t6_starved_wakeup(large)),
        "t7" => Ok(t7_wakeup_counting(large)),
        "t8" => Ok(t8_broadcast_gadgets(large)),
        "t9" => Ok(t9_threshold_remark()),
        "t10" => t10_robustness_matrix(opts),
        "t11" => Ok(t11_encoding_ablation()),
        "t12" => Ok(t12_gossip()),
        "t13" => Ok(t13_neighborhood_pricing()),
        "t14" => Ok(t14_exploration()),
        "t15" => Ok(t15_construction()),
        "t16" => Ok(t16_time_knowledge()),
        "t17" => Ok(t17_port_sensitivity()),
        "t18" => Ok(t18_leader_election()),
        "t19" => Ok(t19_spanner_tradeoff()),
        "t20" => t20_fault_robustness(opts),
        "f1" => Ok(f1_size_series(large)),
        "f2" => Ok(f2_message_series(large)),
        "f3" => Ok(f3_budget_curve(large)),
        "scale" => scale_curve(opts),
        other => panic!("unknown experiment id {other:?}"),
    }
}

fn rng_for(tag: u64) -> StdRng {
    StdRng::seed_from_u64(MASTER_SEED ^ tag)
}

/// T1 — Theorem 2.1 size bound: wakeup oracle bits vs `n`, with fits.
pub fn t1_wakeup_oracle_size(large: bool) -> String {
    let mut report = Report::new("T1 — wakeup oracle size is Θ(n log n) (Theorem 2.1)");
    let sweep = size_sweep(if large { 12 } else { 10 });
    let mut table = Table::new(["family", "n", "oracle bits", "bits/(n·log2 n)"]);
    let mut rng = rng_for(1);
    for fam in SWEEP_FAMILIES {
        let mut ns = Vec::new();
        let mut bits = Vec::new();
        for &n in &sweep {
            let g = fam.build(n, &mut rng);
            let nodes = g.num_nodes();
            let size = advice_size(&SpanningTreeOracle::default().advise(&g, 0));
            table.row([
                fam.name().to_string(),
                nodes.to_string(),
                size.to_string(),
                format!(
                    "{:.3}",
                    size as f64 / (nodes as f64 * (nodes as f64).log2())
                ),
            ]);
            ns.push(nodes as f64);
            bits.push(size as f64);
        }
        let ranked = best_model(&ns, &bits);
        report.para(&format!(
            "**{}**: best fit {} (R² = {:.6}); paper predicts `n log n + o(n log n)`.",
            fam.name(),
            ranked[0].model,
            ranked[0].r_squared
        ));
    }
    report.block(&table.to_markdown());
    report.render()
}

/// T2 — Theorem 2.1 message bound: wakeup uses exactly `n − 1` messages.
pub fn t2_wakeup_messages(large: bool) -> String {
    let mut report = Report::new("T2 — wakeup message complexity is exactly n − 1 (Theorem 2.1)");
    let sweep = size_sweep(if large { 11 } else { 9 });
    let mut table = Table::new(["family", "n", "sync msgs", "async msgs", "n − 1", "exact?"]);
    let mut rng = rng_for(2);
    let mut all_exact = true;
    for fam in SWEEP_FAMILIES {
        for &n in &sweep {
            let g = fam.build(n, &mut rng);
            let nodes = g.num_nodes();
            let sync = execute(
                &g,
                0,
                &SpanningTreeOracle::default(),
                &TreeWakeup,
                &SimConfig::wakeup(),
            )
            .expect("wakeup runs");
            let async_cfg = SimConfig::wakeup().with_scheduler(SchedulerKind::Random { seed: 7 });
            let asynchronous = execute(
                &g,
                0,
                &SpanningTreeOracle::default(),
                &TreeWakeup,
                &async_cfg,
            )
            .expect("wakeup runs");
            let exact = sync.outcome.metrics.messages == (nodes - 1) as u64
                && asynchronous.outcome.metrics.messages == (nodes - 1) as u64
                && sync.outcome.all_informed()
                && asynchronous.outcome.all_informed();
            all_exact &= exact;
            table.row([
                fam.name().to_string(),
                nodes.to_string(),
                sync.outcome.metrics.messages.to_string(),
                asynchronous.outcome.metrics.messages.to_string(),
                (nodes - 1).to_string(),
                if exact {
                    "yes".into()
                } else {
                    "NO".to_string()
                },
            ]);
        }
    }
    report.para(if all_exact {
        "Every run used exactly n − 1 messages and informed every node — the scheme's \
         message count is deterministic, as the paper's construction promises."
    } else {
        "**DEVIATION**: some run did not use exactly n − 1 messages."
    });
    report.block(&table.to_markdown());
    report.render()
}

/// T3 — Claim 3.1: light-tree contribution vs other spanning trees.
pub fn t3_tree_contributions(large: bool) -> String {
    let mut report = Report::new("T3 — light spanning tree contribution ≤ 4n (Claim 3.1)");
    let sweep = size_sweep(if large { 11 } else { 9 });
    let mut table = Table::new([
        "family",
        "n",
        "light",
        "4n",
        "bfs",
        "dfs",
        "min-weight",
        "random",
    ]);
    let mut rng = rng_for(3);
    let mut light_ok = true;
    for fam in SWEEP_FAMILIES {
        for &n in &sweep {
            let g = fam.build(n, &mut rng);
            let nodes = g.num_nodes();
            let contribution =
                |alg: TreeAlgorithm, rng: &mut StdRng| alg.build(&g, 0, rng).contribution(&g);
            let light = contribution(TreeAlgorithm::Light, &mut rng);
            light_ok &= light <= 4 * nodes as u64;
            table.row([
                fam.name().to_string(),
                nodes.to_string(),
                light.to_string(),
                (4 * nodes).to_string(),
                contribution(TreeAlgorithm::Bfs, &mut rng).to_string(),
                contribution(TreeAlgorithm::Dfs, &mut rng).to_string(),
                contribution(TreeAlgorithm::MinWeight, &mut rng).to_string(),
                contribution(TreeAlgorithm::Random, &mut rng).to_string(),
            ]);
        }
    }
    report.para(if light_ok {
        "The Claim 3.1 construction stayed within `4n` on every instance; BFS and \
         random trees exceed it on the dense families (complete, lollipop), which is \
         why the paper needs the phased construction rather than any classical tree."
    } else {
        "**DEVIATION**: the light tree exceeded 4n somewhere."
    });
    report.block(&table.to_markdown());
    report.render()
}

/// T4 — Theorem 3.1: broadcast oracle ≤ 8n bits, Scheme B ≤ 3(n−1) messages.
pub fn t4_broadcast_bounds(large: bool) -> String {
    let mut report = Report::new("T4 — broadcast: ≤ 8n oracle bits, linear messages (Theorem 3.1)");
    let sweep = size_sweep(if large { 11 } else { 9 });
    let mut table = Table::new([
        "family",
        "n",
        "oracle bits",
        "8n",
        "sync msgs",
        "async msgs",
        "3(n−1)",
    ]);
    let mut rng = rng_for(4);
    let mut ok = true;
    for fam in SWEEP_FAMILIES {
        for &n in &sweep {
            let g = fam.build(n, &mut rng);
            let nodes = g.num_nodes();
            let sync = execute(&g, 0, &LightTreeOracle, &SchemeB, &SimConfig::default())
                .expect("broadcast runs");
            let async_cfg = SimConfig::broadcast()
                .with_scheduler(SchedulerKind::Lifo)
                .with_anonymous(true);
            let asynchronous =
                execute(&g, 0, &LightTreeOracle, &SchemeB, &async_cfg).expect("broadcast runs");
            ok &= sync.oracle_bits <= 8 * nodes as u64
                && sync.outcome.metrics.messages <= scheme_b_message_bound(nodes)
                && asynchronous.outcome.metrics.messages <= scheme_b_message_bound(nodes)
                && sync.outcome.all_informed()
                && asynchronous.outcome.all_informed();
            table.row([
                fam.name().to_string(),
                nodes.to_string(),
                sync.oracle_bits.to_string(),
                (8 * nodes).to_string(),
                sync.outcome.metrics.messages.to_string(),
                asynchronous.outcome.metrics.messages.to_string(),
                scheme_b_message_bound(nodes).to_string(),
            ]);
        }
    }
    report.para(if ok {
        "Both bounds held on every instance, synchronously and under a LIFO \
         adversary with anonymous nodes — the §1.3 robustness claims."
    } else {
        "**DEVIATION**: a bound was violated."
    });
    report.block(&table.to_markdown());
    report.render()
}

/// T5 — Lemma 2.1: adversary games, measured probes vs the bound.
pub fn t5_adversary_games() -> String {
    let mut report = Report::new("T5 — edge-discovery adversary (Lemma 2.1)");
    let mut table = Table::new([
        "n",
        "|X|",
        "|Y|",
        "|I|",
        "bound",
        "sequential",
        "random",
        "adaptive",
    ]);
    let mut ok = true;
    for n in [5usize, 6, 7] {
        for x_size in [1usize, 2] {
            let y: BTreeSet<(usize, usize)> = if n == 7 {
                [(0, 1), (1, 2), (2, 3)].into_iter().collect()
            } else {
                BTreeSet::new()
            };
            let pool: Vec<(usize, usize)> = all_edges(n)
                .into_iter()
                .filter(|e| !y.contains(e))
                .collect();
            let family = all_ordered_instances(&pool, x_size);
            let mut results = Vec::new();
            let strategies: Vec<Box<dyn DiscoveryStrategy>> = vec![
                Box::new(SequentialStrategy),
                Box::new(RandomStrategy::new(MASTER_SEED)),
                Box::new(AdaptiveNeighborStrategy),
            ];
            let mut bound = 0.0;
            for mut s in strategies {
                let result = play(n, &y, ExplicitAdversary::new(family.clone()), s.as_mut());
                ok &= result.probes as f64 >= result.bound;
                bound = result.bound;
                results.push(result.probes);
            }
            table.row([
                n.to_string(),
                x_size.to_string(),
                y.len().to_string(),
                family.len().to_string(),
                format!("{:.2}", bound),
                results[0].to_string(),
                results[1].to_string(),
                results[2].to_string(),
            ]);
        }
    }
    report.para(if ok {
        "Every strategy paid at least `log2(|I|/|X|!)` probes against the majority \
         adversary; in fact the adversary forces nearly the whole edge pool, well \
         above the information-theoretic floor."
    } else {
        "**DEVIATION**: a strategy beat the Lemma 2.1 bound (impossible — bug)."
    });
    report.block(&table.to_markdown());

    // At-scale half: the closed-form adversary over the exact G_{n,S}
    // family (|X| = n over all C(n,2) edges), far beyond enumeration.
    use oraclesize_lowerbound::symbolic::play_symbolic;
    let mut sym = Table::new(["n", "pool", "|X|", "log2 |I|", "bound", "probes (seq)"]);
    let mut sym_ok = true;
    for n in [16usize, 32, 64, 128] {
        let pool = all_edges(n);
        let pool_len = pool.len();
        let result = play_symbolic(n, pool, &BTreeSet::new(), n, &mut SequentialStrategy);
        sym_ok &= result.probes as f64 >= result.bound;
        sym.row([
            n.to_string(),
            pool_len.to_string(),
            n.to_string(),
            fmt_num(result.log2_instances),
            fmt_num(result.bound),
            result.probes.to_string(),
        ]);
    }
    report.para(if sym_ok {
        "At scale (closed-form adversary over the exact Theorem 2.2 family, \
         |I| up to 2^1360 on K*_128): the adversary answers *regular* until the \
         pool is nearly exhausted, forcing ≈ C(n,2) probes — quadratically above \
         the Lemma 2.1 floor, which is what makes the wakeup lower bound bite."
    } else {
        "**DEVIATION**: symbolic game beat the bound."
    });
    report.block(&sym.to_markdown());
    report.render()
}

/// T6 — Theorem 2.2 constructively: starved advice blows up wakeup messages.
pub fn t6_starved_wakeup(large: bool) -> String {
    let mut report =
        Report::new("T6 — starving the wakeup oracle forces superlinear messages (Theorem 2.2)");
    let n = if large { 96 } else { 48 };
    let mut rng = rng_for(6);
    let (g, _) = gadgets::random_subdivided_complete(n, n, &mut rng);
    let nodes = g.num_nodes();
    let full = advice_size(&SpanningTreeOracle::default().advise(&g, 0));
    let budgets: Vec<u64> = (0..=8).map(|i| full * i / 8).collect();
    let points = tradeoff_curve(&g, 0, &budgets, 0).expect("curve runs");
    let mut table = Table::new(["budget %", "bits", "messages", "messages/(n−1)"]);
    for p in &points {
        table.row([
            format!("{}", 100 * p.budget_bits / full.max(1)),
            p.oracle_bits.to_string(),
            p.metrics.messages.to_string(),
            format!("{:.1}", p.metrics.messages as f64 / (nodes - 1) as f64),
        ]);
    }
    report.para(&format!(
        "`G_{{{n},S}}` with {nodes} nodes, {} edges; full oracle {full} bits. \
         The message count interpolates from Θ(n²) at zero budget down to exactly \
         n − 1 at full budget — the trade-off Theorem 2.2 proves is unavoidable.",
        g.num_edges()
    ));
    report.block(&table.to_markdown());
    report.render()
}

/// T7 — Theorem 2.2 counting table: `P`, `Q` and the implied bound.
pub fn t7_wakeup_counting(large: bool) -> String {
    let mut report = Report::new("T7 — the P/Q pigeonhole of Theorem 2.2");
    let mut table = Table::new([
        "n",
        "α",
        "q bits",
        "log2 P",
        "log2 Q",
        "msg bound",
        "closed form",
    ]);
    let pows: Vec<u32> = if large {
        vec![13, 14, 15, 16, 17, 18]
    } else {
        vec![13, 14, 15, 16]
    };
    for &p in &pows {
        let n = 1u64 << p;
        for alpha in [0.1, 0.25, 0.4] {
            let b = wakeup_bound(n, alpha);
            table.row([
                format!("2^{p}"),
                format!("{alpha}"),
                fmt_num(b.q_bits),
                fmt_num(b.log2_p),
                fmt_num(b.log2_q),
                fmt_num(b.message_bound),
                fmt_num(oraclesize_lowerbound::counting::wakeup_bound_closed_form(
                    n, alpha,
                )),
            ]);
        }
    }
    report.para(
        "For α < 1/2 the bound turns positive once n clears the asymptotic onset \
         (≈ 2^13 at α = 0.1, ≈ 2^15 at α = 0.25) and then grows superlinearly — \
         o(n log n) advice cannot keep wakeup at O(n) messages. The closed form \
         `(1 − 2β) n log(n/2)` is the paper's large-n simplification.",
    );
    report.block(&table.to_markdown());
    report.render()
}

/// T8 — Theorem 3.2 / Claim 3.3: clique gadgets, empirical and counted.
pub fn t8_broadcast_gadgets(large: bool) -> String {
    let mut report = Report::new("T8 — o(n) advice cannot keep broadcast linear (Theorem 3.2)");

    // Empirical half: flooding vs Scheme B on G_{n,S,C}.
    let mut rng = rng_for(8);
    let mut table = Table::new(["n", "k", "nodes", "flood msgs", "scheme B msgs", "gap"]);
    let ks: &[usize] = if large { &[4, 8, 16] } else { &[4, 8] };
    for &k in ks {
        let n = 8 * k;
        let (g, _, _) = gadgets::random_clique_gadget(n, k, &mut rng);
        let flood =
            execute(&g, 0, &EmptyOracle, &FloodOnce, &SimConfig::default()).expect("flooding runs");
        let scheme = execute(&g, 0, &LightTreeOracle, &SchemeB, &SimConfig::default())
            .expect("scheme B runs");
        table.row([
            n.to_string(),
            k.to_string(),
            g.num_nodes().to_string(),
            flood.outcome.metrics.messages.to_string(),
            scheme.outcome.metrics.messages.to_string(),
            format!(
                "{:.1}x",
                flood.outcome.metrics.messages as f64
                    / scheme.outcome.metrics.messages.max(1) as f64
            ),
        ]);
    }
    report.para(
        "Empirical half: without advice the cliques must be flooded (the missing \
         edge f_i is invisible from outside), so the zero-advice cost grows with k \
         while the 8n-bit Scheme B stays linear — the gap the theorem formalizes.",
    );
    report.block(&table.to_markdown());

    // Counting half: Claim 3.3's numbers.
    let mut counting = Table::new([
        "n",
        "k",
        "k ≤ √log n?",
        "log2 P'",
        "log2 Q",
        "msg bound",
        "target n(k−1)/8",
    ]);
    for (n, k) in [(1u64 << 14, 4u64), (1 << 16, 4), (1 << 18, 4), (1 << 18, 8)] {
        let b = broadcast_bound(n, k);
        let cond = (k as f64) <= ((n as f64).log2()).sqrt();
        counting.row([
            format!("2^{}", (n as f64).log2() as u32),
            k.to_string(),
            if cond { "yes".into() } else { "no".to_string() },
            fmt_num(b.log2_p_prime),
            fmt_num(b.log2_q),
            fmt_num(b.message_bound),
            fmt_num(b.claim_target),
        ]);
    }
    report.para(
        "Counting half: with oracle size q = n/2k, the pigeonhole bound crosses the \
         Claim 3.3 target n(k−1)/8 exactly when k ≤ √(log n) — the claim's own \
         side condition, reproduced sharply by the exact computation.",
    );
    report.block(&counting.to_markdown());
    report.render()
}

/// T9 — the remark after Theorem 2.2: threshold `c/(c+1)`.
pub fn t9_threshold_remark() -> String {
    let mut report = Report::new("T9 — subdividing c·n edges lifts the threshold to c/(c+1)");
    let mut table = Table::new([
        "c",
        "threshold",
        "α = 0.45",
        "α = 0.6",
        "α = 0.7",
        "α = 0.85",
    ]);
    let n = (2.0f64).powi(400);
    for c in 1u64..=4 {
        let mut cells = vec![c.to_string(), format!("{:.3}", wakeup_threshold(c))];
        for alpha in [0.45, 0.6, 0.7, 0.85] {
            let b = wakeup_bound_subdivisions_approx(n, c, alpha);
            cells.push(if b > 0.0 {
                format!("+ ({:.1e})", b)
            } else {
                "0".to_string()
            });
        }
        table.row(cells);
    }
    report.para(
        "Asymptotic counting at n = 2^400 (the lower-order `n log log n` term in Q \
         delays the onset far past exactly-computable sizes): the bound is positive \
         exactly when α < c/(c+1), matching the remark — so the paper's \
         `n log n + o(n log n)` upper bound for wakeup is asymptotically optimal.",
    );
    report.block(&table.to_markdown());
    report.render()
}

/// The canonical job description behind [`t10_robustness_matrix`]: 16
/// cells of `(scheduler × anonymity × scheme)` over two instances that
/// share one random graph. The CI service-smoke job submits exactly this
/// spec to a sweep server and diffs the merged artifact against the
/// committed `BENCH_T10.json` bytes.
pub fn t10_spec() -> SweepSpec {
    let mut spec = SweepSpec::new("t10", MASTER_SEED);
    for oracle in ["spanning-tree", "light-tree"] {
        spec.instances.push(InstanceSpec {
            family: "random-connected".to_string(),
            n: 128,
            // The pre-spec harness drew the graph from `rng_for(10)`.
            seed: MASTER_SEED ^ 10,
            p_ppm: Some(to_ppm(0.08)),
            source: 0,
            oracle: oracle.to_string(),
        });
    }
    // Declare the matrix in the exact order the table prints its rows.
    for kind in SchedulerKind::sweep(MASTER_SEED) {
        for anonymous in [false, true] {
            for (scheme, instance, mode) in [
                ("tree-wakeup", 0u64, "wakeup"),
                ("scheme-b", 1, "broadcast"),
            ] {
                let seed = spec.cells.len() as u64;
                spec.cells.push(CellSpec {
                    label: format!("{scheme}/{}/anon={anonymous}", kind.name()),
                    instance,
                    scheme: scheme.to_string(),
                    retries: None,
                    mode: mode.to_string(),
                    scheduler: Some(SchedulerSpec::of(kind)),
                    anonymous,
                    max_message_bits: Some(0),
                    quiescence_polls: None,
                    seed,
                    faults: FaultSpec::default(),
                });
            }
        }
    }
    spec
}

/// T10 — §1.3 robustness matrix as a declarative grid: 16 cells of
/// `(scheduler × anonymity × scheme)` over two `Arc`-shared instances,
/// dispatched to the runtime pool in one batch.
pub fn t10_robustness_matrix(opts: &ExpOptions) -> Result<String, String> {
    let mut report =
        Report::new("T10 — upper bounds hold async, anonymous, bounded messages (§1.3)");
    let grid = CellGrid::from_spec(&t10_spec())?;
    let mut meta = Vec::new();
    for kind in SchedulerKind::sweep(MASTER_SEED) {
        for anonymous in [false, true] {
            meta.push(("tree-wakeup", kind, anonymous));
            meta.push(("scheme-b", kind, anonymous));
        }
    }
    let sweep = grid.dispatch_supervised(opts, "t10");
    if sweep.interrupted {
        return Err(format!(
            "t10 interrupted mid-sweep; resume from the journal to finish ({})",
            sweep.summary()
        ));
    }
    let reports = sweep.reports();
    emit_json(opts, "t10", grid.to_json(&reports))?;

    let mut table = Table::new([
        "scheme",
        "scheduler",
        "anonymous",
        "completed",
        "messages",
        "max payload bits",
    ]);
    let mut ok = true;
    for ((scheme, kind, anonymous), r) in meta.iter().zip(&reports) {
        let out = r.outcome().expect("t10 cells run");
        ok &= out.completed
            && match *scheme {
                "tree-wakeup" => out.metrics.messages == 127,
                _ => out.metrics.messages <= scheme_b_message_bound(128),
            };
        table.row([
            scheme.to_string(),
            kind.name().to_string(),
            anonymous.to_string(),
            out.completed.to_string(),
            out.metrics.messages.to_string(),
            out.metrics.max_message_bits.to_string(),
        ]);
    }
    report.para(if ok {
        "All 16 configurations completed within their message bounds using 0-bit \
         payloads — both upper bounds are fully asynchronous, anonymous, and \
         bounded-message, as §1.3 claims."
    } else {
        "**DEVIATION**: a configuration failed."
    });
    report.block(&table.to_markdown());
    for warning in &sweep.warnings {
        report.para(&format!("_warning: {warning}_"));
    }
    report.para(&format!("_{}_", sweep.summary()));
    Ok(report.render())
}

/// T11 — encoding ablation: the advice codecs compared.
pub fn t11_encoding_ablation() -> String {
    use oraclesize_bits::codec::{AnyCodec, Codec};
    use oraclesize_bits::lists::encode_port_list;
    use oraclesize_bits::BitString;
    use oraclesize_graph::spanning::light_tree;

    let mut report = Report::new("T11 — advice encoding ablation");
    let mut rng = rng_for(11);
    let mut table = Table::new([
        "family",
        "n",
        "paper port-list",
        "gamma ports",
        "delta ports",
        "paper weights (2Σ#2)",
        "gamma weights",
        "unary weights",
    ]);
    for fam in [Family::Complete, Family::RandomSparse, Family::Lollipop] {
        for n in [64usize, 256] {
            let g = fam.build(n, &mut rng);
            let nodes = g.num_nodes();
            // Wakeup side: child-port lists under each codec.
            let tree = oraclesize_graph::spanning::bfs_tree(&g, 0);
            let mut paper_ports = 0usize;
            let mut gamma_ports = 0usize;
            let mut delta_ports = 0usize;
            for v in 0..nodes {
                let ports: Vec<u64> = tree.children(v).iter().map(|&(_, p)| p as u64).collect();
                paper_ports += encode_port_list(&ports, nodes as u64).len();
                for &p in &ports {
                    gamma_ports += AnyCodec::EliasGamma.encoded_len(p);
                    delta_ports += AnyCodec::EliasDelta.encoded_len(p);
                }
            }
            // Broadcast side: light-tree weights under each codec.
            let light = light_tree(&g, 0);
            let weights: Vec<u64> = light.edges(&g).map(|e| e.weight()).collect();
            let len_with = |codec: AnyCodec| -> usize {
                let mut s = BitString::new();
                for &w in &weights {
                    codec.encode(w, &mut s);
                }
                s.len()
            };
            table.row([
                fam.name().to_string(),
                nodes.to_string(),
                paper_ports.to_string(),
                gamma_ports.to_string(),
                delta_ports.to_string(),
                len_with(AnyCodec::ContinuationPairs).to_string(),
                len_with(AnyCodec::EliasGamma).to_string(),
                len_with(AnyCodec::Unary).to_string(),
            ]);
        }
    }
    report.para(
        "The paper's doubled-header port list pays one ⌈log n⌉ per child plus an \
         O(log log n) header — close to gamma coding on dense trees. For weights, \
         the 2·#2(w) continuation-pair code is within 2x of gamma and the paper \
         prefers it for its exactly-analyzable size; unary is the degenerate case.",
    );
    report.block(&table.to_markdown());
    report.render()
}

/// T12 — gossip (the paper's third named task): 2(n−1) messages from an
/// O(n log n) oracle.
pub fn t12_gossip() -> String {
    use oraclesize_core::gossip::{
        decode_gossip_output, gossip_message_bound, GossipOracle, TreeGossip,
    };
    let mut report = Report::new("T12 — gossip with tree advice (§1.2's third task)");
    let mut rng = rng_for(12);
    let mut table = Table::new([
        "family",
        "n",
        "oracle bits",
        "messages",
        "2(n−1)",
        "payload bits",
        "complete?",
    ]);
    let mut ok = true;
    for fam in SWEEP_FAMILIES {
        for n in [32usize, 128] {
            let g = fam.build(n, &mut rng);
            let nodes = g.num_nodes();
            let run = execute(
                &g,
                0,
                &GossipOracle::default(),
                &TreeGossip,
                &SimConfig::default(),
            )
            .expect("gossip runs");
            let complete = run.outcome.outputs.iter().all(|o| {
                o.as_ref()
                    .and_then(decode_gossip_output)
                    .is_some_and(|set| set.len() == nodes)
            });
            ok &= complete && run.outcome.metrics.messages == gossip_message_bound(nodes);
            table.row([
                fam.name().to_string(),
                nodes.to_string(),
                run.oracle_bits.to_string(),
                run.outcome.metrics.messages.to_string(),
                gossip_message_bound(nodes).to_string(),
                run.outcome.metrics.payload_bits.to_string(),
                complete.to_string(),
            ]);
        }
    }
    report.para(if ok {
        "Convergecast + downcast over the advice tree: exactly 2(n−1) messages and \
         every node ends knowing all n values. Message *payloads* grow along the \
         tree (the payload-bits column) — gossip's intrinsic extra cost over \
         broadcast, orthogonal to the oracle-size measure."
    } else {
        "**DEVIATION**: a gossip run failed."
    });
    report.block(&table.to_markdown());
    report.render()
}

/// T13 — pricing the traditional radius-ρ knowledge assumption in bits.
pub fn t13_neighborhood_pricing() -> String {
    use oraclesize_core::neighborhood::NeighborhoodOracle;
    let mut report = Report::new("T13 — what radius-ρ knowledge costs in bits (§1.1 motivation)");
    let mut rng = rng_for(13);
    let mut table = Table::new([
        "family",
        "n",
        "ρ=1",
        "ρ=2",
        "ρ=3",
        "tree oracle",
        "light-tree oracle",
    ]);
    for fam in [Family::Grid, Family::RandomSparse, Family::Complete] {
        for n in [64usize, 144] {
            let g = fam.build(n, &mut rng);
            let mut cells = vec![fam.name().to_string(), g.num_nodes().to_string()];
            for rho in 1..=3 {
                cells.push(advice_size(&NeighborhoodOracle::new(rho).advise(&g, 0)).to_string());
            }
            cells.push(advice_size(&SpanningTreeOracle::default().advise(&g, 0)).to_string());
            cells.push(advice_size(&LightTreeOracle.advise(&g, 0)).to_string());
            table.row(cells);
        }
    }
    report.para(
        "The oracle framework makes the traditional \"know your radius-ρ \
         neighborhood\" assumption comparable to task-specific advice: even ρ = 1 \
         costs orders of magnitude more bits than the Θ(n log n) wakeup oracle on \
         dense graphs, and ρ = 2 on sparse ones — the quantitative point of the \
         paper's introduction.",
    );
    report.block(&table.to_markdown());
    report.render()
}

/// T14 — exploration with an oracle (the conclusion's conjecture, realized).
pub fn t14_exploration() -> String {
    use oraclesize_explore::agent::{walk, WalkConfig};
    use oraclesize_explore::oracle::{tour_advice, tour_advice_bits};
    use oraclesize_explore::strategies::{DfsBacktrack, GuidedTour, RandomWalk};

    let mut report = Report::new("T14 — exploration by a mobile agent with advice (Conclusion §4)");
    let mut rng = rng_for(14);
    let mut table = Table::new([
        "family",
        "n",
        "m",
        "advice bits",
        "tour moves",
        "2(n−1)",
        "dfs moves",
        "2m",
        "random-walk cover",
    ]);
    let mut ok = true;
    for fam in SWEEP_FAMILIES {
        let g = fam.build(48, &mut rng);
        let (nodes, edges) = (g.num_nodes(), g.num_edges());
        let advice = tour_advice(&g, 0);
        let empty = oraclesize_sim::testkit::no_advice(nodes);
        let tour = walk(
            &g,
            0,
            &advice,
            &mut GuidedTour::new(),
            &WalkConfig::default(),
        );
        let dfs = walk(
            &g,
            0,
            &empty,
            &mut DfsBacktrack::new(),
            &WalkConfig::default(),
        );
        let rw = walk(
            &g,
            0,
            &empty,
            &mut RandomWalk::new(MASTER_SEED),
            &WalkConfig {
                max_moves: 5_000_000,
            },
        );
        ok &= tour.covered_all
            && tour.moves == 2 * (nodes as u64 - 1)
            && dfs.covered_all
            && dfs.moves <= 2 * edges as u64;
        table.row([
            fam.name().to_string(),
            nodes.to_string(),
            edges.to_string(),
            tour_advice_bits(&g, 0).to_string(),
            tour.moves.to_string(),
            (2 * (nodes - 1)).to_string(),
            dfs.moves.to_string(),
            (2 * edges).to_string(),
            rw.cover_moves.map_or("—".into(), |c| c.to_string()),
        ]);
    }
    report.para(if ok {
        "The tour oracle (O(n log Δ) bits) explores in exactly 2(n−1) moves; \
         advice-free DFS pays up to 2m, random walks far more — the move-complexity \
         mirror of the paper's knowledge/messages trade-off, confirming the \
         conclusion's conjecture is realizable for exploration."
    } else {
        "**DEVIATION**: an exploration bound failed."
    });
    report.block(&table.to_markdown());

    // Budgeted half: the moves-side analogue of T6 — with a twist.
    use oraclesize_explore::budget::exploration_tradeoff;
    let mut curve = Table::new(["graph", "budget %", "advice bits", "moves", "moves/2(n−1)"]);
    for (name, g) in [
        ("grid 8x8", families::grid(8, 8)),
        ("K_64", families::complete_rotational(64)),
    ] {
        let nodes = g.num_nodes() as f64;
        let full: u64 = tour_advice(&g, 0).iter().map(|s| s.len() as u64).sum();
        let budgets: Vec<u64> = (0..=4).map(|i| full * i / 4).collect();
        for p in exploration_tradeoff(&g, 0, &budgets) {
            curve.row([
                name.to_string(),
                format!("{}", 100 * p.budget_bits / full.max(1)),
                p.advice_bits.to_string(),
                p.result.moves.to_string(),
                format!("{:.1}", p.result.moves as f64 / (2.0 * (nodes - 1.0))),
            ]);
        }
    }
    report.para(
        "Budgeted tour advice (hybrid tour-then-DFS agent, always covering) exposes \
         an asymmetry with the broadcast trade-off of T6: partial tour advice is \
         essentially worthless — slightly *harmful*, since the toured prefix is \
         retraversed — because the tour is a chain and the DFS fallback re-pays the \
         full Θ(m) edge-discovery cost wherever it takes over. Wakeup advice \
         degrades gracefully (T6: each advised node saves its own flood); \
         exploration advice is all-or-nothing. The oracle-size lens makes this \
         structural difference between tasks quantitative.",
    );
    report.block(&curve.to_markdown());
    report.render()
}

/// T15 — construction tasks (§1.2's BFS tree / MST examples): advice moves
/// the whole cost out of communication.
pub fn t15_construction() -> String {
    use oraclesize_core::construction::{
        collect_parent_ports, verify_bfs_tree, verify_mst, BfsTreeOracle, DistributedBfs,
        MstOracle, ZeroMessageTree,
    };
    let mut report = Report::new("T15 — BFS-tree and MST construction with advice (§1.2)");
    let mut rng = rng_for(15);
    let mut table = Table::new(["family", "n", "task", "oracle bits", "messages", "verified"]);
    let mut ok = true;
    for fam in SWEEP_FAMILIES {
        let g = fam.build(64, &mut rng);
        let nodes = g.num_nodes();
        // BFS with advice: zero messages.
        let with = execute(
            &g,
            0,
            &BfsTreeOracle,
            &ZeroMessageTree,
            &SimConfig::default(),
        )
        .expect("runs");
        let with_ok = collect_parent_ports(&with.outcome.outputs)
            .map(|p| verify_bfs_tree(&g, 0, &p).is_ok())
            .unwrap_or(false);
        ok &= with_ok && with.outcome.metrics.messages == 0;
        table.row([
            fam.name().to_string(),
            nodes.to_string(),
            "bfs (oracle)".to_string(),
            with.oracle_bits.to_string(),
            with.outcome.metrics.messages.to_string(),
            with_ok.to_string(),
        ]);
        // BFS without advice: Θ(m) messages.
        let without =
            execute(&g, 0, &EmptyOracle, &DistributedBfs, &SimConfig::default()).expect("runs");
        let without_ok = collect_parent_ports(&without.outcome.outputs)
            .map(|p| verify_bfs_tree(&g, 0, &p).is_ok())
            .unwrap_or(false);
        ok &= without_ok;
        table.row([
            fam.name().to_string(),
            nodes.to_string(),
            "bfs (flooding)".to_string(),
            "0".to_string(),
            without.outcome.metrics.messages.to_string(),
            without_ok.to_string(),
        ]);
        // MST with advice.
        let mst =
            execute(&g, 0, &MstOracle, &ZeroMessageTree, &SimConfig::default()).expect("runs");
        let mst_ok = collect_parent_ports(&mst.outcome.outputs)
            .map(|p| verify_mst(&g, 0, &p).is_ok())
            .unwrap_or(false);
        ok &= mst_ok && mst.outcome.metrics.messages == 0;
        table.row([
            fam.name().to_string(),
            nodes.to_string(),
            "mst (oracle)".to_string(),
            mst.oracle_bits.to_string(),
            mst.outcome.metrics.messages.to_string(),
            mst_ok.to_string(),
        ]);
    }
    report.para(if ok {
        "With `O(n log Δ)` bits of advice both structures are built with **zero** \
         messages (independently verified); the advice-free BFS pays Θ(m). \
         Construction tasks are the extreme point of the knowledge/communication \
         exchange rate."
    } else {
        "**DEVIATION**: a construction failed verification."
    });
    report.block(&table.to_markdown());
    report.render()
}

/// T16 — the time/knowledge/messages triangle (Conclusion §4: "tradeoffs
/// between the amount of knowledge … and the efficiency (in terms of time
/// or message complexity)").
pub fn t16_time_knowledge() -> String {
    let mut report = Report::new("T16 — knowledge vs messages vs time (Conclusion §4)");
    let mut rng = rng_for(16);
    let mut table = Table::new(["family", "n", "scheme", "oracle bits", "messages", "rounds"]);
    for fam in [Family::Grid, Family::RandomSparse, Family::Complete] {
        let g = fam.build(100, &mut rng);
        let nodes = g.num_nodes();
        let mut push = |name: &str, bits: u64, msgs: u64, rounds: u64| {
            table.row([
                fam.name().to_string(),
                nodes.to_string(),
                name.to_string(),
                bits.to_string(),
                msgs.to_string(),
                rounds.to_string(),
            ]);
        };
        let flood = execute(&g, 0, &EmptyOracle, &FloodOnce, &SimConfig::default()).expect("runs");
        push(
            "flooding",
            flood.oracle_bits,
            flood.outcome.metrics.messages,
            flood.outcome.metrics.rounds,
        );
        let wakeup = execute(
            &g,
            0,
            &SpanningTreeOracle::default(),
            &TreeWakeup,
            &SimConfig::wakeup(),
        )
        .expect("runs");
        push(
            "tree-wakeup",
            wakeup.oracle_bits,
            wakeup.outcome.metrics.messages,
            wakeup.outcome.metrics.rounds,
        );
        let scheme_b =
            execute(&g, 0, &LightTreeOracle, &SchemeB, &SimConfig::default()).expect("runs");
        push(
            "scheme-b",
            scheme_b.oracle_bits,
            scheme_b.outcome.metrics.messages,
            scheme_b.outcome.metrics.rounds,
        );
    }
    report.para(
        "Flooding is time-optimal (eccentricity rounds) but message-maximal; the \
         tree schemes are message-optimal but pay tree-depth rounds — BFS trees \
         keep that near the eccentricity, while the light tree of Scheme B can be \
         deeper. Knowledge, messages and time form a genuine triangle, the \
         trade-off space the conclusion proposes to map with oracles.",
    );
    report.block(&table.to_markdown());
    report.render()
}

/// T17 — sensitivity of the oracle sizes to the (adversarial) port
/// numbering: the 4n/8n guarantees are worst-case over numberings.
pub fn t17_port_sensitivity() -> String {
    use oraclesize_analysis::stats::Summary;
    use oraclesize_graph::PortGraphBuilder;

    let mut report = Report::new("T17 — port-numbering sensitivity of the oracle sizes");
    let mut rng = rng_for(17);
    let n = 96;
    let base = families::random_connected(n, 0.3, &mut rng);
    let mut light_bits = Vec::new();
    let mut wakeup_bits = Vec::new();
    for _ in 0..30 {
        let mut b = PortGraphBuilder::new(n);
        for e in base.edges() {
            b.add_edge(e.u, e.v).expect("copy of a simple graph");
        }
        b.shuffle_ports(&mut rng);
        let g = b.build().expect("valid shuffle");
        light_bits.push(advice_size(&LightTreeOracle.advise(&g, 0)) as f64);
        wakeup_bits.push(advice_size(&SpanningTreeOracle::default().advise(&g, 0)) as f64);
    }
    let light = Summary::of(&light_bits);
    let wakeup = Summary::of(&wakeup_bits);
    let mut table = Table::new(["oracle", "min", "median", "max", "mean", "stddev", "bound"]);
    table.row([
        "light-tree (broadcast)".to_string(),
        fmt_num(light.min),
        fmt_num(light.median),
        fmt_num(light.max),
        fmt_num(light.mean),
        fmt_num(light.stddev),
        format!("8n = {}", 8 * n),
    ]);
    table.row([
        "spanning-tree (wakeup)".to_string(),
        fmt_num(wakeup.min),
        fmt_num(wakeup.median),
        fmt_num(wakeup.max),
        fmt_num(wakeup.mean),
        fmt_num(wakeup.stddev),
        "Θ(n log n)".to_string(),
    ]);
    report.para(&format!(
        "30 uniformly shuffled port numberings of one {n}-node graph: the \
         light-tree oracle never exceeds its 8n-bit guarantee (max {} vs bound {}), \
         and the wakeup oracle's size barely moves — the paper's bounds are \
         robust to the adversary's numbering, as worst-case bounds must be.",
        fmt_num(light.max),
        8 * n
    ));
    report.block(&table.to_markdown());
    report.render()
}

/// T18 — leader election (§1.1's first-named task): 1 bit + tree vs
/// FloodMax.
pub fn t18_leader_election() -> String {
    use oraclesize_core::election::{verify_election, AnnouncedLeader, ElectionOracle, FloodMax};
    let mut report = Report::new("T18 — leader election: a flag bit + tree vs FloodMax (§1.1)");
    let mut rng = rng_for(18);
    let mut table = Table::new([
        "family",
        "n",
        "m",
        "oracle bits",
        "announce msgs",
        "floodmax msgs",
        "gap",
    ]);
    let mut ok = true;
    for fam in SWEEP_FAMILIES {
        let g = fam.build(64, &mut rng);
        let (nodes, edges) = (g.num_nodes(), g.num_edges());
        let announced = execute(
            &g,
            0,
            &ElectionOracle,
            &AnnouncedLeader,
            &SimConfig::default(),
        )
        .expect("runs");
        let flood = execute(&g, 0, &EmptyOracle, &FloodMax, &SimConfig::default()).expect("runs");
        ok &= verify_election(&g, &announced.outcome.outputs, false).is_ok()
            && verify_election(&g, &flood.outcome.outputs, true).is_ok()
            && announced.outcome.metrics.messages == (nodes - 1) as u64;
        table.row([
            fam.name().to_string(),
            nodes.to_string(),
            edges.to_string(),
            announced.oracle_bits.to_string(),
            announced.outcome.metrics.messages.to_string(),
            flood.outcome.metrics.messages.to_string(),
            format!(
                "{:.1}x",
                flood.outcome.metrics.messages as f64
                    / announced.outcome.metrics.messages.max(1) as f64
            ),
        ]);
    }
    report.para(if ok {
        "The oracle's flag bit dissolves the symmetry-breaking problem entirely: \
         n − 1 messages announce the leader, while advice-free FloodMax pays up \
         to Θ(n·m). Election is the task where a *single bit per network* of \
         well-placed knowledge changes the complexity class of the solution."
    } else {
        "**DEVIATION**: an election failed verification."
    });
    report.block(&table.to_markdown());

    // The knowledge spectrum on rings: FloodMax vs Hirschberg–Sinclair vs
    // the oracle.
    use oraclesize_core::election::HirschbergSinclair;
    let mut ring = Table::new([
        "ring n",
        "floodmax msgs",
        "HS msgs",
        "oracle msgs",
        "oracle bits",
    ]);
    let mut ring_ok = true;
    for n in [32usize, 128, 512] {
        let g = families::cycle(n);
        let fm = execute(&g, 0, &EmptyOracle, &FloodMax, &SimConfig::default()).expect("runs");
        let hs = execute(
            &g,
            0,
            &EmptyOracle,
            &HirschbergSinclair,
            &SimConfig::default(),
        )
        .expect("runs");
        let oracle = execute(
            &g,
            0,
            &ElectionOracle,
            &AnnouncedLeader,
            &SimConfig::default(),
        )
        .expect("runs");
        ring_ok &= verify_election(&g, &hs.outcome.outputs, true).is_ok();
        ring.row([
            n.to_string(),
            fm.outcome.metrics.messages.to_string(),
            hs.outcome.metrics.messages.to_string(),
            oracle.outcome.metrics.messages.to_string(),
            oracle.oracle_bits.to_string(),
        ]);
    }
    report.para(if ring_ok {
        "On rings, the classic Hirschberg–Sinclair protocol sits exactly between \
         the two extremes: Θ(n²) with no knowledge and no structure assumptions, \
         Θ(n log n) with no knowledge but ring structure, n − 1 with Θ(n log n) \
         bits of advice — three rungs of the knowledge ladder."
    } else {
        "**DEVIATION**: HS failed on a ring."
    });
    report.block(&ring.to_markdown());
    report.render()
}

/// T19 — spanner construction (the conclusion's other conjecture): advice
/// size vs allowed stretch.
pub fn t19_spanner_tradeoff() -> String {
    use oraclesize_core::construction::ZeroMessageTree;
    use oraclesize_core::spanner::{collect_port_sets, verify_spanner, SpannerOracle};
    let mut report =
        Report::new("T19 — spanner construction: knowledge vs stretch (Conclusion §4)");
    let mut rng = rng_for(19);
    let mut table = Table::new([
        "family",
        "n",
        "m",
        "t",
        "spanner edges",
        "oracle bits",
        "verified",
    ]);
    let mut ok = true;
    for fam in [Family::Complete, Family::RandomDense, Family::Torus] {
        let g = fam.build(64, &mut rng);
        for t in [1usize, 3, 5] {
            let run = execute(
                &g,
                0,
                &SpannerOracle::new(t),
                &ZeroMessageTree,
                &SimConfig::default(),
            )
            .expect("runs");
            let verified = collect_port_sets(&run.outcome.outputs)
                .and_then(|sets| verify_spanner(&g, &sets, t).ok());
            ok &= verified.is_some() && run.outcome.metrics.messages == 0;
            table.row([
                fam.name().to_string(),
                g.num_nodes().to_string(),
                g.num_edges().to_string(),
                t.to_string(),
                verified.map_or("FAIL".into(), |e| e.to_string()),
                run.oracle_bits.to_string(),
                verified.is_some().to_string(),
            ]);
        }
    }
    report.para(if ok {
        "Zero messages build a verified t-spanner from per-node port advice; the \
         advice shrinks as the allowed stretch grows (t = 3 already cuts dense \
         graphs to near-linear edge counts) — the knowledge/quality trade-off the \
         conclusion conjectures oracles can chart."
    } else {
        "**DEVIATION**: a spanner failed verification."
    });
    report.block(&table.to_markdown());
    report.render()
}

/// T20's corruption rates, shared by the spec and the report table.
const T20_RATES: [f64; 6] = [0.0, 0.1, 0.25, 0.5, 0.75, 1.0];
/// T20's drop rates, shared by the spec and the report table.
const T20_DROP_RATES: [f64; 3] = [0.0, 0.1, 0.3];
/// T20's retry schemes (table label, retry budget).
const T20_RETRY_SCHEMES: [(&str, Option<u64>); 3] = [
    ("tree-wakeup", None),
    ("retry(2)", Some(2)),
    ("retry(8)", Some(8)),
];
/// T20's crash budgets.
const T20_BUDGETS: [usize; 3] = [0, 4, 12];
/// Trials per T20 matrix point.
const T20_TRIALS: u64 = 5;

/// The shared T20 graph (drawn from `rng_for(20)` in the pre-spec
/// harness) labeled by `oracle`.
fn t20_instance(oracle: &str) -> InstanceSpec {
    InstanceSpec {
        family: "random-connected".to_string(),
        n: 96,
        seed: MASTER_SEED ^ 20,
        p_ppm: Some(to_ppm(0.08)),
        source: 0,
        oracle: oracle.to_string(),
    }
}

/// The advice-corruption grid of [`t20_fault_robustness`] as a spec:
/// corruption rate × (brittle | robust) wakeup scheme × trial.
pub fn t20_corruption_spec() -> SweepSpec {
    let mut spec = SweepSpec::new("t20-corruption", MASTER_SEED);
    spec.instances.push(t20_instance("spanning-tree"));
    spec.instances.push(t20_instance("robust-wakeup"));
    for rate in T20_RATES {
        for robust in [false, true] {
            for trial in 0..T20_TRIALS {
                let seed = spec.cells.len() as u64;
                spec.cells.push(CellSpec {
                    label: format!(
                        "corrupt={rate:.2}/{}/trial={trial}",
                        if robust { "robust" } else { "brittle" }
                    ),
                    instance: robust as u64,
                    scheme: if robust {
                        "robust-tree-wakeup"
                    } else {
                        "tree-wakeup"
                    }
                    .to_string(),
                    retries: None,
                    mode: "wakeup".to_string(),
                    scheduler: None,
                    anonymous: false,
                    max_message_bits: None,
                    quiescence_polls: None,
                    seed,
                    faults: FaultSpec {
                        seed: MASTER_SEED ^ (trial + 1),
                        advice: AdviceSpec::Garbage {
                            prob_ppm: to_ppm(rate),
                            bits: 40,
                        },
                        ..FaultSpec::default()
                    },
                });
            }
        }
    }
    spec
}

/// The message-drop grid of [`t20_fault_robustness`] as a spec: drop
/// rate × retry budget × trial.
pub fn t20_drops_spec() -> SweepSpec {
    let mut spec = SweepSpec::new("t20-drops", MASTER_SEED);
    spec.instances.push(t20_instance("spanning-tree"));
    for rate in T20_DROP_RATES {
        for (label, retries) in T20_RETRY_SCHEMES {
            for trial in 0..T20_TRIALS {
                let seed = spec.cells.len() as u64;
                spec.cells.push(CellSpec {
                    label: format!("drop={rate:.2}/{label}/trial={trial}"),
                    instance: 0,
                    scheme: if retries.is_some() {
                        "retry-broadcast"
                    } else {
                        "tree-wakeup"
                    }
                    .to_string(),
                    retries,
                    mode: "broadcast".to_string(),
                    scheduler: None,
                    anonymous: false,
                    max_message_bits: None,
                    quiescence_polls: Some(16),
                    seed,
                    faults: FaultSpec {
                        seed: MASTER_SEED ^ (trial + 31),
                        drop_ppm: to_ppm(rate),
                        ..FaultSpec::default()
                    },
                });
            }
        }
    }
    spec
}

/// The crash-stop grid of [`t20_fault_robustness`] as a spec. The crash
/// sets come from the connectivity-preserving generator, so the spec
/// constructor builds the (small) T20 graph to draw them.
pub fn t20_crashes_spec() -> SweepSpec {
    let mut spec = SweepSpec::new("t20-crashes", MASTER_SEED);
    spec.instances.push(t20_instance("robust-wakeup"));
    let g = families::random_connected(96, 0.08, &mut rng_for(20));
    for budget in T20_BUDGETS {
        let crash_set =
            oraclesize_graph::connectivity_preserving_crash_set(&g, &[0], budget, MASTER_SEED);
        let seed = spec.cells.len() as u64;
        spec.cells.push(CellSpec {
            label: format!("crashes={budget}"),
            instance: 0,
            scheme: "robust-tree-wakeup".to_string(),
            retries: None,
            mode: "wakeup".to_string(),
            scheduler: None,
            anonymous: false,
            max_message_bits: None,
            quiescence_polls: None,
            seed,
            faults: FaultSpec {
                seed: MASTER_SEED,
                crashes: crash_set.iter().map(|&v| (v as u64, 0u64)).collect(),
                ..FaultSpec::default()
            },
        });
    }
    spec
}

/// T20 — fault injection as three declarative grids (advice corruption,
/// message drops, crash-stops), each dispatched to the runtime pool.
pub fn t20_fault_robustness(opts: &ExpOptions) -> Result<String, String> {
    let mut report = Report::new("T20 — fault injection: brittle vs self-healing schemes");
    let trials = T20_TRIALS;

    // Sweep 1: advice-corruption rate × wakeup scheme × trial. The brittle
    // scheme loses subtrees as soon as advice breaks; the robust scheme
    // detects the corruption and pays messages (flooding) instead of
    // coverage. The engine corrupts a private copy of the shared advice,
    // so one instance serves every cell.
    let corruption = CellGrid::from_spec(&t20_corruption_spec())?;
    let n = corruption.requests()[0].instance.graph.num_nodes() as u64;
    let corruption_sweep = corruption.dispatch_supervised(opts, "t20-corruption");
    if corruption_sweep.interrupted {
        return Err(format!(
            "t20 corruption sweep interrupted; resume from the journal to finish ({})",
            corruption_sweep.summary()
        ));
    }
    let corruption_reports = corruption_sweep.reports();

    let mut table = Table::new([
        "corruption",
        "scheme",
        "completed",
        "mean informed",
        "mean messages",
        "overhead vs n-1",
    ]);
    let mut healed_everywhere = true;
    let mut chunks = corruption_reports.chunks(trials as usize);
    for rate in T20_RATES {
        for robust in [false, true] {
            let chunk = chunks.next().expect("grid covers the matrix");
            let mut completed = 0u64;
            let mut informed_sum = 0u64;
            let mut message_sum = 0u64;
            for r in chunk {
                let out = r.outcome().expect("wakeup runs");
                completed += u64::from(out.completed);
                informed_sum += out.metrics.informed_nodes;
                message_sum += out.metrics.messages;
            }
            if robust {
                healed_everywhere &= completed == trials;
            }
            table.row([
                format!("{rate:.2}"),
                if robust {
                    "robust-tree-wakeup"
                } else {
                    "tree-wakeup"
                }
                .to_string(),
                format!("{completed}/{trials}"),
                fmt_num(informed_sum as f64 / trials as f64),
                fmt_num(message_sum as f64 / trials as f64),
                format!(
                    "{:.2}x",
                    message_sum as f64 / trials as f64 / (n - 1) as f64
                ),
            ]);
        }
    }
    report.para(if healed_everywhere {
        "Advice corruption strands tree-wakeup almost immediately, while \
         robust-tree-wakeup completes at every corruption rate — its checksum \
         turns bad advice into local flooding, trading messages (the overhead \
         column) for coverage."
    } else {
        "**DEVIATION**: robust-tree-wakeup failed to complete a trial."
    });
    report.block(&table.to_markdown());

    // Sweep 2: message-drop rate × retry budget × trial. Acks double the
    // fault-free cost; each retry multiplies the per-edge survival
    // probability.
    let drop_grid = CellGrid::from_spec(&t20_drops_spec())?;
    let drop_sweep = drop_grid.dispatch_supervised(opts, "t20-drops");
    if drop_sweep.interrupted {
        return Err(format!(
            "t20 drop sweep interrupted; resume from the journal to finish ({})",
            drop_sweep.summary()
        ));
    }
    let drop_reports = drop_sweep.reports();

    let mut drops = Table::new([
        "drop rate",
        "scheme",
        "completed",
        "mean informed",
        "mean messages",
    ]);
    let mut retries_recovered = true;
    let mut chunks = drop_reports.chunks(trials as usize);
    for rate in T20_DROP_RATES {
        for (label, retries) in T20_RETRY_SCHEMES {
            let chunk = chunks.next().expect("grid covers the matrix");
            let mut completed = 0u64;
            let mut informed_sum = 0u64;
            let mut message_sum = 0u64;
            for r in chunk {
                let out = r.outcome().expect("broadcast runs");
                completed += u64::from(out.completed);
                informed_sum += out.metrics.informed_nodes;
                message_sum += out.metrics.messages;
            }
            if retries == Some(8) {
                retries_recovered &= completed == trials;
            }
            drops.row([
                format!("{rate:.2}"),
                label.to_string(),
                format!("{completed}/{trials}"),
                fmt_num(informed_sum as f64 / trials as f64),
                fmt_num(message_sum as f64 / trials as f64),
            ]);
        }
    }
    report.para(if retries_recovered {
        "Retransmission restores completion under loss: retry(8) finishes every \
         trial at a 30% drop rate, paying the 2(n−1) ack baseline plus a modest \
         retry surcharge, while the brittle scheme strands most of the network."
    } else {
        "**DEVIATION**: retry(8) failed to complete a trial."
    });
    report.block(&drops.to_markdown());

    // Sweep 3: crash-stop failures drawn from the connectivity-preserving
    // generator — survivors stay connected, so the robust scheme should
    // inform every survivor.
    let crash_spec = t20_crashes_spec();
    let crash_sizes: Vec<usize> = crash_spec
        .cells
        .iter()
        .map(|c| c.faults.crashes.len())
        .collect();
    let crash_grid = CellGrid::from_spec(&crash_spec)?;
    let crash_sweep = crash_grid.dispatch_supervised(opts, "t20-crashes");
    if crash_sweep.interrupted {
        return Err(format!(
            "t20 crash sweep interrupted; resume from the journal to finish ({})",
            crash_sweep.summary()
        ));
    }
    let crash_reports = crash_sweep.reports();

    let mut crashes = Table::new(["crashes", "completed", "informed survivors", "messages"]);
    let mut survivors_informed = true;
    for ((budget, crashed), r) in T20_BUDGETS.iter().zip(&crash_sizes).zip(&crash_reports) {
        let out = r.outcome().expect("wakeup runs");
        // Dead relays are advice corruption in disguise: the tree routes
        // through them, so survivors behind a crashed parent stay asleep
        // unless some neighbor floods. Completion here is not guaranteed —
        // the run is classified, not asserted.
        let survivors = n as usize - out.crashed_nodes;
        let informed = survivors - out.uninformed;
        survivors_informed &= *budget == 0 || informed > 0;
        let classified = if out.completed {
            "Completed".to_string()
        } else {
            format!("Degraded {{ uninformed: {} }}", out.uninformed)
        };
        crashes.row([
            crashed.to_string(),
            classified,
            format!("{}/{}", informed, n as usize - crashed),
            out.metrics.messages.to_string(),
        ]);
    }
    report.para(if survivors_informed {
        "Crash-stop failures are harsher than corrupted advice: a dead relay \
         silences its whole subtree even though the survivors stay connected, \
         so completion degrades with the crash budget — the gap a \
         crash-tolerant oracle (advising around the crash set) would close."
    } else {
        "**DEVIATION**: no survivor was informed despite a connected survivor graph."
    });
    report.block(&crashes.to_markdown());

    emit_json(
        opts,
        "t20",
        oraclesize_runtime::Json::obj()
            .field("corruption", corruption.to_json(&corruption_reports))
            .field("drops", drop_grid.to_json(&drop_reports))
            .field("crashes", crash_grid.to_json(&crash_reports)),
    )?;
    for sweep in [&corruption_sweep, &drop_sweep, &crash_sweep] {
        for warning in &sweep.warnings {
            report.para(&format!("_warning: {warning}_"));
        }
    }
    report.para(&format!(
        "_corruption {}; drops {}; crashes {}_",
        corruption_sweep.summary(),
        drop_sweep.summary(),
        crash_sweep.summary()
    ));
    Ok(report.render())
}

/// F1 — CSV series: oracle sizes vs n, with fits (the separation figure).
pub fn f1_size_series(large: bool) -> String {
    let mut report = Report::new("F1 — oracle size vs n (series for the separation figure)");
    let mut rng = rng_for(101);
    let mut csv = Table::new(["nodes", "wakeup_bits", "broadcast_bits", "fullmap_bits"]);
    let mut ns = Vec::new();
    let mut wk = Vec::new();
    let mut bc = Vec::new();
    for k in 4..=(if large { 10 } else { 8 }) {
        let n = 1usize << k;
        let (g, _) = gadgets::random_subdivided_complete(n, n, &mut rng);
        let nodes = g.num_nodes();
        let w = advice_size(&SpanningTreeOracle::default().advise(&g, 0));
        let b = advice_size(&LightTreeOracle.advise(&g, 0));
        // The full map is Θ(n·m·log n) bits — gigabytes past ~1k nodes.
        let m = if nodes <= 1024 {
            advice_size(&FullMapOracle.advise(&g, 0)).to_string()
        } else {
            "-".to_string()
        };
        csv.row([nodes.to_string(), w.to_string(), b.to_string(), m]);
        ns.push(nodes as f64);
        wk.push(w as f64);
        bc.push(b as f64);
    }
    let wfit = &best_model(&ns, &wk)[0];
    let bfit = &best_model(&ns, &bc)[0];
    report.para(&format!(
        "wakeup: {} (R²={:.6}); broadcast: {} (R²={:.6}); full map grows like n·m·log n.",
        wfit.model, wfit.r_squared, bfit.model, bfit.r_squared
    ));
    report.csv(&csv.to_csv());
    report.render()
}

/// F2 — CSV series: message complexity vs n for all schemes.
pub fn f2_message_series(large: bool) -> String {
    let mut report = Report::new("F2 — message complexity vs n");
    let mut csv = Table::new([
        "nodes",
        "wakeup_msgs",
        "schemeb_msgs",
        "flood_msgs",
        "mapwakeup_msgs",
    ]);
    let mut ns = Vec::new();
    let mut floods = Vec::new();
    for k in 4..=(if large { 9 } else { 8 }) {
        let n = 1usize << k;
        let g = families::complete_rotational(n);
        let w = execute(
            &g,
            0,
            &SpanningTreeOracle::default(),
            &TreeWakeup,
            &SimConfig::wakeup(),
        )
        .expect("runs");
        let b = execute(&g, 0, &LightTreeOracle, &SchemeB, &SimConfig::default()).expect("runs");
        let f = execute(&g, 0, &EmptyOracle, &FloodOnce, &SimConfig::default()).expect("runs");
        let m = execute(&g, 0, &FullMapOracle, &MapWakeup, &SimConfig::wakeup()).expect("runs");
        csv.row([
            n.to_string(),
            w.outcome.metrics.messages.to_string(),
            b.outcome.metrics.messages.to_string(),
            f.outcome.metrics.messages.to_string(),
            m.outcome.metrics.messages.to_string(),
        ]);
        ns.push(n as f64);
        floods.push(f.outcome.metrics.messages as f64);
    }
    let quad = fit_model(Model::Quadratic, &ns, &floods);
    report.para(&format!(
        "Oracle-assisted schemes are linear (wakeup exactly n−1); flooding fits \
         O(n²) with R² = {:.6} — the cost knowledge removes.",
        quad.r_squared
    ));
    report.csv(&csv.to_csv());
    report.render()
}

/// F3 — CSV: the advice-budget trade-off curve.
pub fn f3_budget_curve(large: bool) -> String {
    let mut report = Report::new("F3 — knowledge vs message complexity trade-off");
    let n = if large { 96 } else { 64 };
    let mut rng = rng_for(103);
    let (g, _) = gadgets::random_subdivided_complete(n, n, &mut rng);
    let full = advice_size(&SpanningTreeOracle::default().advise(&g, 0));
    let budgets: Vec<u64> = (0..=16).map(|i| full * i / 16).collect();
    let points = tradeoff_curve(&g, 0, &budgets, 0).expect("curve runs");
    let mut csv = Table::new(["budget_bits", "given_bits", "messages"]);
    for p in &points {
        csv.row([
            p.budget_bits.to_string(),
            p.oracle_bits.to_string(),
            p.metrics.messages.to_string(),
        ]);
    }
    report.para(&format!(
        "G_{{{n},S}} ({} nodes): messages fall monotonically (modulo tree-shape \
         noise) from Θ(n²) to n−1 as the advice budget grows to {full} bits.",
        g.num_nodes()
    ));
    report.csv(&csv.to_csv());
    report.render()
}

/// The SCALE grid's clique orders: fully subdividing `K*_b` yields
/// `b + b(b−1)/2` nodes, so these hit `n ≈ 10³, 10⁴, 10⁵` — and, under
/// `--large`, the million-node cell `b = 1414` (`n = 1,000,405`).
fn scale_orders(large: bool) -> Vec<usize> {
    let mut orders = vec![45, 141, 447];
    if large {
        orders.push(1414);
    }
    orders
}

/// Node count of the fully subdivided clique `K*_b`: the `b` original
/// nodes plus one subdivision node per edge of `K_b`.
fn subdivided_clique_nodes(b: usize) -> usize {
    b + b * (b - 1) / 2
}

/// The SCALE curve as a spec: wakeup on fully subdivided cliques,
/// tree-advice vs no-advice flooding; `large` appends the million-node
/// order. Subdividing *every* edge of `K*_b` gives the densest `G_{n,S}`,
/// built deterministically (no RNG: the edge list is CSR iteration
/// order).
pub fn scale_spec(large: bool) -> SweepSpec {
    let mut spec = SweepSpec::new("scale", MASTER_SEED);
    for b in scale_orders(large) {
        let nodes = subdivided_clique_nodes(b);
        for (scheme, oracle) in [("tree-wakeup", "spanning-tree"), ("flood", "empty")] {
            let instance = spec.instances.len() as u64;
            spec.instances.push(InstanceSpec {
                family: "subdivided-clique".to_string(),
                n: b as u64,
                seed: 0,
                p_ppm: None,
                source: 0,
                oracle: oracle.to_string(),
            });
            let seed = spec.cells.len() as u64;
            spec.cells.push(CellSpec {
                label: format!("{scheme}/n={nodes}"),
                instance,
                scheme: scheme.to_string(),
                retries: None,
                mode: "wakeup".to_string(),
                scheduler: None,
                anonymous: false,
                max_message_bits: None,
                quiescence_polls: None,
                seed,
                faults: FaultSpec::default(),
            });
        }
    }
    spec
}

/// The decade a count falls in, rendered as a half-open interval. Steps
/// are bucketed this way as the *deterministic* wall-time proxy: wall
/// clock is deliberately excluded from every artifact (lint rule D002),
/// and engine steps are what the wall cost scales with.
fn decade_bucket(x: u64) -> String {
    if x == 0 {
        return "0".to_string();
    }
    let k = x.ilog10();
    format!("[1e{k}, 1e{})", k + 1)
}

/// SCALE — the million-node engine curve: wakeup on fully subdivided
/// cliques at `n ≈ 10³..10⁶`, tree-advice vs no-advice flooding, dispatched
/// through the supervised grid pipeline.
///
/// This is the tentpole benchmark for the flat-CSR graph + SoA node state +
/// arena message queues layout: the `n = 10⁶` cell (under `--large`) must
/// finish in seconds, with `n − 1` messages on the tree scheme and zero
/// per-delivery allocation on the fault-free path (`queue_allocs == 0`,
/// asserted by the engine tests).
///
/// # Errors
///
/// Propagates artifact-emission failures and interrupted sweeps.
pub fn scale_curve(opts: &ExpOptions) -> Result<String, String> {
    let mut report =
        Report::new("SCALE — engine scaling on subdivided cliques (Theorem 2.2 graphs)");
    let grid = CellGrid::from_spec(&scale_spec(opts.large))?;
    let mut meta = Vec::new();
    for b in scale_orders(opts.large) {
        let nodes = subdivided_clique_nodes(b);
        meta.push(("tree-wakeup", b, nodes));
        meta.push(("flood", b, nodes));
    }
    let sweep = grid.dispatch_supervised(opts, "scale");
    if sweep.interrupted {
        return Err(format!(
            "scale interrupted mid-sweep; resume from the journal to finish ({})",
            sweep.summary()
        ));
    }
    let reports = sweep.reports();
    emit_json(opts, "scale", grid.to_json(&reports))?;

    let mut table = Table::new([
        "scheme",
        "clique b",
        "n",
        "oracle bits",
        "messages",
        "steps",
        "steps bucket",
    ]);
    let mut ok = true;
    for ((scheme, b, nodes), r) in meta.iter().zip(&reports) {
        let out = r.outcome().expect("scale cells run");
        ok &= out.completed
            && match *scheme {
                "tree-wakeup" => out.metrics.messages == *nodes as u64 - 1,
                _ => out.metrics.messages >= *nodes as u64 - 1,
            };
        table.row([
            scheme.to_string(),
            b.to_string(),
            nodes.to_string(),
            out.oracle_bits.to_string(),
            out.metrics.messages.to_string(),
            out.metrics.steps.to_string(),
            decade_bucket(out.metrics.steps),
        ]);
    }
    report.para(if ok {
        "Every cell completed: tree advice holds the wakeup cost at exactly \
         `n − 1` messages while advice-free flooding pays `Θ(m)`, and both \
         curves ride the flat-CSR/arena engine with zero per-delivery \
         allocation. Steps are bucketed by decade as the deterministic \
         wall-time proxy (wall clock never enters artifacts)."
    } else {
        "**DEVIATION**: a scale cell failed to complete or broke its \
         message bound."
    });
    report.block(&table.to_markdown());
    for warning in &sweep.warnings {
        report.para(&format!("_warning: {warning}_"));
    }
    report.para(&format!("_{}_", sweep.summary()));
    Ok(report.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cheap_experiments_render_without_deviations() {
        // The full suite runs in release via the `experiments` binary and
        // is recorded in EXPERIMENTS.md; here we smoke-test the fast ones.
        for id in ["t5", "t9", "t12", "t20", "f3"] {
            let out = run_experiment(id, &ExpOptions::default()).expect("experiment runs");
            assert!(out.starts_with("## "), "{id}: missing heading");
            assert!(out.len() > 200, "{id}: suspiciously short report");
            assert!(!out.contains("DEVIATION"), "{id}: reported a deviation");
        }
    }

    #[test]
    fn grid_experiments_render_identically_across_thread_counts() {
        for id in ["t10", "t20", "scale"] {
            let serial = run_experiment(id, &ExpOptions::default());
            // 16 threads oversubscribes CI machines — that is the point:
            // workers genuinely interleave and steal, and the rendered
            // report (which excludes scheduling telemetry) must not care.
            for threads in [2, 8, 16] {
                for chunk in [None, Some(1)] {
                    let opts = ExpOptions {
                        threads,
                        chunk,
                        ..Default::default()
                    };
                    assert_eq!(
                        serial,
                        run_experiment(id, &opts),
                        "{id} at {threads} threads, chunk {chunk:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn interrupted_grid_experiments_refuse_to_publish() {
        let opts = ExpOptions {
            chaos: oraclesize_runtime::ChaosPlan::new().die_before(3),
            ..Default::default()
        };
        let err = run_experiment("t10", &opts).unwrap_err();
        assert!(err.contains("interrupted"), "{err}");
    }

    #[test]
    #[should_panic(expected = "unknown experiment")]
    fn unknown_id_panics() {
        let _ = run_experiment("t99", &ExpOptions::default());
    }
}
