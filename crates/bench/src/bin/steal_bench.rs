//! Scaling record for the work-stealing batch scheduler.
//!
//! Runs one large sweep (10⁵ cells by default) through
//! `Pool::run_chunked` at several thread counts, verifies the merged
//! reports are identical at every count (the determinism contract under
//! real stealing pressure), and writes a `BENCH_STEAL.json` record of
//! the measurement: elapsed time, speedup, steal/contention counters,
//! and the machine's core count.
//!
//! Unlike the `BENCH_T*.json` artifacts, this file is a *measurement*,
//! not a deterministic artifact — elapsed times vary run to run, so CI
//! never diffs it. The committed copy documents one honest run of the
//! machine that produced it (see the `cores` field before reading the
//! speedup column: on a single-core container, "8 threads" measures
//! scheduling overhead, not parallelism).
//!
//! ```text
//! steal_bench                       # 100 000 cells, threads 1/2/4/8
//! steal_bench --cells 5000         # smaller sweep (smoke tests)
//! steal_bench --out out/STEAL.json # write the record elsewhere
//! ```

use std::sync::Arc;

use oraclesize_core::oracle::EmptyOracle;
use oraclesize_graph::families;
use oraclesize_runtime::{run_cell_report, ChunkPlan, Json, Pool, RunRequest};
use oraclesize_sim::protocol::FloodOnce;
use oraclesize_sim::{Instance, SimConfig};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// A mixed-size request list: mostly tiny cells with a heavier cell
/// every 64th slot, so the cost-hint planner has real skew to work with
/// (cheap cells batch into shared chunks, heavy cells close theirs).
fn build_requests(cells: usize) -> Vec<RunRequest> {
    let sizes = [8usize, 12, 16, 24];
    let instances: Vec<Arc<Instance>> = sizes
        .iter()
        .map(|&n| Instance::build(Arc::new(families::cycle(n)), 0, &EmptyOracle))
        .collect();
    let heavy = Instance::build(Arc::new(families::cycle(96)), 0, &EmptyOracle);
    let protocol: Arc<dyn oraclesize_sim::protocol::Protocol + Send + Sync> = Arc::new(FloodOnce);
    (0..cells)
        .map(|cell| {
            let instance = if cell % 64 == 63 {
                Arc::clone(&heavy)
            } else {
                Arc::clone(&instances[cell % instances.len()])
            };
            RunRequest::new(instance, Arc::clone(&protocol), SimConfig::default())
        })
        .collect()
}

fn main() {
    let mut cells = 100_000usize;
    let mut out = String::from("BENCH_STEAL.json");
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--cells" => {
                let v = args.next().unwrap_or_else(|| {
                    eprintln!("--cells requires a value");
                    std::process::exit(2);
                });
                cells = v.parse().unwrap_or_else(|_| {
                    eprintln!("--cells expects a positive integer, got {v:?}");
                    std::process::exit(2);
                });
            }
            "--out" => {
                out = args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a value");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown flag {other:?}; usage: steal_bench [--cells N] [--out FILE]");
                std::process::exit(2);
            }
        }
    }

    let cores = std::thread::available_parallelism().map_or(0, |p| p.get());
    eprintln!("building {cells} cells ({cores} core(s) available)…");
    let requests = build_requests(cells);
    let costs: Vec<u64> = requests.iter().map(RunRequest::cost_hint).collect();

    // Untimed warm-up: the first dispatch pays page faults, allocator
    // growth, and cold instruction caches; without it the serial row
    // looks artificially slow and every speedup reads superlinear.
    let warmup = Pool::new(2).run(requests.len(), |i| run_cell_report(i, &requests[i]));
    drop(warmup);

    let mut baseline: Option<Vec<_>> = None;
    let mut serial_micros = 0u128;
    let mut rows = Vec::new();
    for threads in THREAD_COUNTS {
        let pool = Pool::new(threads);
        let plan = ChunkPlan::from_costs(&costs, threads);
        // lint:allow(D002): the wall clock is the *measurement* here —
        // this binary records throughput; the scheduler itself stays
        // clock-free.
        let started = std::time::Instant::now();
        let (reports, stats) = pool.run_chunked(&plan, |i| run_cell_report(i, &requests[i]));
        let micros = started.elapsed().as_micros();
        match &baseline {
            None => {
                serial_micros = micros.max(1);
                baseline = Some(reports);
            }
            Some(serial) => {
                // The record is worthless if parallel dispatch changed a
                // single report, so this check is load-bearing, not
                // decorative.
                assert!(
                    serial == &reports,
                    "reports diverged from the serial run at {threads} threads"
                );
            }
        }
        // Fixed-point milli-speedup keeps the JSON writer integer-only.
        let speedup_milli = (serial_micros * 1000) / micros.max(1);
        eprintln!(
            "threads {threads}: {:.3}s, speedup {:.2}x, {} steals, {} contended",
            micros as f64 / 1e6,
            speedup_milli as f64 / 1000.0,
            stats.steals,
            stats.contended
        );
        rows.push(
            Json::obj()
                .field("threads", threads)
                .field("chunks", stats.chunks)
                .field("elapsed_micros", micros as u64)
                .field("speedup_milli", speedup_milli as u64)
                .field("steals", stats.steals)
                .field("contended", stats.contended),
        );
    }

    let record = Json::obj()
        .field("experiment", "steal")
        .field("cells", cells)
        .field("cores", cores)
        .field("runs", rows);
    std::fs::write(&out, format!("{}\n", record.render())).unwrap_or_else(|e| {
        eprintln!("write {out}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out}");
}
