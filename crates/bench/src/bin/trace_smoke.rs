//! Emits the trace-smoke JSONL artifact: a fixed, fully-traced broadcast
//! grid (a T10-style scheduler × fault matrix on one hypercube instance)
//! rendered in cell order.
//!
//! Usage:
//!
//! ```text
//! trace_smoke --threads 1 --out trace-serial.jsonl
//! trace_smoke --threads 2 --out trace-pooled.jsonl
//! ```
//!
//! CI runs this at two thread counts and diffs the files byte-for-byte —
//! the executable half of the observability determinism contract
//! (`crates/runtime/tests/trace_determinism.rs` is the property-test
//! half).

use std::sync::Arc;

use oraclesize_bench::harness::MASTER_SEED;
use oraclesize_core::broadcast::{LightTreeOracle, SchemeB};
use oraclesize_graph::families;
use oraclesize_runtime::trace::render_jsonl;
use oraclesize_runtime::{run_batch, Pool, RunRequest};
use oraclesize_sim::{FaultPlan, Instance, SchedulerKind, SimConfig, TraceSpec};

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let threads: usize = flag_value(&args, "--threads")
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("--threads expects a positive integer, got {v:?}");
                std::process::exit(2);
            })
        })
        .unwrap_or(1);
    let out = flag_value(&args, "--out");

    let g = Arc::new(families::hypercube(5));
    let instance = Instance::build(g, 0, &LightTreeOracle);
    let protocol: Arc<dyn oraclesize_sim::Protocol + Send + Sync> = Arc::new(SchemeB);
    let requests: Vec<RunRequest> = (0..12)
        .map(|cell| {
            let seed = MASTER_SEED.wrapping_add(cell as u64);
            let config = SimConfig::broadcast()
                .with_scheduler(match cell % 3 {
                    0 => SchedulerKind::Fifo,
                    1 => SchedulerKind::Lifo,
                    _ => SchedulerKind::Random { seed },
                })
                .with_synchronous(cell % 2 == 0)
                .with_faults(if cell % 4 == 3 {
                    FaultPlan::message_faults(seed, 0.05, 0.0, 0.0)
                } else {
                    FaultPlan::default()
                })
                .with_quiescence_polls(16)
                .capture_trace(TraceSpec::Full);
            RunRequest::new(Arc::clone(&instance), Arc::clone(&protocol), config)
        })
        .collect();

    let reports = run_batch(&Pool::new(threads.max(1)), &requests);
    let mut jsonl = String::new();
    for report in &reports {
        match report.outcome() {
            Some(outcome) => jsonl.push_str(&render_jsonl(report.cell as u64, &outcome.trace)),
            None => {
                eprintln!("cell {} aborted: {:?}", report.cell, report.result);
                std::process::exit(1);
            }
        }
    }

    match out {
        Some(path) => {
            std::fs::write(&path, &jsonl).unwrap_or_else(|e| {
                eprintln!("cannot write {path:?}: {e}");
                std::process::exit(1);
            });
            eprintln!(
                "wrote {path} ({} lines, {} cells, threads = {threads})",
                jsonl.lines().count(),
                reports.len()
            );
        }
        None => print!("{jsonl}"),
    }
}
