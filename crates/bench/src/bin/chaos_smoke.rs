//! CI chaos drill: prove the crash/resume contract on a real experiment.
//!
//! The drill runs the T10 grid four ways and insists every path produces
//! the same `BENCH_T10.json` bytes as a clean serial run:
//!
//! 1. **kill + torn write + resume** — chaos kills the sweep mid-flight,
//!    the journal loses half of its final record (a torn write), and a
//!    `--resume` run must still converge to the clean artifact,
//! 2. **injected panic** — a cell panics on its first attempt and must
//!    recover as `Degraded` under a retry budget,
//! 3. **injected stall** — a cell stalls past the watchdog on its first
//!    attempt and must recover the same way.
//!
//! Usage: `chaos_smoke [scratch-dir]` (defaults to a temp directory).
//! Exits nonzero on the first divergence.

use std::path::{Path, PathBuf};

use oraclesize_bench::experiments::run_experiment;
use oraclesize_bench::grid::ExpOptions;
use oraclesize_runtime::chaos::tear_tail;
use oraclesize_runtime::ChaosPlan;

fn fail(msg: &str) -> ! {
    eprintln!("chaos-smoke: FAIL: {msg}");
    std::process::exit(1);
}

fn artifact(dir: &Path) -> Vec<u8> {
    let path = dir.join("BENCH_T10.json");
    std::fs::read(&path).unwrap_or_else(|e| fail(&format!("read {}: {e}", path.display())))
}

fn opts(scratch: &Path, tag: &str) -> ExpOptions {
    ExpOptions {
        threads: 2,
        json_dir: Some(scratch.join(tag)),
        ..Default::default()
    }
}

fn check(tag: &str, opts: &ExpOptions, clean: &[u8], want_in_report: &str) {
    let report = run_experiment("t10", opts)
        .unwrap_or_else(|e| fail(&format!("{tag}: t10 unexpectedly failed: {e}")));
    if !report.contains(want_in_report) {
        fail(&format!(
            "{tag}: report lacks {want_in_report:?}:\n{report}"
        ));
    }
    let dir = opts
        .json_dir
        .as_deref()
        .unwrap_or_else(|| fail("no json_dir"));
    if artifact(dir) != clean {
        fail(&format!(
            "{tag}: BENCH_T10.json diverged from the clean serial run"
        ));
    }
    println!("chaos-smoke: {tag}: artifact matches the clean run");
}

fn main() {
    let scratch: PathBuf = std::env::args().nth(1).map_or_else(
        || std::env::temp_dir().join(format!("oraclesize-chaos-smoke-{}", std::process::id())),
        PathBuf::from,
    );
    std::fs::create_dir_all(&scratch)
        .unwrap_or_else(|e| fail(&format!("create {}: {e}", scratch.display())));

    // The injected panics are caught and classified by the supervisor;
    // keep their default-hook backtraces out of the CI log. Anything
    // else still reports normally.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s.starts_with("chaos: injected panic"));
        if !injected {
            default_hook(info);
        }
    }));

    // Baseline: clean serial run, no supervision extras.
    let clean_opts = ExpOptions {
        json_dir: Some(scratch.join("clean")),
        ..Default::default()
    };
    run_experiment("t10", &clean_opts).unwrap_or_else(|e| fail(&format!("clean run failed: {e}")));
    let clean = artifact(&scratch.join("clean"));
    println!(
        "chaos-smoke: clean baseline captured ({} bytes)",
        clean.len()
    );

    // Drill 1: kill the sweep before cell 8, tear the journal tail, resume.
    let journal_dir = scratch.join("journal");
    let killed = ExpOptions {
        journal_dir: Some(journal_dir.clone()),
        chaos: ChaosPlan::new().die_before(8),
        ..opts(&scratch, "killed")
    };
    match run_experiment("t10", &killed) {
        Err(e) if e.contains("interrupted") => {
            println!("chaos-smoke: kill drill interrupted the sweep as expected")
        }
        Err(e) => fail(&format!("kill drill failed for the wrong reason: {e}")),
        Ok(_) => fail("kill drill: sweep ignored the injected crash"),
    }
    let left = tear_tail(&journal_dir.join("t10.journal"), 7)
        .unwrap_or_else(|e| fail(&format!("tear journal: {e}")));
    println!("chaos-smoke: tore 7 bytes off the journal tail ({left} bytes remain)");
    let resumed = ExpOptions {
        journal_dir: Some(journal_dir),
        resume: true,
        ..opts(&scratch, "resumed")
    };
    check("kill/tear/resume", &resumed, &clean, "resumed");

    // Drill 2: a cell panics once; one retry must absorb it.
    let panicky = ExpOptions {
        max_retries: 1,
        chaos: ChaosPlan::new().panic_at(3, 1),
        ..opts(&scratch, "panic")
    };
    check("panic/retry", &panicky, &clean, "degraded (1 retries)");

    // Drill 3: a cell stalls past the watchdog once; a retry recovers it.
    let stalled = ExpOptions {
        max_retries: 1,
        cell_timeout: Some(1 << 20),
        chaos: ChaosPlan::new().stall_at(5, 1),
        ..opts(&scratch, "stall")
    };
    check(
        "stall/watchdog/retry",
        &stalled,
        &clean,
        "degraded (1 retries)",
    );

    std::fs::remove_dir_all(&scratch).ok();
    println!("chaos-smoke: PASS — every failure path converged to the clean artifact");
}
