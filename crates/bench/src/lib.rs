//! The experiment harness: regenerates every table and figure of
//! EXPERIMENTS.md (the per-theorem experiment index defined in DESIGN.md §3).
//!
//! The paper is a theory paper with no numbered tables or figures; its
//! "evaluation" is the theorem set. Each experiment below regenerates the
//! measurable content of one theorem/claim/remark:
//!
//! | id | reproduces |
//! |----|------------|
//! | T1 | Thm 2.1 — wakeup oracle size is `Θ(n log n)` |
//! | T2 | Thm 2.1 — wakeup message complexity is exactly `n − 1` |
//! | T3 | Claim 3.1 — light-tree contribution `≤ 4n`, others exceed it |
//! | T4 | Thm 3.1 — broadcast oracle `≤ 8n` bits, Scheme B `≤ 3(n−1)` msgs |
//! | T5 | Lemma 2.1 — adversary forces `≥ log2(|I|/|X|!)` probes |
//! | T6 | Thm 2.2 — starved advice forces superlinear wakeup messages |
//! | T7 | Thm 2.2 — the `P/Q` pigeonhole table |
//! | T8 | Thm 3.2 / Claim 3.3 — clique gadgets, empirical + counting |
//! | T9 | Remark after Thm 2.2 — the `c/(c+1)` threshold |
//! | T10 | §1.3 — robustness matrix (async × anonymous × 0-bit messages) |
//! | T11 | encoding ablation (continuation-pairs vs Elias vs unary) |
//! | F1 | size-vs-n series with growth-model fits (CSV) |
//! | F2 | messages-vs-n series (CSV) |
//! | F3 | advice-budget trade-off curve (CSV) |
//!
//! Run `cargo run --release -p oraclesize-bench --bin experiments -- all`
//! to regenerate everything, or pass a list of ids (`t1 t7 f2`). Grid
//! experiments (T10, T20) honor `--threads N` (parallel dispatch through
//! `oraclesize-runtime`) and `--json-dir DIR` (deterministic
//! `BENCH_T*.json` artifacts); output is byte-identical at any thread
//! count.

#![warn(missing_docs)]

pub mod experiments;
pub mod grid;
pub mod harness;
