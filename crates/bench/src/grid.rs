//! Declarative experiment grids over the runtime pool.
//!
//! An experiment here is a *grid of cells*: each cell names one
//! `(instance, scheme, config)` combination, and the whole grid is handed
//! to [`oraclesize_runtime::run_batch`] in one call. The pool executes
//! cells on `--threads` workers while the grid keeps cell order — reports,
//! tables, and the emitted `BENCH_T*.json` artifacts are byte-identical at
//! any thread count (the runtime's determinism contract).

use std::path::PathBuf;
use std::sync::{Arc, Mutex, PoisonError};

use oraclesize_runtime::trace::stats_json;
use oraclesize_runtime::{
    drain, run_supervised_batch, Aggregate, ChaosPlan, Json, MetricsSink, Pool, RunReport,
    RunRequest, SchedStats, SuperviseConfig, SweepOptions, SweepRun,
};
use oraclesize_sim::TraceStats;

/// Options shared by every experiment invocation.
#[derive(Debug, Clone, Default)]
pub struct ExpOptions {
    /// Run the bigger (slower) sweeps.
    pub large: bool,
    /// Worker threads for grid dispatch (`0`/`1` ⇒ serial).
    pub threads: usize,
    /// Where to write `BENCH_<ID>.json` artifacts; `None` disables them.
    pub json_dir: Option<PathBuf>,
    /// Where checkpoint journals live (`<dir>/<tag>.journal`, one per
    /// grid); `None` disables checkpointing.
    pub journal_dir: Option<PathBuf>,
    /// Resume from existing journals instead of starting fresh.
    pub resume: bool,
    /// Retry budget for failed cells (see
    /// [`SuperviseConfig::max_retries`]).
    pub max_retries: u32,
    /// Per-cell watchdog step budget (see
    /// [`SuperviseConfig::cell_timeout`]).
    pub cell_timeout: Option<u64>,
    /// Failure injection for chaos drills; inert outside tests and the
    /// chaos-smoke harness.
    pub chaos: ChaosPlan,
    /// Fixed scheduler sub-task size (the `--chunk` override); `None`
    /// sizes chunks from the grid's cost hints. Granularity only — never
    /// results.
    pub chunk: Option<usize>,
    /// Merged scheduling telemetry for every grid dispatched under these
    /// options. Shared behind an `Arc` so the experiment driver can read
    /// the tally after `run_experiment` returns — the report string
    /// itself must stay thread-count-invariant, so the stats travel out
    /// of band and only binaries render them (as footers).
    pub stats: Arc<Mutex<SchedStats>>,
}

impl ExpOptions {
    /// Serial options with a size flag — what the pre-pool harness took.
    pub fn sized(large: bool) -> Self {
        ExpOptions {
            large,
            ..Default::default()
        }
    }

    /// The pool these options describe.
    pub fn pool(&self) -> Pool {
        Pool::new(self.threads.max(1))
    }

    /// The supervised-sweep options these options describe, with the
    /// journal (when a `journal_dir` is set) at `<dir>/<tag>.journal`.
    pub fn sweep_options(&self, tag: &str) -> SweepOptions {
        SweepOptions {
            supervise: SuperviseConfig {
                max_retries: self.max_retries,
                cell_timeout: self.cell_timeout,
                ..SuperviseConfig::default()
            },
            journal: self
                .journal_dir
                .as_ref()
                .map(|dir| dir.join(format!("{tag}.journal"))),
            resume: self.resume,
            seeds: None,
            chaos: self.chaos.clone(),
            chunk: self.chunk,
            // Cost hints belong to the grid being dispatched; the grid
            // fills them in at dispatch time.
            costs: None,
        }
    }

    /// Folds one dispatch's scheduling telemetry into the shared tally.
    pub fn record_stats(&self, stats: &SchedStats) {
        self.stats
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .merge(stats);
    }

    /// A snapshot of the scheduling telemetry accumulated so far.
    pub fn sched_stats(&self) -> SchedStats {
        self.stats
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

/// A labeled list of cells, built declaratively and dispatched in one
/// batch.
#[derive(Default)]
pub struct CellGrid {
    labels: Vec<String>,
    requests: Vec<RunRequest>,
    /// Per-cell scheduling cost hints, kept parallel to `requests` — the
    /// chunk planner batches cheap cells and isolates expensive ones.
    costs: Vec<u64>,
}

impl CellGrid {
    /// An empty grid.
    pub fn new() -> Self {
        CellGrid::default()
    }

    /// Appends one cell. The label is for the JSON artifact only; tables
    /// derive their columns from the same iteration that built the grid.
    /// The cell's scheduling cost hint comes from the request's instance
    /// size ([`RunRequest::cost_hint`]).
    pub fn cell(&mut self, label: impl Into<String>, request: RunRequest) {
        self.labels.push(label.into());
        self.costs.push(request.cost_hint());
        self.requests.push(request);
    }

    /// The per-cell cost hints, in cell order.
    pub fn costs(&self) -> &[u64] {
        &self.costs
    }

    /// Number of cells added so far.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// `true` when no cells were added.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Dispatches every cell across the options' pool, returning reports
    /// in cell order.
    ///
    /// Execution goes through the supervised path (panic isolation,
    /// retries, watchdog) without a journal; for checkpointed dispatch
    /// use [`CellGrid::dispatch_supervised`]. Reports are identical
    /// either way for deterministic cells.
    pub fn dispatch(&self, opts: &ExpOptions) -> Vec<RunReport> {
        let mut sweep_opts = opts.sweep_options("");
        sweep_opts.journal = None;
        sweep_opts.costs = Some(self.costs.clone());
        let run = run_supervised_batch(&opts.pool(), &self.requests, &sweep_opts);
        opts.record_stats(&run.sched);
        run.reports()
    }

    /// Dispatches with the full failure model: cells already checkpointed
    /// in `<journal_dir>/<tag>.journal` are skipped on resume, and every
    /// newly completed cell is checkpointed when the journal's in-order
    /// cursor reaches it.
    pub fn dispatch_supervised(&self, opts: &ExpOptions, tag: &str) -> SweepRun {
        let mut sweep_opts = opts.sweep_options(tag);
        sweep_opts.costs = Some(self.costs.clone());
        let run = run_supervised_batch(&opts.pool(), &self.requests, &sweep_opts);
        opts.record_stats(&run.sched);
        run
    }

    /// Renders this grid's reports as a deterministic JSON fragment:
    /// one labeled record per cell plus an aggregate, all folded in cell
    /// order.
    pub fn to_json(&self, reports: &[RunReport]) -> Json {
        let cells: Vec<Json> = self
            .labels
            .iter()
            .zip(reports)
            .enumerate()
            .map(|(i, (label, report))| {
                let base = Json::obj().field("cell", i).field("label", label.as_str());
                match &report.result {
                    Ok(out) => {
                        let record = base
                            .field("completed", out.completed)
                            .field("uninformed", out.uninformed)
                            .field("crashed_nodes", out.crashed_nodes)
                            .field("oracle_bits", out.oracle_bits)
                            .field("messages", out.metrics.messages)
                            .field("payload_bits", out.metrics.payload_bits)
                            .field("max_message_bits", out.metrics.max_message_bits)
                            .field("rounds", out.metrics.rounds)
                            .field("steps", out.metrics.steps)
                            .field("informed_nodes", out.metrics.informed_nodes)
                            .field("dropped", out.metrics.faults.dropped)
                            .field("duplicated", out.metrics.faults.duplicated)
                            .field("payload_flips", out.metrics.faults.payload_flips)
                            .field("advice_mutations", out.metrics.faults.advice_mutations);
                        // Untraced cells (the committed BENCH_T*.json
                        // artifacts) carry zeroed stats and keep their
                        // exact historical bytes.
                        if out.trace_stats == TraceStats::default() {
                            record
                        } else {
                            record.field("trace", stats_json(&out.trace_stats))
                        }
                    }
                    Err(e) => base.field("error", e.as_str()),
                }
            })
            .collect();
        let mut agg = Aggregate::new();
        drain(&mut agg, reports);
        Json::obj()
            .field("cells", cells)
            .field("aggregate", agg.finish())
    }
}

/// Writes `BENCH_<ID>.json` into the options' `json_dir` (no-op when the
/// directory is unset). The payload deliberately excludes thread count,
/// timing, and anything else that could differ between identical runs.
///
/// Returns the path written, if any.
///
/// # Errors
///
/// Returns a rendered message when the directory or file cannot be
/// written — artifact emission must never panic a finished sweep away.
pub fn emit_json(opts: &ExpOptions, id: &str, body: Json) -> Result<Option<PathBuf>, String> {
    let Some(dir) = opts.json_dir.as_deref() else {
        return Ok(None);
    };
    std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let json = Json::obj()
        .field("experiment", id.to_lowercase())
        .field("seed", crate::harness::MASTER_SEED)
        .field("body", body);
    let path = dir.join(format!("BENCH_{}.json", id.to_uppercase()));
    std::fs::write(&path, format!("{}\n", json.render()))
        .map_err(|e| format!("write {}: {e}", path.display()))?;
    Ok(Some(path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use oraclesize_core::oracle::EmptyOracle;
    use oraclesize_graph::families;
    use oraclesize_sim::protocol::FloodOnce;
    use oraclesize_sim::{Instance, SimConfig, TraceSpec};
    use std::sync::Arc;

    fn tiny_grid() -> CellGrid {
        let inst = Instance::build(Arc::new(families::cycle(6)), 0, &EmptyOracle);
        let mut grid = CellGrid::new();
        for i in 0..4 {
            grid.cell(
                format!("cell-{i}"),
                RunRequest::new(Arc::clone(&inst), Arc::new(FloodOnce), SimConfig::default()),
            );
        }
        grid
    }

    #[test]
    fn grid_json_is_thread_count_invariant() {
        let grid = tiny_grid();
        let serial = grid.to_json(&grid.dispatch(&ExpOptions::default()));
        let threaded = grid.to_json(&grid.dispatch(&ExpOptions {
            threads: 4,
            ..Default::default()
        }));
        assert_eq!(serial.render(), threaded.render());
        assert!(oraclesize_runtime::json::parses(&serial.render()));
    }

    #[test]
    fn traced_cells_get_a_trace_record_untraced_cells_do_not() {
        let inst = Instance::build(Arc::new(families::cycle(6)), 0, &EmptyOracle);
        let mut grid = CellGrid::new();
        grid.cell(
            "plain",
            RunRequest::new(Arc::clone(&inst), Arc::new(FloodOnce), SimConfig::default()),
        );
        grid.cell(
            "traced",
            RunRequest::new(
                inst,
                Arc::new(FloodOnce),
                SimConfig::broadcast().capture_trace(TraceSpec::Full),
            ),
        );
        let json = grid
            .to_json(&grid.dispatch(&ExpOptions::default()))
            .render();
        // Exactly one cell carries the trace sub-object.
        assert_eq!(json.matches("\"trace\": {").count(), 1, "{json}");
        assert!(json.contains("\"delivered\": "), "{json}");
    }

    #[test]
    fn emit_json_respects_unset_dir() {
        let grid = tiny_grid();
        let json = grid.to_json(&grid.dispatch(&ExpOptions::default()));
        assert_eq!(emit_json(&ExpOptions::default(), "t0", json), Ok(None));
    }

    #[test]
    fn emit_json_writes_parseable_file() {
        let dir = std::env::temp_dir().join("oraclesize-grid-test");
        let opts = ExpOptions {
            json_dir: Some(dir.clone()),
            ..Default::default()
        };
        let grid = tiny_grid();
        let json = grid.to_json(&grid.dispatch(&opts));
        let path = emit_json(&opts, "t0", json).expect("emit").expect("path");
        assert_eq!(path.file_name().unwrap(), "BENCH_T0.json");
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(oraclesize_runtime::json::parses(&body));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn emit_json_reports_unwritable_dirs_as_errors() {
        let opts = ExpOptions {
            json_dir: Some(PathBuf::from("/proc/definitely/not/writable")),
            ..Default::default()
        };
        let err = emit_json(&opts, "t0", Json::obj()).unwrap_err();
        assert!(err.contains("/proc/definitely/not/writable"), "{err}");
    }

    #[test]
    fn supervised_dispatch_checkpoints_and_resumes() {
        let dir = std::env::temp_dir().join(format!("oraclesize-grid-sup-{}", std::process::id()));
        let grid = tiny_grid();
        let baseline = grid.dispatch(&ExpOptions::default());
        let killed = grid.dispatch_supervised(
            &ExpOptions {
                journal_dir: Some(dir.clone()),
                chaos: ChaosPlan::new().die_before(2),
                ..Default::default()
            },
            "t0",
        );
        assert!(killed.interrupted);
        let resumed = grid.dispatch_supervised(
            &ExpOptions {
                journal_dir: Some(dir.clone()),
                resume: true,
                ..Default::default()
            },
            "t0",
        );
        assert!(!resumed.interrupted);
        assert_eq!(resumed.reports(), baseline);
        std::fs::remove_dir_all(&dir).ok();
    }
}
