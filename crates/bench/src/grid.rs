//! Declarative experiment grids over the runtime pool.
//!
//! An experiment here is a *grid of cells*: each cell names one
//! `(instance, scheme, config)` combination, and the whole grid is handed
//! to [`oraclesize_runtime::run_batch`] in one call. The pool executes
//! cells on `--threads` workers while the grid keeps cell order — reports,
//! tables, and the emitted `BENCH_T*.json` artifacts are byte-identical at
//! any thread count (the runtime's determinism contract).

use std::path::PathBuf;
use std::sync::{Arc, Mutex, PoisonError};

use oraclesize_core::broadcast::{LightTreeOracle, SchemeB};
use oraclesize_core::oracle::EmptyOracle;
use oraclesize_core::robust::{RetryBroadcast, RobustTreeWakeup, RobustWakeupOracle};
use oraclesize_core::wakeup::{SpanningTreeOracle, TreeWakeup};
use oraclesize_graph::families::{self, Family};
use oraclesize_graph::{gadgets, PortGraph};
use oraclesize_runtime::spec::{artifact_json, from_ppm, grid_json};
use oraclesize_runtime::{
    run_supervised_batch, ChaosPlan, Json, Pool, RunReport, RunRequest, SchedStats,
    SuperviseConfig, SweepOptions, SweepRun, SweepSpec,
};
use oraclesize_sim::protocol::{FloodOnce, Protocol};
use oraclesize_sim::Instance;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Protocol instances built so far while lowering a spec, keyed by
/// `(scheme, retries)` so identical cells share one `Arc`.
type ProtocolCache = Vec<((String, Option<u64>), Arc<dyn Protocol + Send + Sync>)>;

/// Options shared by every experiment invocation.
#[derive(Debug, Clone, Default)]
pub struct ExpOptions {
    /// Run the bigger (slower) sweeps.
    pub large: bool,
    /// Worker threads for grid dispatch (`0`/`1` ⇒ serial).
    pub threads: usize,
    /// Where to write `BENCH_<ID>.json` artifacts; `None` disables them.
    pub json_dir: Option<PathBuf>,
    /// Where checkpoint journals live (`<dir>/<tag>.journal`, one per
    /// grid); `None` disables checkpointing.
    pub journal_dir: Option<PathBuf>,
    /// Resume from existing journals instead of starting fresh.
    pub resume: bool,
    /// Retry budget for failed cells (see
    /// [`SuperviseConfig::max_retries`]).
    pub max_retries: u32,
    /// Per-cell watchdog step budget (see
    /// [`SuperviseConfig::cell_timeout`]).
    pub cell_timeout: Option<u64>,
    /// Failure injection for chaos drills; inert outside tests and the
    /// chaos-smoke harness.
    pub chaos: ChaosPlan,
    /// Fixed scheduler sub-task size (the `--chunk` override); `None`
    /// sizes chunks from the grid's cost hints. Granularity only — never
    /// results.
    pub chunk: Option<usize>,
    /// Merged scheduling telemetry for every grid dispatched under these
    /// options. Shared behind an `Arc` so the experiment driver can read
    /// the tally after `run_experiment` returns — the report string
    /// itself must stay thread-count-invariant, so the stats travel out
    /// of band and only binaries render them (as footers).
    pub stats: Arc<Mutex<SchedStats>>,
}

impl ExpOptions {
    /// Serial options with a size flag — what the pre-pool harness took.
    pub fn sized(large: bool) -> Self {
        ExpOptions {
            large,
            ..Default::default()
        }
    }

    /// The pool these options describe.
    pub fn pool(&self) -> Pool {
        Pool::new(self.threads.max(1))
    }

    /// The supervised-sweep options these options describe, with the
    /// journal (when a `journal_dir` is set) at `<dir>/<tag>.journal`.
    pub fn sweep_options(&self, tag: &str) -> SweepOptions {
        SweepOptions {
            supervise: SuperviseConfig {
                max_retries: self.max_retries,
                cell_timeout: self.cell_timeout,
                ..SuperviseConfig::default()
            },
            journal: self
                .journal_dir
                .as_ref()
                .map(|dir| dir.join(format!("{tag}.journal"))),
            resume: self.resume,
            seeds: None,
            chaos: self.chaos.clone(),
            chunk: self.chunk,
            // Cost hints belong to the grid being dispatched; the grid
            // fills them in at dispatch time.
            costs: None,
        }
    }

    /// Folds one dispatch's scheduling telemetry into the shared tally.
    pub fn record_stats(&self, stats: &SchedStats) {
        self.stats
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .merge(stats);
    }

    /// A snapshot of the scheduling telemetry accumulated so far.
    pub fn sched_stats(&self) -> SchedStats {
        self.stats
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

/// A labeled list of cells, built declaratively and dispatched in one
/// batch.
#[derive(Default)]
pub struct CellGrid {
    labels: Vec<String>,
    requests: Vec<RunRequest>,
    /// Per-cell scheduling cost hints, kept parallel to `requests` — the
    /// chunk planner batches cheap cells and isolates expensive ones.
    costs: Vec<u64>,
}

impl CellGrid {
    /// An empty grid.
    #[deprecated(
        since = "0.1.0",
        note = "describe the sweep as a SweepSpec and build the grid with CellGrid::from_spec"
    )]
    pub fn new() -> Self {
        CellGrid::default()
    }

    /// Appends one cell. The label is for the JSON artifact only; tables
    /// derive their columns from the same iteration that built the grid.
    /// The cell's scheduling cost hint comes from the request's instance
    /// size ([`RunRequest::cost_hint`]).
    #[deprecated(
        since = "0.1.0",
        note = "declare cells in a SweepSpec and build the grid with CellGrid::from_spec"
    )]
    pub fn cell(&mut self, label: impl Into<String>, request: RunRequest) {
        self.add_cell(label.into(), request);
    }

    fn add_cell(&mut self, label: String, request: RunRequest) {
        self.labels.push(label);
        self.costs.push(request.cost_hint());
        self.requests.push(request);
    }

    /// Materializes the grid a [`SweepSpec`] describes: graphs are built
    /// (and `Arc`-shared between instances with identical construction
    /// parameters), oracles label them, and every cell becomes a
    /// [`RunRequest`] in spec order. This is the only construction path —
    /// the bench experiments, the `sweep` CLI, and the sweep service all
    /// funnel through it, which is what makes their artifacts comparable.
    ///
    /// # Errors
    ///
    /// Returns a first-error message naming the offending spec path for
    /// unknown family/oracle/scheme names, an out-of-range source node,
    /// or an invalid cell configuration.
    pub fn from_spec(spec: &SweepSpec) -> Result<CellGrid, String> {
        spec.validate()?;
        let mut graphs: Vec<(String, Arc<PortGraph>)> = Vec::new();
        let mut instances = Vec::with_capacity(spec.instances.len());
        for (i, inst) in spec.instances.iter().enumerate() {
            let key = format!("{}/{}/{}/{:?}", inst.family, inst.n, inst.seed, inst.p_ppm);
            let g = match graphs.iter().find(|(k, _)| *k == key) {
                Some((_, g)) => Arc::clone(g),
                None => {
                    let g = Arc::new(
                        build_family(&inst.family, inst.n as usize, inst.seed, inst.p_ppm)
                            .map_err(|e| format!("instances[{i}].{e}"))?,
                    );
                    graphs.push((key, Arc::clone(&g)));
                    g
                }
            };
            if inst.source >= g.num_nodes() as u64 {
                return Err(format!(
                    "instances[{i}].source: node {} out of range ({} nodes)",
                    inst.source,
                    g.num_nodes()
                ));
            }
            instances.push(
                build_instance(g, inst.source as usize, &inst.oracle)
                    .map_err(|e| format!("instances[{i}].{e}"))?,
            );
        }
        let mut protocols: ProtocolCache = Vec::new();
        let mut grid = CellGrid::default();
        for (i, cell) in spec.cells.iter().enumerate() {
            let pkey = (cell.scheme.clone(), cell.retries);
            let protocol = match protocols.iter().find(|(k, _)| *k == pkey) {
                Some((_, p)) => Arc::clone(p),
                None => {
                    let p = build_protocol(&cell.scheme, cell.retries)
                        .map_err(|e| format!("cells[{i}].{e}"))?;
                    protocols.push((pkey, Arc::clone(&p)));
                    p
                }
            };
            let config = cell.sim_config().map_err(|e| format!("cells[{i}]: {e}"))?;
            let instance = Arc::clone(&instances[cell.instance as usize]);
            grid.add_cell(
                cell.label.clone(),
                RunRequest::new(instance, protocol, config),
            );
        }
        Ok(grid)
    }

    /// The per-cell cost hints, in cell order.
    pub fn costs(&self) -> &[u64] {
        &self.costs
    }

    /// The cell labels, in cell order.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// The cell requests, in cell order.
    pub fn requests(&self) -> &[RunRequest] {
        &self.requests
    }

    /// Number of cells added so far.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// `true` when no cells were added.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Dispatches every cell across the options' pool, returning reports
    /// in cell order.
    ///
    /// Execution goes through the supervised path (panic isolation,
    /// retries, watchdog) without a journal; for checkpointed dispatch
    /// use [`CellGrid::dispatch_supervised`]. Reports are identical
    /// either way for deterministic cells.
    pub fn dispatch(&self, opts: &ExpOptions) -> Vec<RunReport> {
        let mut sweep_opts = opts.sweep_options("");
        sweep_opts.journal = None;
        sweep_opts.costs = Some(self.costs.clone());
        let run = run_supervised_batch(&opts.pool(), &self.requests, &sweep_opts);
        opts.record_stats(&run.sched);
        run.reports()
    }

    /// Dispatches with the full failure model: cells already checkpointed
    /// in `<journal_dir>/<tag>.journal` are skipped on resume, and every
    /// newly completed cell is checkpointed when the journal's in-order
    /// cursor reaches it.
    pub fn dispatch_supervised(&self, opts: &ExpOptions, tag: &str) -> SweepRun {
        let mut sweep_opts = opts.sweep_options(tag);
        sweep_opts.costs = Some(self.costs.clone());
        let run = run_supervised_batch(&opts.pool(), &self.requests, &sweep_opts);
        opts.record_stats(&run.sched);
        run
    }

    /// Renders this grid's reports as a deterministic JSON fragment:
    /// one labeled record per cell plus an aggregate, all folded in cell
    /// order. Delegates to [`grid_json`], the single renderer shared with
    /// the sweep service's merged artifacts.
    pub fn to_json(&self, reports: &[RunReport]) -> Json {
        grid_json(&self.labels, reports)
    }
}

/// Builds a named graph family. Beyond [`Family::ALL`] two spec-only
/// names exist: `"random-connected"` (takes `p_ppm`) and
/// `"subdivided-clique"` (every edge of `K*_n` subdivided, no RNG) — the
/// constructions T10/T20 and the SCALE curve sweep.
fn build_family(
    family: &str,
    n: usize,
    seed: u64,
    p_ppm: Option<u64>,
) -> Result<PortGraph, String> {
    if let Some(fam) = Family::ALL.iter().find(|f| f.name() == family) {
        return Ok(fam.build(n, &mut StdRng::seed_from_u64(seed)));
    }
    match family {
        "random-connected" => {
            let p = p_ppm
                .ok_or_else(|| "p_ppm: required by family \"random-connected\"".to_string())?;
            Ok(families::random_connected(
                n,
                from_ppm(p),
                &mut StdRng::seed_from_u64(seed),
            ))
        }
        "subdivided-clique" => {
            let base = families::complete_rotational(n);
            let edges: Vec<_> = base.edges().collect();
            Ok(gadgets::subdivide_edges(&base, &edges))
        }
        other => Err(format!("family: unknown family {other:?}")),
    }
}

/// Labels a graph with a named oracle and packages the shared instance.
fn build_instance(g: Arc<PortGraph>, source: usize, oracle: &str) -> Result<Arc<Instance>, String> {
    Ok(match oracle {
        "empty" => Instance::build(g, source, &EmptyOracle),
        "spanning-tree" => Instance::build(g, source, &SpanningTreeOracle::default()),
        "light-tree" => Instance::build(g, source, &LightTreeOracle),
        "robust-wakeup" => Instance::build(g, source, &RobustWakeupOracle::default()),
        other => return Err(format!("oracle: unknown oracle {other:?}")),
    })
}

/// Instantiates a named scheme.
fn build_protocol(
    scheme: &str,
    retries: Option<u64>,
) -> Result<Arc<dyn Protocol + Send + Sync>, String> {
    Ok(match scheme {
        "tree-wakeup" => Arc::new(TreeWakeup),
        "scheme-b" => Arc::new(SchemeB),
        "flood" => Arc::new(FloodOnce),
        "robust-tree-wakeup" => Arc::new(RobustTreeWakeup),
        "retry-broadcast" => {
            let retries = retries
                .ok_or_else(|| "retries: required by scheme \"retry-broadcast\"".to_string())?;
            Arc::new(RetryBroadcast {
                retries: retries as u32,
            })
        }
        other => return Err(format!("scheme: unknown scheme {other:?}")),
    })
}

/// Writes `BENCH_<ID>.json` into the options' `json_dir` (no-op when the
/// directory is unset). The payload deliberately excludes thread count,
/// timing, and anything else that could differ between identical runs.
///
/// Returns the path written, if any.
///
/// # Errors
///
/// Returns a rendered message when the directory or file cannot be
/// written — artifact emission must never panic a finished sweep away.
pub fn emit_json(opts: &ExpOptions, id: &str, body: Json) -> Result<Option<PathBuf>, String> {
    let Some(dir) = opts.json_dir.as_deref() else {
        return Ok(None);
    };
    std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let json = artifact_json(id, crate::harness::MASTER_SEED, body);
    let path = dir.join(format!("BENCH_{}.json", id.to_uppercase()));
    std::fs::write(&path, format!("{}\n", json.render()))
        .map_err(|e| format!("write {}: {e}", path.display()))?;
    Ok(Some(path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use oraclesize_runtime::{CellSpec, FaultSpec, InstanceSpec};
    use oraclesize_sim::{SimConfig, TraceSpec};

    fn tiny_spec() -> SweepSpec {
        let mut spec = SweepSpec::new("t0", 2006);
        spec.instances.push(InstanceSpec {
            family: "cycle".to_string(),
            n: 6,
            seed: 0,
            p_ppm: None,
            source: 0,
            oracle: "empty".to_string(),
        });
        for i in 0..4u64 {
            spec.cells.push(CellSpec {
                label: format!("cell-{i}"),
                instance: 0,
                scheme: "flood".to_string(),
                retries: None,
                mode: "broadcast".to_string(),
                scheduler: None,
                anonymous: false,
                max_message_bits: None,
                quiescence_polls: None,
                seed: i,
                faults: FaultSpec::default(),
            });
        }
        spec
    }

    fn tiny_grid() -> CellGrid {
        CellGrid::from_spec(&tiny_spec()).expect("tiny spec materializes")
    }

    #[test]
    fn from_spec_names_bad_entries() {
        let mut spec = tiny_spec();
        spec.instances[0].family = "klein-bottle".to_string();
        let err = CellGrid::from_spec(&spec).map(|_| ()).unwrap_err();
        assert_eq!(err, "instances[0].family: unknown family \"klein-bottle\"");

        let mut spec = tiny_spec();
        spec.instances[0].source = 6;
        let err = CellGrid::from_spec(&spec).map(|_| ()).unwrap_err();
        assert_eq!(err, "instances[0].source: node 6 out of range (6 nodes)");

        let mut spec = tiny_spec();
        spec.cells[2].scheme = "telepathy".to_string();
        let err = CellGrid::from_spec(&spec).map(|_| ()).unwrap_err();
        assert_eq!(err, "cells[2].scheme: unknown scheme \"telepathy\"");

        let mut spec = tiny_spec();
        spec.cells[0].scheme = "retry-broadcast".to_string();
        let err = CellGrid::from_spec(&spec).map(|_| ()).unwrap_err();
        assert_eq!(
            err,
            "cells[0].retries: required by scheme \"retry-broadcast\""
        );
    }

    #[test]
    fn from_spec_shares_graphs_between_instances() {
        let mut spec = tiny_spec();
        // Same construction parameters, different oracle: one graph build.
        spec.instances.push(InstanceSpec {
            oracle: "spanning-tree".to_string(),
            ..spec.instances[0].clone()
        });
        spec.cells[1].instance = 1;
        spec.cells[1].scheme = "tree-wakeup".to_string();
        spec.cells[1].mode = "wakeup".to_string();
        let grid = CellGrid::from_spec(&spec).expect("spec materializes");
        assert!(Arc::ptr_eq(
            &grid.requests()[0].instance.graph,
            &grid.requests()[1].instance.graph
        ));
    }

    #[test]
    fn grid_json_is_thread_count_invariant() {
        let grid = tiny_grid();
        let serial = grid.to_json(&grid.dispatch(&ExpOptions::default()));
        let threaded = grid.to_json(&grid.dispatch(&ExpOptions {
            threads: 4,
            ..Default::default()
        }));
        assert_eq!(serial.render(), threaded.render());
        assert!(oraclesize_runtime::json::parses(&serial.render()));
    }

    #[test]
    // Tracing is a debugging knob, not part of the sweep description, so
    // this test keeps the legacy construction path (which also pins the
    // shim's behavior).
    #[allow(deprecated)]
    fn traced_cells_get_a_trace_record_untraced_cells_do_not() {
        let inst = Instance::build(Arc::new(families::cycle(6)), 0, &EmptyOracle);
        let mut grid = CellGrid::new();
        grid.cell(
            "plain",
            RunRequest::new(Arc::clone(&inst), Arc::new(FloodOnce), SimConfig::default()),
        );
        grid.cell(
            "traced",
            RunRequest::new(
                inst,
                Arc::new(FloodOnce),
                SimConfig::broadcast().capture_trace(TraceSpec::Full),
            ),
        );
        let json = grid
            .to_json(&grid.dispatch(&ExpOptions::default()))
            .render();
        // Exactly one cell carries the trace sub-object.
        assert_eq!(json.matches("\"trace\": {").count(), 1, "{json}");
        assert!(json.contains("\"delivered\": "), "{json}");
    }

    #[test]
    fn emit_json_respects_unset_dir() {
        let grid = tiny_grid();
        let json = grid.to_json(&grid.dispatch(&ExpOptions::default()));
        assert_eq!(emit_json(&ExpOptions::default(), "t0", json), Ok(None));
    }

    #[test]
    fn emit_json_writes_parseable_file() {
        let dir = std::env::temp_dir().join("oraclesize-grid-test");
        let opts = ExpOptions {
            json_dir: Some(dir.clone()),
            ..Default::default()
        };
        let grid = tiny_grid();
        let json = grid.to_json(&grid.dispatch(&opts));
        let path = emit_json(&opts, "t0", json).expect("emit").expect("path");
        assert_eq!(path.file_name().unwrap(), "BENCH_T0.json");
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(oraclesize_runtime::json::parses(&body));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn emit_json_reports_unwritable_dirs_as_errors() {
        let opts = ExpOptions {
            json_dir: Some(PathBuf::from("/proc/definitely/not/writable")),
            ..Default::default()
        };
        let err = emit_json(&opts, "t0", Json::obj()).unwrap_err();
        assert!(err.contains("/proc/definitely/not/writable"), "{err}");
    }

    #[test]
    fn supervised_dispatch_checkpoints_and_resumes() {
        let dir = std::env::temp_dir().join(format!("oraclesize-grid-sup-{}", std::process::id()));
        let grid = tiny_grid();
        let baseline = grid.dispatch(&ExpOptions::default());
        let killed = grid.dispatch_supervised(
            &ExpOptions {
                journal_dir: Some(dir.clone()),
                chaos: ChaosPlan::new().die_before(2),
                ..Default::default()
            },
            "t0",
        );
        assert!(killed.interrupted);
        let resumed = grid.dispatch_supervised(
            &ExpOptions {
                journal_dir: Some(dir.clone()),
                resume: true,
                ..Default::default()
            },
            "t0",
        );
        assert!(!resumed.interrupted);
        assert_eq!(resumed.reports(), baseline);
        std::fs::remove_dir_all(&dir).ok();
    }
}
