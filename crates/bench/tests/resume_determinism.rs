//! Artifact-level crash/resume determinism for the grid experiments.
//!
//! The runtime's `tests/resume.rs` pins the report-level contract; these
//! tests pin the end product: the merged `BENCH_T10.json` /
//! `BENCH_T20.json` artifacts are byte-identical whether a sweep ran
//! uninterrupted or was killed at a random cell and resumed from its
//! checkpoint journal, at any thread count — and both match the bytes
//! committed at the repository root.

use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use oraclesize_bench::experiments::run_experiment;
use oraclesize_bench::grid::ExpOptions;
use oraclesize_runtime::ChaosPlan;
use proptest::prelude::*;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "oraclesize-resume-determinism-{}-{tag}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn artifact(dir: &Path, id: &str) -> Vec<u8> {
    let path = dir.join(format!("BENCH_{}.json", id.to_uppercase()));
    std::fs::read(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn committed(id: &str) -> Vec<u8> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(format!("BENCH_{}.json", id.to_uppercase()));
    std::fs::read(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// The uninterrupted serial artifact for `id`, computed once per test
/// process and checked against the committed bytes on first use.
fn clean(id: &str) -> &'static [u8] {
    static T10: OnceLock<Vec<u8>> = OnceLock::new();
    static T20: OnceLock<Vec<u8>> = OnceLock::new();
    let cell = match id {
        "t10" => &T10,
        "t20" => &T20,
        other => panic!("unexpected id {other:?}"),
    };
    cell.get_or_init(|| {
        let dir = scratch(&format!("clean-{id}"));
        let opts = ExpOptions {
            json_dir: Some(dir.clone()),
            ..Default::default()
        };
        run_experiment(id, &opts).expect("clean run succeeds");
        let bytes = artifact(&dir, id);
        assert_eq!(
            bytes,
            committed(id),
            "{id}: clean serial artifact diverged from the committed BENCH file"
        );
        std::fs::remove_dir_all(&dir).ok();
        bytes
    })
}

#[test]
fn clean_artifacts_match_committed_bytes() {
    clean("t10");
    clean("t20");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Kill a sweep at a random cell — mid-steal when the thread count
    /// oversubscribes the machine and the chunk override splinters the
    /// grid — resume it at a random thread count and chunk size, and
    /// require the merged artifact to match the committed bytes exactly.
    #[test]
    fn killed_and_resumed_artifacts_match_committed_bytes(
        id in proptest::sample::select(vec!["t10", "t20"]),
        kill in 1usize..12,
        threads in proptest::sample::select(vec![1usize, 2, 8, 16]),
        chunk in proptest::sample::select(vec![None, Some(1usize), Some(3)]),
    ) {
        let expected = clean(id);
        let dir = scratch(&format!("{id}-{kill}-{threads}-{chunk:?}"));
        let journal_dir = dir.join("journal");
        let killed = ExpOptions {
            threads,
            chunk,
            journal_dir: Some(journal_dir.clone()),
            chaos: ChaosPlan::new().die_before(kill),
            ..Default::default()
        };
        let err = run_experiment(id, &killed)
            .expect_err("a killed sweep must refuse to publish");
        prop_assert!(err.contains("interrupted"), "{err}");

        let resumed = ExpOptions {
            threads,
            chunk,
            json_dir: Some(dir.clone()),
            journal_dir: Some(journal_dir),
            resume: true,
            ..Default::default()
        };
        let report = run_experiment(id, &resumed).expect("resumed run completes");
        prop_assert!(report.contains("resumed"), "{report}");
        prop_assert_eq!(artifact(&dir, id), expected, "{}: resumed artifact diverged", id);
        std::fs::remove_dir_all(&dir).ok();
    }
}
