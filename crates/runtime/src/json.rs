//! A minimal, deterministic JSON writer.
//!
//! The `BENCH_T*.json` artifacts must be byte-identical across thread
//! counts and machines, so this writer is deliberately austere: objects
//! keep insertion order, numbers are integers only (every engine metric is
//! a count), and rendering appends no whitespace beyond single spaces
//! after separators.

use std::fmt::Write as _;

/// A JSON value restricted to what deterministic artifacts need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (all engine metrics are counts).
    U64(u64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with **insertion-ordered** keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Object(Vec::new())
    }

    /// Adds a field (builder style). Panics never; duplicate keys are the
    /// caller's bug and render as-is.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        if let Json::Object(fields) = &mut self {
            fields.push((key.to_string(), value.into()));
        }
        self
    }

    /// Renders to a compact, deterministic string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    Json::Str(k.clone()).write(out);
                    out.push_str(": ");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::U64(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::U64(n as u64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Array(items)
    }
}

/// A tolerant structural check used by tests and the CI smoke job: `true`
/// iff `s` parses as a JSON value covering the subset this writer emits.
pub fn parses(s: &str) -> bool {
    fn skip_ws(b: &[u8], mut i: usize) -> usize {
        while i < b.len() && (b[i] as char).is_whitespace() {
            i += 1;
        }
        i
    }
    fn value(b: &[u8], i: usize) -> Option<usize> {
        let i = skip_ws(b, i);
        match b.get(i)? {
            b'{' => {
                let mut i = skip_ws(b, i + 1);
                if b.get(i) == Some(&b'}') {
                    return Some(i + 1);
                }
                loop {
                    i = string(b, skip_ws(b, i))?;
                    i = skip_ws(b, i);
                    if b.get(i) != Some(&b':') {
                        return None;
                    }
                    i = value(b, i + 1)?;
                    i = skip_ws(b, i);
                    match b.get(i)? {
                        b',' => i += 1,
                        b'}' => return Some(i + 1),
                        _ => return None,
                    }
                }
            }
            b'[' => {
                let mut i = skip_ws(b, i + 1);
                if b.get(i) == Some(&b']') {
                    return Some(i + 1);
                }
                loop {
                    i = value(b, i)?;
                    i = skip_ws(b, i);
                    match b.get(i)? {
                        b',' => i += 1,
                        b']' => return Some(i + 1),
                        _ => return None,
                    }
                }
            }
            b'"' => string(b, i),
            b't' => b[i..].starts_with(b"true").then_some(i + 4),
            b'f' => b[i..].starts_with(b"false").then_some(i + 5),
            b'n' => b[i..].starts_with(b"null").then_some(i + 4),
            c if c.is_ascii_digit() || *c == b'-' => {
                let mut i = i + 1;
                while i < b.len()
                    && (b[i].is_ascii_digit() || matches!(b[i], b'.' | b'e' | b'E' | b'+' | b'-'))
                {
                    i += 1;
                }
                Some(i)
            }
            _ => None,
        }
    }
    fn string(b: &[u8], i: usize) -> Option<usize> {
        if b.get(i) != Some(&b'"') {
            return None;
        }
        let mut i = i + 1;
        while i < b.len() {
            match b[i] {
                b'\\' => i += 2,
                b'"' => return Some(i + 1),
                _ => i += 1,
            }
        }
        None
    }
    let b = s.as_bytes();
    value(b, 0).map(|end| skip_ws(b, end) == b.len()) == Some(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_deterministically() {
        let j = Json::obj()
            .field("name", "t10")
            .field("cells", vec![Json::U64(1), Json::Bool(true)])
            .field("note", "a \"quoted\"\nline");
        let a = j.render();
        let b = j.render();
        assert_eq!(a, b);
        assert_eq!(
            a,
            "{\"name\": \"t10\", \"cells\": [1, true], \"note\": \"a \\\"quoted\\\"\\nline\"}"
        );
    }

    #[test]
    fn parses_accepts_own_output() {
        let j = Json::obj()
            .field("a", 3u64)
            .field("b", Json::Array(vec![Json::Null, Json::Str("x".into())]));
        assert!(parses(&j.render()));
    }

    #[test]
    fn parses_rejects_garbage() {
        for bad in ["{", "[1,", "{\"a\" 1}", "tru", "\"open", "{} extra"] {
            assert!(!parses(bad), "{bad:?} should not parse");
        }
    }
}
