//! A minimal, deterministic JSON writer.
//!
//! The `BENCH_T*.json` artifacts must be byte-identical across thread
//! counts and machines, so this writer is deliberately austere: objects
//! keep insertion order, numbers are integers only (every engine metric is
//! a count), and rendering appends no whitespace beyond single spaces
//! after separators.

use std::fmt::Write as _;

/// A JSON value restricted to what deterministic artifacts need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (all engine metrics are counts).
    U64(u64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with **insertion-ordered** keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Object(Vec::new())
    }

    /// Adds a field (builder style). Panics never; duplicate keys are the
    /// caller's bug and render as-is.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        if let Json::Object(fields) = &mut self {
            fields.push((key.to_string(), value.into()));
        }
        self
    }

    /// Renders to a compact, deterministic string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    Json::Str(k.clone()).write(out);
                    out.push_str(": ");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::U64(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::U64(n as u64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Array(items)
    }
}

impl Json {
    /// Looks a key up in an object (first occurrence; this writer never
    /// emits duplicates). `None` for non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer payload, if this is a [`Json::U64`].
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(n) => Some(*n),
            _ => None,
        }
    }

    /// The string payload, if this is a [`Json::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a [`Json::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses the exact subset [`Json::render`] emits back into a [`Json`]
/// value — the read half of the checkpoint journal. Returns `None` on
/// anything outside the subset (floats, negative numbers, trailing
/// garbage), which loaders treat as a torn or corrupt record, never a
/// panic.
pub fn parse(s: &str) -> Option<Json> {
    fn skip_ws(b: &[u8], mut i: usize) -> usize {
        while i < b.len() && (b[i] as char).is_whitespace() {
            i += 1;
        }
        i
    }
    fn string(b: &[u8], i: usize) -> Option<(String, usize)> {
        if b.get(i) != Some(&b'"') {
            return None;
        }
        let mut out = String::new();
        let mut i = i + 1;
        while i < b.len() {
            match b[i] {
                b'\\' => {
                    let esc = *b.get(i + 1)?;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = std::str::from_utf8(b.get(i + 2..i + 6)?).ok()?;
                            let code = u32::from_str_radix(hex, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            i += 4;
                        }
                        _ => return None,
                    }
                    i += 2;
                }
                b'"' => return Some((out, i + 1)),
                _ => {
                    // Multi-byte characters were written verbatim; copy the
                    // whole scalar back out.
                    let tail = std::str::from_utf8(&b[i..]).ok()?;
                    let c = tail.chars().next()?;
                    out.push(c);
                    i += c.len_utf8();
                }
            }
        }
        None
    }
    fn value(b: &[u8], i: usize) -> Option<(Json, usize)> {
        let i = skip_ws(b, i);
        match b.get(i)? {
            b'{' => {
                let mut fields = Vec::new();
                let mut i = skip_ws(b, i + 1);
                if b.get(i) == Some(&b'}') {
                    return Some((Json::Object(fields), i + 1));
                }
                loop {
                    let (key, next) = string(b, skip_ws(b, i))?;
                    i = skip_ws(b, next);
                    if b.get(i) != Some(&b':') {
                        return None;
                    }
                    let (val, next) = value(b, i + 1)?;
                    fields.push((key, val));
                    i = skip_ws(b, next);
                    match b.get(i)? {
                        b',' => i = skip_ws(b, i + 1),
                        b'}' => return Some((Json::Object(fields), i + 1)),
                        _ => return None,
                    }
                }
            }
            b'[' => {
                let mut items = Vec::new();
                let mut i = skip_ws(b, i + 1);
                if b.get(i) == Some(&b']') {
                    return Some((Json::Array(items), i + 1));
                }
                loop {
                    let (item, next) = value(b, i)?;
                    items.push(item);
                    i = skip_ws(b, next);
                    match b.get(i)? {
                        b',' => i = skip_ws(b, i + 1),
                        b']' => return Some((Json::Array(items), i + 1)),
                        _ => return None,
                    }
                }
            }
            b'"' => string(b, i).map(|(s, next)| (Json::Str(s), next)),
            b't' => b[i..]
                .starts_with(b"true")
                .then(|| (Json::Bool(true), i + 4)),
            b'f' => b[i..]
                .starts_with(b"false")
                .then(|| (Json::Bool(false), i + 5)),
            b'n' => b[i..].starts_with(b"null").then(|| (Json::Null, i + 4)),
            c if c.is_ascii_digit() => {
                let mut j = i;
                while j < b.len() && b[j].is_ascii_digit() {
                    j += 1;
                }
                let n: u64 = std::str::from_utf8(&b[i..j]).ok()?.parse().ok()?;
                Some((Json::U64(n), j))
            }
            _ => None,
        }
    }
    let b = s.as_bytes();
    let (v, end) = value(b, 0)?;
    (skip_ws(b, end) == b.len()).then_some(v)
}

/// A tolerant structural check used by tests and the CI smoke job: `true`
/// iff `s` parses as a JSON value covering the subset this writer emits.
pub fn parses(s: &str) -> bool {
    fn skip_ws(b: &[u8], mut i: usize) -> usize {
        while i < b.len() && (b[i] as char).is_whitespace() {
            i += 1;
        }
        i
    }
    fn value(b: &[u8], i: usize) -> Option<usize> {
        let i = skip_ws(b, i);
        match b.get(i)? {
            b'{' => {
                let mut i = skip_ws(b, i + 1);
                if b.get(i) == Some(&b'}') {
                    return Some(i + 1);
                }
                loop {
                    i = string(b, skip_ws(b, i))?;
                    i = skip_ws(b, i);
                    if b.get(i) != Some(&b':') {
                        return None;
                    }
                    i = value(b, i + 1)?;
                    i = skip_ws(b, i);
                    match b.get(i)? {
                        b',' => i += 1,
                        b'}' => return Some(i + 1),
                        _ => return None,
                    }
                }
            }
            b'[' => {
                let mut i = skip_ws(b, i + 1);
                if b.get(i) == Some(&b']') {
                    return Some(i + 1);
                }
                loop {
                    i = value(b, i)?;
                    i = skip_ws(b, i);
                    match b.get(i)? {
                        b',' => i += 1,
                        b']' => return Some(i + 1),
                        _ => return None,
                    }
                }
            }
            b'"' => string(b, i),
            b't' => b[i..].starts_with(b"true").then_some(i + 4),
            b'f' => b[i..].starts_with(b"false").then_some(i + 5),
            b'n' => b[i..].starts_with(b"null").then_some(i + 4),
            c if c.is_ascii_digit() || *c == b'-' => {
                let mut i = i + 1;
                while i < b.len()
                    && (b[i].is_ascii_digit() || matches!(b[i], b'.' | b'e' | b'E' | b'+' | b'-'))
                {
                    i += 1;
                }
                Some(i)
            }
            _ => None,
        }
    }
    fn string(b: &[u8], i: usize) -> Option<usize> {
        if b.get(i) != Some(&b'"') {
            return None;
        }
        let mut i = i + 1;
        while i < b.len() {
            match b[i] {
                b'\\' => i += 2,
                b'"' => return Some(i + 1),
                _ => i += 1,
            }
        }
        None
    }
    let b = s.as_bytes();
    value(b, 0).map(|end| skip_ws(b, end) == b.len()) == Some(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_deterministically() {
        let j = Json::obj()
            .field("name", "t10")
            .field("cells", vec![Json::U64(1), Json::Bool(true)])
            .field("note", "a \"quoted\"\nline");
        let a = j.render();
        let b = j.render();
        assert_eq!(a, b);
        assert_eq!(
            a,
            "{\"name\": \"t10\", \"cells\": [1, true], \"note\": \"a \\\"quoted\\\"\\nline\"}"
        );
    }

    #[test]
    fn parses_accepts_own_output() {
        let j = Json::obj()
            .field("a", 3u64)
            .field("b", Json::Array(vec![Json::Null, Json::Str("x".into())]));
        assert!(parses(&j.render()));
    }

    #[test]
    fn parses_rejects_garbage() {
        for bad in ["{", "[1,", "{\"a\" 1}", "tru", "\"open", "{} extra"] {
            assert!(!parses(bad), "{bad:?} should not parse");
        }
    }
}
