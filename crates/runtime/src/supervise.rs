//! The supervision layer: panic isolation, bounded retries, a per-cell
//! watchdog, and journal-backed resume for batch sweeps.
//!
//! [`run_batch`](crate::batch::run_batch) assumes every cell runs to a
//! report; a panicking protocol or a runaway cell takes the whole sweep
//! down with it. [`run_supervised_batch`] wraps the same pool dispatch in
//! a failure model:
//!
//! * **panic isolation** — each attempt runs under `catch_unwind`; a
//!   panic becomes an `Err("panic: …")` report for that attempt instead
//!   of unwinding through the pool,
//! * **bounded retries** — a failed attempt (panic or engine abort) is
//!   re-run up to [`SuperviseConfig::max_retries`] times with
//!   deterministic exponential backoff accounted in *simulated* ticks —
//!   never the wall clock, so supervised runs stay replayable,
//! * **watchdog** — [`SuperviseConfig::cell_timeout`] caps each attempt's
//!   step budget; a cell that exceeds it aborts with the engine's
//!   `StepLimit` error instead of hanging the sweep,
//! * **resume** — with a [journal](crate::journal) configured, completed
//!   cells are checkpointed as they finish and skipped on the next run.
//!
//! Dispatch goes through the work-stealing scheduler
//! ([`crate::sched`]): cells are grouped into chunks (sized by the grid
//! layer's cost hints or a `--chunk` override), but supervision is
//! strictly **per sub-task** — isolation, retries, and the watchdog wrap
//! each cell inside a chunk individually, so one failing cell never
//! drags its chunk-mates into a retry. Journal records stay per-cell and
//! are committed **in cell order** through an in-order committer:
//! out-of-order completions buffer until every lower-indexed cell has
//! settled, so the journal's bytes are identical at any thread count and
//! under any steal schedule — a guarantee the CI smoke jobs diff, not a
//! timing accident.
//!
//! Every cell ends in a [`CellStatus`]: `Completed` (clean first
//! attempt), `Resumed` (replayed from the journal), `Degraded { retries }`
//! (recovered after failures), or `Aborted` (retry budget exhausted).
//! The *reports* a supervised sweep produces are bit-identical to an
//! unsupervised `run_batch` whenever the cells themselves are
//! deterministic — retries re-run the same pure function — so merged
//! artifacts stay byte-identical across crash/resume boundaries and
//! supervision levels alike.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, PoisonError};

use crate::batch::{run_cell_report, RunReport, RunRequest};
use crate::chaos::{ChaosPlan, Injection};
use crate::journal::Journal;
use crate::pool::Pool;
use crate::sched::{ChunkPlan, SchedStats};

/// How one cell of a supervised sweep concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellStatus {
    /// Ran cleanly on the first attempt.
    Completed,
    /// Skipped: replayed from the checkpoint journal.
    Resumed,
    /// Recovered after one or more failed attempts.
    Degraded {
        /// Failed attempts before the one that succeeded.
        retries: u32,
    },
    /// Every attempt failed (or the sweep was interrupted before the
    /// cell ran); the report carries the last error.
    Aborted,
}

/// Retry, backoff, and watchdog policy for supervised execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuperviseConfig {
    /// Failed attempts re-run at most this many times (0 = fail fast).
    pub max_retries: u32,
    /// Per-attempt step budget: each attempt's `max_steps` is clamped to
    /// this, so a runaway cell aborts with the engine's `StepLimit`
    /// instead of hanging the sweep. `None` leaves the request's own
    /// budget in force.
    pub cell_timeout: Option<u64>,
    /// Backoff unit: retry `k` charges `backoff_base << (k−1)` simulated
    /// ticks, accounted in [`SupervisedReport::backoff_ticks`]. No wall
    /// clock is read — an in-process retry needs no real delay, and the
    /// networked runtime this layer anticipates will convert ticks to
    /// sleeps at its edge.
    pub backoff_base: u64,
}

impl Default for SuperviseConfig {
    fn default() -> Self {
        SuperviseConfig {
            max_retries: 0,
            cell_timeout: None,
            backoff_base: 16,
        }
    }
}

/// A cell report plus its supervision verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisedReport {
    /// The report the sweep's merge step consumes — identical to what an
    /// unsupervised run would produce for a deterministic cell.
    pub report: RunReport,
    /// How the cell concluded.
    pub status: CellStatus,
    /// Attempts actually executed (0 for `Resumed` cells).
    pub attempts: u32,
    /// Total simulated backoff charged across retries.
    pub backoff_ticks: u64,
}

/// Everything a supervised sweep needs beyond the requests themselves.
#[derive(Debug, Clone, Default)]
pub struct SweepOptions {
    /// Retry / watchdog policy.
    pub supervise: SuperviseConfig,
    /// Checkpoint journal path; `None` disables checkpointing.
    pub journal: Option<PathBuf>,
    /// `true`: load the journal at [`SweepOptions::journal`] and skip the
    /// cells it already holds. `false`: start fresh (truncating any
    /// existing file).
    pub resume: bool,
    /// Per-cell seeds recorded in (and checked against) journal records;
    /// defaults to the cell index when absent. A seed mismatch on resume
    /// re-runs the cell instead of replaying a stale record.
    pub seeds: Option<Vec<u64>>,
    /// Failure injection (inert by default; see [`crate::chaos`]).
    pub chaos: ChaosPlan,
    /// Fixed sub-task chunk size (the CLI `--chunk` override). `None`
    /// sizes chunks from [`SweepOptions::costs`] (or uniformly when no
    /// hints are set). Chunking never changes reports — only scheduling
    /// granularity.
    pub chunk: Option<usize>,
    /// Per-cell cost hints from the grid layer (e.g. node counts), used
    /// to size chunks so cheap cells amortize scheduling overhead while
    /// expensive cells get chunks of their own.
    pub costs: Option<Vec<u64>>,
}

impl SweepOptions {
    /// The seed recorded for the shard-local cell `local` (sweep-wide
    /// index `base + local`) in journal records. `seeds`, like `costs`,
    /// is indexed by shard-local position; the default seed is the
    /// sweep-wide cell index.
    fn shard_seed(&self, local: usize, base: usize) -> u64 {
        self.seeds
            .as_ref()
            .and_then(|s| s.get(local).copied())
            .unwrap_or((base + local) as u64)
    }

    /// The chunk plan these options describe for a `cells`-cell sweep
    /// dispatched on `pool`: the explicit `chunk` size when set, cost-hint
    /// sizing when hints are present, a balanced uniform cut otherwise.
    pub fn chunk_plan(&self, cells: usize, pool: &Pool) -> ChunkPlan {
        if let Some(size) = self.chunk {
            return ChunkPlan::uniform(cells, size);
        }
        match &self.costs {
            Some(costs) if costs.len() == cells => ChunkPlan::from_costs(costs, pool.threads()),
            _ => ChunkPlan::balanced(cells, pool.threads()),
        }
    }
}

/// The outcome of one supervised sweep.
#[derive(Debug)]
pub struct SweepRun {
    /// Per-cell verdicts, in cell order.
    pub cells: Vec<SupervisedReport>,
    /// Journal anomalies and checkpoint failures, for the report footer.
    pub warnings: Vec<String>,
    /// `true` when chaos killed the sweep mid-flight: some cells never
    /// ran and the merge step must not publish an artifact.
    pub interrupted: bool,
    /// Scheduling telemetry for the dispatch (steals, chunks, contention,
    /// per-worker busy shares). Nondeterministic by nature — rendered
    /// into human-readable footers only, never into artifacts or
    /// journals.
    pub sched: SchedStats,
}

impl SweepRun {
    /// The plain reports, in cell order — the input the merge step and
    /// metric sinks already understand.
    pub fn reports(&self) -> Vec<RunReport> {
        self.cells.iter().map(|c| c.report.clone()).collect()
    }

    /// `true` when any cell ended [`CellStatus::Aborted`].
    pub fn any_aborted(&self) -> bool {
        self.cells
            .iter()
            .any(|c| matches!(c.status, CellStatus::Aborted))
    }

    /// `true` when any cell needed retries to complete.
    pub fn any_degraded(&self) -> bool {
        self.cells
            .iter()
            .any(|c| matches!(c.status, CellStatus::Degraded { .. }))
    }

    /// One deterministic footer line, e.g.
    /// `outcomes: 5 completed, 2 resumed, 1 degraded (3 retries), 0 aborted`.
    pub fn summary(&self) -> String {
        let mut completed = 0usize;
        let mut resumed = 0usize;
        let mut degraded = 0usize;
        let mut retries = 0u64;
        let mut aborted = 0usize;
        for c in &self.cells {
            match c.status {
                CellStatus::Completed => completed += 1,
                CellStatus::Resumed => resumed += 1,
                CellStatus::Degraded { retries: r } => {
                    degraded += 1;
                    retries += u64::from(r);
                }
                CellStatus::Aborted => aborted += 1,
            }
        }
        let degraded = if degraded > 0 {
            format!("{degraded} degraded ({retries} retries)")
        } else {
            "0 degraded".to_string()
        };
        format!("outcomes: {completed} completed, {resumed} resumed, {degraded}, {aborted} aborted")
    }
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque payload".to_string()
    }
}

/// Runs one attempt of one cell with the watchdog applied and panics
/// contained.
fn attempt_cell(
    cell: usize,
    request: &RunRequest,
    sup: &SuperviseConfig,
    chaos: &ChaosPlan,
    attempt: u32,
) -> RunReport {
    match chaos.injection(cell, attempt) {
        Injection::Stall => {
            // A wedged worker never reports; the watchdog is what turns
            // it into an observable failure. Synthesize that observation
            // deterministically instead of actually wedging a thread.
            return RunReport {
                cell,
                result: Err(format!(
                    "watchdog: cell stalled past {} simulated steps",
                    sup.cell_timeout.unwrap_or(0)
                )),
                post_mortem: Vec::new(),
            };
        }
        Injection::Panic | Injection::None => {}
    }
    let mut config = request.config.clone();
    if let Some(timeout) = sup.cell_timeout {
        config.max_steps = config.max_steps.min(timeout);
    }
    let request = RunRequest {
        instance: Arc::clone(&request.instance),
        protocol: Arc::clone(&request.protocol),
        config,
    };
    let inject_panic = matches!(chaos.injection(cell, attempt), Injection::Panic);
    let caught = catch_unwind(AssertUnwindSafe(|| {
        if inject_panic {
            crate::chaos::trigger_panic(cell, attempt);
        }
        run_cell_report(cell, &request)
    }));
    match caught {
        Ok(report) => report,
        Err(payload) => RunReport {
            cell,
            result: Err(format!("panic: {}", panic_text(payload.as_ref()))),
            post_mortem: Vec::new(),
        },
    }
}

/// Executes one cell under the full supervision policy: watchdog-capped
/// attempts, panic isolation, bounded retries with deterministic
/// simulated backoff.
pub fn run_cell_supervised(
    cell: usize,
    request: &RunRequest,
    sup: &SuperviseConfig,
    chaos: &ChaosPlan,
) -> SupervisedReport {
    let mut backoff_ticks = 0u64;
    let mut attempt = 0u32;
    loop {
        let report = attempt_cell(cell, request, sup, chaos, attempt);
        attempt += 1;
        if report.result.is_ok() {
            let status = if attempt == 1 {
                CellStatus::Completed
            } else {
                CellStatus::Degraded {
                    retries: attempt - 1,
                }
            };
            return SupervisedReport {
                report,
                status,
                attempts: attempt,
                backoff_ticks,
            };
        }
        if attempt > sup.max_retries {
            return SupervisedReport {
                report,
                status: CellStatus::Aborted,
                attempts: attempt,
                backoff_ticks,
            };
        }
        let shift = (attempt - 1).min(32);
        backoff_ticks = backoff_ticks.saturating_add(sup.backoff_base.saturating_mul(1 << shift));
    }
}

/// Buffers checkpoint appends until every lower-indexed cell has
/// settled, so journal records hit the file in **cell order** no matter
/// which worker finished which cell first. Under work stealing,
/// completion order varies run to run; without this buffer the journal's
/// bytes would too, and the CI smoke jobs diff those bytes against a
/// serial run. The cost is a crash-safety trade: a straggler cell holds
/// back the checkpoints of later-finished cells until it settles, so a
/// hard kill may lose a few more checkpoints than completion-order
/// appends would — a resume just re-runs those cells.
pub struct OrderedCommitter {
    journal: Option<Journal>,
    /// Cells that settled ahead of the commit cursor; `Some` holds a
    /// record still owed to the journal, `None` means the cell produced
    /// no append (resumed, aborted, or not journalable).
    pending: BTreeMap<usize, Option<(u64, RunReport)>>,
    /// The next cell index the journal is waiting on.
    next: usize,
    warnings: Vec<String>,
}

impl OrderedCommitter {
    /// A committer whose cursor starts at cell 0.
    pub fn new(journal: Option<Journal>) -> Self {
        OrderedCommitter::with_base(journal, 0)
    }

    /// A committer whose cursor starts at `base` — the first cell of a
    /// shard, or 0 for a whole sweep. Every cell from `base` upward must
    /// eventually settle for the cursor to advance past it.
    pub fn with_base(journal: Option<Journal>, base: usize) -> Self {
        OrderedCommitter {
            journal,
            pending: BTreeMap::new(),
            next: base,
            warnings: Vec::new(),
        }
    }

    /// The first cell index that has not yet flushed — settled cells
    /// below it are durably committed (or recorded as no-ops).
    pub fn flushed_up_to(&self) -> usize {
        self.next
    }

    /// Consumes the committer, returning the journal (if any) and the
    /// checkpoint warnings accumulated along the way.
    pub fn into_parts(self) -> (Option<Journal>, Vec<String>) {
        (self.journal, self.warnings)
    }

    /// Marks `cell` settled (with its checkpoint record, if it earned
    /// one) and flushes every record the cursor can now reach.
    pub fn settle(&mut self, cell: usize, record: Option<(u64, RunReport)>) {
        self.pending.insert(cell, record);
        while let Some(entry) = self.pending.remove(&self.next) {
            if let Some((seed, report)) = entry {
                if let Some(j) = self.journal.as_mut() {
                    if let Err(e) = j.append(self.next, seed, &report) {
                        self.warnings.push(format!(
                            "journal {}: checkpoint for cell {} failed: {e}",
                            j.path().display(),
                            self.next
                        ));
                    }
                }
            }
            self.next += 1;
        }
    }
}

/// Runs every request across the pool under supervision, checkpointing
/// and resuming through the journal when one is configured.
///
/// Cells already present in the journal (matching seed, valid digest)
/// return [`CellStatus::Resumed`] without executing; everything else runs
/// through [`run_cell_supervised`] and — when it completes or degrades —
/// is appended to the journal. Aborted cells are *not* journaled: their
/// failure may be transient, so a resume re-runs them.
///
/// Journal problems never fail the sweep; they surface as warnings and
/// the sweep simply runs without checkpoints.
pub fn run_supervised_batch(pool: &Pool, requests: &[RunRequest], opts: &SweepOptions) -> SweepRun {
    run_supervised_shard(pool, requests, 0, requests.len(), opts)
}

/// [`run_supervised_batch`] for one shard of a larger sweep: `requests`
/// holds the `[base, base + requests.len())` cells of a `total_cells`-cell
/// grid, and every report, journal record, and chaos decision uses the
/// sweep-wide cell index. `opts.seeds` and `opts.costs` stay shard-local
/// (aligned with `requests`), matching how a worker slices a grid.
///
/// With a journal configured, a whole-sweep shard (`base == 0` and a
/// full-length slice) writes the classic journal format; a proper shard
/// writes a range-pinned segment (see
/// [`Journal::create_segment`](crate::journal::Journal::create_segment))
/// so segments from different shards can later be merged into exactly the
/// records a single-journal run would have produced.
pub fn run_supervised_shard(
    pool: &Pool,
    requests: &[RunRequest],
    base: usize,
    total_cells: usize,
    opts: &SweepOptions,
) -> SweepRun {
    let span = requests.len();
    let whole = base == 0 && span == total_cells;
    let mut warnings = Vec::new();
    let mut done: Vec<Option<RunReport>> = (0..span).map(|_| None).collect();
    let mut journal = None;
    if let Some(path) = &opts.journal {
        let opened = if opts.resume {
            let resumed = if whole {
                Journal::resume(path, total_cells)
            } else {
                Journal::resume_segment(path, total_cells, base, base + span)
            };
            resumed.map(|(j, loaded)| {
                warnings.extend(loaded.warnings);
                for rec in loaded.records {
                    // The loader already bounds rec.cell to the shard.
                    let Some(local) = rec.cell.checked_sub(base).filter(|l| *l < span) else {
                        continue;
                    };
                    if rec.seed == opts.shard_seed(local, base) {
                        done[local] = Some(rec.report);
                    } else {
                        warnings.push(format!(
                            "journal {}: cell {} was journaled under seed {}, expected {}; \
                             re-running it",
                            path.display(),
                            rec.cell,
                            rec.seed,
                            opts.shard_seed(local, base)
                        ));
                    }
                }
                j
            })
        } else if whole {
            Journal::create(path, total_cells)
        } else {
            Journal::create_segment(path, total_cells, base, base + span)
        };
        match opened {
            Ok(j) => journal = Some(j),
            Err(e) => warnings.push(format!(
                "journal {}: {e}; running without checkpoints",
                path.display()
            )),
        }
    }
    let committer = Mutex::new(OrderedCommitter::with_base(journal, base));
    // Dispatch through the work-stealing scheduler. Supervision wraps
    // each *sub-task* (cell) individually — the `catch_unwind`, retry
    // loop, and watchdog clamp all live inside this closure — so a panic
    // or timeout in one sub-task never retries or aborts the rest of its
    // chunk. Every path settles the cell with the committer so the
    // commit cursor always reaches the end of the shard.
    let plan = opts.chunk_plan(span, pool);
    let (cells_out, sched): (Vec<SupervisedReport>, SchedStats) =
        pool.run_chunked(&plan, |local| {
            let cell = base + local;
            let settle = |record: Option<(u64, RunReport)>| {
                committer
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .settle(cell, record);
            };
            if let Some(report) = &done[local] {
                settle(None);
                return SupervisedReport {
                    report: report.clone(),
                    status: CellStatus::Resumed,
                    attempts: 0,
                    backoff_ticks: 0,
                };
            }
            if opts.chaos.dies_before(cell) {
                settle(None);
                return SupervisedReport {
                    report: RunReport {
                        cell,
                        result: Err("sweep interrupted before cell ran".to_string()),
                        post_mortem: Vec::new(),
                    },
                    status: CellStatus::Aborted,
                    attempts: 0,
                    backoff_ticks: 0,
                };
            }
            let sup = run_cell_supervised(cell, &requests[local], &opts.supervise, &opts.chaos);
            let record = matches!(
                sup.status,
                CellStatus::Completed | CellStatus::Degraded { .. }
            )
            .then(|| (opts.shard_seed(local, base), sup.report.clone()));
            settle(record);
            sup
        });
    warnings.extend(
        committer
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
            .warnings,
    );
    let interrupted = cells_out
        .iter()
        .any(|c| c.attempts == 0 && matches!(c.status, CellStatus::Aborted));
    SweepRun {
        cells: cells_out,
        warnings,
        interrupted,
        sched,
    }
}
