//! The executor half of the batch scheduler: scoped worker threads over
//! `std::thread` — no external dependencies — driving
//! [`crate::sched::Scheduler`] and merging results into per-index slots.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use crate::sched::{ChunkPlan, SchedStats, SchedTask, Scheduler};

/// A fixed-width worker pool.
///
/// [`Pool::run_chunked`] fans a [`ChunkPlan`] of sub-tasks out to
/// `threads` scoped workers through the work-stealing
/// [`Scheduler`]: each worker drains its own chunk deque, refills from
/// the injector, and steals from siblings when dry. Every sub-task's
/// result lands in its own per-index slot, so the returned `Vec` is
/// always in job order no matter which worker finished which sub-task
/// first — the root of the runtime's thread-count-independence
/// guarantee, preserved under any chunk plan and any steal schedule.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    threads: usize,
}

impl Default for Pool {
    /// A serial pool (one worker) — the deterministic baseline.
    fn default() -> Self {
        Pool::new(1)
    }
}

/// Decrements the scheduler's in-flight count even when a sub-task
/// panics: without this, sibling workers would spin on
/// [`SchedTask::Retry`] forever waiting for a chunk that died with its
/// worker (the scope only propagates the panic after every worker
/// exits).
struct FinishGuard<'a>(&'a Scheduler);

impl Drop for FinishGuard<'_> {
    fn drop(&mut self) {
        self.0.finish_chunk();
    }
}

impl Pool {
    /// A pool with the given number of workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Pool {
            threads: threads.max(1),
        }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(0), f(1), …, f(jobs − 1)` across the pool and returns the
    /// results **in index order**, scheduling under an automatically
    /// balanced chunk plan. Shorthand for [`Pool::run_chunked`] when the
    /// caller has no cost hints and no use for scheduling telemetry.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any job (the scope joins all workers
    /// first).
    pub fn run<T, F>(&self, jobs: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.run_chunked(&ChunkPlan::balanced(jobs, self.threads), f)
            .0
    }

    /// Runs every sub-task of `plan` across the pool and returns the
    /// results **in index order** plus the dispatch's scheduling
    /// telemetry.
    ///
    /// With one worker (or one chunk) this degenerates to a plain loop
    /// on the calling thread — no spawn overhead for the serial case.
    /// The results are byte-identical at any thread count and under any
    /// plan; only the [`SchedStats`] (steals, contention, busy shares)
    /// vary, which is why they are returned out-of-band instead of
    /// being woven into the reports.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any sub-task (the scope joins all workers
    /// first).
    pub fn run_chunked<T, F>(&self, plan: &ChunkPlan, f: F) -> (Vec<T>, SchedStats)
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let jobs = plan.jobs();
        let workers = self.threads.min(plan.len());
        if workers <= 1 {
            return ((0..jobs).map(f).collect(), SchedStats::serial(plan));
        }
        // One mutex per slot: a worker only ever touches the slots of the
        // sub-tasks it claimed, so there is no contention — the mutex is
        // just the safe way to hand &mut access to scoped threads.
        let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
        let sched = Scheduler::new(plan, workers);
        let worker_tasks: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
        let worker_cost: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
        std::thread::scope(|scope| {
            for w in 0..workers {
                let sched = &sched;
                let slots = &slots;
                let f = &f;
                let tasks = &worker_tasks;
                let cost = &worker_cost;
                scope.spawn(move || loop {
                    match sched.next_task(w) {
                        SchedTask::Run(chunk) => {
                            let guard = FinishGuard(sched);
                            let claimed =
                                slots.iter().enumerate().skip(chunk.start).take(chunk.len());
                            for (i, slot) in claimed {
                                let result = f(i);
                                // A poisoned slot only means another
                                // sub-task panicked; the scope will
                                // propagate that panic on join, and this
                                // write is still well-defined.
                                *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
                            }
                            tasks[w].fetch_add(chunk.len() as u64, Ordering::Relaxed);
                            cost[w].fetch_add(chunk.cost, Ordering::Relaxed);
                            drop(guard);
                        }
                        SchedTask::Retry => std::thread::yield_now(),
                        SchedTask::Done => break,
                    }
                });
            }
        });
        let stats = SchedStats {
            workers,
            chunks: plan.len() as u64,
            tasks: jobs as u64,
            steals: sched.steals(),
            contended: sched.contended(),
            worker_tasks: worker_tasks
                .iter()
                .map(|t| t.load(Ordering::Relaxed))
                .collect(),
            worker_cost: worker_cost
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        };
        let results = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    // lint:allow(P001): the scheduler hands every chunk to
                    // exactly one worker, chunks cover every index exactly
                    // once, and the scope joins all workers before this
                    // drain — an empty slot is impossible.
                    .expect("every index claimed exactly once")
            })
            .collect();
        (results, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order() {
        for threads in [1, 2, 3, 8] {
            let pool = Pool::new(threads);
            let out = pool.run(37, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_jobs_is_fine() {
        assert!(Pool::new(4).run(0, |i| i).is_empty());
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(Pool::new(0).threads(), 1);
        assert_eq!(Pool::new(0).run(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn more_threads_than_jobs() {
        assert_eq!(Pool::new(16).run(2, |i| i + 1), vec![1, 2]);
    }

    #[test]
    fn chunked_results_match_serial_for_any_plan() {
        let serial: Vec<usize> = (0..101).map(|i| i * 3 + 1).collect();
        for threads in [2usize, 3, 8, 16] {
            for plan in [
                ChunkPlan::uniform(101, 1),
                ChunkPlan::uniform(101, 7),
                ChunkPlan::uniform(101, 64),
                ChunkPlan::balanced(101, threads),
                ChunkPlan::from_costs(&vec![5u64; 101], threads),
            ] {
                let (out, stats) = Pool::new(threads).run_chunked(&plan, |i| i * 3 + 1);
                assert_eq!(out, serial, "threads {threads}, plan {plan:?}");
                assert_eq!(stats.tasks, 101);
                assert_eq!(stats.chunks, plan.len() as u64);
                assert_eq!(stats.worker_tasks.iter().sum::<u64>(), 101);
            }
        }
    }

    #[test]
    fn serial_chunked_runs_report_one_busy_worker() {
        let (out, stats) = Pool::new(1).run_chunked(&ChunkPlan::uniform(5, 2), |i| i);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert_eq!(stats.workers, 1);
        assert_eq!(stats.steals, 0);
        assert_eq!(stats.busy_fractions(), vec![1.0]);
    }

    #[test]
    fn panicking_sub_tasks_propagate_without_wedging_the_pool() {
        let caught = std::panic::catch_unwind(|| {
            Pool::new(4).run_chunked(&ChunkPlan::uniform(64, 2), |i| {
                assert!(i != 17, "injected failure");
                i
            })
        });
        assert!(caught.is_err(), "the job panic must propagate");
    }
}
