//! A scoped worker pool over `std::thread` — no external dependencies.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// A fixed-width worker pool.
///
/// [`Pool::run`] fans an indexed job out to `threads` scoped workers that
/// pull indices off a shared atomic counter. Results land in per-index
/// slots, so the returned `Vec` is always in job order no matter which
/// worker finished which job first — the root of the runtime's
/// thread-count-independence guarantee.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    threads: usize,
}

impl Default for Pool {
    /// A serial pool (one worker) — the deterministic baseline.
    fn default() -> Self {
        Pool::new(1)
    }
}

impl Pool {
    /// A pool with the given number of workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Pool {
            threads: threads.max(1),
        }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(0), f(1), …, f(jobs − 1)` across the pool and returns the
    /// results **in index order**.
    ///
    /// With one worker (or one job) this degenerates to a plain loop on
    /// the calling thread — no spawn overhead for the serial case.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any job (the scope joins all workers
    /// first).
    pub fn run<T, F>(&self, jobs: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.threads.min(jobs);
        if workers <= 1 {
            return (0..jobs).map(f).collect();
        }
        // One mutex per slot: a worker only ever touches the slots of the
        // indices it claimed, so there is no contention — the mutex is
        // just the safe way to hand &mut access to scoped threads.
        let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs {
                        break;
                    }
                    let result = f(i);
                    // A poisoned slot only means another job panicked; the
                    // scope will propagate that panic on join, and this
                    // write is still well-defined.
                    *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    // lint:allow(P001): the atomic counter hands every index
                    // `< jobs` to exactly one worker, and the scope joins all
                    // workers before this drain — an empty slot is impossible.
                    .expect("every index claimed exactly once")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order() {
        for threads in [1, 2, 3, 8] {
            let pool = Pool::new(threads);
            let out = pool.run(37, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_jobs_is_fine() {
        assert!(Pool::new(4).run(0, |i| i).is_empty());
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(Pool::new(0).threads(), 1);
        assert_eq!(Pool::new(0).run(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn more_threads_than_jobs() {
        assert_eq!(Pool::new(16).run(2, |i| i + 1), vec![1, 2]);
    }
}
