//! The work-stealing scheduler behind the pool: chunked sub-tasks,
//! per-worker deques, and deterministic merge bookkeeping.
//!
//! This module is the *scheduler* half of a block-STM-style executor
//! split (the *executor* half — thread spawning and the slot merge —
//! lives in [`crate::pool`], the one module allowed to spawn threads):
//!
//! * a batch of `jobs` cells is first cut into **chunks** of contiguous
//!   cell indices by a [`ChunkPlan`] — either uniformly, or sized by
//!   per-cell **cost hints** from the grid layer so cheap cells amortize
//!   scheduling overhead while expensive cells get chunks of their own,
//! * the [`Scheduler`] is a sharded-mutex task queue: a global injector
//!   deque plus one deque per worker. A worker pops its own deque first,
//!   refills from the injector when dry, and finally **steals** the back
//!   half of a sibling's deque. Shard-lock contention is counted (every
//!   failed `try_lock`), so the sharding claim is measured, not assumed,
//! * every pop/steal moves whole chunks; the *sub-tasks* inside a chunk
//!   (individual cells) execute in index order on whichever worker holds
//!   the chunk, and each sub-task's result lands in its own per-index
//!   slot. The merge is by `(cell)` index — never completion order — so
//!   results are byte-identical at any thread count, with any chunk
//!   plan, under any steal schedule.
//!
//! Scheduling telemetry ([`SchedStats`]: steal count, chunk count,
//! contention, per-worker busy share) is inherently nondeterministic and
//! therefore **must never enter a byte-pinned artifact**: it is rendered
//! only into human-readable report footers, alongside the wall-clock
//! lines the CI smoke jobs already strip before diffing.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// How many chunks each worker should see on average when a plan is cut
/// automatically: enough surplus that stealing can rebalance, few enough
/// that per-chunk queue traffic stays negligible.
const CHUNKS_PER_WORKER: usize = 8;

/// A contiguous block of cell indices `[start, end)` scheduled as one
/// task, carrying the summed cost hint it was sized by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// First cell index in the chunk.
    pub start: usize,
    /// One past the last cell index.
    pub end: usize,
    /// Summed cost hint of the covered cells (scheduling only — never
    /// part of any result).
    pub cost: u64,
}

impl Chunk {
    /// Number of sub-tasks (cells) in the chunk.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` when the chunk covers no cells.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// A partition of `0..jobs` into contiguous [`Chunk`]s.
///
/// The plan decides *granularity*, never *results*: any plan over the
/// same job count yields byte-identical merged output, because sub-task
/// results merge by cell index. Plans exist so the scheduler has more
/// tasks than workers (stealing needs surplus) without paying per-cell
/// queue traffic on 10⁵-cell sweeps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkPlan {
    chunks: Vec<Chunk>,
    jobs: usize,
}

impl ChunkPlan {
    /// Cuts `jobs` cells into fixed-size chunks of `size` cells (the
    /// last chunk takes the remainder). `size` is clamped to at least 1.
    /// Every cell gets a unit cost hint.
    pub fn uniform(jobs: usize, size: usize) -> ChunkPlan {
        let size = size.max(1);
        let chunks = (0..jobs)
            .step_by(size)
            .map(|start| {
                let end = (start + size).min(jobs);
                Chunk {
                    start,
                    end,
                    cost: (end - start) as u64,
                }
            })
            .collect();
        ChunkPlan { chunks, jobs }
    }

    /// The automatic plan for a plain batch: uniform chunks sized so
    /// each of `workers` workers sees about [`CHUNKS_PER_WORKER`] chunks.
    pub fn balanced(jobs: usize, workers: usize) -> ChunkPlan {
        let lanes = workers.max(1) * CHUNKS_PER_WORKER;
        ChunkPlan::uniform(jobs, jobs.div_ceil(lanes.max(1)).max(1))
    }

    /// Cuts cells into chunks sized by per-cell cost hints: contiguous
    /// cells accumulate until the chunk's summed cost reaches the target
    /// (total cost spread over `workers × CHUNKS_PER_WORKER` chunks), so
    /// a run of cheap cells shares one chunk while a cell whose own cost
    /// meets the target is scheduled alone. Zero hints count as cost 1.
    pub fn from_costs(costs: &[u64], workers: usize) -> ChunkPlan {
        let jobs = costs.len();
        let total: u64 = costs.iter().map(|&c| c.max(1)).sum();
        let lanes = (workers.max(1) * CHUNKS_PER_WORKER) as u64;
        let target = (total / lanes.max(1)).max(1);
        let mut chunks = Vec::new();
        let mut start = 0usize;
        let mut acc = 0u64;
        for (i, &c) in costs.iter().enumerate() {
            acc += c.max(1);
            if acc >= target {
                chunks.push(Chunk {
                    start,
                    end: i + 1,
                    cost: acc,
                });
                start = i + 1;
                acc = 0;
            }
        }
        if start < jobs {
            chunks.push(Chunk {
                start,
                end: jobs,
                cost: acc,
            });
        }
        ChunkPlan { chunks, jobs }
    }

    /// Total cells covered by the plan.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The chunks, in ascending cell order.
    pub fn chunks(&self) -> &[Chunk] {
        &self.chunks
    }

    /// Number of chunks.
    pub fn len(&self) -> usize {
        self.chunks.len()
    }

    /// `true` when the plan covers no cells.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }
}

/// Scheduling telemetry for one dispatch.
///
/// Everything here describes *how* the batch was executed, not *what* it
/// computed — steal schedules depend on OS timing, so none of these
/// numbers may be written into a byte-pinned artifact or journal. They
/// render into human-readable report footers only (see
/// [`SchedStats::footer`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Workers that participated in the dispatch.
    pub workers: usize,
    /// Chunks in the executed plan.
    pub chunks: u64,
    /// Sub-tasks (cells) executed.
    pub tasks: u64,
    /// Chunks taken from another worker's deque.
    pub steals: u64,
    /// Shard locks found busy on first try (injector or victim deque) —
    /// the contention measurement behind the sharded-mutex design.
    pub contended: u64,
    /// Sub-tasks executed per worker.
    pub worker_tasks: Vec<u64>,
    /// Summed cost hints executed per worker.
    pub worker_cost: Vec<u64>,
}

impl SchedStats {
    /// The stats of a serial (single-worker) dispatch over `plan`.
    pub fn serial(plan: &ChunkPlan) -> SchedStats {
        let cost: u64 = plan.chunks().iter().map(|c| c.cost).sum();
        SchedStats {
            workers: 1,
            chunks: plan.len() as u64,
            tasks: plan.jobs() as u64,
            steals: 0,
            contended: 0,
            worker_tasks: vec![plan.jobs() as u64],
            worker_cost: vec![cost],
        }
    }

    /// Per-worker busy share: each worker's executed cost (falling back
    /// to sub-task counts when no cost hints were set) over the total.
    /// A work-share proxy, deliberately wall-clock-free — the runtime
    /// never reads a clock (lint rule D002).
    pub fn busy_fractions(&self) -> Vec<f64> {
        let by_cost: u64 = self.worker_cost.iter().sum();
        let (shares, total) = if by_cost > 0 {
            (&self.worker_cost, by_cost)
        } else {
            (&self.worker_tasks, self.worker_tasks.iter().sum())
        };
        if total == 0 {
            return vec![0.0; self.workers];
        }
        shares.iter().map(|&c| c as f64 / total as f64).collect()
    }

    /// Folds another dispatch's stats into this one (summing counters,
    /// extending per-worker vectors element-wise).
    pub fn merge(&mut self, other: &SchedStats) {
        self.workers = self.workers.max(other.workers);
        self.chunks += other.chunks;
        self.tasks += other.tasks;
        self.steals += other.steals;
        self.contended += other.contended;
        if self.worker_tasks.len() < other.worker_tasks.len() {
            self.worker_tasks.resize(other.worker_tasks.len(), 0);
            self.worker_cost.resize(other.worker_cost.len(), 0);
        }
        for (w, &t) in other.worker_tasks.iter().enumerate() {
            self.worker_tasks[w] += t;
        }
        for (w, &c) in other.worker_cost.iter().enumerate() {
            self.worker_cost[w] += c;
        }
    }

    /// The stats accumulated since `baseline` was snapshotted from the
    /// same tally: counters subtract, per-worker vectors subtract
    /// element-wise. Lets a driver that shares one tally across several
    /// dispatches render a footer for just the latest one.
    pub fn since(&self, baseline: &SchedStats) -> SchedStats {
        let sub = |now: &[u64], then: &[u64]| -> Vec<u64> {
            now.iter()
                .enumerate()
                .map(|(w, &n)| n.saturating_sub(then.get(w).copied().unwrap_or(0)))
                .collect()
        };
        SchedStats {
            workers: self.workers,
            chunks: self.chunks.saturating_sub(baseline.chunks),
            tasks: self.tasks.saturating_sub(baseline.tasks),
            steals: self.steals.saturating_sub(baseline.steals),
            contended: self.contended.saturating_sub(baseline.contended),
            worker_tasks: sub(&self.worker_tasks, &baseline.worker_tasks),
            worker_cost: sub(&self.worker_cost, &baseline.worker_cost),
        }
    }

    /// Renders the throughput footer line: runs/sec (when the caller
    /// measured one at its wall-clock edge), chunk count, steal count,
    /// contention, and per-worker busy fractions.
    ///
    /// The returned line is for human-readable reports only; CI smoke
    /// jobs strip it (like the wall-clock `completed in` lines) before
    /// diffing reports across thread counts.
    pub fn footer(&self, runs_per_sec: Option<f64>) -> String {
        let rate = match runs_per_sec {
            Some(r) => format!("{r:.1} runs/sec, "),
            None => String::new(),
        };
        let busy: Vec<String> = self
            .busy_fractions()
            .iter()
            .map(|f| format!("{f:.2}"))
            .collect();
        format!(
            "{rate}{} runs in {} chunks, {} steals, {} contended; {} worker(s) busy [{}]",
            self.tasks,
            self.chunks,
            self.steals,
            self.contended,
            self.workers,
            busy.join(", ")
        )
    }
}

/// What [`Scheduler::next_task`] hands a worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedTask {
    /// Execute this chunk's sub-tasks (in index order), then call
    /// [`Scheduler::finish_chunk`].
    Run(Chunk),
    /// Nothing to claim right now, but chunks are still in flight on
    /// other workers — yield and ask again.
    Retry,
    /// Every chunk has finished; the worker may exit.
    Done,
}

/// The sharded-mutex task queue: a global injector plus one deque per
/// worker, with back-half stealing.
///
/// Shards are plain `Mutex<VecDeque<Chunk>>`s — the workspace is
/// dependency-free, so no lock-free deque crate — and the design is kept
/// honest by *measuring* contention: every `try_lock` that finds a shard
/// busy increments a counter surfaced in [`SchedStats::contended`].
/// Owners pop the **front** of their deque, thieves split off the
/// **back** half, so an owner and its thief touch opposite ends.
#[derive(Debug)]
pub struct Scheduler {
    /// Chunks not yet assigned to any worker's deque.
    injector: Mutex<VecDeque<Chunk>>,
    /// One shard per worker.
    deques: Vec<Mutex<VecDeque<Chunk>>>,
    /// Chunks claimed but not yet finished plus chunks not yet claimed.
    remaining: AtomicUsize,
    steals: AtomicU64,
    contended: AtomicU64,
}

impl Scheduler {
    /// Seeds a scheduler for `workers` workers: chunks deal round-robin
    /// onto the worker deques (worker `w` gets chunks `w`, `w + workers`,
    /// …), so each worker starts with a comparable share and load
    /// imbalance is corrected by *stealing*, not by a shared dispenser
    /// every refill contends on. The injector starts empty; it exists so
    /// work can be fed in from outside a deque owner (and is drained
    /// before any stealing attempt).
    pub fn new(plan: &ChunkPlan, workers: usize) -> Scheduler {
        let workers = workers.max(1);
        let chunks = plan.chunks();
        let mut deques: Vec<VecDeque<Chunk>> = (0..workers).map(|_| VecDeque::new()).collect();
        for (i, &chunk) in chunks.iter().enumerate() {
            deques[i % workers].push_back(chunk);
        }
        Scheduler {
            injector: Mutex::new(VecDeque::new()),
            deques: deques.into_iter().map(Mutex::new).collect(),
            remaining: AtomicUsize::new(chunks.len()),
            steals: AtomicU64::new(0),
            contended: AtomicU64::new(0),
        }
    }

    /// Locks a shard, counting a contention event if the lock was busy
    /// on first try.
    fn shard<'a>(
        &self,
        shard: &'a Mutex<VecDeque<Chunk>>,
    ) -> std::sync::MutexGuard<'a, VecDeque<Chunk>> {
        match shard.try_lock() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => {
                self.contended.fetch_add(1, Ordering::Relaxed);
                shard.lock().unwrap_or_else(PoisonError::into_inner)
            }
        }
    }

    /// The next chunk for `worker`: local deque front, then the
    /// injector, then the back half of the first sibling deque with work
    /// (counted as steals). [`SchedTask::Retry`] when everything is
    /// empty but chunks are still executing elsewhere.
    pub fn next_task(&self, worker: usize) -> SchedTask {
        if self.remaining.load(Ordering::Acquire) == 0 {
            return SchedTask::Done;
        }
        if let Some(chunk) = self.shard(&self.deques[worker]).pop_front() {
            return SchedTask::Run(chunk);
        }
        if let Some(chunk) = self.shard(&self.injector).pop_front() {
            return SchedTask::Run(chunk);
        }
        let workers = self.deques.len();
        for offset in 1..workers {
            let victim = (worker + offset) % workers;
            let mut stolen = {
                let mut q = self.shard(&self.deques[victim]);
                let keep = q.len() / 2;
                q.split_off(keep)
            };
            if stolen.is_empty() {
                continue;
            }
            self.steals
                .fetch_add(stolen.len() as u64, Ordering::Relaxed);
            let first = stolen.pop_front();
            if !stolen.is_empty() {
                self.shard(&self.deques[worker]).append(&mut stolen);
            }
            if let Some(chunk) = first {
                return SchedTask::Run(chunk);
            }
        }
        if self.remaining.load(Ordering::Acquire) == 0 {
            SchedTask::Done
        } else {
            SchedTask::Retry
        }
    }

    /// Marks one claimed chunk as fully executed. Must be called exactly
    /// once per [`SchedTask::Run`] — including when a sub-task panics
    /// (the executor uses a drop guard), or sibling workers would retry
    /// forever waiting on a chunk that will never finish.
    pub fn finish_chunk(&self) {
        self.remaining.fetch_sub(1, Ordering::AcqRel);
    }

    /// Chunks stolen from sibling deques so far.
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Shard locks found busy on first try so far.
    pub fn contended(&self) -> u64 {
        self.contended.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_plans_cover_every_cell_once() {
        for (jobs, size) in [(0usize, 3usize), (1, 1), (7, 3), (12, 4), (5, 100)] {
            let plan = ChunkPlan::uniform(jobs, size);
            assert_eq!(plan.jobs(), jobs);
            let mut covered = Vec::new();
            for c in plan.chunks() {
                assert!(!c.is_empty());
                assert_eq!(c.cost, c.len() as u64);
                covered.extend(c.start..c.end);
            }
            assert_eq!(covered, (0..jobs).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_size_clamps_to_one() {
        assert_eq!(ChunkPlan::uniform(4, 0).len(), 4);
    }

    #[test]
    fn cost_plans_isolate_expensive_cells() {
        // 16 cheap cells around one cell that dwarfs the target: the big
        // cell must not drag a long cheap tail into its chunk.
        let mut costs = vec![1u64; 17];
        costs[8] = 1_000;
        let plan = ChunkPlan::from_costs(&costs, 2);
        assert_eq!(plan.jobs(), 17);
        let covered: usize = plan.chunks().iter().map(Chunk::len).sum();
        assert_eq!(covered, 17);
        let big = plan
            .chunks()
            .iter()
            .find(|c| (c.start..c.end).contains(&8))
            .expect("cell 8 is covered");
        assert_eq!(big.end, 9, "the expensive cell closes its chunk");
    }

    #[test]
    fn cost_plans_batch_cheap_cells() {
        let costs = vec![1u64; 1_000];
        let plan = ChunkPlan::from_costs(&costs, 4);
        // ~ workers × CHUNKS_PER_WORKER chunks, not one per cell.
        assert!(plan.len() <= 4 * CHUNKS_PER_WORKER + 1, "{}", plan.len());
        assert!(plan.len() >= 4, "{}", plan.len());
        let covered: usize = plan.chunks().iter().map(Chunk::len).sum();
        assert_eq!(covered, 1_000);
    }

    #[test]
    fn balanced_plans_scale_with_workers() {
        let plan = ChunkPlan::balanced(1_000, 4);
        assert!(plan.len() >= 2 * 4);
        assert_eq!(plan.jobs(), 1_000);
        assert_eq!(ChunkPlan::balanced(0, 4).len(), 0);
    }

    #[test]
    fn scheduler_drains_every_chunk_exactly_once() {
        let plan = ChunkPlan::uniform(23, 2);
        let sched = Scheduler::new(&plan, 3);
        let mut seen = Vec::new();
        // A single "worker" draining all three deques exercises local
        // pop, injector refill, and stealing in one pass.
        loop {
            match sched.next_task(0) {
                SchedTask::Run(c) => {
                    seen.extend(c.start..c.end);
                    sched.finish_chunk();
                }
                SchedTask::Retry => unreachable!("single claimant never waits"),
                SchedTask::Done => break,
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..23).collect::<Vec<_>>());
        assert!(sched.steals() > 0, "worker 0 must have robbed 1 and 2");
    }

    #[test]
    fn retry_is_reported_while_a_chunk_is_in_flight() {
        let plan = ChunkPlan::uniform(1, 1);
        let sched = Scheduler::new(&plan, 2);
        let SchedTask::Run(c) = sched.next_task(0) else {
            panic!("worker 0 gets the only chunk");
        };
        assert_eq!(sched.next_task(1), SchedTask::Retry);
        assert_eq!((c.start, c.end), (0, 1));
        sched.finish_chunk();
        assert_eq!(sched.next_task(1), SchedTask::Done);
    }

    #[test]
    fn stats_merge_and_render() {
        let mut a = SchedStats::serial(&ChunkPlan::uniform(10, 2));
        let b = SchedStats {
            workers: 2,
            chunks: 4,
            tasks: 8,
            steals: 3,
            contended: 1,
            worker_tasks: vec![5, 3],
            worker_cost: vec![5, 3],
        };
        a.merge(&b);
        assert_eq!(a.workers, 2);
        assert_eq!(a.chunks, 9);
        assert_eq!(a.tasks, 18);
        assert_eq!(a.steals, 3);
        assert_eq!(a.worker_tasks, vec![15, 3]);
        let footer = a.footer(Some(120.0));
        assert!(footer.contains("120.0 runs/sec"), "{footer}");
        assert!(footer.contains("3 steals"), "{footer}");
        assert!(footer.contains("9 chunks"), "{footer}");
        assert!(footer.contains("busy ["), "{footer}");
    }

    #[test]
    fn busy_fractions_sum_to_one() {
        let stats = SchedStats {
            workers: 2,
            worker_tasks: vec![1, 3],
            worker_cost: vec![0, 0],
            ..Default::default()
        };
        let busy = stats.busy_fractions();
        assert_eq!(busy, vec![0.25, 0.75]);
    }
}
