//! Parallel experiment runtime: a dependency-free worker pool and a
//! deterministic batch API for running many engine executions at once.
//!
//! Every theorem-scale experiment in this workspace sweeps *cells* — one
//! `(instance, scheme, config, seed)` combination per cell — and each cell
//! is an independent, seeded, deterministic engine run. This crate turns
//! such sweeps into a batch:
//!
//! * [`pool`] — a [`Pool`] of `std::thread` scoped workers pulling cell
//!   indices off a shared atomic counter (the workspace is offline, so no
//!   rayon; plain scoped threads are all that is needed),
//! * [`instance`] — [`Instance`]: an `Arc`-shared immutable
//!   `(PortGraph, advice)` pair, built once and served to every cell and
//!   every thread without copying,
//! * [`batch`] — [`RunRequest`] → [`RunReport`]: the cell description and
//!   the comparable, fully deterministic result record,
//! * [`sink`] — [`MetricsSink`]: aggregation that folds reports **in cell
//!   order**, never completion order, so any thread count produces
//!   byte-identical output,
//! * [`json`] — a minimal, deterministic JSON writer (insertion-ordered
//!   objects, integers only) used for the `BENCH_T*.json` artifacts.
//!
//! # Determinism contract
//!
//! For a fixed request list, [`run_batch`] returns the same `Vec<RunReport>`
//! — byte for byte — at any thread count. This holds because (a) every
//! engine run is seeded and self-contained, (b) reports are written into
//! per-cell slots, not appended, and (c) sinks consume reports in cell
//! order. The property tests in `tests/determinism.rs` pin this down.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use oraclesize_core::oracle::EmptyOracle;
//! use oraclesize_graph::families;
//! use oraclesize_runtime::{Instance, Pool, RunRequest, run_batch};
//! use oraclesize_sim::protocol::FloodOnce;
//! use oraclesize_sim::SimConfig;
//!
//! let g = Arc::new(families::cycle(8));
//! let instance = Instance::build(g, 0, &EmptyOracle);
//! let protocol = Arc::new(FloodOnce);
//! let requests: Vec<RunRequest> = (0..4)
//!     .map(|_| RunRequest::new(Arc::clone(&instance), protocol.clone(), SimConfig::default()))
//!     .collect();
//! let reports = run_batch(&Pool::new(2), &requests);
//! assert!(reports.iter().all(|r| r.outcome().unwrap().completed));
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod instance;
pub mod json;
pub mod pool;
pub mod sink;

pub use batch::{run_batch, CellOutcome, RunReport, RunRequest};
pub use instance::Instance;
pub use json::Json;
pub use pool::Pool;
pub use sink::{drain, Aggregate, MetricsSink, ReportCollector};
