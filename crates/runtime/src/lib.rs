//! Parallel experiment runtime: a dependency-free worker pool and a
//! deterministic batch API for running many engine executions at once.
//!
//! Every theorem-scale experiment in this workspace sweeps *cells* — one
//! `(instance, scheme, config, seed)` combination per cell — and each cell
//! is an independent, seeded, deterministic engine run. This crate turns
//! such sweeps into a batch:
//!
//! * [`pool`] — a [`Pool`] of `std::thread` scoped workers: the executor
//!   half of a block-STM-style split, driving the [`sched`] scheduler and
//!   merging results into per-index slots (the workspace is offline, so no
//!   rayon; plain scoped threads are all that is needed),
//! * [`sched`] — the scheduler half: cells chunked into sub-tasks by cost
//!   hints ([`sched::ChunkPlan`]), a sharded-mutex task queue with
//!   per-worker deques and back-half stealing ([`sched::Scheduler`]), and
//!   out-of-band scheduling telemetry ([`sched::SchedStats`]) for report
//!   footers,
//! * [`batch`] — [`RunRequest`] → [`RunReport`]: the cell description and
//!   the comparable, fully deterministic result record. Cells are built
//!   over [`oraclesize_sim::Instance`], the `Arc`-shared immutable
//!   `(graph, advice)` pair,
//! * [`sink`] — [`MetricsSink`]: aggregation that folds reports **in cell
//!   order**, never completion order, so any thread count produces
//!   byte-identical output,
//! * [`json`] — a minimal, deterministic JSON writer (insertion-ordered
//!   objects, integers only) used for the `BENCH_T*.json` artifacts,
//! * [`trace`] — deterministic JSONL rendering of engine traces
//!   ([`trace::JsonlSink`], [`trace::event_json`]) for the `trace`
//!   subcommand and the CI trace-smoke job,
//! * [`spec`] — the canonical serializable [`SweepSpec`] job description:
//!   every sweep (bench grid, CLI flags, service submission) lowers into
//!   one spec type, and the artifact renderer lives beside it,
//! * [`journal`] — the append-only checkpoint file that makes sweeps
//!   resumable: completed cells are recorded as they finish and skipped
//!   after a crash,
//! * [`supervise`] — panic isolation, bounded retries with simulated
//!   backoff, a per-cell watchdog, and the journal-backed
//!   [`run_supervised_batch`] dispatch,
//! * [`chaos`] — deterministic failure injection (worker panics, stalls,
//!   torn journal writes) for tests and the CI chaos-smoke job only.
//!
//! # Determinism contract
//!
//! For a fixed request list, [`run_batch`] returns the same `Vec<RunReport>`
//! — byte for byte — at any thread count. This holds because (a) every
//! engine run is seeded and self-contained, (b) reports are written into
//! per-cell slots, not appended, and (c) sinks consume reports in cell
//! order. The property tests in `tests/determinism.rs` pin this down.
//!
//! The contract extends across crash/resume boundaries: a supervised
//! sweep killed at any cell and resumed any number of times yields the
//! same reports — and therefore byte-identical merged artifacts — as an
//! uninterrupted run (`tests/resume.rs`, plus the bench crate's
//! artifact-level proptests).
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use oraclesize_core::oracle::EmptyOracle;
//! use oraclesize_graph::families;
//! use oraclesize_runtime::{Pool, RunRequest, run_batch};
//! use oraclesize_sim::protocol::FloodOnce;
//! use oraclesize_sim::{Instance, SimConfig};
//!
//! let g = Arc::new(families::cycle(8));
//! let instance = Instance::build(g, 0, &EmptyOracle);
//! let protocol = Arc::new(FloodOnce);
//! let requests: Vec<RunRequest> = (0..4)
//!     .map(|_| RunRequest::new(Arc::clone(&instance), protocol.clone(), SimConfig::default()))
//!     .collect();
//! let reports = run_batch(&Pool::new(2), &requests);
//! assert!(reports.iter().all(|r| r.outcome().unwrap().completed));
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod chaos;
pub mod journal;
pub mod json;
pub mod pool;
pub mod sched;
pub mod sink;
pub mod spec;
pub mod supervise;
pub mod trace;

pub use batch::{run_batch, run_cell_report, CellOutcome, RunReport, RunRequest};
pub use chaos::ChaosPlan;
pub use journal::Journal;
pub use json::Json;
pub use pool::Pool;
pub use sched::{Chunk, ChunkPlan, SchedStats};
pub use sink::{drain, Aggregate, MetricsSink, ReportCollector};
pub use spec::{AdviceSpec, CellSpec, FaultSpec, InstanceSpec, KnobSpec, SchedulerSpec, SweepSpec};
pub use supervise::{
    run_cell_supervised, run_supervised_batch, run_supervised_shard, CellStatus, OrderedCommitter,
    SuperviseConfig, SupervisedReport, SweepOptions, SweepRun,
};
pub use trace::JsonlSink;
