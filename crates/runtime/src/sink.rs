//! Deterministic aggregation of per-cell reports.
//!
//! A [`MetricsSink`] consumes [`RunReport`]s **in cell order** — never in
//! completion order — which is the second half of the runtime's
//! determinism contract (the first half being the in-order slots of
//! [`crate::pool::Pool`]). [`drain`] is the one sanctioned way to feed a
//! batch into a sink; it walks the report vector front to back, so an
//! aggregate computed at `--threads 8` is bit-identical to the serial one.

use crate::batch::RunReport;
use crate::json::Json;
use oraclesize_sim::RunMetrics;

/// A consumer of cell reports.
///
/// Implementations must be pure folds over `(cell, report)` pairs: no
/// clocks, no randomness, no dependence on call timing. Feed them through
/// [`drain`] to inherit the cell-order guarantee.
pub trait MetricsSink {
    /// Absorbs the report for one cell. Called once per cell, in
    /// ascending cell order.
    fn record(&mut self, cell: usize, report: &RunReport);

    /// Renders whatever the sink accumulated. Idempotent.
    fn finish(&self) -> Json;
}

/// Feeds a batch's reports into a sink in cell order.
pub fn drain(sink: &mut dyn MetricsSink, reports: &[RunReport]) {
    for (cell, report) in reports.iter().enumerate() {
        sink.record(cell, report);
    }
}

/// Sums every [`RunMetrics`] counter across cells, tracking completions
/// and errors — the workhorse sink behind the `BENCH_T*.json` totals.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Aggregate {
    /// Cells recorded so far.
    pub cells: u64,
    /// Cells whose run completed (all surviving nodes informed).
    pub completed: u64,
    /// Cells whose run aborted with an engine error.
    pub errors: u64,
    /// Surviving-but-uninformed nodes, summed across degraded cells.
    pub uninformed: u64,
    /// Crash-stopped nodes, summed across cells.
    pub crashed_nodes: u64,
    /// Element-wise sum of successful cells' metrics.
    pub totals: RunMetrics,
    /// Maximum `messages` over successful cells.
    pub max_messages: u64,
    /// Maximum `rounds` over successful cells.
    pub max_rounds: u64,
    /// Sum of `oracle_bits` over successful cells.
    pub oracle_bits: u64,
}

impl Aggregate {
    /// A fresh, zeroed aggregate.
    pub fn new() -> Self {
        Aggregate::default()
    }
}

impl MetricsSink for Aggregate {
    fn record(&mut self, _cell: usize, report: &RunReport) {
        self.cells += 1;
        let out = match &report.result {
            Ok(out) => out,
            Err(_) => {
                self.errors += 1;
                return;
            }
        };
        if out.completed {
            self.completed += 1;
        }
        self.uninformed += out.uninformed as u64;
        self.crashed_nodes += out.crashed_nodes as u64;
        self.oracle_bits += out.oracle_bits;
        let m = &out.metrics;
        let t = &mut self.totals;
        t.messages += m.messages;
        t.informed_messages += m.informed_messages;
        t.payload_bits += m.payload_bits;
        t.max_message_bits = t.max_message_bits.max(m.max_message_bits);
        t.rounds += m.rounds;
        t.steps += m.steps;
        t.informed_nodes += m.informed_nodes;
        t.faults.dropped += m.faults.dropped;
        t.faults.duplicated += m.faults.duplicated;
        t.faults.payload_flips += m.faults.payload_flips;
        t.faults.suppressed_sends += m.faults.suppressed_sends;
        t.faults.to_crashed += m.faults.to_crashed;
        t.faults.advice_mutations += m.faults.advice_mutations;
        t.faults.payload_copies += m.faults.payload_copies;
        self.max_messages = self.max_messages.max(m.messages);
        self.max_rounds = self.max_rounds.max(m.rounds);
    }

    fn finish(&self) -> Json {
        Json::obj()
            .field("cells", self.cells)
            .field("completed", self.completed)
            .field("errors", self.errors)
            .field("uninformed", self.uninformed)
            .field("crashed_nodes", self.crashed_nodes)
            .field("oracle_bits", self.oracle_bits)
            .field("messages", self.totals.messages)
            .field("informed_messages", self.totals.informed_messages)
            .field("payload_bits", self.totals.payload_bits)
            .field("max_message_bits", self.totals.max_message_bits)
            .field("rounds", self.totals.rounds)
            .field("steps", self.totals.steps)
            .field("informed_nodes", self.totals.informed_nodes)
            .field("max_messages", self.max_messages)
            .field("max_rounds", self.max_rounds)
            .field(
                "faults",
                Json::obj()
                    .field("dropped", self.totals.faults.dropped)
                    .field("duplicated", self.totals.faults.duplicated)
                    .field("payload_flips", self.totals.faults.payload_flips)
                    .field("suppressed_sends", self.totals.faults.suppressed_sends)
                    .field("to_crashed", self.totals.faults.to_crashed)
                    .field("advice_mutations", self.totals.faults.advice_mutations)
                    .field("payload_copies", self.totals.faults.payload_copies),
            )
    }
}

/// Keeps every per-cell report verbatim, rendering one JSON record per
/// cell — the raw layer of the `BENCH_T*.json` artifacts and the object
/// the cross-thread-count determinism tests diff.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReportCollector {
    /// `(cell, report)` pairs in record order (ascending cell order when
    /// fed through [`drain`]).
    pub reports: Vec<(usize, RunReport)>,
}

impl ReportCollector {
    /// A fresh, empty collector.
    pub fn new() -> Self {
        ReportCollector::default()
    }
}

impl MetricsSink for ReportCollector {
    fn record(&mut self, cell: usize, report: &RunReport) {
        self.reports.push((cell, report.clone()));
    }

    fn finish(&self) -> Json {
        let cells = self
            .reports
            .iter()
            .map(|(cell, report)| {
                let base = Json::obj().field("cell", *cell);
                match &report.result {
                    Ok(out) => base
                        .field("completed", out.completed)
                        .field("uninformed", out.uninformed)
                        .field("crashed_nodes", out.crashed_nodes)
                        .field("oracle_bits", out.oracle_bits)
                        .field("messages", out.metrics.messages)
                        .field("informed_messages", out.metrics.informed_messages)
                        .field("payload_bits", out.metrics.payload_bits)
                        .field("max_message_bits", out.metrics.max_message_bits)
                        .field("rounds", out.metrics.rounds)
                        .field("steps", out.metrics.steps)
                        .field("informed_nodes", out.metrics.informed_nodes)
                        .field("dropped", out.metrics.faults.dropped)
                        .field("duplicated", out.metrics.faults.duplicated)
                        .field("payload_flips", out.metrics.faults.payload_flips),
                    Err(e) => base.field("error", e.as_str()),
                }
            })
            .collect::<Vec<_>>();
        Json::obj().field("cells", cells)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{CellOutcome, RunReport};

    fn report(cell: usize, messages: u64, completed: bool) -> RunReport {
        RunReport {
            cell,
            result: Ok(CellOutcome {
                oracle_bits: 3,
                metrics: RunMetrics {
                    messages,
                    rounds: messages / 2,
                    ..Default::default()
                },
                completed,
                uninformed: usize::from(!completed),
                crashed_nodes: 0,
                trace: Vec::new(),
                trace_stats: Default::default(),
            }),
            post_mortem: Vec::new(),
        }
    }

    #[test]
    fn aggregate_sums_in_cell_order() {
        let reports = vec![report(0, 4, true), report(1, 10, false), report(2, 6, true)];
        let mut agg = Aggregate::new();
        drain(&mut agg, &reports);
        assert_eq!(agg.cells, 3);
        assert_eq!(agg.completed, 2);
        assert_eq!(agg.uninformed, 1);
        assert_eq!(agg.totals.messages, 20);
        assert_eq!(agg.max_messages, 10);
        assert_eq!(agg.oracle_bits, 9);
        assert!(crate::json::parses(&agg.finish().render()));
    }

    #[test]
    fn aggregate_counts_errors_without_metrics() {
        let mut agg = Aggregate::new();
        drain(
            &mut agg,
            &[
                report(0, 2, true),
                RunReport {
                    cell: 1,
                    result: Err("boom".into()),
                    post_mortem: Vec::new(),
                },
            ],
        );
        assert_eq!(agg.cells, 2);
        assert_eq!(agg.errors, 1);
        assert_eq!(agg.totals.messages, 2);
    }

    #[test]
    fn collector_preserves_reports_and_order() {
        let reports = vec![report(0, 1, true), report(1, 2, true)];
        let mut coll = ReportCollector::new();
        drain(&mut coll, &reports);
        assert_eq!(coll.reports.len(), 2);
        assert_eq!(coll.reports[0].0, 0);
        assert_eq!(coll.reports[1].1, reports[1]);
        let rendered = coll.finish().render();
        assert!(crate::json::parses(&rendered));
        assert!(rendered.contains("\"cell\": 1"));
    }
}
