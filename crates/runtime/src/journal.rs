//! The checkpoint journal: crash-safe partial progress for sweeps.
//!
//! A sweep that dies at cell 9,500 of 10,000 should not lose everything.
//! The journal is an append-only file of completed-cell records; on
//! restart the batch dispatcher loads it, skips every journaled cell, and
//! the merge step produces an artifact **byte-identical** to an
//! uninterrupted run — the crate's determinism contract extended across
//! crash/resume boundaries.
//!
//! # File format
//!
//! A header line, then one length-prefixed record per completed cell:
//!
//! ```text
//! oraclesize-journal v1 cells=<N>\n
//! <decimal byte length of the JSON line>\n
//! {"cell": 3, "seed": 17, "digest": 12345, "report": {...}}\n
//! ```
//!
//! The length prefix makes torn final records detectable without any
//! delimiter scanning: if the file ends mid-record, the trailing bytes are
//! shorter than the announced length and the loader drops the record with
//! a warning — the cell simply re-runs. Each record also carries an
//! FNV-1a 64 digest of its rendered `report` object, so bit rot inside a
//! record is caught the same way.
//!
//! Only *untraced* reports are journaled: a record stores metrics and
//! fault counts, not event streams, so any cell that captured a trace (or
//! a ring post-mortem) is re-run on resume rather than replayed lossily.

use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use oraclesize_sim::faults::FaultCounts;
use oraclesize_sim::RunMetrics;

use crate::batch::{CellOutcome, RunReport};
use crate::json::{self, Json};

/// Magic prefix of the header line; the suffix pins the cell count so a
/// journal from a differently-shaped sweep is never silently replayed.
/// Segment journals (one shard of a larger sweep) additionally pin their
/// cell range: `oraclesize-journal v1 cells=<N> range=<LO>..<HI>`.
const HEADER_PREFIX: &str = "oraclesize-journal v1 cells=";

/// The exact header line (without newline) for a journal of `cells`
/// cells, optionally restricted to the `[lo, hi)` segment.
fn header_for(cells: usize, range: Option<(usize, usize)>) -> String {
    match range {
        None => format!("{HEADER_PREFIX}{cells}"),
        Some((lo, hi)) => format!("{HEADER_PREFIX}{cells} range={lo}..{hi}"),
    }
}

/// FNV-1a 64-bit hash — the record integrity digest. Not cryptographic;
/// it guards against truncation and bit rot, not adversaries.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0100_0000_01b3);
    }
    hash
}

/// One replayable completed-cell record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// The cell index within the sweep.
    pub cell: usize,
    /// The seed the cell ran under; a resume with a different seed
    /// discards the record instead of replaying a stale result.
    pub seed: u64,
    /// The reconstructed report (untraced by construction).
    pub report: RunReport,
}

/// Everything a journal load produces: the replayable records plus the
/// human-readable warnings explaining anything that was dropped.
#[derive(Debug, Default)]
pub struct LoadedJournal {
    /// Valid records, in file order.
    pub records: Vec<JournalRecord>,
    /// One line per anomaly (torn tail, digest mismatch, shape mismatch).
    pub warnings: Vec<String>,
}

/// `true` iff `report` can round-trip through a journal record: no
/// captured trace, no ring post-mortem, default trace tallies. Everything
/// else re-runs on resume.
pub fn journalable(report: &RunReport) -> bool {
    report.post_mortem.is_empty()
        && match &report.result {
            Ok(outcome) => outcome.trace.is_empty() && outcome.trace_stats == Default::default(),
            Err(_) => true,
        }
}

fn metrics_json(m: &RunMetrics) -> Json {
    Json::obj()
        .field("messages", m.messages)
        .field("informed_messages", m.informed_messages)
        .field("payload_bits", m.payload_bits)
        .field("max_message_bits", m.max_message_bits)
        .field("rounds", m.rounds)
        .field("steps", m.steps)
        .field("informed_nodes", m.informed_nodes)
        .field("dropped", m.faults.dropped)
        .field("duplicated", m.faults.duplicated)
        .field("payload_flips", m.faults.payload_flips)
        .field("suppressed_sends", m.faults.suppressed_sends)
        .field("to_crashed", m.faults.to_crashed)
        .field("advice_mutations", m.faults.advice_mutations)
        .field("payload_copies", m.faults.payload_copies)
        .field("queue_allocs", m.faults.queue_allocs)
}

fn metrics_from_json(j: &Json) -> Option<RunMetrics> {
    let get = |key: &str| j.get(key)?.as_u64();
    Some(RunMetrics {
        messages: get("messages")?,
        informed_messages: get("informed_messages")?,
        payload_bits: get("payload_bits")?,
        max_message_bits: get("max_message_bits")?,
        rounds: get("rounds")?,
        steps: get("steps")?,
        informed_nodes: get("informed_nodes")?,
        faults: FaultCounts {
            dropped: get("dropped")?,
            duplicated: get("duplicated")?,
            payload_flips: get("payload_flips")?,
            suppressed_sends: get("suppressed_sends")?,
            to_crashed: get("to_crashed")?,
            advice_mutations: get("advice_mutations")?,
            payload_copies: get("payload_copies")?,
            queue_allocs: get("queue_allocs")?,
        },
    })
}

/// Renders a report as the journal's (and the sweep service's wire)
/// record body: `{"ok": {…}}` for completed runs, `{"err": "…"}` for
/// failures. Traces are never encoded — see [`journalable`].
pub fn report_json(report: &RunReport) -> Json {
    match &report.result {
        Ok(o) => Json::obj().field(
            "ok",
            Json::obj()
                .field("oracle_bits", o.oracle_bits)
                .field("completed", o.completed)
                .field("uninformed", o.uninformed)
                .field("crashed_nodes", o.crashed_nodes)
                .field("metrics", metrics_json(&o.metrics)),
        ),
        Err(e) => Json::obj().field("err", e.as_str()),
    }
}

/// Decodes a [`report_json`] body back into a report for `cell`.
/// Returns `None` on any shape violation — callers treat that as a
/// corrupt record.
pub fn report_from_json(cell: usize, j: &Json) -> Option<RunReport> {
    let result = if let Some(ok) = j.get("ok") {
        Ok(CellOutcome {
            oracle_bits: ok.get("oracle_bits")?.as_u64()?,
            completed: ok.get("completed")?.as_bool()?,
            uninformed: usize::try_from(ok.get("uninformed")?.as_u64()?).ok()?,
            crashed_nodes: usize::try_from(ok.get("crashed_nodes")?.as_u64()?).ok()?,
            metrics: metrics_from_json(ok.get("metrics")?)?,
            trace: Vec::new(),
            trace_stats: Default::default(),
        })
    } else {
        Err(j.get("err")?.as_str()?.to_string())
    };
    Some(RunReport {
        cell,
        result,
        post_mortem: Vec::new(),
    })
}

/// Renders one record line (without its length prefix).
fn record_line(cell: usize, seed: u64, report: &RunReport) -> String {
    let body = report_json(report);
    let digest = fnv1a64(body.render().as_bytes());
    Json::obj()
        .field("cell", cell)
        .field("seed", seed)
        .field("digest", digest)
        .field("report", body)
        .render()
}

fn decode_record(line: &str) -> Option<JournalRecord> {
    let j = json::parse(line)?;
    let cell = usize::try_from(j.get("cell")?.as_u64()?).ok()?;
    let seed = j.get("seed")?.as_u64()?;
    let digest = j.get("digest")?.as_u64()?;
    let body = j.get("report")?;
    if fnv1a64(body.render().as_bytes()) != digest {
        return None;
    }
    let report = report_from_json(cell, body)?;
    Some(JournalRecord { cell, seed, report })
}

/// An open journal accepting appends. Create with [`Journal::create`]
/// (fresh file) or via [`Journal::resume`] (replay then continue).
#[derive(Debug)]
pub struct Journal {
    file: std::fs::File,
    path: PathBuf,
}

impl Journal {
    /// Starts a fresh journal for a sweep of `cells` cells, truncating
    /// any existing file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (unwritable path, full disk).
    pub fn create(path: &Path, cells: usize) -> std::io::Result<Journal> {
        Journal::create_with(path, cells, None)
    }

    /// Starts a fresh *segment* journal: one shard's checkpoints for the
    /// `[lo, hi)` cells of a `cells`-cell sweep. Records carry sweep-wide
    /// cell indices, and the header pins the range so a segment is never
    /// replayed into the wrong shard.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (unwritable path, full disk).
    pub fn create_segment(
        path: &Path,
        cells: usize,
        lo: usize,
        hi: usize,
    ) -> std::io::Result<Journal> {
        Journal::create_with(path, cells, Some((lo, hi)))
    }

    fn create_with(
        path: &Path,
        cells: usize,
        range: Option<(usize, usize)>,
    ) -> std::io::Result<Journal> {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)?;
        }
        let mut file = std::fs::File::create(path)?;
        file.write_all(format!("{}\n", header_for(cells, range)).as_bytes())?;
        file.sync_all()?;
        Ok(Journal {
            file,
            path: path.to_path_buf(),
        })
    }

    /// Loads the journal at `path` and reopens it for appending.
    ///
    /// The file is rewritten with exactly the records that survived
    /// validation, so a torn final record (or any corrupt suffix) is
    /// physically discarded before new appends land — appending after torn
    /// bytes would corrupt every later record's framing.
    ///
    /// A missing file, or one whose header announces a different cell
    /// count, yields an empty journal (with a warning in the latter case):
    /// resuming against the wrong sweep must re-run everything rather than
    /// replay records from a different grid.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from the rewrite; a merely *corrupt*
    /// journal is not an error.
    pub fn resume(path: &Path, cells: usize) -> std::io::Result<(Journal, LoadedJournal)> {
        Journal::resume_with(path, cells, None)
    }

    /// [`Journal::resume`] for a segment journal: loads, validates, and
    /// rewrites the `[lo, hi)` shard's checkpoints, then reopens the file
    /// for appends.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from the rewrite.
    pub fn resume_segment(
        path: &Path,
        cells: usize,
        lo: usize,
        hi: usize,
    ) -> std::io::Result<(Journal, LoadedJournal)> {
        Journal::resume_with(path, cells, Some((lo, hi)))
    }

    fn resume_with(
        path: &Path,
        cells: usize,
        range: Option<(usize, usize)>,
    ) -> std::io::Result<(Journal, LoadedJournal)> {
        let loaded = load_with(path, cells, range)?;
        let mut journal = Journal::create_with(path, cells, range)?;
        for rec in &loaded.records {
            journal.append(rec.cell, rec.seed, &rec.report)?;
        }
        Ok((journal, loaded))
    }

    /// Appends one completed-cell record and flushes it to disk.
    ///
    /// Traced reports (see [`journalable`]) are skipped silently — the
    /// cell will re-run on resume, which is the lossless option.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; the caller decides whether a failed
    /// checkpoint degrades the sweep or merely warns.
    pub fn append(&mut self, cell: usize, seed: u64, report: &RunReport) -> std::io::Result<()> {
        if !journalable(report) {
            return Ok(());
        }
        let line = record_line(cell, seed, report);
        let framed = format!("{}\n{line}\n", line.len());
        self.file.write_all(framed.as_bytes())?;
        self.file.flush()
    }

    /// The path this journal writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Reads and validates the journal at `path` without opening it for
/// appends. Missing file → empty journal; corrupt records → dropped with
/// warnings; everything after the first framing error is discarded (the
/// length prefixes downstream can no longer be trusted).
///
/// # Errors
///
/// Propagates filesystem read errors other than "not found".
pub fn load(path: &Path, cells: usize) -> std::io::Result<LoadedJournal> {
    load_with(path, cells, None)
}

/// [`load`] for a segment journal holding the `[lo, hi)` shard of a
/// `cells`-cell sweep: the header must pin the same range, and records
/// outside it are dropped with a warning.
///
/// # Errors
///
/// Propagates filesystem read errors other than "not found".
pub fn load_segment(
    path: &Path,
    cells: usize,
    lo: usize,
    hi: usize,
) -> std::io::Result<LoadedJournal> {
    load_with(path, cells, Some((lo, hi)))
}

/// Merges segment loads into one sweep-wide view: records sorted by cell
/// (first occurrence wins on duplicates), warnings concatenated in input
/// order. The sort is stable, so merging the segments of a sweep yields
/// exactly the records a single whole-sweep journal would hold.
pub fn merge_segments(segments: Vec<LoadedJournal>) -> LoadedJournal {
    let mut out = LoadedJournal::default();
    for seg in segments {
        out.records.extend(seg.records);
        out.warnings.extend(seg.warnings);
    }
    out.records.sort_by_key(|r| r.cell);
    out.records.dedup_by_key(|r| r.cell);
    out
}

fn load_with(
    path: &Path,
    cells: usize,
    range: Option<(usize, usize)>,
) -> std::io::Result<LoadedJournal> {
    let mut text = String::new();
    match std::fs::File::open(path) {
        Ok(mut f) => {
            f.read_to_string(&mut text)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(LoadedJournal::default());
        }
        Err(e) => return Err(e),
    }
    let mut out = LoadedJournal::default();
    let display = path.display();
    let Some((header, mut rest)) = text.split_once('\n') else {
        out.warnings
            .push(format!("journal {display}: missing header; starting fresh"));
        return Ok(out);
    };
    if header != header_for(cells, range) {
        let shape = match range {
            None => format!("a {cells}-cell sweep"),
            Some((lo, hi)) => format!("segment {lo}..{hi} of a {cells}-cell sweep"),
        };
        out.warnings.push(format!(
            "journal {display}: header {header:?} does not match {shape}; ignoring journal"
        ));
        return Ok(out);
    }
    let (lo, hi) = range.unwrap_or((0, cells));
    loop {
        if rest.is_empty() {
            break;
        }
        let Some((len_line, tail)) = rest.split_once('\n') else {
            out.warnings.push(format!(
                "journal {display}: torn length prefix {:?} at end of file; dropping it",
                truncate_for_warning(rest)
            ));
            break;
        };
        let Ok(len) = len_line.trim().parse::<usize>() else {
            out.warnings.push(format!(
                "journal {display}: bad length prefix {:?}; dropping it and the rest of the file",
                truncate_for_warning(len_line)
            ));
            break;
        };
        if tail.len() < len + 1 {
            out.warnings.push(format!(
                "journal {display}: torn final record ({} of {} bytes); dropping it",
                tail.len(),
                len
            ));
            break;
        }
        let (line, after) = tail.split_at(len);
        let Some(after) = after.strip_prefix('\n') else {
            out.warnings.push(format!(
                "journal {display}: record framing broken after {} bytes; \
                 dropping the rest of the file",
                len
            ));
            break;
        };
        rest = after;
        match decode_record(line) {
            Some(rec) if rec.cell >= lo && rec.cell < hi => out.records.push(rec),
            Some(rec) => out.warnings.push(format!(
                "journal {display}: record for cell {} outside cells {lo}..{hi}; dropping it",
                rec.cell
            )),
            None => out.warnings.push(format!(
                "journal {display}: corrupt record {:?}; dropping it",
                truncate_for_warning(line)
            )),
        }
    }
    Ok(out)
}

fn truncate_for_warning(s: &str) -> String {
    const LIMIT: usize = 48;
    if s.len() <= LIMIT {
        s.to_string()
    } else {
        let cut = (0..=LIMIT).rev().find(|&i| s.is_char_boundary(i));
        format!("{}…", &s[..cut.unwrap_or(0)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report(cell: usize) -> RunReport {
        RunReport {
            cell,
            result: Ok(CellOutcome {
                oracle_bits: 7,
                metrics: RunMetrics {
                    messages: 12,
                    informed_messages: 9,
                    payload_bits: 36,
                    max_message_bits: 3,
                    rounds: 2,
                    steps: 12,
                    informed_nodes: 5,
                    faults: FaultCounts {
                        dropped: 1,
                        ..Default::default()
                    },
                },
                completed: true,
                uninformed: 0,
                crashed_nodes: 0,
                trace: Vec::new(),
                trace_stats: Default::default(),
            }),
            post_mortem: Vec::new(),
        }
    }

    fn err_report(cell: usize) -> RunReport {
        RunReport {
            cell,
            result: Err("step limit 5 exhausted".to_string()),
            post_mortem: Vec::new(),
        }
    }

    fn temp_path(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("oraclesize-journal-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("sweep.journal")
    }

    #[test]
    fn roundtrips_ok_and_err_reports() {
        let path = temp_path("roundtrip");
        let mut j = Journal::create(&path, 4).unwrap();
        j.append(0, 100, &sample_report(0)).unwrap();
        j.append(2, 102, &err_report(2)).unwrap();
        let loaded = load(&path, 4).unwrap();
        assert!(loaded.warnings.is_empty(), "{:?}", loaded.warnings);
        assert_eq!(loaded.records.len(), 2);
        assert_eq!(loaded.records[0].seed, 100);
        assert_eq!(loaded.records[0].report, sample_report(0));
        assert_eq!(loaded.records[1].report, err_report(2));
    }

    #[test]
    fn missing_file_is_empty() {
        let loaded = load(Path::new("/nonexistent/never/sweep.journal"), 3).unwrap();
        assert!(loaded.records.is_empty());
        assert!(loaded.warnings.is_empty());
    }

    #[test]
    fn cell_count_mismatch_ignores_journal() {
        let path = temp_path("cellcount");
        let mut j = Journal::create(&path, 4).unwrap();
        j.append(0, 1, &sample_report(0)).unwrap();
        let loaded = load(&path, 5).unwrap();
        assert!(loaded.records.is_empty());
        assert_eq!(loaded.warnings.len(), 1);
        assert!(
            loaded.warnings[0].contains("does not match"),
            "{}",
            loaded.warnings[0]
        );
    }

    #[test]
    fn torn_final_record_is_dropped_with_warning() {
        let path = temp_path("torn");
        let mut j = Journal::create(&path, 4).unwrap();
        j.append(0, 1, &sample_report(0)).unwrap();
        j.append(1, 2, &sample_report(1)).unwrap();
        let full = std::fs::read(&path).unwrap();
        // Tear 10 bytes off the final record, mid-JSON.
        std::fs::write(&path, &full[..full.len() - 10]).unwrap();
        let loaded = load(&path, 4).unwrap();
        assert_eq!(loaded.records.len(), 1);
        assert_eq!(loaded.records[0].cell, 0);
        assert_eq!(loaded.warnings.len(), 1);
        assert!(
            loaded.warnings[0].contains("torn"),
            "{}",
            loaded.warnings[0]
        );
    }

    #[test]
    fn digest_mismatch_drops_record() {
        let path = temp_path("digest");
        let mut j = Journal::create(&path, 4).unwrap();
        j.append(0, 1, &sample_report(0)).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        // Flip a metric inside the record without touching the digest.
        // The framing length must stay the same: swap "messages": 12 to 13.
        let tampered = text.replace("\"messages\": 12", "\"messages\": 13");
        assert_ne!(tampered, text, "tamper target must exist");
        std::fs::write(&path, tampered).unwrap();
        let loaded = load(&path, 4).unwrap();
        assert!(loaded.records.is_empty());
        assert_eq!(loaded.warnings.len(), 1);
        assert!(
            loaded.warnings[0].contains("corrupt"),
            "{}",
            loaded.warnings[0]
        );
    }

    #[test]
    fn resume_rewrites_out_torn_tail() {
        let path = temp_path("rewrite");
        let mut j = Journal::create(&path, 4).unwrap();
        j.append(0, 1, &sample_report(0)).unwrap();
        j.append(1, 2, &sample_report(1)).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 7]).unwrap();
        let (mut journal, loaded) = Journal::resume(&path, 4).unwrap();
        assert_eq!(loaded.records.len(), 1);
        assert_eq!(loaded.warnings.len(), 1);
        // The rewritten file is clean: a second load sees one record and
        // no warnings, and appends continue from valid framing.
        journal.append(3, 4, &err_report(3)).unwrap();
        let again = load(&path, 4).unwrap();
        assert!(again.warnings.is_empty(), "{:?}", again.warnings);
        assert_eq!(again.records.len(), 2);
    }

    #[test]
    fn traced_reports_are_not_journaled() {
        let mut traced = sample_report(0);
        if let Ok(o) = &mut traced.result {
            o.trace_stats.events = 5;
        }
        assert!(!journalable(&traced));
        let path = temp_path("traced");
        let mut j = Journal::create(&path, 2).unwrap();
        j.append(0, 1, &traced).unwrap();
        assert!(load(&path, 2).unwrap().records.is_empty());
    }

    #[test]
    fn segment_roundtrip_and_range_validation() {
        let path = temp_path("segment");
        let mut j = Journal::create_segment(&path, 8, 2, 5).unwrap();
        j.append(2, 2, &sample_report(2)).unwrap();
        j.append(4, 4, &err_report(4)).unwrap();
        let loaded = load_segment(&path, 8, 2, 5).unwrap();
        assert!(loaded.warnings.is_empty(), "{:?}", loaded.warnings);
        assert_eq!(loaded.records.len(), 2);
        // A whole-sweep load refuses the segment header…
        let whole = load(&path, 8).unwrap();
        assert!(whole.records.is_empty());
        assert!(whole.warnings[0].contains("does not match"));
        // …and so does a differently-ranged segment load.
        let shifted = load_segment(&path, 8, 0, 5).unwrap();
        assert!(shifted.records.is_empty());
        assert!(shifted.warnings[0].contains("segment 0..5"));
    }

    #[test]
    fn segment_load_drops_out_of_range_records() {
        let path = temp_path("segment-range");
        let mut j = Journal::create_segment(&path, 8, 2, 5).unwrap();
        j.append(2, 2, &sample_report(2)).unwrap();
        j.append(7, 7, &sample_report(7)).unwrap();
        let loaded = load_segment(&path, 8, 2, 5).unwrap();
        assert_eq!(loaded.records.len(), 1);
        assert_eq!(loaded.records[0].cell, 2);
        assert!(loaded.warnings[0].contains("outside cells 2..5"));
    }

    #[test]
    fn merged_segments_match_a_whole_journal() {
        let whole_path = temp_path("merge-whole");
        let mut whole = Journal::create(&whole_path, 6).unwrap();
        for cell in 0..6 {
            whole
                .append(cell, cell as u64, &sample_report(cell))
                .unwrap();
        }
        let dir = whole_path.parent().unwrap().to_path_buf();
        let mut segs = Vec::new();
        for (lo, hi) in [(0usize, 2usize), (2, 4), (4, 6)] {
            let path = dir.join(format!("shard-{lo}-{hi}.journal"));
            let mut j = Journal::create_segment(&path, 6, lo, hi).unwrap();
            // Reverse order inside the shard: the merge re-sorts.
            for cell in (lo..hi).rev() {
                j.append(cell, cell as u64, &sample_report(cell)).unwrap();
            }
            segs.push(load_segment(&path, 6, lo, hi).unwrap());
        }
        let merged = merge_segments(segs);
        assert!(merged.warnings.is_empty(), "{:?}", merged.warnings);
        assert_eq!(merged.records, load(&whole_path, 6).unwrap().records);
    }

    #[test]
    fn merge_keeps_first_record_per_cell() {
        let a = LoadedJournal {
            records: vec![JournalRecord {
                cell: 1,
                seed: 10,
                report: sample_report(1),
            }],
            warnings: vec!["a".to_string()],
        };
        let b = LoadedJournal {
            records: vec![JournalRecord {
                cell: 1,
                seed: 99,
                report: err_report(1),
            }],
            warnings: vec!["b".to_string()],
        };
        let merged = merge_segments(vec![a, b]);
        assert_eq!(merged.records.len(), 1);
        assert_eq!(merged.records[0].seed, 10);
        assert_eq!(merged.warnings, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
