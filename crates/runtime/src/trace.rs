//! Deterministic JSONL rendering of engine traces.
//!
//! The engine's [`TraceEvent`] stream is plain data; this module gives it
//! a canonical on-disk form: one [`Json`] object per event, one event per
//! line, fields in a fixed insertion order per event kind. Because message
//! ids are assigned in enqueue order (not completion order), the rendered
//! stream for a given cell is **byte-identical at any thread count** —
//! `trace-diff` and the CI smoke job rely on that.
//!
//! Every line carries its grid `cell` and a per-cell `seq` counter, so
//! lines from many cells can be concatenated and still attributed.

use oraclesize_sim::trace::{DropFault, Phase, TraceEvent, TraceStats};
use oraclesize_sim::TraceSink;

use crate::json::Json;

/// Renders one event as a [`Json`] object with deterministic field order.
///
/// Field order is part of the artifact contract: `cell`, `seq`, `kind`,
/// then the kind-specific fields in declaration order.
pub fn event_json(cell: u64, seq: u64, event: &TraceEvent) -> Json {
    let base = Json::obj()
        .field("cell", cell)
        .field("seq", seq)
        .field("kind", event.kind());
    match *event {
        TraceEvent::PhaseStart { phase } => match phase {
            Phase::Spontaneous => base.field("phase", "spontaneous"),
            Phase::Round(round) => base.field("phase", "round").field("round", round),
            Phase::QuiescencePoll(poll) => base
                .field("phase", "quiescence-poll")
                .field("poll", u64::from(poll)),
        },
        TraceEvent::Enqueue {
            msg,
            from,
            to,
            bits,
            carries_source,
        } => base
            .field("msg", msg)
            .field("from", from)
            .field("to", to)
            .field("bits", bits)
            .field("carries_source", carries_source),
        TraceEvent::Drop {
            msg,
            from,
            to,
            fault,
        } => base
            .field("msg", msg)
            .field("from", from)
            .field("to", to)
            .field(
                "fault",
                match fault {
                    DropFault::Lost => "lost",
                    DropFault::ToCrashed => "to-crashed",
                },
            ),
        TraceEvent::Corrupt { msg, bit } => base.field("msg", msg).field("bit", bit),
        TraceEvent::Deliver(d) => base
            .field("msg", d.msg)
            .field("step", d.step)
            .field("from", d.from)
            .field("to", d.to)
            .field("port", d.arrival_port)
            .field("bits", d.bits)
            .field("carries_source", d.carries_source),
        TraceEvent::Wake { node, step, msg } => base
            .field("node", node)
            .field("step", step)
            .field("msg", msg),
        TraceEvent::Quiescence { poll, spoke } => {
            base.field("poll", u64::from(poll)).field("spoke", spoke)
        }
        TraceEvent::Rollup(r) => base
            .field("round", r.round)
            .field("informed", r.informed)
            .field("messages", r.messages)
            .field("frontier", r.frontier),
    }
}

/// Renders the constant-size tallies of a trace (for per-cell grid stats).
pub fn stats_json(stats: &TraceStats) -> Json {
    Json::obj()
        .field("events", stats.events)
        .field("enqueued", stats.enqueued)
        .field("delivered", stats.delivered)
        .field("dropped", stats.dropped)
        .field("corrupted", stats.corrupted)
        .field("wakes", stats.wakes)
        .field("rollups", stats.rollups)
}

/// Renders a slice of events as JSONL (one object per line, each line
/// newline-terminated), numbering `seq` from 0.
pub fn render_jsonl(cell: u64, events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for (seq, event) in events.iter().enumerate() {
        out.push_str(&event_json(cell, seq as u64, event).render());
        out.push('\n');
    }
    out
}

/// A [`TraceSink`] that renders each event to a JSONL line as it is
/// emitted, keeping memory proportional to the rendered text rather than
/// the event count — the streaming half of the observability layer.
#[derive(Debug, Clone)]
pub struct JsonlSink {
    cell: u64,
    seq: u64,
    out: String,
}

impl JsonlSink {
    /// A sink labeling every line with `cell`, numbering `seq` from 0.
    pub fn new(cell: u64) -> JsonlSink {
        JsonlSink {
            cell,
            seq: 0,
            out: String::new(),
        }
    }

    /// Events rendered so far.
    pub fn len(&self) -> u64 {
        self.seq
    }

    /// `true` before the first event arrives.
    pub fn is_empty(&self) -> bool {
        self.seq == 0
    }

    /// The rendered JSONL text.
    pub fn as_str(&self) -> &str {
        &self.out
    }

    /// Consumes the sink, returning the rendered JSONL text.
    pub fn into_string(self) -> String {
        self.out
    }
}

impl TraceSink for JsonlSink {
    fn emit(&mut self, event: TraceEvent) {
        self.out
            .push_str(&event_json(self.cell, self.seq, &event).render());
        self.out.push('\n');
        self.seq += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parses;
    use oraclesize_sim::trace::{Delivery, Rollup};

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::PhaseStart {
                phase: Phase::Spontaneous,
            },
            TraceEvent::Enqueue {
                msg: 0,
                from: 0,
                to: 1,
                bits: 3,
                carries_source: true,
            },
            TraceEvent::Drop {
                msg: 0,
                from: 0,
                to: 1,
                fault: DropFault::Lost,
            },
            TraceEvent::Corrupt { msg: 1, bit: 2 },
            TraceEvent::Deliver(Delivery {
                msg: 1,
                step: 0,
                from: 0,
                to: 1,
                arrival_port: 0,
                bits: 3,
                carries_source: true,
            }),
            TraceEvent::Wake {
                node: 1,
                step: 0,
                msg: 1,
            },
            TraceEvent::PhaseStart {
                phase: Phase::QuiescencePoll(1),
            },
            TraceEvent::Quiescence {
                poll: 1,
                spoke: false,
            },
            TraceEvent::Rollup(Rollup {
                round: 1,
                informed: 2,
                messages: 1,
                frontier: 0,
            }),
        ]
    }

    #[test]
    fn every_kind_renders_parseable_json() {
        for (seq, event) in sample_events().iter().enumerate() {
            let line = event_json(7, seq as u64, event).render();
            assert!(parses(&line), "{line}");
            assert!(line.starts_with("{\"cell\": 7, \"seq\": "), "{line}");
            assert!(
                line.contains(&format!("\"kind\": \"{}\"", event.kind())),
                "{line}"
            );
        }
    }

    #[test]
    fn jsonl_sink_matches_batch_render() {
        let events = sample_events();
        let mut sink = JsonlSink::new(3);
        for e in &events {
            sink.emit(*e);
        }
        assert_eq!(sink.len(), events.len() as u64);
        assert_eq!(sink.as_str(), render_jsonl(3, &events));
    }

    #[test]
    fn lines_carry_cell_and_ordered_seq() {
        let text = render_jsonl(2, &sample_events());
        for (i, line) in text.lines().enumerate() {
            assert!(line.starts_with(&format!("{{\"cell\": 2, \"seq\": {i}, ")));
        }
    }
}
