//! Canonical sweep descriptions: [`SweepSpec`] is the single serializable
//! job type every sweep flows through.
//!
//! A spec names *what* to run — graph family × oracle × scheme × fault
//! plan × seeds × runtime knobs — without touching *how* it runs (thread
//! counts, journal paths, and chunk overrides stay in the caller). The
//! bench grids construct from a spec, the `sweep` CLI lowers its flags
//! into one, and the sweep service ships specs over the wire verbatim:
//! one description type, three front doors.
//!
//! The JSON form is the canonical [`Json`] render (insertion-ordered
//! objects, unsigned integers only). Probabilities are stored as
//! parts-per-million integers so the encoding never touches floats;
//! [`from_ppm`]/[`to_ppm`] round-trip every probability the experiments
//! use. Parsing is strict: unknown or mis-typed fields are rejected with
//! a first-error message naming the offending path, so a typo in a
//! submitted job fails loudly instead of silently running the default.

use oraclesize_sim::{AdviceAdversary, FaultPlan, SchedulerKind, SimConfig};

use crate::batch::RunReport;
use crate::json::Json;
use crate::sink::{drain, Aggregate, MetricsSink};
use crate::trace::stats_json;

/// Converts a probability in `[0, 1]` to parts-per-million.
pub fn to_ppm(prob: f64) -> u64 {
    (prob * 1_000_000.0).round() as u64
}

/// Converts parts-per-million back to a probability in `[0, 1]`.
pub fn from_ppm(ppm: u64) -> f64 {
    ppm as f64 / 1_000_000.0
}

/// A complete, serializable description of one sweep job.
///
/// `instances` lists the graph/oracle pairs the cells share (building a
/// graph is the expensive part, so cells reference instances by index),
/// and `cells` lists one `(instance, scheme, config, seed)` combination
/// per grid cell, in artifact order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Spec format version; this module reads version `1`.
    pub version: u64,
    /// Experiment name — becomes the artifact's `"experiment"` field and
    /// the `BENCH_<NAME>.json` file stem.
    pub name: String,
    /// The sweep's master seed — becomes the artifact's `"seed"` field.
    pub master_seed: u64,
    /// Shared graph/oracle pairs, referenced by `cells[*].instance`.
    pub instances: Vec<InstanceSpec>,
    /// One entry per grid cell, in artifact order.
    pub cells: Vec<CellSpec>,
    /// Supervision and scheduling knobs shared by the whole sweep.
    pub knobs: KnobSpec,
}

/// A graph construction plus the oracle that labels it.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceSpec {
    /// Graph family name (`"cycle"`, `"random-connected"`, …); the bench
    /// crate owns the name → constructor table.
    pub family: String,
    /// Family size parameter (nodes, or the family's natural order).
    pub n: u64,
    /// Seed for the family's RNG; ignored by deterministic families.
    pub seed: u64,
    /// Edge probability in parts-per-million, for the families that take
    /// one (`"random-connected"`).
    pub p_ppm: Option<u64>,
    /// Source node for the task.
    pub source: u64,
    /// Oracle name (`"empty"`, `"spanning-tree"`, `"light-tree"`,
    /// `"robust-wakeup"`).
    pub oracle: String,
}

/// Asynchronous delivery order for one cell.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerSpec {
    /// Scheduler name as reported by
    /// [`SchedulerKind::name`] (`"fifo"`, `"lifo"`, `"random"`,
    /// `"starve"`).
    pub kind: String,
    /// Seed for the `"random"` scheduler; carried but unused by the
    /// deterministic kinds.
    pub seed: u64,
}

impl SchedulerSpec {
    /// The spec form of an engine scheduler.
    pub fn of(kind: SchedulerKind) -> SchedulerSpec {
        let seed = match kind {
            SchedulerKind::Random { seed } => seed,
            _ => 0,
        };
        SchedulerSpec {
            kind: kind.name().to_string(),
            seed,
        }
    }

    /// Lowers to the engine scheduler.
    ///
    /// # Errors
    ///
    /// Returns a message naming the unknown scheduler kind.
    pub fn scheduler(&self) -> Result<SchedulerKind, String> {
        Ok(match self.kind.as_str() {
            "fifo" => SchedulerKind::Fifo,
            "lifo" => SchedulerKind::Lifo,
            "random" => SchedulerKind::Random { seed: self.seed },
            "starve" => SchedulerKind::Starve,
            other => return Err(format!("unknown scheduler kind {other:?}")),
        })
    }
}

/// One grid cell: which instance to run, under which scheme and engine
/// configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSpec {
    /// Cell label for the JSON artifact.
    pub label: String,
    /// Index into [`SweepSpec::instances`].
    pub instance: u64,
    /// Scheme name (`"tree-wakeup"`, `"scheme-b"`, `"flood"`,
    /// `"robust-tree-wakeup"`, `"retry-broadcast"`); the bench crate owns
    /// the name → protocol table.
    pub scheme: String,
    /// Retry budget for `"retry-broadcast"`; meaningless otherwise.
    pub retries: Option<u64>,
    /// Task rules: `"broadcast"` or `"wakeup"`.
    pub mode: String,
    /// Asynchronous delivery order; `None` keeps synchronous rounds.
    pub scheduler: Option<SchedulerSpec>,
    /// Erase node identities (the anonymous model).
    pub anonymous: bool,
    /// Bound every payload to this many bits.
    pub max_message_bits: Option<u64>,
    /// Quiescence-poll budget override.
    pub quiescence_polls: Option<u64>,
    /// The cell's checkpoint seed, recorded in journals and validated on
    /// resume.
    pub seed: u64,
    /// Faults injected into this cell's run.
    pub faults: FaultSpec,
}

impl CellSpec {
    /// Lowers this cell's engine configuration.
    ///
    /// # Errors
    ///
    /// Returns a first-error message for an unknown mode or scheduler.
    pub fn sim_config(&self) -> Result<SimConfig, String> {
        let mut config = match self.mode.as_str() {
            "broadcast" => SimConfig::broadcast(),
            "wakeup" => SimConfig::wakeup(),
            other => return Err(format!("unknown mode {other:?}")),
        };
        if let Some(sched) = &self.scheduler {
            config = config.with_scheduler(sched.scheduler()?);
        }
        config = config.with_anonymous(self.anonymous);
        if let Some(bits) = self.max_message_bits {
            config = config.with_max_message_bits(bits);
        }
        if let Some(polls) = self.quiescence_polls {
            config = config.with_quiescence_polls(polls as u32);
        }
        // An inert plan makes the engine take the exact fault-free code
        // path, so installing the default plan is byte-identical to
        // leaving it out.
        Ok(config.with_faults(self.faults.plan()))
    }
}

/// A serializable [`FaultPlan`]: probabilities in parts-per-million,
/// crash schedules as `[node, k]` pairs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSpec {
    /// Seed for every fault decision.
    pub seed: u64,
    /// In-flight drop probability, parts-per-million.
    pub drop_ppm: u64,
    /// Duplicate-delivery probability, parts-per-million.
    pub duplicate_ppm: u64,
    /// Payload bit-flip probability, parts-per-million.
    pub bit_flip_ppm: u64,
    /// Crash-stop schedule: `(node, k)` — the node transmits its first
    /// `k` messages, then halts.
    pub crashes: Vec<(u64, u64)>,
    /// Pre-run advice corruption.
    pub advice: AdviceSpec,
}

impl FaultSpec {
    /// Lowers to the engine's fault plan.
    pub fn plan(&self) -> FaultPlan {
        FaultPlan {
            seed: self.seed,
            drop_prob: from_ppm(self.drop_ppm),
            duplicate_prob: from_ppm(self.duplicate_ppm),
            bit_flip_prob: from_ppm(self.bit_flip_ppm),
            crashes: self.crashes.iter().map(|&(v, k)| (v as usize, k)).collect(),
            advice: self.advice.adversary(),
        }
    }
}

/// A serializable [`AdviceAdversary`].
#[derive(Debug, Clone, PartialEq, Default)]
pub enum AdviceSpec {
    /// Leave the advice untouched.
    #[default]
    None,
    /// Flip each advice bit with the given parts-per-million probability.
    FlipBits {
        /// Per-bit flip probability, parts-per-million.
        prob_ppm: u64,
    },
    /// Keep only the leading fraction of each advice string.
    Truncate {
        /// Fraction kept, parts-per-million.
        keep_ppm: u64,
    },
    /// Swap the advice strings of two nodes.
    SwapPair {
        /// First node.
        a: u64,
        /// Second node.
        b: u64,
    },
    /// Replace advice with uniformly random bits, per node.
    Garbage {
        /// Per-node replacement probability, parts-per-million.
        prob_ppm: u64,
        /// Replacement string length in bits.
        bits: u64,
    },
}

impl AdviceSpec {
    /// Lowers to the engine adversary.
    pub fn adversary(&self) -> AdviceAdversary {
        match *self {
            AdviceSpec::None => AdviceAdversary::None,
            AdviceSpec::FlipBits { prob_ppm } => AdviceAdversary::FlipBits {
                prob: from_ppm(prob_ppm),
            },
            AdviceSpec::Truncate { keep_ppm } => AdviceAdversary::Truncate {
                keep: from_ppm(keep_ppm),
            },
            AdviceSpec::SwapPair { a, b } => AdviceAdversary::SwapPair {
                a: a as usize,
                b: b as usize,
            },
            AdviceSpec::Garbage { prob_ppm, bits } => AdviceAdversary::Garbage {
                prob: from_ppm(prob_ppm),
                bits: bits as usize,
            },
        }
    }

    fn to_json(&self) -> Json {
        match *self {
            AdviceSpec::None => Json::obj().field("kind", "none"),
            AdviceSpec::FlipBits { prob_ppm } => Json::obj()
                .field("kind", "flip-bits")
                .field("prob_ppm", prob_ppm),
            AdviceSpec::Truncate { keep_ppm } => Json::obj()
                .field("kind", "truncate")
                .field("keep_ppm", keep_ppm),
            AdviceSpec::SwapPair { a, b } => Json::obj()
                .field("kind", "swap-pair")
                .field("a", a)
                .field("b", b),
            AdviceSpec::Garbage { prob_ppm, bits } => Json::obj()
                .field("kind", "garbage")
                .field("prob_ppm", prob_ppm)
                .field("bits", bits),
        }
    }

    fn from_json(j: &Json, path: &str) -> Result<AdviceSpec, String> {
        let f = fields(j, path)?;
        let kind = req_str(f, "kind", path)?;
        match kind.as_str() {
            "none" => {
                check_unknown(f, &["kind"], path)?;
                Ok(AdviceSpec::None)
            }
            "flip-bits" => {
                check_unknown(f, &["kind", "prob_ppm"], path)?;
                Ok(AdviceSpec::FlipBits {
                    prob_ppm: req_u64(f, "prob_ppm", path)?,
                })
            }
            "truncate" => {
                check_unknown(f, &["kind", "keep_ppm"], path)?;
                Ok(AdviceSpec::Truncate {
                    keep_ppm: req_u64(f, "keep_ppm", path)?,
                })
            }
            "swap-pair" => {
                check_unknown(f, &["kind", "a", "b"], path)?;
                Ok(AdviceSpec::SwapPair {
                    a: req_u64(f, "a", path)?,
                    b: req_u64(f, "b", path)?,
                })
            }
            "garbage" => {
                check_unknown(f, &["kind", "prob_ppm", "bits"], path)?;
                Ok(AdviceSpec::Garbage {
                    prob_ppm: req_u64(f, "prob_ppm", path)?,
                    bits: req_u64(f, "bits", path)?,
                })
            }
            other => Err(format!("{path}.kind: unknown adversary {other:?}")),
        }
    }
}

/// Supervision and scheduling knobs shared by a whole sweep.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct KnobSpec {
    /// Retry budget for failed cells.
    pub max_retries: u64,
    /// Per-cell watchdog step budget.
    pub cell_timeout: Option<u64>,
    /// Fixed scheduler sub-task size; `None` sizes chunks from cost
    /// hints. Granularity only — never results.
    pub chunk: Option<u64>,
}

impl SweepSpec {
    /// An empty version-1 spec with the given name and master seed.
    pub fn new(name: impl Into<String>, master_seed: u64) -> SweepSpec {
        SweepSpec {
            version: 1,
            name: name.into(),
            master_seed,
            instances: Vec::new(),
            cells: Vec::new(),
            knobs: KnobSpec::default(),
        }
    }

    /// The canonical JSON form.
    pub fn to_json(&self) -> Json {
        let instances: Vec<Json> = self.instances.iter().map(instance_json).collect();
        let cells: Vec<Json> = self.cells.iter().map(cell_json).collect();
        let mut knobs = Json::obj().field("max_retries", self.knobs.max_retries);
        if let Some(t) = self.knobs.cell_timeout {
            knobs = knobs.field("cell_timeout", t);
        }
        if let Some(c) = self.knobs.chunk {
            knobs = knobs.field("chunk", c);
        }
        Json::obj()
            .field("version", self.version)
            .field("name", self.name.as_str())
            .field("master_seed", self.master_seed)
            .field("instances", instances)
            .field("cells", cells)
            .field("knobs", knobs)
    }

    /// The canonical rendered form — the wire and submit format.
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// Job identity: the FNV-1a digest of the canonical render. Two specs
    /// share a digest iff they describe the same sweep.
    pub fn digest(&self) -> u64 {
        crate::journal::fnv1a64(self.render().as_bytes())
    }

    /// Parses a rendered spec.
    ///
    /// # Errors
    ///
    /// Returns a first-error message: malformed JSON, an unknown or
    /// mis-typed field (with its path), or a structural violation such
    /// as an out-of-range instance index.
    pub fn parse(s: &str) -> Result<SweepSpec, String> {
        let j = crate::json::parse(s).ok_or_else(|| {
            "spec is not canonical JSON (render with `oraclesize spec` or SweepSpec::render)"
                .to_string()
        })?;
        SweepSpec::from_json(&j)
    }

    /// Decodes a parsed [`Json`] value; same errors as [`SweepSpec::parse`].
    ///
    /// # Errors
    ///
    /// Returns a first-error message naming the offending field path.
    pub fn from_json(j: &Json) -> Result<SweepSpec, String> {
        let f = fields(j, "spec")?;
        check_unknown(
            f,
            &[
                "version",
                "name",
                "master_seed",
                "instances",
                "cells",
                "knobs",
            ],
            "spec",
        )?;
        let version = req_u64(f, "version", "spec")?;
        if version != 1 {
            return Err(format!(
                "spec.version: unsupported version {version} (this build reads 1)"
            ));
        }
        let name = req_str(f, "name", "spec")?;
        let master_seed = req_u64(f, "master_seed", "spec")?;
        let instances = req_array(f, "instances", "spec")?
            .iter()
            .enumerate()
            .map(|(i, j)| instance_from_json(j, &format!("instances[{i}]")))
            .collect::<Result<Vec<_>, _>>()?;
        let cells = req_array(f, "cells", "spec")?
            .iter()
            .enumerate()
            .map(|(i, j)| cell_from_json(j, &format!("cells[{i}]")))
            .collect::<Result<Vec<_>, _>>()?;
        let knobs = knobs_from_json(req_field(f, "knobs", "spec")?, "knobs")?;
        let spec = SweepSpec {
            version,
            name,
            master_seed,
            instances,
            cells,
            knobs,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Structural checks beyond field shapes.
    ///
    /// # Errors
    ///
    /// Returns a first-error message for an instance index out of range.
    pub fn validate(&self) -> Result<(), String> {
        for (i, cell) in self.cells.iter().enumerate() {
            if cell.instance >= self.instances.len() as u64 {
                return Err(format!(
                    "cells[{i}].instance: index {} out of range ({} instances)",
                    cell.instance,
                    self.instances.len()
                ));
            }
        }
        Ok(())
    }
}

fn instance_json(inst: &InstanceSpec) -> Json {
    let mut j = Json::obj()
        .field("family", inst.family.as_str())
        .field("n", inst.n)
        .field("seed", inst.seed);
    if let Some(p) = inst.p_ppm {
        j = j.field("p_ppm", p);
    }
    j.field("source", inst.source)
        .field("oracle", inst.oracle.as_str())
}

fn instance_from_json(j: &Json, path: &str) -> Result<InstanceSpec, String> {
    let f = fields(j, path)?;
    check_unknown(
        f,
        &["family", "n", "seed", "p_ppm", "source", "oracle"],
        path,
    )?;
    Ok(InstanceSpec {
        family: req_str(f, "family", path)?,
        n: req_u64(f, "n", path)?,
        seed: req_u64(f, "seed", path)?,
        p_ppm: opt_u64(f, "p_ppm", path)?,
        source: req_u64(f, "source", path)?,
        oracle: req_str(f, "oracle", path)?,
    })
}

fn cell_json(cell: &CellSpec) -> Json {
    let mut j = Json::obj()
        .field("label", cell.label.as_str())
        .field("instance", cell.instance)
        .field("scheme", cell.scheme.as_str());
    if let Some(r) = cell.retries {
        j = j.field("retries", r);
    }
    j = j.field("mode", cell.mode.as_str());
    if let Some(s) = &cell.scheduler {
        j = j.field(
            "scheduler",
            Json::obj()
                .field("kind", s.kind.as_str())
                .field("seed", s.seed),
        );
    }
    j = j.field("anonymous", cell.anonymous);
    if let Some(b) = cell.max_message_bits {
        j = j.field("max_message_bits", b);
    }
    if let Some(p) = cell.quiescence_polls {
        j = j.field("quiescence_polls", p);
    }
    j.field("seed", cell.seed)
        .field("faults", fault_json(&cell.faults))
}

fn cell_from_json(j: &Json, path: &str) -> Result<CellSpec, String> {
    let f = fields(j, path)?;
    check_unknown(
        f,
        &[
            "label",
            "instance",
            "scheme",
            "retries",
            "mode",
            "scheduler",
            "anonymous",
            "max_message_bits",
            "quiescence_polls",
            "seed",
            "faults",
        ],
        path,
    )?;
    let scheduler = match get(f, "scheduler") {
        None => None,
        Some(j) => {
            let spath = format!("{path}.scheduler");
            let sf = fields(j, &spath)?;
            check_unknown(sf, &["kind", "seed"], &spath)?;
            Some(SchedulerSpec {
                kind: req_str(sf, "kind", &spath)?,
                seed: req_u64(sf, "seed", &spath)?,
            })
        }
    };
    Ok(CellSpec {
        label: req_str(f, "label", path)?,
        instance: req_u64(f, "instance", path)?,
        scheme: req_str(f, "scheme", path)?,
        retries: opt_u64(f, "retries", path)?,
        mode: req_str(f, "mode", path)?,
        scheduler,
        anonymous: req_bool(f, "anonymous", path)?,
        max_message_bits: opt_u64(f, "max_message_bits", path)?,
        quiescence_polls: opt_u64(f, "quiescence_polls", path)?,
        seed: req_u64(f, "seed", path)?,
        faults: fault_from_json(req_field(f, "faults", path)?, &format!("{path}.faults"))?,
    })
}

fn fault_json(faults: &FaultSpec) -> Json {
    let crashes: Vec<Json> = faults
        .crashes
        .iter()
        .map(|&(v, k)| Json::Array(vec![Json::U64(v), Json::U64(k)]))
        .collect();
    Json::obj()
        .field("seed", faults.seed)
        .field("drop_ppm", faults.drop_ppm)
        .field("duplicate_ppm", faults.duplicate_ppm)
        .field("bit_flip_ppm", faults.bit_flip_ppm)
        .field("crashes", crashes)
        .field("advice", faults.advice.to_json())
}

fn fault_from_json(j: &Json, path: &str) -> Result<FaultSpec, String> {
    let f = fields(j, path)?;
    check_unknown(
        f,
        &[
            "seed",
            "drop_ppm",
            "duplicate_ppm",
            "bit_flip_ppm",
            "crashes",
            "advice",
        ],
        path,
    )?;
    let crashes = req_array(f, "crashes", path)?
        .iter()
        .enumerate()
        .map(|(i, j)| match j {
            Json::Array(pair) => match pair.as_slice() {
                [Json::U64(v), Json::U64(k)] => Ok((*v, *k)),
                _ => Err(format!("{path}.crashes[{i}]: expected a [node, k] pair")),
            },
            _ => Err(format!("{path}.crashes[{i}]: expected a [node, k] pair")),
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(FaultSpec {
        seed: req_u64(f, "seed", path)?,
        drop_ppm: req_u64(f, "drop_ppm", path)?,
        duplicate_ppm: req_u64(f, "duplicate_ppm", path)?,
        bit_flip_ppm: req_u64(f, "bit_flip_ppm", path)?,
        crashes,
        advice: AdviceSpec::from_json(req_field(f, "advice", path)?, &format!("{path}.advice"))?,
    })
}

fn knobs_from_json(j: &Json, path: &str) -> Result<KnobSpec, String> {
    let f = fields(j, path)?;
    check_unknown(f, &["max_retries", "cell_timeout", "chunk"], path)?;
    Ok(KnobSpec {
        max_retries: req_u64(f, "max_retries", path)?,
        cell_timeout: opt_u64(f, "cell_timeout", path)?,
        chunk: opt_u64(f, "chunk", path)?,
    })
}

// ---- strict field access -------------------------------------------------

fn fields<'a>(j: &'a Json, path: &str) -> Result<&'a [(String, Json)], String> {
    match j {
        Json::Object(f) => Ok(f),
        _ => Err(format!("{path}: expected an object")),
    }
}

fn check_unknown(fields: &[(String, Json)], known: &[&str], path: &str) -> Result<(), String> {
    for (k, _) in fields {
        if !known.iter().any(|n| n == k) {
            return Err(format!("{path}: unknown field {k:?}"));
        }
    }
    Ok(())
}

fn get<'a>(fields: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn req_field<'a>(fields: &'a [(String, Json)], key: &str, path: &str) -> Result<&'a Json, String> {
    get(fields, key).ok_or_else(|| format!("{path}: missing field {key:?}"))
}

fn req_array<'a>(
    fields: &'a [(String, Json)],
    key: &str,
    path: &str,
) -> Result<&'a [Json], String> {
    match get(fields, key) {
        Some(Json::Array(items)) => Ok(items),
        Some(_) => Err(format!("{path}.{key}: expected an array")),
        None => Err(format!("{path}: missing field {key:?}")),
    }
}

fn req_u64(fields: &[(String, Json)], key: &str, path: &str) -> Result<u64, String> {
    match get(fields, key) {
        Some(Json::U64(v)) => Ok(*v),
        Some(_) => Err(format!("{path}.{key}: expected an unsigned integer")),
        None => Err(format!("{path}: missing field {key:?}")),
    }
}

fn opt_u64(fields: &[(String, Json)], key: &str, path: &str) -> Result<Option<u64>, String> {
    match get(fields, key) {
        Some(Json::U64(v)) => Ok(Some(*v)),
        Some(_) => Err(format!("{path}.{key}: expected an unsigned integer")),
        None => Ok(None),
    }
}

fn req_str(fields: &[(String, Json)], key: &str, path: &str) -> Result<String, String> {
    match get(fields, key) {
        Some(Json::Str(s)) => Ok(s.clone()),
        Some(_) => Err(format!("{path}.{key}: expected a string")),
        None => Err(format!("{path}: missing field {key:?}")),
    }
}

fn req_bool(fields: &[(String, Json)], key: &str, path: &str) -> Result<bool, String> {
    match get(fields, key) {
        Some(Json::Bool(b)) => Ok(*b),
        Some(_) => Err(format!("{path}.{key}: expected a boolean")),
        None => Err(format!("{path}: missing field {key:?}")),
    }
}

// ---- artifact rendering --------------------------------------------------

/// Renders labeled reports as the deterministic grid fragment used by
/// every `BENCH_*.json` artifact: one record per cell plus an aggregate,
/// folded in cell order. This is the single renderer behind
/// `CellGrid::to_json` and the sweep service's merged artifacts — the
/// byte-identity contract between local and distributed runs rests on
/// both calling it.
pub fn grid_json(labels: &[String], reports: &[RunReport]) -> Json {
    let cells: Vec<Json> = labels
        .iter()
        .zip(reports)
        .enumerate()
        .map(|(i, (label, report))| {
            let base = Json::obj().field("cell", i).field("label", label.as_str());
            match &report.result {
                Ok(out) => {
                    let record = base
                        .field("completed", out.completed)
                        .field("uninformed", out.uninformed)
                        .field("crashed_nodes", out.crashed_nodes)
                        .field("oracle_bits", out.oracle_bits)
                        .field("messages", out.metrics.messages)
                        .field("payload_bits", out.metrics.payload_bits)
                        .field("max_message_bits", out.metrics.max_message_bits)
                        .field("rounds", out.metrics.rounds)
                        .field("steps", out.metrics.steps)
                        .field("informed_nodes", out.metrics.informed_nodes)
                        .field("dropped", out.metrics.faults.dropped)
                        .field("duplicated", out.metrics.faults.duplicated)
                        .field("payload_flips", out.metrics.faults.payload_flips)
                        .field("advice_mutations", out.metrics.faults.advice_mutations);
                    // Untraced cells (the committed BENCH_T*.json
                    // artifacts) carry zeroed stats and keep their exact
                    // historical bytes.
                    if out.trace_stats == oraclesize_sim::TraceStats::default() {
                        record
                    } else {
                        record.field("trace", stats_json(&out.trace_stats))
                    }
                }
                Err(e) => base.field("error", e.as_str()),
            }
        })
        .collect();
    let mut agg = Aggregate::new();
    drain(&mut agg, reports);
    Json::obj()
        .field("cells", cells)
        .field("aggregate", agg.finish())
}

/// Wraps an experiment body in the committed artifact envelope:
/// `{"experiment": …, "seed": …, "body": …}`. The file on disk is this
/// render plus a trailing newline.
pub fn artifact_json(name: &str, master_seed: u64, body: Json) -> Json {
    Json::obj()
        .field("experiment", name.to_lowercase())
        .field("seed", master_seed)
        .field("body", body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rich_spec() -> SweepSpec {
        let mut spec = SweepSpec::new("demo", 2006);
        spec.instances.push(InstanceSpec {
            family: "random-connected".to_string(),
            n: 32,
            seed: 7,
            p_ppm: Some(to_ppm(0.08)),
            source: 0,
            oracle: "spanning-tree".to_string(),
        });
        spec.instances.push(InstanceSpec {
            family: "cycle".to_string(),
            n: 6,
            seed: 0,
            p_ppm: None,
            source: 2,
            oracle: "empty".to_string(),
        });
        spec.cells.push(CellSpec {
            label: "wakeup/fifo".to_string(),
            instance: 0,
            scheme: "tree-wakeup".to_string(),
            retries: None,
            mode: "wakeup".to_string(),
            scheduler: Some(SchedulerSpec {
                kind: "random".to_string(),
                seed: 41,
            }),
            anonymous: true,
            max_message_bits: Some(0),
            quiescence_polls: None,
            seed: 0,
            faults: FaultSpec::default(),
        });
        spec.cells.push(CellSpec {
            label: "flood".to_string(),
            instance: 1,
            scheme: "flood".to_string(),
            retries: Some(2),
            mode: "broadcast".to_string(),
            scheduler: None,
            anonymous: false,
            max_message_bits: None,
            quiescence_polls: Some(16),
            seed: 9,
            faults: FaultSpec {
                seed: 3,
                drop_ppm: to_ppm(0.3),
                duplicate_ppm: 0,
                bit_flip_ppm: to_ppm(0.1),
                crashes: vec![(1, 0), (4, 2)],
                advice: AdviceSpec::Garbage {
                    prob_ppm: to_ppm(0.75),
                    bits: 40,
                },
            },
        });
        spec.knobs = KnobSpec {
            max_retries: 2,
            cell_timeout: Some(100_000),
            chunk: Some(1),
        };
        spec
    }

    #[test]
    fn round_trip_is_lossless() {
        let spec = rich_spec();
        let rendered = spec.render();
        let parsed = SweepSpec::parse(&rendered).expect("parse");
        assert_eq!(parsed, spec);
        assert_eq!(parsed.render(), rendered);
        assert_eq!(parsed.digest(), spec.digest());
    }

    #[test]
    fn ppm_round_trips_experiment_probabilities() {
        for p in [0.0, 0.08, 0.1, 0.25, 0.3, 0.5, 0.75, 1.0] {
            assert_eq!(from_ppm(to_ppm(p)), p, "{p}");
        }
    }

    #[test]
    fn unknown_fields_are_rejected_with_a_path() {
        let j = rich_spec().to_json().field("extra", 1u64);
        let err = SweepSpec::from_json(&j).unwrap_err();
        assert_eq!(err, "spec: unknown field \"extra\"");
    }

    #[test]
    fn mistyped_fields_are_rejected_with_a_path() {
        let rendered = rich_spec()
            .render()
            .replace("\"master_seed\": 2006", "\"master_seed\": \"2006\"");
        let err = SweepSpec::parse(&rendered).unwrap_err();
        assert_eq!(err, "spec.master_seed: expected an unsigned integer");
    }

    #[test]
    fn nested_unknown_fields_name_the_cell() {
        let mut j = rich_spec().to_json();
        if let Json::Object(fields) = &mut j {
            for (k, v) in fields.iter_mut() {
                if k == "cells" {
                    if let Json::Array(cells) = v {
                        let cell = cells[1].clone().field("typo", true);
                        cells[1] = cell;
                    }
                }
            }
        }
        let err = SweepSpec::from_json(&j).unwrap_err();
        assert_eq!(err, "cells[1]: unknown field \"typo\"");
    }

    #[test]
    fn instance_index_out_of_range_is_rejected() {
        let mut spec = rich_spec();
        spec.cells[0].instance = 9;
        let err = SweepSpec::parse(&spec.render()).unwrap_err();
        assert_eq!(err, "cells[0].instance: index 9 out of range (2 instances)");
    }

    #[test]
    fn sim_config_lowering_matches_builders() {
        let spec = rich_spec();
        let cfg = spec.cells[0].sim_config().expect("config");
        assert!(!cfg.synchronous);
        assert_eq!(cfg.scheduler, SchedulerKind::Random { seed: 41 });
        assert!(cfg.anonymous);
        assert_eq!(cfg.max_message_bits, Some(0));
        let cfg = spec.cells[1].sim_config().expect("config");
        assert!(cfg.synchronous);
        assert_eq!(cfg.max_quiescence_polls, 16);
        assert_eq!(cfg.faults.crashes.len(), 2);
        assert_eq!(cfg.faults.drop_prob, 0.3);
        let mut bad = spec.cells[0].clone();
        bad.mode = "gossip".to_string();
        assert!(bad.sim_config().unwrap_err().contains("unknown mode"));
    }

    #[test]
    fn scheduler_spec_round_trips_kinds() {
        for kind in SchedulerKind::sweep(99) {
            assert_eq!(SchedulerSpec::of(kind).scheduler(), Ok(kind));
        }
        let bad = SchedulerSpec {
            kind: "psychic".to_string(),
            seed: 0,
        };
        assert!(bad.scheduler().unwrap_err().contains("psychic"));
    }

    #[test]
    fn artifact_envelope_matches_emit_json_shape() {
        let j = artifact_json("T10", 2006, Json::obj().field("cells", Vec::<Json>::new()));
        assert_eq!(
            j.render(),
            "{\"experiment\": \"t10\", \"seed\": 2006, \"body\": {\"cells\": []}}"
        );
    }
}
