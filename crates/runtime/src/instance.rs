//! `Arc`-shared immutable problem instances.

use std::sync::Arc;

use oraclesize_bits::BitString;
use oraclesize_core::{advice_size, Oracle};
use oraclesize_graph::{NodeId, PortGraph};

/// One immutable problem instance: a port-labeled graph, a source, and the
/// advice an oracle assigned — built **once**, then shared by every cell
/// and every worker thread through an `Arc`.
///
/// Building dense instances (and running oracles on them) dominates many
/// sweeps; sharing removes both the rebuild and the per-seed advice
/// recomputation from the hot path. The graph itself is held behind its
/// own `Arc` so several instances (e.g. one per scheme, whose oracles
/// assign different advice) can still share a single adjacency structure.
#[derive(Debug, Clone)]
pub struct Instance {
    /// The shared network.
    pub graph: Arc<PortGraph>,
    /// The broadcast/wakeup source the advice was computed for.
    pub source: NodeId,
    /// Per-node advice strings.
    pub advice: Vec<BitString>,
    /// Total advice size in bits — the paper's oracle size.
    pub oracle_bits: u64,
}

impl Instance {
    /// Runs `oracle` on the shared graph and freezes the result.
    pub fn build(graph: Arc<PortGraph>, source: NodeId, oracle: &dyn Oracle) -> Arc<Instance> {
        let advice = oracle.advise(&graph, source);
        let oracle_bits = advice_size(&advice);
        Arc::new(Instance {
            graph,
            source,
            advice,
            oracle_bits,
        })
    }

    /// Freezes precomputed advice (for callers that build advice by hand).
    pub fn with_advice(
        graph: Arc<PortGraph>,
        source: NodeId,
        advice: Vec<BitString>,
    ) -> Arc<Instance> {
        let oracle_bits = advice_size(&advice);
        Arc::new(Instance {
            graph,
            source,
            advice,
            oracle_bits,
        })
    }

    /// Number of nodes in the shared graph.
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }
}

// The whole point of Instance is cross-thread sharing; fail compilation
// loudly if a field ever stops being Send + Sync.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Instance>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use oraclesize_core::oracle::EmptyOracle;
    use oraclesize_graph::families;

    #[test]
    fn build_computes_oracle_size() {
        let g = Arc::new(families::cycle(6));
        let inst = Instance::build(Arc::clone(&g), 0, &EmptyOracle);
        assert_eq!(inst.oracle_bits, 0);
        assert_eq!(inst.advice.len(), 6);
        assert_eq!(inst.num_nodes(), 6);
        // The graph is shared, not copied.
        assert!(Arc::ptr_eq(&g, &inst.graph));
    }
}
