//! The chaos harness: deterministic failure injection for the supervised
//! sweep path.
//!
//! Recovery code that is only ever exercised by real outages is recovery
//! code that does not work. This module injects the three failures the
//! supervision layer claims to survive — a worker panic at a chosen cell,
//! a stall that trips the watchdog, and a torn journal write — so
//! proptests and the CI `chaos-smoke` job can drill the paths on every
//! run.
//!
//! **Test/bin-only API.** Nothing here belongs in production call sites:
//! the only consumers are tests, the `chaos_smoke` binary, and the
//! supervision layer's injection hook. Plans are inert by default, and an
//! inert plan costs two `BTreeMap` lookups per attempt.
//!
//! Everything is keyed on `(cell, attempt)` — no randomness, no clocks —
//! so an injected failure schedule is exactly reproducible, which is what
//! lets the kill/resume proptests assert byte-identical artifacts.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::path::Path;

/// What the harness does to one `(cell, attempt)` execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Injection {
    /// Run the cell normally.
    None,
    /// Panic inside the worker (exercises `catch_unwind` isolation).
    Panic,
    /// Wedge the worker past the watchdog (exercises the timeout path).
    Stall,
}

/// A deterministic failure schedule for one sweep.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    /// cell → number of leading attempts that panic.
    panic_cells: BTreeMap<usize, u32>,
    /// cell → number of leading attempts that stall.
    stall_cells: BTreeMap<usize, u32>,
    /// Cells `>= die_at` never run: the "process killed mid-sweep"
    /// simulation the resume tests are built on.
    die_at: Option<usize>,
}

impl ChaosPlan {
    /// An inert plan (injects nothing).
    pub fn new() -> ChaosPlan {
        ChaosPlan::default()
    }

    /// The first `attempts` attempts of `cell` panic; later attempts run
    /// clean — pair with a retry budget to exercise
    /// `Degraded { retries }` recovery.
    #[must_use]
    pub fn panic_at(mut self, cell: usize, attempts: u32) -> ChaosPlan {
        self.panic_cells.insert(cell, attempts);
        self
    }

    /// The first `attempts` attempts of `cell` stall until the watchdog
    /// fires.
    #[must_use]
    pub fn stall_at(mut self, cell: usize, attempts: u32) -> ChaosPlan {
        self.stall_cells.insert(cell, attempts);
        self
    }

    /// Kill the sweep before `cell` runs: cells `>= cell` are marked
    /// `Aborted` without executing and the sweep reports itself
    /// interrupted. Resume with an inert plan to finish the job.
    #[must_use]
    pub fn die_before(mut self, cell: usize) -> ChaosPlan {
        self.die_at = Some(cell);
        self
    }

    /// `true` iff this plan never interferes.
    pub fn is_inert(&self) -> bool {
        self.panic_cells.is_empty() && self.stall_cells.is_empty() && self.die_at.is_none()
    }

    /// What happens to attempt `attempt` of `cell`.
    pub fn injection(&self, cell: usize, attempt: u32) -> Injection {
        if self.panic_cells.get(&cell).is_some_and(|&n| attempt < n) {
            Injection::Panic
        } else if self.stall_cells.get(&cell).is_some_and(|&n| attempt < n) {
            Injection::Stall
        } else {
            Injection::None
        }
    }

    /// `true` when the simulated kill point precedes `cell`.
    pub fn dies_before(&self, cell: usize) -> bool {
        self.die_at.is_some_and(|at| cell >= at)
    }
}

/// The deliberate panic behind [`Injection::Panic`]. Lives here (not in
/// the supervisor) so the one sanctioned panic site sits inside the chaos
/// harness itself.
pub(crate) fn trigger_panic(cell: usize, attempt: u32) -> ! {
    // lint:allow(P001): the chaos harness exists to inject this panic;
    // it only fires under a non-inert plan, inside catch_unwind.
    panic!("chaos: injected panic at cell {cell}, attempt {attempt}")
}

/// Simulates a torn final write by cutting `bytes` bytes off the end of
/// the file at `path`. Returns the file's new length.
///
/// # Errors
///
/// Propagates filesystem errors (missing file, unwritable path).
pub fn tear_tail(path: &Path, bytes: u64) -> std::io::Result<u64> {
    let mut content = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut content)?;
    let keep = content
        .len()
        .saturating_sub(usize::try_from(bytes).unwrap_or(usize::MAX));
    let mut f = std::fs::File::create(path)?;
    f.write_all(&content[..keep])?;
    f.sync_all()?;
    Ok(keep as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_injects_nothing() {
        let plan = ChaosPlan::new();
        assert!(plan.is_inert());
        assert_eq!(plan.injection(0, 0), Injection::None);
        assert!(!plan.dies_before(usize::MAX));
    }

    #[test]
    fn injections_expire_after_their_attempt_budget() {
        let plan = ChaosPlan::new().panic_at(3, 2).stall_at(5, 1);
        assert_eq!(plan.injection(3, 0), Injection::Panic);
        assert_eq!(plan.injection(3, 1), Injection::Panic);
        assert_eq!(plan.injection(3, 2), Injection::None);
        assert_eq!(plan.injection(5, 0), Injection::Stall);
        assert_eq!(plan.injection(5, 1), Injection::None);
        assert_eq!(plan.injection(4, 0), Injection::None);
    }

    #[test]
    fn die_before_is_a_suffix() {
        let plan = ChaosPlan::new().die_before(7);
        assert!(!plan.dies_before(6));
        assert!(plan.dies_before(7));
        assert!(plan.dies_before(8));
    }

    #[test]
    fn tear_tail_shortens_the_file() {
        let dir = std::env::temp_dir().join(format!("oraclesize-chaos-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tear.bin");
        std::fs::write(&path, b"0123456789").unwrap();
        assert_eq!(tear_tail(&path, 4).unwrap(), 6);
        assert_eq!(std::fs::read(&path).unwrap(), b"012345");
        assert_eq!(tear_tail(&path, 100).unwrap(), 0);
    }
}
