//! The batch API: `RunRequest` in, `RunReport` out, cell order preserved.

use std::sync::Arc;

use oraclesize_sim::engine::{run, Completion, SimConfig, SimError};
use oraclesize_sim::protocol::Protocol;
use oraclesize_sim::RunMetrics;

use crate::instance::Instance;
use crate::pool::Pool;

/// One cell of an experiment grid: which instance to run, with which
/// scheme, under which configuration.
///
/// Requests are cheap to build — the instance is `Arc`-shared and the
/// protocol is a (usually zero-sized) `Arc`ed factory — so grids with
/// thousands of cells cost nothing beyond their `SimConfig`s.
#[derive(Clone)]
pub struct RunRequest {
    /// The shared `(graph, advice)` instance.
    pub instance: Arc<Instance>,
    /// The scheme to execute. `Send + Sync` because one factory serves
    /// every worker thread.
    pub protocol: Arc<dyn Protocol + Send + Sync>,
    /// Engine configuration (task mode, scheduler, faults, limits).
    pub config: SimConfig,
}

impl RunRequest {
    /// Convenience constructor.
    pub fn new(
        instance: Arc<Instance>,
        protocol: Arc<dyn Protocol + Send + Sync>,
        config: SimConfig,
    ) -> Self {
        RunRequest {
            instance,
            protocol,
            config,
        }
    }
}

/// The comparable summary of one successful cell execution.
///
/// Everything here is plain old data with `Eq`, so whole report vectors
/// can be compared across thread counts — the determinism property the
/// runtime guarantees and the tests enforce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellOutcome {
    /// Oracle size of the instance, in bits.
    pub oracle_bits: u64,
    /// Engine accounting (messages, bits, rounds, steps, fault counts).
    pub metrics: RunMetrics,
    /// `true` iff every *surviving* node ended informed
    /// ([`Completion::Completed`]).
    pub completed: bool,
    /// Surviving nodes left uninformed (0 when `completed`).
    pub uninformed: usize,
    /// Nodes that crash-stopped during the run.
    pub crashed_nodes: usize,
}

/// The result of one cell: its index plus either an outcome or the
/// engine's abort error (stringified, keeping the report `Eq`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// The cell index this report answers (same as its position in the
    /// vector [`run_batch`] returns).
    pub cell: usize,
    /// Outcome, or the rendered [`SimError`] if the run aborted.
    pub result: Result<CellOutcome, String>,
}

impl RunReport {
    /// The outcome, if the run did not abort.
    pub fn outcome(&self) -> Option<&CellOutcome> {
        self.result.as_ref().ok()
    }
}

/// Executes a single request on the calling thread.
pub fn run_cell(request: &RunRequest) -> Result<CellOutcome, SimError> {
    let inst = &request.instance;
    let outcome = run(
        &inst.graph,
        inst.source,
        &inst.advice,
        request.protocol.as_ref(),
        &request.config,
    )?;
    let (completed, uninformed) = match outcome.classify() {
        Completion::Completed => (true, 0),
        Completion::Degraded { uninformed } => (false, uninformed),
    };
    Ok(CellOutcome {
        oracle_bits: inst.oracle_bits,
        metrics: outcome.metrics,
        completed,
        uninformed,
        crashed_nodes: outcome.crashed.iter().filter(|&&c| c).count(),
    })
}

/// Runs every request across the pool and returns reports **in cell
/// order**. Identical output at any thread count (see the crate-level
/// determinism contract).
pub fn run_batch(pool: &Pool, requests: &[RunRequest]) -> Vec<RunReport> {
    pool.run(requests.len(), |cell| RunReport {
        cell,
        result: run_cell(&requests[cell]).map_err(|e| e.to_string()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use oraclesize_core::oracle::EmptyOracle;
    use oraclesize_graph::families;
    use oraclesize_sim::protocol::FloodOnce;
    use oraclesize_sim::{SimConfig, TaskMode};

    #[test]
    fn batch_reports_carry_cell_indices() {
        let inst = Instance::build(Arc::new(families::path(5)), 0, &EmptyOracle);
        let reqs: Vec<RunRequest> = (0..6)
            .map(|_| RunRequest::new(Arc::clone(&inst), Arc::new(FloodOnce), SimConfig::default()))
            .collect();
        let reports = run_batch(&Pool::new(3), &reqs);
        assert_eq!(reports.len(), 6);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.cell, i);
            let out = r.outcome().expect("flooding completes");
            assert!(out.completed);
            assert_eq!(out.metrics.messages, 4);
        }
    }

    #[test]
    fn engine_errors_become_report_errors() {
        // Flooding in wakeup mode is legal, but a Silent source run in
        // wakeup mode quiesces — use an advice-count mismatch instead:
        // impossible through Instance. Use a wakeup violation: every node
        // floods spontaneously.
        struct AllStart;
        impl Protocol for AllStart {
            fn create(
                &self,
                view: oraclesize_sim::protocol::NodeView,
            ) -> Box<dyn oraclesize_sim::protocol::NodeBehavior> {
                struct S {
                    degree: usize,
                }
                impl oraclesize_sim::protocol::NodeBehavior for S {
                    fn on_start(&mut self) -> Vec<oraclesize_sim::protocol::Outgoing> {
                        (0..self.degree.min(1))
                            .map(|p| {
                                oraclesize_sim::protocol::Outgoing::new(
                                    p,
                                    oraclesize_sim::protocol::Message::empty(),
                                )
                            })
                            .collect()
                    }
                    fn on_receive(
                        &mut self,
                        _p: oraclesize_graph::Port,
                        _m: &oraclesize_sim::protocol::Message,
                    ) -> Vec<oraclesize_sim::protocol::Outgoing> {
                        Vec::new()
                    }
                }
                Box::new(S {
                    degree: view.degree,
                })
            }
        }
        let inst = Instance::build(Arc::new(families::path(3)), 0, &EmptyOracle);
        let cfg = SimConfig {
            mode: TaskMode::Wakeup,
            ..Default::default()
        };
        let reports = run_batch(
            &Pool::default(),
            &[RunRequest::new(inst, Arc::new(AllStart), cfg)],
        );
        let err = reports[0].result.as_ref().unwrap_err();
        assert!(err.contains("before being woken up"), "{err}");
    }
}
