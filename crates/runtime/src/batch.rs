//! The batch API: `RunRequest` in, `RunReport` out, cell order preserved.

use std::sync::Arc;

use oraclesize_sim::engine::{run_with_sink, Completion, RunOutcome, SimConfig, SimError};
use oraclesize_sim::protocol::Protocol;
use oraclesize_sim::trace::{NullSink, RingSink, TraceEvent, TraceSpec, TraceStats, VecSink};
use oraclesize_sim::{Instance, RunMetrics};

use crate::pool::Pool;

/// One cell of an experiment grid: which instance to run, with which
/// scheme, under which configuration.
///
/// Requests are cheap to build — the instance is `Arc`-shared and the
/// protocol is a (usually zero-sized) `Arc`ed factory — so grids with
/// thousands of cells cost nothing beyond their `SimConfig`s.
#[derive(Clone)]
pub struct RunRequest {
    /// The shared `(graph, advice)` instance.
    pub instance: Arc<Instance>,
    /// The scheme to execute. `Send + Sync` because one factory serves
    /// every worker thread.
    pub protocol: Arc<dyn Protocol + Send + Sync>,
    /// Engine configuration (task mode, scheduler, faults, limits).
    pub config: SimConfig,
}

impl RunRequest {
    /// Convenience constructor.
    pub fn new(
        instance: Arc<Instance>,
        protocol: Arc<dyn Protocol + Send + Sync>,
        config: SimConfig,
    ) -> Self {
        RunRequest {
            instance,
            protocol,
            config,
        }
    }

    /// A relative cost hint for scheduling: proportional to the
    /// instance's size (nodes + edges), which dominates both state setup
    /// and message traffic. Only the *ratio* between cells matters — the
    /// chunk planner ([`crate::sched::ChunkPlan::from_costs`]) uses hints
    /// to batch cheap cells together and isolate expensive ones, and a
    /// wrong hint can only cost throughput, never correctness.
    pub fn cost_hint(&self) -> u64 {
        (self.instance.graph.num_nodes() + self.instance.graph.num_edges()) as u64
    }
}

/// The comparable summary of one successful cell execution.
///
/// Everything here is plain old data with `Eq`, so whole report vectors
/// can be compared across thread counts — the determinism property the
/// runtime guarantees and the tests enforce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellOutcome {
    /// Oracle size of the instance, in bits.
    pub oracle_bits: u64,
    /// Engine accounting (messages, bits, rounds, steps, fault counts).
    pub metrics: RunMetrics,
    /// `true` iff every *surviving* node ended informed
    /// ([`Completion::Completed`]).
    pub completed: bool,
    /// Surviving nodes left uninformed (0 when `completed`).
    pub uninformed: usize,
    /// Nodes that crash-stopped during the run.
    pub crashed_nodes: usize,
    /// Captured events when the request's config asked for
    /// [`TraceSpec::Full`]; empty otherwise (ring tails go to the report's
    /// post-mortem instead).
    pub trace: Vec<TraceEvent>,
    /// Constant-size trace tallies (zeroed when tracing was off).
    pub trace_stats: TraceStats,
}

/// The result of one cell: its index plus either an outcome or the
/// engine's abort error (stringified, keeping the report `Eq`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// The cell index this report answers (same as its position in the
    /// vector [`run_batch`] returns).
    pub cell: usize,
    /// Outcome, or the rendered [`SimError`] if the run aborted.
    pub result: Result<CellOutcome, String>,
    /// The last events before things went wrong: when the request asked
    /// for [`TraceSpec::Ring`] tracing and the cell degraded or aborted,
    /// this holds the ring's tail (oldest first). Empty for completed
    /// cells and untraced requests.
    pub post_mortem: Vec<TraceEvent>,
}

impl RunReport {
    /// The outcome, if the run did not abort.
    pub fn outcome(&self) -> Option<&CellOutcome> {
        self.result.as_ref().ok()
    }
}

fn cell_outcome(inst: &Instance, outcome: RunOutcome) -> CellOutcome {
    let (completed, uninformed) = match outcome.classify() {
        Completion::Completed => (true, 0),
        Completion::Degraded { uninformed } => (false, uninformed),
    };
    CellOutcome {
        oracle_bits: inst.oracle_bits,
        crashed_nodes: outcome.crashed.iter().filter(|&&c| c).count(),
        completed,
        uninformed,
        metrics: outcome.metrics,
        trace: outcome.trace,
        trace_stats: outcome.trace_stats,
    }
}

/// Executes a single request on the calling thread.
///
/// Traces are materialized with [`oraclesize_sim::engine::run`] semantics:
/// both [`TraceSpec::Full`] captures and [`TraceSpec::Ring`] tails land in
/// the outcome's `trace`. (Ring post-mortems for *aborted* cells are only
/// available through [`run_cell_report`], which keeps the sink across the
/// failure.)
///
/// # Errors
///
/// Propagates the engine's [`SimError`] on abort.
pub fn run_cell(request: &RunRequest) -> Result<CellOutcome, SimError> {
    let inst = &request.instance;
    let outcome = oraclesize_sim::engine::run(
        &inst.graph,
        inst.source,
        &inst.advice,
        request.protocol.as_ref(),
        &request.config,
    )?;
    Ok(cell_outcome(inst, outcome))
}

/// Executes a single request, capturing traces per the request's
/// `config.trace`: [`TraceSpec::Full`] events land in the outcome's
/// `trace`, a [`TraceSpec::Ring`] tail lands in `post_mortem` when (and
/// only when) the cell degrades or aborts.
pub fn run_cell_report(cell: usize, request: &RunRequest) -> RunReport {
    let inst = &request.instance;
    let run = |sink: &mut dyn oraclesize_sim::TraceSink| {
        run_with_sink(
            &inst.graph,
            inst.source,
            &inst.advice,
            request.protocol.as_ref(),
            &request.config,
            sink,
        )
    };
    let (result, post_mortem) = match request.config.trace {
        TraceSpec::Off => (run(&mut NullSink), Vec::new()),
        TraceSpec::Full => {
            let mut sink = VecSink::new();
            let result = run(&mut sink).map(|mut outcome| {
                outcome.trace = sink.into_events();
                outcome
            });
            (result, Vec::new())
        }
        TraceSpec::Ring { capacity } => {
            let mut sink = RingSink::new(capacity);
            let result = run(&mut sink);
            let went_wrong = match &result {
                Ok(outcome) => outcome.classify() != Completion::Completed,
                Err(_) => true,
            };
            let tail = if went_wrong { sink.tail() } else { Vec::new() };
            (result, tail)
        }
    };
    RunReport {
        cell,
        result: result
            .map(|outcome| cell_outcome(inst, outcome))
            .map_err(|e| e.to_string()),
        post_mortem,
    }
}

/// Runs every request across the pool and returns reports **in cell
/// order**. Identical output at any thread count (see the crate-level
/// determinism contract).
pub fn run_batch(pool: &Pool, requests: &[RunRequest]) -> Vec<RunReport> {
    pool.run(requests.len(), |cell| {
        run_cell_report(cell, &requests[cell])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use oraclesize_core::oracle::EmptyOracle;
    use oraclesize_graph::families;
    use oraclesize_sim::protocol::FloodOnce;
    use oraclesize_sim::{FaultPlan, SimConfig};

    #[test]
    fn batch_reports_carry_cell_indices() {
        let inst = Instance::build(Arc::new(families::path(5)), 0, &EmptyOracle);
        let reqs: Vec<RunRequest> = (0..6)
            .map(|_| RunRequest::new(Arc::clone(&inst), Arc::new(FloodOnce), SimConfig::default()))
            .collect();
        let reports = run_batch(&Pool::new(3), &reqs);
        assert_eq!(reports.len(), 6);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.cell, i);
            let out = r.outcome().expect("flooding completes");
            assert!(out.completed);
            assert_eq!(out.metrics.messages, 4);
        }
    }

    #[test]
    fn engine_errors_become_report_errors() {
        // Flooding in wakeup mode is legal, but a Silent source run in
        // wakeup mode quiesces — use an advice-count mismatch instead:
        // impossible through Instance. Use a wakeup violation: every node
        // floods spontaneously.
        struct AllStart;
        impl Protocol for AllStart {
            fn create(
                &self,
                view: oraclesize_sim::protocol::NodeView,
            ) -> Box<dyn oraclesize_sim::protocol::NodeBehavior> {
                struct S {
                    degree: usize,
                }
                impl oraclesize_sim::protocol::NodeBehavior for S {
                    fn on_start(&mut self) -> Vec<oraclesize_sim::protocol::Outgoing> {
                        (0..self.degree.min(1))
                            .map(|p| {
                                oraclesize_sim::protocol::Outgoing::new(
                                    p,
                                    oraclesize_sim::protocol::Message::empty(),
                                )
                            })
                            .collect()
                    }
                    fn on_receive(
                        &mut self,
                        _p: oraclesize_graph::Port,
                        _m: oraclesize_sim::protocol::Message,
                    ) -> Vec<oraclesize_sim::protocol::Outgoing> {
                        Vec::new()
                    }
                }
                Box::new(S {
                    degree: view.degree,
                })
            }
        }
        let inst = Instance::build(Arc::new(families::path(3)), 0, &EmptyOracle);
        let cfg = SimConfig::wakeup();
        let reports = run_batch(
            &Pool::default(),
            &[RunRequest::new(inst, Arc::new(AllStart), cfg)],
        );
        let err = reports[0].result.as_ref().unwrap_err();
        assert!(err.contains("before being woken up"), "{err}");
    }

    #[test]
    fn full_trace_requests_fill_cell_outcomes() {
        let inst = Instance::build(Arc::new(families::cycle(5)), 0, &EmptyOracle);
        let cfg = SimConfig::broadcast().capture_trace(TraceSpec::Full);
        let reports = run_batch(
            &Pool::new(2),
            &[RunRequest::new(inst, Arc::new(FloodOnce), cfg)],
        );
        let out = reports[0].outcome().unwrap();
        assert!(!out.trace.is_empty());
        assert_eq!(TraceStats::tally(&out.trace), out.trace_stats);
        assert_eq!(out.trace_stats.delivered, out.metrics.steps);
        assert!(reports[0].post_mortem.is_empty(), "completed: no tail");
    }

    #[test]
    fn ring_post_mortem_captured_only_when_cells_go_wrong() {
        // Total message loss: the run completes degraded, so the ring tail
        // must surface as the report's post-mortem.
        let g = Arc::new(families::path(4));
        let inst = Instance::build(Arc::clone(&g), 0, &EmptyOracle);
        let doomed = SimConfig::broadcast()
            .with_faults(FaultPlan::message_faults(3, 1.0, 0.0, 0.0))
            .capture_trace(TraceSpec::Ring { capacity: 8 });
        let clean = SimConfig::broadcast().capture_trace(TraceSpec::Ring { capacity: 8 });
        let reports = run_batch(
            &Pool::new(1),
            &[
                RunRequest::new(Arc::clone(&inst), Arc::new(FloodOnce), doomed),
                RunRequest::new(inst, Arc::new(FloodOnce), clean),
            ],
        );
        assert!(!reports[0].outcome().unwrap().completed);
        assert!(!reports[0].post_mortem.is_empty());
        assert!(reports[0].outcome().unwrap().trace.is_empty());
        assert!(reports[1].outcome().unwrap().completed);
        assert!(reports[1].post_mortem.is_empty());
    }

    #[test]
    fn aborted_ring_cells_keep_their_tail() {
        let inst = Instance::build(Arc::new(families::path(3)), 0, &EmptyOracle);
        let cfg = SimConfig::broadcast()
            .with_max_steps(1)
            .capture_trace(TraceSpec::Ring { capacity: 4 });
        let report = run_cell_report(0, &RunRequest::new(inst, Arc::new(FloodOnce), cfg));
        assert!(report.result.is_err());
        assert!(!report.post_mortem.is_empty());
        assert!(report.post_mortem.len() <= 4);
    }
}
