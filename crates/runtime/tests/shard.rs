//! Shard execution equivalence: a sweep split into shards produces the
//! same reports as one batch, and its segment journals merge into
//! exactly the records a whole-sweep journal holds.

use std::path::PathBuf;
use std::sync::Arc;

use oraclesize_core::oracle::EmptyOracle;
use oraclesize_graph::families;
use oraclesize_runtime::journal::{load, load_segment, merge_segments};
use oraclesize_runtime::{
    run_supervised_batch, run_supervised_shard, Pool, RunRequest, SweepOptions,
};
use oraclesize_sim::protocol::FloodOnce;
use oraclesize_sim::{Instance, SimConfig};

fn requests(n: usize) -> Vec<RunRequest> {
    let inst = Instance::build(Arc::new(families::cycle(8)), 0, &EmptyOracle);
    (0..n)
        .map(|_| RunRequest::new(Arc::clone(&inst), Arc::new(FloodOnce), SimConfig::default()))
        .collect()
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("oraclesize-shard-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn shards_reproduce_the_batch_and_their_segments_merge() {
    let reqs = requests(6);
    let dir = temp_dir("merge");
    let whole_opts = SweepOptions {
        journal: Some(dir.join("whole.journal")),
        ..Default::default()
    };
    let pool = Pool::new(2);
    let whole = run_supervised_batch(&pool, &reqs, &whole_opts);
    assert!(whole.warnings.is_empty(), "{:?}", whole.warnings);

    let mut shard_reports = Vec::new();
    let mut segments = Vec::new();
    for (lo, hi) in [(0usize, 2usize), (2, 6)] {
        let path = dir.join(format!("shard-{lo}-{hi}.journal"));
        let opts = SweepOptions {
            journal: Some(path.clone()),
            ..Default::default()
        };
        let run = run_supervised_shard(&pool, &reqs[lo..hi], lo, reqs.len(), &opts);
        assert!(run.warnings.is_empty(), "{:?}", run.warnings);
        shard_reports.extend(run.reports());
        segments.push(load_segment(&path, reqs.len(), lo, hi).unwrap());
    }
    // Reports carry sweep-wide cell ids and match the batch exactly.
    assert_eq!(shard_reports, whole.reports());
    // Merged segment records are byte-equivalent to the whole journal's.
    let merged = merge_segments(segments);
    let reference = load(&dir.join("whole.journal"), reqs.len()).unwrap();
    assert!(merged.warnings.is_empty(), "{:?}", merged.warnings);
    assert_eq!(merged.records, reference.records);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shard_resumes_from_its_segment() {
    let reqs = requests(5);
    let dir = temp_dir("resume");
    let path = dir.join("shard.journal");
    let opts = SweepOptions {
        journal: Some(path.clone()),
        ..Default::default()
    };
    let pool = Pool::new(1);
    let first = run_supervised_shard(&pool, &reqs[1..4], 1, reqs.len(), &opts);
    let resumed = run_supervised_shard(
        &pool,
        &reqs[1..4],
        1,
        reqs.len(),
        &SweepOptions {
            journal: Some(path),
            resume: true,
            ..Default::default()
        },
    );
    assert!(resumed.warnings.is_empty(), "{:?}", resumed.warnings);
    assert_eq!(resumed.reports(), first.reports());
    assert!(resumed
        .cells
        .iter()
        .all(|c| matches!(c.status, oraclesize_runtime::CellStatus::Resumed)));
    std::fs::remove_dir_all(&dir).ok();
}
