//! Property tests for the [`SweepSpec`] wire format: rendering then
//! parsing is lossless for every representable spec, and malformed
//! documents are rejected with a first-error message naming the path.

use oraclesize_runtime::{
    AdviceSpec, CellSpec, FaultSpec, InstanceSpec, KnobSpec, SchedulerSpec, SweepSpec,
};
use proptest::prelude::*;

fn names() -> sample::Select<String> {
    sample::select(
        ["t10", "cycle", "spanning-tree", "flood", "x-1", "a"]
            .map(String::from)
            .to_vec(),
    )
}

fn option_of(s: impl Strategy<Value = u64>) -> impl Strategy<Value = Option<u64>> {
    (any::<bool>(), s).prop_map(|(some, v)| some.then_some(v))
}

fn advices() -> impl Strategy<Value = AdviceSpec> {
    (0u8..5, any::<u64>(), any::<u64>()).prop_map(|(kind, a, b)| match kind {
        0 => AdviceSpec::None,
        1 => AdviceSpec::FlipBits { prob_ppm: a },
        2 => AdviceSpec::Truncate { keep_ppm: a },
        3 => AdviceSpec::SwapPair { a, b },
        _ => AdviceSpec::Garbage {
            prob_ppm: a,
            bits: b,
        },
    })
}

fn faults() -> impl Strategy<Value = FaultSpec> {
    (
        any::<u64>(),
        0u64..=1_000_000,
        0u64..=1_000_000,
        0u64..=1_000_000,
        collection::vec((any::<u64>(), any::<u64>()), 0..3),
        advices(),
    )
        .prop_map(
            |(seed, drop_ppm, duplicate_ppm, bit_flip_ppm, crashes, advice)| FaultSpec {
                seed,
                drop_ppm,
                duplicate_ppm,
                bit_flip_ppm,
                crashes,
                advice,
            },
        )
}

fn schedulers() -> impl Strategy<Value = Option<SchedulerSpec>> {
    (
        0u8..5,
        sample::select(
            ["fifo", "lifo", "random", "starve"]
                .map(String::from)
                .to_vec(),
        ),
        any::<u64>(),
    )
        .prop_map(|(none, kind, seed)| (none != 0).then_some(SchedulerSpec { kind, seed }))
}

fn instances() -> impl Strategy<Value = InstanceSpec> {
    (
        names(),
        1u64..1_000,
        any::<u64>(),
        option_of(any::<u64>()),
        any::<u64>(),
        names(),
    )
        .prop_map(|(family, n, seed, p_ppm, source, oracle)| InstanceSpec {
            family,
            n,
            seed,
            p_ppm,
            source,
            oracle,
        })
}

fn cells(instance_count: u64) -> impl Strategy<Value = CellSpec> {
    (
        (
            names(),
            0..instance_count,
            names(),
            option_of(any::<u64>()),
            sample::select(["broadcast", "wakeup"].map(String::from).to_vec()),
            schedulers(),
        ),
        (
            any::<bool>(),
            option_of(any::<u64>()),
            option_of(any::<u64>()),
            any::<u64>(),
            faults(),
        ),
    )
        .prop_map(
            |(
                (label, instance, scheme, retries, mode, scheduler),
                (anonymous, max_message_bits, quiescence_polls, seed, faults),
            )| CellSpec {
                label,
                instance,
                scheme,
                retries,
                mode,
                scheduler,
                anonymous,
                max_message_bits,
                quiescence_polls,
                seed,
                faults,
            },
        )
}

fn specs() -> impl Strategy<Value = SweepSpec> {
    (
        names(),
        any::<u64>(),
        collection::vec(instances(), 1..4),
        any::<u64>(),
        option_of(any::<u64>()),
        option_of(any::<u64>()),
    )
        .prop_flat_map(
            |(name, master_seed, instance_list, max_retries, cell_timeout, chunk)| {
                let count = instance_list.len() as u64;
                collection::vec(cells(count), 1..6).prop_map(move |cell_list| {
                    let mut spec = SweepSpec::new(name.clone(), master_seed);
                    spec.instances = instance_list.clone();
                    spec.cells = cell_list;
                    spec.knobs = KnobSpec {
                        max_retries,
                        cell_timeout,
                        chunk,
                    };
                    spec
                })
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// render → parse is the identity on every representable spec, and
    /// the canonical text re-renders byte for byte.
    #[test]
    fn render_parse_round_trip_is_lossless(spec in specs()) {
        let text = spec.render();
        let parsed = match SweepSpec::parse(&text) {
            Ok(p) => p,
            Err(e) => return Err(TestCaseError::Fail(format!("{e}\n{text}"))),
        };
        prop_assert_eq!(&parsed, &spec);
        prop_assert_eq!(parsed.render(), text);
        // The digest is a pure function of the canonical text, so it
        // survives the round trip too.
        prop_assert_eq!(parsed.digest(), spec.digest());
    }

    /// Injecting an unknown field anywhere in the document is rejected,
    /// and the first-error message names the offending field.
    #[test]
    fn unknown_fields_are_rejected(
        spec in specs(),
        key in sample::select(["wat", "extra", "threadz", "color"].map(String::from).to_vec()),
    ) {
        let text = spec.render();
        // Splice the unknown key into the top-level object.
        let spliced = text.replacen('{', &format!("{{\"{key}\": 0, "), 1);
        let err = SweepSpec::parse(&spliced).expect_err("unknown field must be rejected");
        prop_assert!(err.contains(&key), "{}", err);
    }

    /// Mis-typing a required field is rejected with the field's path in
    /// the first-error message.
    #[test]
    fn mistyped_fields_are_rejected(spec in specs()) {
        let text = spec.render();
        let broken = text.replacen(
            &format!("\"master_seed\": {}", spec.master_seed),
            "\"master_seed\": \"not-a-number\"",
            1,
        );
        prop_assume!(broken != text);
        let err = SweepSpec::parse(&broken).expect_err("mis-typed field must be rejected");
        prop_assert!(err.contains("master_seed"), "{}", err);
    }
}
