//! The observability determinism contract: rendered trace JSONL is
//! byte-identical at `--threads` 1, 2, and 8 for the same request list.
//!
//! Message ids are assigned in enqueue order by each cell's own engine
//! run, so a cell's trace never depends on which worker thread executed
//! it — concatenating per-cell renders in cell order therefore yields one
//! deterministic artifact.

use std::sync::Arc;

use oraclesize_core::oracle::EmptyOracle;
use oraclesize_graph::families::Family;
use oraclesize_runtime::trace::render_jsonl;
use oraclesize_runtime::{run_batch, Pool, RunRequest};
use oraclesize_sim::protocol::FloodOnce;
use oraclesize_sim::{FaultPlan, Instance, SchedulerKind, SimConfig, TraceSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A fully-traced seed sweep over one shared instance, mixing schedulers
/// and fault plans so traces differ across cells.
fn traced_grid(fam: Family, n: usize, seed: u64, cells: usize) -> Vec<RunRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = Arc::new(fam.build(n, &mut rng));
    let source = seed as usize % g.num_nodes();
    let instance = Instance::build(g, source, &EmptyOracle);
    let protocol: Arc<dyn oraclesize_sim::protocol::Protocol + Send + Sync> = Arc::new(FloodOnce);
    (0..cells)
        .map(|cell| {
            let cell_seed = seed.wrapping_add(cell as u64);
            let config = SimConfig::broadcast()
                .with_scheduler(match cell % 3 {
                    0 => SchedulerKind::Fifo,
                    1 => SchedulerKind::Lifo,
                    _ => SchedulerKind::Random { seed: cell_seed },
                })
                .with_synchronous(cell % 2 == 0)
                .with_faults(if cell % 2 == 0 {
                    FaultPlan::message_faults(cell_seed, 0.1, 0.1, 0.2)
                } else {
                    FaultPlan::default()
                })
                .capture_trace(TraceSpec::Full);
            RunRequest::new(Arc::clone(&instance), Arc::clone(&protocol), config)
        })
        .collect()
}

/// Runs the batch and renders every cell's trace as one JSONL artifact.
fn render_batch(pool: &Pool, requests: &[RunRequest]) -> String {
    let mut out = String::new();
    for report in run_batch(pool, requests) {
        if let Some(outcome) = report.outcome() {
            out.push_str(&render_jsonl(report.cell as u64, &outcome.trace));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The acceptance bar: trace JSONL bytes are invariant under the
    /// worker thread count.
    #[test]
    fn trace_jsonl_identical_across_thread_counts(
        fam in proptest::sample::select(Family::ALL.to_vec()),
        n in 4usize..20,
        seed in any::<u64>(),
    ) {
        let requests = traced_grid(fam, n, seed, 9);
        let serial = render_batch(&Pool::new(1), &requests);
        prop_assert!(!serial.is_empty());
        for threads in [2usize, 8] {
            let parallel = render_batch(&Pool::new(threads), &requests);
            prop_assert_eq!(&serial, &parallel, "threads = {}", threads);
        }
    }
}

/// A deterministic pin of the same contract on the T10-style cycle cell.
#[test]
fn fixed_traced_grid_is_thread_count_invariant() {
    let requests = traced_grid(Family::Cycle, 12, 2006, 12);
    let serial = render_batch(&Pool::new(1), &requests);
    assert!(serial.lines().count() > 12, "traces should be non-trivial");
    for line in serial.lines() {
        assert!(oraclesize_runtime::json::parses(line), "{line}");
    }
    for threads in [2, 8] {
        assert_eq!(serial, render_batch(&Pool::new(threads), &requests));
    }
}
